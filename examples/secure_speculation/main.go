// Secure-speculation deep dive: run a transmitter-dense benchmark under
// every scheme and explain each scheme's behaviour from its counters —
// where STT blocks tainted transmitters, where STT-Issue wastes issue
// slots on nops, and where NDA withholds load broadcasts. Cells resolve
// through a Session, so the baseline each comparison needs is simulated
// once and served from the cache thereafter.
package main

import (
	"context"
	"fmt"
	"log"

	sb "repro"
	"repro/internal/trace"
)

func main() {
	const bench = "531.deepsjeng" // unpredictable data-dependent branches + indirection
	cfg := sb.MegaConfig()

	fmt.Printf("How each scheme pays for security on %s (%s configuration)\n\n", bench, cfg.Name)

	prof, err := sb.BenchmarkByName(bench)
	if err != nil {
		log.Fatal(err)
	}
	s := sb.NewSession(sb.SessionConfig{Options: sb.DefaultOptions()})
	ctx := context.Background()

	base, err := s.Run(ctx, cfg, sb.Baseline, prof)
	if err != nil {
		log.Fatal(err)
	}
	baseRep := sb.TraceOf(base)
	fmt.Println(baseRep)

	for _, scheme := range sb.SecureSchemes() {
		run, err := s.Run(ctx, cfg, scheme, prof)
		if err != nil {
			log.Fatal(err)
		}
		rep := sb.TraceOf(run)
		fmt.Println(rep)
		fmt.Printf("  %s\n\n", trace.Compare(baseRep, rep))
	}

	fmt.Println("Reading the numbers:")
	fmt.Println(" - stt-rename: taint-blocks/ki counts transmitters masked at selection")
	fmt.Println("   while their youngest root of taint was still speculative.")
	fmt.Println(" - stt-issue:  nop-slots/ki counts issue slots wasted when the issue-stage")
	fmt.Println("   taint unit vetoed an already-selected transmitter (Figure 4, step 4).")
	fmt.Println(" - nda:        delayed-bcast/ki counts loads that completed speculatively and")
	fmt.Println("   had their ready broadcast withheld until the visibility point (Figure 5b).")
}
