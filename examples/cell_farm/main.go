// Cell farm: stand up an in-process shadowbindingd, point a Session at
// it through the tiered cache (memory → farm), and sweep a small matrix
// twice. The first sweep's cells are simulated by the farm — the client
// session itself simulates nothing. The second sweep runs in a fresh
// session with cold local state, and the warm farm answers every cell
// without simulating again: the whole evaluation has become a lookup.
// This is exactly what `shadowbinding -remote URL -remote-compute` does
// against a real daemon.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	sb "repro"
)

func main() {
	// A real deployment runs `shadowbindingd -addr ... -cache ...`; an
	// example gets the same service in-process on an ephemeral port.
	farm := sb.NewFarmServer(sb.FarmServerConfig{Version: sb.SimVersion})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: farm.Handler()}
	go hs.Serve(ln)
	defer hs.Shutdown(context.Background())
	url := "http://" + ln.Addr().String()
	fmt.Printf("farm listening on %s\n\n", url)

	opts := sb.DefaultOptions()
	opts.WarmupCycles = 2_000
	opts.MeasureCycles = 8_000

	benches := []sb.Benchmark{}
	for _, name := range []string{"505.mcf", "538.imagick"} {
		p, err := sb.BenchmarkByName(name)
		if err != nil {
			log.Fatal(err)
		}
		benches = append(benches, p)
	}
	spec := sb.MatrixSpec{
		Name:    "cell-farm",
		Configs: []sb.Config{sb.MegaConfig()},
		Benches: benches,
	}

	sweep := func(label string) {
		// Each sweep is a fresh session with a cold local cache — only
		// the farm persists between them. RemoteCompute delegates misses
		// to the farm instead of simulating locally, and a whole cold
		// matrix travels as ONE streaming experiment request.
		cache, err := sb.OpenCache(sb.CacheOptions{Remote: url, RemoteCompute: true})
		if err != nil {
			log.Fatal(err)
		}
		sess := sb.NewSession(sb.SessionConfig{Options: opts, Cache: cache})
		m, err := sess.Matrix(context.Background(), spec)
		if err != nil {
			log.Fatal(err)
		}
		st := sess.Stats()
		fmt.Printf("%s: %d cells, %d simulated locally (farm served the rest)\n",
			label, st.Cells, st.Simulated)
		cfg := sb.MegaConfig().Name
		for _, k := range sb.Schemes() {
			fmt.Printf("  %-12s mean IPC %.4f", k, m.MeanIPC(cfg, k))
			if k != sb.Baseline {
				fmt.Printf("  (%.1f%% of baseline on %s)",
					100*m.BenchNormIPC(cfg, k, benches[0].Name), benches[0].Name)
			}
			fmt.Println()
		}
	}

	sweep("cold sweep")
	fs := farm.Stats()
	fmt.Printf("\nfarm after cold sweep: %d experiment requests, %d cells streamed, %d simulated\n\n",
		fs.Experiments, fs.StreamedCells, fs.EngineSimulated)

	sweep("warm sweep")
	fs2 := farm.Stats()
	fmt.Printf("\nfarm after warm sweep: %d experiment requests, %d simulated (+%d — warm cells are lookups)\n",
		fs2.Experiments, fs2.EngineSimulated, fs2.EngineSimulated-fs.EngineSimulated)
}
