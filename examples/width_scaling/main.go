// Width scaling: the paper's central argument (Sections 8.2-8.4) in one
// program. Sweep the four BOOM configurations, measure relative IPC per
// scheme, fold in the synthesis model's timing, and print the performance
// picture of Figure 1 — wider cores pay more for security, and NDA's
// simple design overtakes STT once timing counts.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	sb "repro"
	"repro/internal/synth"
)

func main() {
	opts := sb.DefaultOptions()
	opts.Parallelism = runtime.NumCPU()
	// A representative subset keeps this example fast; use
	// cmd/shadowbinding for the full 22-benchmark sweep.
	var suite []sb.Benchmark
	for _, name := range []string{"503.bwaves", "531.deepsjeng", "538.imagick", "505.mcf", "525.x264", "557.xz"} {
		p, err := sb.BenchmarkByName(name)
		if err != nil {
			log.Fatal(err)
		}
		suite = append(suite, p)
	}

	fmt.Printf("sweeping 4 configurations x %d schemes x 6 benchmarks on %d workers ...\n",
		len(sb.Schemes()), opts.Parallelism)
	start := time.Now()
	m, err := sb.RunMatrix(context.Background(), sb.Configs(), sb.Schemes(), suite, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swept %d cells in %v\n", 4*len(sb.Schemes())*len(suite), time.Since(start).Round(time.Millisecond))

	fmt.Printf("\n%-8s %9s | %-29s | %-29s\n", "", "baseline", "relative IPC", "performance (IPC x timing)")
	fmt.Printf("%-8s %9s | %9s %9s %9s | %9s %9s %9s\n",
		"config", "IPC", "stt-ren", "stt-iss", "nda", "stt-ren", "stt-iss", "nda")
	for _, cfg := range m.Configs {
		fmt.Printf("%-8s %9.3f |", cfg.Name, m.MeanIPC(cfg.Name, sb.Baseline))
		for _, k := range sb.SecureSchemes() {
			fmt.Printf(" %9.3f", m.NormIPC(cfg.Name, k))
		}
		fmt.Printf(" |")
		for _, k := range sb.SecureSchemes() {
			fmt.Printf(" %9.3f", m.NormIPC(cfg.Name, k)*synth.RelativeTiming(cfg, k))
		}
		fmt.Println()
	}
	fmt.Println("\nThe paper's headline: on the widest core STT-Rename's rename-stage YRoT")
	fmt.Println("chain costs ~20% frequency, flipping the ranking — NDA, slowest by IPC,")
	fmt.Println("ends up the fastest secure scheme once timing is folded in.")
}
