// Width scaling: the paper's central argument (Sections 8.2-8.4) in one
// program. Sweep the four BOOM configurations through a Session, measure
// relative IPC per scheme, fold in the synthesis model's timing, and
// print the performance picture of Figure 1 — wider cores pay more for
// security, and NDA's simple design overtakes STT once timing counts.
//
// The session persists its cells under ./width_scaling.cache: re-running
// this program answers entirely from the cache (watch the final summary
// line report zero simulations).
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	sb "repro"
	"repro/internal/synth"
)

func main() {
	opts := sb.DefaultOptions()
	opts.Parallelism = runtime.NumCPU()
	// A representative subset keeps this example fast; use
	// cmd/shadowbinding for the full 22-benchmark sweep.
	var suite []sb.Benchmark
	for _, name := range []string{"503.bwaves", "531.deepsjeng", "538.imagick", "505.mcf", "525.x264", "557.xz"} {
		p, err := sb.BenchmarkByName(name)
		if err != nil {
			log.Fatal(err)
		}
		suite = append(suite, p)
	}

	cache, err := sb.OpenCache(sb.CacheOptions{Dir: "width_scaling.cache"})
	if err != nil {
		log.Fatal(err)
	}
	s := sb.NewSession(sb.SessionConfig{Options: opts, Cache: cache})

	fmt.Printf("sweeping 4 configurations x %d schemes x 6 benchmarks on %d workers ...\n",
		len(sb.Schemes()), opts.Parallelism)
	start := time.Now()
	m, err := s.Matrix(context.Background(), sb.MatrixSpec{
		Name: "width-scaling", Configs: sb.Configs(), Benches: suite,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := s.Stats()
	fmt.Printf("answered %d cells in %v (%d simulated, %d from width_scaling.cache)\n",
		st.Cells, time.Since(start).Round(time.Millisecond), st.Simulated, st.Hits)

	fmt.Printf("\n%-8s %9s | %-29s | %-29s\n", "", "baseline", "relative IPC", "performance (IPC x timing)")
	fmt.Printf("%-8s %9s | %9s %9s %9s | %9s %9s %9s\n",
		"config", "IPC", "stt-ren", "stt-iss", "nda", "stt-ren", "stt-iss", "nda")
	for _, cfg := range m.Configs {
		fmt.Printf("%-8s %9.3f |", cfg.Name, m.MeanIPC(cfg.Name, sb.Baseline))
		for _, k := range sb.SecureSchemes() {
			fmt.Printf(" %9.3f", m.NormIPC(cfg.Name, k))
		}
		fmt.Printf(" |")
		for _, k := range sb.SecureSchemes() {
			fmt.Printf(" %9.3f", m.NormIPC(cfg.Name, k)*synth.RelativeTiming(cfg, k))
		}
		fmt.Println()
	}
	fmt.Println("\nThe paper's headline: on the widest core STT-Rename's rename-stage YRoT")
	fmt.Println("chain costs ~20% frequency, flipping the ranking — NDA, slowest by IPC,")
	fmt.Println("ends up the fastest secure scheme once timing is folded in.")
}
