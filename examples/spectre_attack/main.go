// Spectre demo: run the bounds-check-bypass gadget against all four
// schemes and show the cache side channel directly — which probe-array
// slots are hot after the transient window. Attack verdicts are security
// checks: they always re-simulate (the cell cache is for performance
// cells), which is why this program runs the whole matrix via
// SpectreV1All every time.
package main

import (
	"fmt"
	"log"

	sb "repro"
	"repro/internal/attack"
)

func main() {
	cfg := sb.MegaConfig()
	fmt.Println("Spectre v1: if (x < array1_size) y = array2[(array1[x]&63)*512]")
	fmt.Printf("planted secret value: %d -> probe slot %d\n", attack.SecretValue, attack.SecretValue&63)
	// Scheme names come from the registry — the same strings the CLIs'
	// -schemes flag accepts, and the lookup a drop-in scheme joins.
	fmt.Printf("registered schemes: %v\n\n", sb.SchemeNames())

	results, err := sb.SpectreV1All(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%-12s ", r.Scheme)
		switch {
		case r.Leaked && r.GuessedSecret >= 0:
			fmt.Printf("LEAKED: probe slot %d hot -> secret & 63 = %d\n", r.GuessedSecret, r.GuessedSecret)
		case r.Leaked:
			fmt.Printf("LEAKED: hot slots %v\n", r.HotSlots)
		default:
			fmt.Println("blocked: no secret-indexed probe line was filled")
		}
	}

	fmt.Println("\nSpeculative Store Bypass (Spectre v4): *p = 0 ; y = buf[0] ; probe[y&63]")
	fmt.Printf("planted stale secret: %d -> probe slot %d\n\n", attack.SSBSecret, attack.SSBSecret&63)
	for _, scheme := range sb.Schemes() {
		r, err := sb.SpectreSSB(cfg, scheme)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s ", r.Scheme)
		if r.Leaked {
			fmt.Printf("LEAKED: hot slots %v\n", r.HotSlots)
		} else {
			fmt.Println("blocked")
		}
	}

	fmt.Println("\nWhy the schemes win:")
	fmt.Println(" - STT taints the transient array1[x] value; the dependent array2 load is a")
	fmt.Println("   transmitter and cannot issue until the taint root is bound to commit —")
	fmt.Println("   which never happens, because the branch resolves and squashes it.")
	fmt.Println(" - NDA never broadcasts the speculative array1[x] value, so the dependent")
	fmt.Println("   load's operands never become ready inside the transient window.")
}
