// Quickstart: run one SPEC proxy benchmark on the Mega BOOM configuration
// under each secure speculation scheme and compare IPC — the smallest
// useful ShadowBinding program.
package main

import (
	"fmt"
	"log"

	sb "repro"
)

func main() {
	const bench = "538.imagick"
	opts := sb.DefaultOptions()
	cfg := sb.MegaConfig()

	fmt.Printf("%s on the %s configuration (%d-wide, %d-entry ROB)\n\n",
		bench, cfg.Name, cfg.Width, cfg.ROBSize)

	var baseIPC float64
	for _, scheme := range sb.Schemes() {
		run, err := sb.RunBenchmark(cfg, scheme, bench, opts)
		if err != nil {
			log.Fatal(err)
		}
		if scheme == sb.Baseline {
			baseIPC = run.IPC
		}
		fmt.Printf("%-12s IPC %.3f (%.1f%% of baseline)\n",
			scheme, run.IPC, 100*run.IPC/baseIPC)
	}
}
