// Quickstart: open an evaluation Session, sweep one SPEC proxy benchmark
// on the Mega BOOM configuration under every registered scheme, and
// compare IPC. Cells are content-addressed and cached in the session, so
// the second request at the end answers without simulating anything —
// the smallest useful ShadowBinding program, and the smallest useful
// cache demo.
package main

import (
	"context"
	"fmt"
	"log"

	sb "repro"
)

func main() {
	const bench = "538.imagick"
	cfg := sb.MegaConfig()

	fmt.Printf("%s on the %s configuration (%d-wide, %d-entry ROB)\n\n",
		bench, cfg.Name, cfg.Width, cfg.ROBSize)

	prof, err := sb.BenchmarkByName(bench)
	if err != nil {
		log.Fatal(err)
	}
	// The scheme axis comes from the registry: a drop-in scheme in
	// internal/core would show up here without any change to this program.
	// Pass Cache: sb.OpenCache(sb.CacheOptions{Dir: dir}) to persist
	// cells across processes.
	s := sb.NewSession(sb.SessionConfig{Options: sb.DefaultOptions()})
	ctx := context.Background()

	m, err := s.Matrix(ctx, sb.MatrixSpec{
		Name: "quickstart", Configs: []sb.Config{cfg}, Benches: []sb.Benchmark{prof},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, scheme := range sb.Schemes() {
		fmt.Printf("%-12s IPC %.3f (%.1f%% of baseline)\n",
			scheme, m.MeanIPC(cfg.Name, scheme), 100*m.NormIPC(cfg.Name, scheme))
	}

	// Ask for one of those cells again: the session serves it from the
	// cache — zero additional simulation.
	if _, err := s.Run(ctx, cfg, sb.STTIssue, prof); err != nil {
		log.Fatal(err)
	}
	st := s.Stats()
	fmt.Printf("\nsession: %d cell requests, %d simulated, %d cache hits (%.0f%%)\n",
		st.Cells, st.Simulated, st.Hits, 100*st.HitRate())
}
