// Quickstart: sweep one SPEC proxy benchmark on the Mega BOOM
// configuration under every registered scheme — in parallel, one worker
// per scheme — and compare IPC. The smallest useful ShadowBinding program.
package main

import (
	"context"
	"fmt"
	"log"

	sb "repro"
)

func main() {
	const bench = "538.imagick"
	opts := sb.DefaultOptions() // Parallelism 0 = one worker per CPU
	cfg := sb.MegaConfig()

	fmt.Printf("%s on the %s configuration (%d-wide, %d-entry ROB)\n\n",
		bench, cfg.Name, cfg.Width, cfg.ROBSize)

	prof, err := sb.BenchmarkByName(bench)
	if err != nil {
		log.Fatal(err)
	}
	// The scheme list comes from the registry: a drop-in scheme in
	// internal/core would show up here without any change to this program.
	m, err := sb.RunMatrix(context.Background(),
		[]sb.Config{cfg}, sb.Schemes(), []sb.Benchmark{prof}, opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, scheme := range sb.Schemes() {
		fmt.Printf("%-12s IPC %.3f (%.1f%% of baseline)\n",
			scheme, m.MeanIPC(cfg.Name, scheme), 100*m.NormIPC(cfg.Name, scheme))
	}
}
