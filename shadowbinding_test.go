package shadowbinding

import (
	"strings"
	"testing"
)

func TestRunBenchmarkFacade(t *testing.T) {
	opts := DefaultOptions()
	opts.WarmupCycles = 2_000
	opts.MeasureCycles = 8_000
	r, err := RunBenchmark(MegaConfig(), STTIssue, "503.bwaves", opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 {
		t.Errorf("IPC = %v", r.IPC)
	}
	rep := TraceOf(r)
	if rep.Scheme != STTIssue {
		t.Errorf("trace scheme = %v", rep.Scheme)
	}
	if _, err := RunBenchmark(MegaConfig(), NDA, "999.none", opts); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestBenchmarksFacade(t *testing.T) {
	if got := len(Benchmarks()); got != 22 {
		t.Errorf("suite size = %d, want 22", got)
	}
	if _, err := BenchmarkByName("505.mcf"); err != nil {
		t.Error(err)
	}
}

func TestSpectreFacade(t *testing.T) {
	r, err := SpectreV1(MegaConfig(), Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Leaked {
		t.Error("baseline must leak")
	}
	report, err := SecurityReport()
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{"baseline", "stt-rename", "stt-issue", "nda"} {
		if !strings.Contains(report, scheme) {
			t.Errorf("security report missing %s:\n%s", scheme, report)
		}
	}
}

func TestExperimentIDs(t *testing.T) {
	opts := DefaultOptions()
	opts.WarmupCycles = 1_000
	opts.MeasureCycles = 3_000
	// A tiny evaluation is enough to exercise the dispatch table.
	e, err := NewEvaluation(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ExperimentIDs() {
		out, err := e.Experiment(id)
		if err != nil {
			t.Errorf("%s: %v", id, err)
		}
		if len(out) < 50 {
			t.Errorf("%s: short output", id)
		}
	}
	if _, err := e.Experiment("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}
