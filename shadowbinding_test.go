package shadowbinding

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestRunBenchmarkFacade(t *testing.T) {
	opts := DefaultOptions()
	opts.WarmupCycles = 2_000
	opts.MeasureCycles = 8_000
	r, err := RunBenchmark(MegaConfig(), STTIssue, "503.bwaves", opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 {
		t.Errorf("IPC = %v", r.IPC)
	}
	rep := TraceOf(r)
	if rep.Scheme != STTIssue {
		t.Errorf("trace scheme = %v", rep.Scheme)
	}
	if _, err := RunBenchmark(MegaConfig(), NDA, "999.none", opts); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestSchemeFacade(t *testing.T) {
	if got := len(Schemes()); got != 6 {
		t.Errorf("registered schemes = %d, want 6", got)
	}
	if got := len(SecureSchemes()); got != 5 {
		t.Errorf("secure schemes = %d, want 5", got)
	}
	k, err := SchemeByName("stt-issue")
	if err != nil || k != STTIssue {
		t.Errorf("SchemeByName(stt-issue) = %v, %v", k, err)
	}
	if k, err := SchemeByName("dom"); err != nil || k != DoM {
		t.Errorf("SchemeByName(dom) = %v, %v", k, err)
	}
	if k, err := SchemeByName("invisispec"); err != nil || k != InvisiSpec {
		t.Errorf("SchemeByName(invisispec) = %v, %v", k, err)
	}
	if _, err := SchemeByName("stt-magic"); err == nil {
		t.Error("unknown scheme name accepted")
	}

	got, err := ParseSchemes(" nda, baseline ,nda")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != NDA || got[1] != Baseline {
		t.Errorf("ParseSchemes must dedupe in order, got %v", got)
	}
	if ws := WithBaseline([]Scheme{NDA}); len(ws) != 2 || ws[0] != Baseline || ws[1] != NDA {
		t.Errorf("WithBaseline = %v", ws)
	}
	if ws := WithBaseline(got); len(ws) != 2 {
		t.Errorf("WithBaseline must not duplicate an existing baseline: %v", ws)
	}
	all, err := ParseSchemes("")
	if err != nil || len(all) != len(Schemes()) {
		t.Errorf("empty filter = %v, %v; want all schemes", all, err)
	}
	if _, err := ParseSchemes("nda,bogus"); err == nil {
		t.Error("bogus filter accepted")
	}
}

func TestRunMatrixFacade(t *testing.T) {
	opts := DefaultOptions()
	opts.WarmupCycles = 2_000
	opts.MeasureCycles = 8_000
	opts.Parallelism = 4
	prof, err := BenchmarkByName("503.bwaves")
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunMatrix(context.Background(),
		[]Config{MegaConfig()}, Schemes(), []Benchmark{prof}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range Schemes() {
		if m.MeanIPC("mega", k) <= 0 {
			t.Errorf("%s: no IPC in facade matrix", k)
		}
	}
}

func TestBenchmarksFacade(t *testing.T) {
	if got := len(Benchmarks()); got != 22 {
		t.Errorf("suite size = %d, want 22", got)
	}
	if _, err := BenchmarkByName("505.mcf"); err != nil {
		t.Error(err)
	}
}

func TestSpectreFacade(t *testing.T) {
	r, err := SpectreV1(MegaConfig(), Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Leaked {
		t.Error("baseline must leak")
	}
	report, err := SecurityReport()
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{"baseline", "stt-rename", "stt-issue", "nda", "dom", "invisispec"} {
		if !strings.Contains(report, scheme) {
			t.Errorf("security report missing %s:\n%s", scheme, report)
		}
	}
}

// TestSessionFacade drives the Session API end to end through the public
// surface: lazy experiments, cell accounting, and the registry-backed id
// enumeration (whose historical order is pinned — cmd output depends on
// it).
func TestSessionFacade(t *testing.T) {
	want := []string{"table1", "fig1", "fig6", "fig7", "fig8", "fig9", "fig10", "table3", "table4", "table5", "fig_ext"}
	got := ExperimentIDs()
	if len(got) != len(want) {
		t.Fatalf("ExperimentIDs() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExperimentIDs()[%d] = %q, want %q (presentation order is pinned)", i, got[i], want[i])
		}
	}

	opts := DefaultOptions()
	opts.WarmupCycles = 1_000
	opts.MeasureCycles = 3_000
	s := NewSession(SessionConfig{Options: opts})
	ctx := context.Background()

	// Analytical experiments simulate nothing.
	out, err := s.Experiment(ctx, "table4")
	if err != nil || len(out) < 50 {
		t.Fatalf("table4 = %q, %v", out, err)
	}
	if st := s.Stats(); st.Cells != 0 {
		t.Errorf("table4 requested %d cells, want 0", st.Cells)
	}

	// A custom spec through the facade: one config, one benchmark.
	prof, err := BenchmarkByName("505.mcf")
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Matrix(ctx, MatrixSpec{Name: "facade", Configs: []Config{MegaConfig()}, Benches: []Benchmark{prof}})
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanIPC("mega", Baseline) <= 0 {
		t.Error("facade matrix missing baseline IPC")
	}
	if st := s.Stats(); st.Simulated != len(Schemes()) {
		t.Errorf("simulated %d cells, want %d", st.Simulated, len(Schemes()))
	}
	// Re-running a single cell hits the session cache.
	if _, err := s.Run(ctx, MegaConfig(), Baseline, prof); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Hits != 1 {
		t.Errorf("re-run cell hits = %d, want 1", st.Hits)
	}
}

func TestExperimentIDs(t *testing.T) {
	opts := DefaultOptions()
	opts.WarmupCycles = 1_000
	opts.MeasureCycles = 3_000
	// A tiny evaluation is enough to exercise the dispatch table.
	e, err := NewEvaluation(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ExperimentIDs() {
		out, err := e.Experiment(id)
		if err != nil {
			t.Errorf("%s: %v", id, err)
		}
		if len(out) < 50 {
			t.Errorf("%s: short output", id)
		}
	}
	if _, err := e.Experiment("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestOpenCacheFacade: the one cache constructor assembles every standard
// stack, validates its options, and feeds a Session end to end.
func TestOpenCacheFacade(t *testing.T) {
	// Zero options: a usable in-memory cache.
	mem, err := OpenCache(CacheOptions{})
	if err != nil || mem == nil {
		t.Fatalf("zero options: %v", err)
	}

	// Dir: a persistent layer — cells written through one cache are
	// readable through a second one over the same directory.
	dir := t.TempDir()
	c1, err := OpenCache(CacheOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.WarmupCycles = 1_000
	opts.MeasureCycles = 3_000
	s1 := NewSession(SessionConfig{Options: opts, Cache: c1})
	prof, err := BenchmarkByName("505.mcf")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Run(context.Background(), MegaConfig(), Baseline, prof); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCache(CacheOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSession(SessionConfig{Options: opts, Cache: c2})
	if _, err := s2.Run(context.Background(), MegaConfig(), Baseline, prof); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Simulated != 0 || st.Hits != 1 {
		t.Fatalf("disk layer not shared across caches: %+v", st)
	}

	// RemoteCompute without Remote is a configuration error, not a
	// silently local cache.
	if _, err := OpenCache(CacheOptions{RemoteCompute: true}); err == nil {
		t.Fatal("RemoteCompute without Remote accepted")
	}

	// Remote: the farm layer slots in as the slowest tier.
	if _, err := OpenCache(CacheOptions{Remote: "http://127.0.0.1:1", RemoteCompute: true}); err != nil {
		t.Fatalf("remote stack: %v", err)
	}
}

// TestStreamExportsFacade: the experiment-stream surface is reachable
// through the facade — wire form, key derivation, client, typed errors.
func TestStreamExportsFacade(t *testing.T) {
	opts := DefaultOptions()
	opts.WarmupCycles = 1_000
	opts.MeasureCycles = 3_000
	prof, err := BenchmarkByName("505.mcf")
	if err != nil {
		t.Fatal(err)
	}
	spec := MatrixSpec{
		Name:    "facade-stream",
		Configs: []Config{MegaConfig()},
		Benches: []Benchmark{prof},
		Schemes: []Scheme{Baseline},
	}
	wire := WireExperiment(spec, opts)
	if wire.Name != "facade-stream" || len(wire.Schemes) != 1 {
		t.Fatalf("wire form: %+v", wire)
	}
	key := CellKey(CellJob{Config: MegaConfig(), Scheme: Baseline, Bench: prof}, opts)
	if len(key) != 32 {
		t.Fatalf("cell key %q is not a fingerprint", key)
	}
	// A dead farm yields the typed transport error, not a panic or a bare
	// string.
	_, err = NewStreamClient("http://127.0.0.1:1", nil).Experiment(context.Background(), wire, nil)
	var se *StreamError
	if !errors.As(err, &se) {
		t.Fatalf("stream failure not typed: %v", err)
	}
	if errors.Is(err, ErrStreamTruncated) {
		t.Fatalf("transport failure misreported as truncation: %v", err)
	}
}
