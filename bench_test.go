package shadowbinding

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/synth"
	"repro/internal/workloads"
)

// The benchmark harness regenerates every table and figure in the paper's
// evaluation section. The expensive part — the full (configuration ×
// scheme × benchmark) simulation sweep — runs once and is shared by all
// table/figure benchmarks; each benchmark then re-renders its experiment
// and logs it, reporting its headline numbers as metrics.
//
// Run everything with:
//
//	go test -bench=. -benchmem
var (
	evalOnce sync.Once
	evalPtr  *Evaluation
	evalErr  error
)

func benchOptions() Options {
	o := DefaultOptions()
	o.WarmupCycles = 5_000
	o.MeasureCycles = 20_000
	return o
}

func sharedEval(b *testing.B) *Evaluation {
	b.Helper()
	if testing.Short() {
		b.Skip("full matrix sweep skipped with -short")
	}
	evalOnce.Do(func() { evalPtr, evalErr = NewEvaluation(benchOptions()) })
	if evalErr != nil {
		b.Fatal(evalErr)
	}
	return evalPtr
}

func benchExperiment(b *testing.B, id string) string {
	e := sharedEval(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = e.Experiment(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
	return out
}

// BenchmarkTable1_Configs regenerates Table 1: the four BOOM
// configurations and their measured baseline SPEC2017-proxy IPC.
func BenchmarkTable1_Configs(b *testing.B) {
	benchExperiment(b, "table1")
	e := sharedEval(b)
	for _, cfg := range e.Boom.Configs {
		b.ReportMetric(e.Boom.MeanIPC(cfg.Name, Baseline), "baseIPC_"+cfg.Name)
	}
}

// BenchmarkFigure6_NormalizedIPC regenerates Figure 6: per-benchmark IPC
// normalized to baseline on the Mega configuration.
func BenchmarkFigure6_NormalizedIPC(b *testing.B) {
	benchExperiment(b, "fig6")
	e := sharedEval(b)
	b.ReportMetric(e.Boom.NormIPC("mega", STTRename), "relIPC_sttRename")
	b.ReportMetric(e.Boom.NormIPC("mega", STTIssue), "relIPC_sttIssue")
	b.ReportMetric(e.Boom.NormIPC("mega", NDA), "relIPC_nda")
}

// BenchmarkFigure7_IPCByWidth regenerates Figure 7: normalized IPC across
// all four configurations, per scheme.
func BenchmarkFigure7_IPCByWidth(b *testing.B) {
	benchExperiment(b, "fig7")
}

// BenchmarkFigure8_IPCTrend regenerates Figure 8: the relative-IPC trend
// against absolute baseline IPC with the Redwood Cove extrapolation.
func BenchmarkFigure8_IPCTrend(b *testing.B) {
	benchExperiment(b, "fig8")
}

// BenchmarkFigure9_Timing regenerates Figure 9: achieved frequencies from
// the synthesis model.
func BenchmarkFigure9_Timing(b *testing.B) {
	benchExperiment(b, "fig9")
	mega := MegaConfig()
	b.ReportMetric(synth.RelativeTiming(mega, STTRename), "relTiming_sttRename_mega")
	b.ReportMetric(synth.RelativeTiming(mega, NDA), "relTiming_nda_mega")
}

// BenchmarkFigure10_TimingTrend regenerates Figure 10: relative timing
// against absolute baseline IPC.
func BenchmarkFigure10_TimingTrend(b *testing.B) {
	benchExperiment(b, "fig10")
}

// BenchmarkTable3_Performance regenerates Figure 1 / Table 3: normalized
// performance (IPC × timing) with the halved-slope Intel-class estimate.
func BenchmarkTable3_Performance(b *testing.B) {
	benchExperiment(b, "table3")
	e := sharedEval(b)
	b.ReportMetric(e.Boom.Performance("mega", STTRename), "perf_sttRename_mega")
	b.ReportMetric(e.Boom.Performance("mega", STTIssue), "perf_sttIssue_mega")
	b.ReportMetric(e.Boom.Performance("mega", NDA), "perf_nda_mega")
}

// BenchmarkTable4_AreaPower regenerates Table 4: LUT/FF/power ratios at
// the Mega configuration.
func BenchmarkTable4_AreaPower(b *testing.B) {
	benchExperiment(b, "table4")
	mega := MegaConfig()
	lut, ff := synth.RelativeArea(mega, STTRename)
	b.ReportMetric(lut, "LUT_sttRename")
	b.ReportMetric(ff, "FF_sttRename")
	b.ReportMetric(synth.RelativePower(mega, NDA), "power_nda")
}

// BenchmarkTable5_Gem5 regenerates Table 5: IPC loss per configuration
// plus the gem5-style-configuration comparison.
func BenchmarkTable5_Gem5(b *testing.B) {
	benchExperiment(b, "table5")
}

// BenchmarkSecurity_SpectreV1 runs the Section 7 security check: the
// Spectre v1 gadget under all four schemes.
func BenchmarkSecurity_SpectreV1(b *testing.B) {
	if testing.Short() {
		b.Skip("attack matrix skipped with -short")
	}
	var report string
	for i := 0; i < b.N; i++ {
		var err error
		report, err = SecurityReport()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + report)
	if !strings.Contains(report, "true") {
		b.Fatal("baseline did not leak")
	}
}

// ---------------------------------------------------------------------------
// Ablation benchmarks: the design choices DESIGN.md calls out.

// BenchmarkAblation_RenameChain reports the synthesis model's view of the
// STT-Rename same-cycle YRoT chain across widths (Section 4.1/8.3): the
// chain's added critical-path delay and the resulting relative frequency.
func BenchmarkAblation_RenameChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cfg := range Configs() {
			_ = synth.AddedDelayPs(cfg, STTRename)
		}
	}
	for _, cfg := range Configs() {
		b.Logf("%-7s chain depth %d, added delay %6.0f ps, relative timing %.3f",
			cfg.Name, synth.ChainDepth(cfg), synth.AddedDelayPs(cfg, STTRename),
			synth.RelativeTiming(cfg, STTRename))
	}
}

// BenchmarkAblation_SplitStoreTaints measures the Section 9.2 store-taint
// optimization on the exchange2 proxy: STT-Rename with unified versus
// split store address/data taints.
func BenchmarkAblation_SplitStoreTaints(b *testing.B) {
	if testing.Short() {
		b.Skip("ablation sweep skipped with -short")
	}
	prof, err := workloads.ByName("548.exchange2")
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOptions()
	run := func(split bool) Run {
		cfg := MegaConfig()
		cfg.SplitStoreTaints = split
		r, err := RunBenchmark(cfg, STTRename, prof.Name, opts)
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	var unified, split Run
	for i := 0; i < b.N; i++ {
		unified = run(false)
		split = run(true)
	}
	b.ReportMetric(unified.IPC, "IPC_unified")
	b.ReportMetric(split.IPC, "IPC_split")
	b.Logf("exchange2 STT-Rename: unified taints IPC %.3f (fwd errors %d), split taints IPC %.3f (fwd errors %d)",
		unified.IPC, unified.Stats.MemOrderViolations, split.IPC, split.Stats.MemOrderViolations)
}

// BenchmarkAblation_NDASpecWakeup measures NDA with and without the
// speculative L1-hit wakeup logic it removes (Section 5.1): re-enabling it
// cannot help NDA (dependents still wait for the delayed broadcast), which
// is why removing it is a free timing win.
func BenchmarkAblation_NDASpecWakeup(b *testing.B) {
	if testing.Short() {
		b.Skip("ablation sweep skipped with -short")
	}
	prof, err := workloads.ByName("538.imagick")
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOptions()
	run := func(spec bool) Run {
		cfg := MegaConfig()
		cfg.SpecWakeup = spec
		r, err := RunBenchmark(cfg, NDA, prof.Name, opts)
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	var with, without Run
	for i := 0; i < b.N; i++ {
		without = run(false) // the paper's NDA design
		with = run(true)
	}
	b.ReportMetric(without.IPC, "IPC_noSpecWakeup")
	b.ReportMetric(with.IPC, "IPC_specWakeup")
	b.Logf("imagick NDA: without spec wakeup IPC %.3f, with %.3f", without.IPC, with.IPC)
}

// BenchmarkAblation_BroadcastBandwidth sweeps the non-speculative-load
// broadcast bandwidth (= memory ports, Section 5.1) on the Mega core under
// NDA, showing the delayed-broadcast drain bottleneck.
func BenchmarkAblation_BroadcastBandwidth(b *testing.B) {
	if testing.Short() {
		b.Skip("ablation sweep skipped with -short")
	}
	prof, err := workloads.ByName("507.cactuBSSN")
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOptions()
	ipcs := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, ports := range []int{1, 2, 4} {
			cfg := MegaConfig()
			cfg.MemPorts = ports
			r, err := RunBenchmark(cfg, NDA, prof.Name, opts)
			if err != nil {
				b.Fatal(err)
			}
			ipcs[ports] = r.IPC
		}
	}
	for _, ports := range []int{1, 2, 4} {
		b.Logf("cactuBSSN NDA, %d broadcast ports: IPC %.3f", ports, ipcs[ports])
	}
}

// BenchmarkCoreMatrixThroughput measures end-to-end simulator throughput
// — simulated cycles per wall-clock second — on the default full matrix
// at -j 1 (single worker, so the number isolates core-model speed from
// pool scaling) and emits the measurement as BENCH_core.json for the
// performance trajectory. With -short a 2-benchmark slice of the matrix
// is measured instead, so the CI bench smoke step stays fast while still
// producing the artifact.
func BenchmarkCoreMatrixThroughput(b *testing.B) {
	benches := Benchmarks()
	label := "default-matrix-j1"
	if testing.Short() {
		var slice []Benchmark
		for _, p := range benches {
			if p.Name == "505.mcf" || p.Name == "525.x264" {
				slice = append(slice, p)
			}
		}
		benches = slice
		label = "short-matrix-j1"
	}
	opts := DefaultOptions()
	opts.Parallelism = 1

	var simCycles uint64
	var cells int
	b.ResetTimer()
	m0 := mallocsNow()
	for i := 0; i < b.N; i++ {
		m, err := RunMatrix(context.Background(), Configs(), Schemes(), benches, opts)
		if err != nil {
			b.Fatal(err)
		}
		simCycles += m.TotalSimCycles()
		cells += m.NumRuns()
	}
	rep := harness.NewBenchReport(label, cells, simCycles, b.Elapsed(), 1).WithAllocs(mallocsNow() - m0)
	b.ReportMetric(rep.SimCyclesPerSec, "simCycles/s")
	b.ReportMetric(rep.AllocsPerCycle, "allocs/simCycle")
	if err := harness.WriteBenchReport("BENCH_core.json", rep); err != nil {
		b.Fatal(err)
	}
	b.Log(rep)
}

// BenchmarkLongMissMatrixThroughput measures simulator throughput on the
// miss-dominated corner of the matrix: the DRAM-bound pointer-chase and
// indirect-load proxies under the two schemes that serialize on misses
// (Delay-on-Miss parks speculative misses until the visibility point;
// InvisiSpec stalls commit on exposure re-accesses). These cells spend most
// of their simulated cycles with no stage able to make progress, which is
// exactly where the core's idle-cycle skipping pays — the label exists to
// keep that win ratcheted. Runs under -short too: the CI bench gate checks
// it alongside short-matrix-j1.
func BenchmarkLongMissMatrixThroughput(b *testing.B) {
	var benches []Benchmark
	for _, p := range Benchmarks() {
		if p.Name == "505.mcf" || p.Name == "520.omnetpp" {
			benches = append(benches, p)
		}
	}
	schemes := []Scheme{DoM, InvisiSpec}
	opts := DefaultOptions()
	opts.Parallelism = 1

	var simCycles uint64
	var cells int
	b.ResetTimer()
	m0 := mallocsNow()
	for i := 0; i < b.N; i++ {
		m, err := RunMatrix(context.Background(), Configs(), schemes, benches, opts)
		if err != nil {
			b.Fatal(err)
		}
		simCycles += m.TotalSimCycles()
		cells += m.NumRuns()
	}
	rep := harness.NewBenchReport("long-miss-matrix-j1", cells, simCycles, b.Elapsed(), 1).WithAllocs(mallocsNow() - m0)
	b.ReportMetric(rep.SimCyclesPerSec, "simCycles/s")
	b.ReportMetric(rep.AllocsPerCycle, "allocs/simCycle")
	appendBenchReport(b, "BENCH_core.json", rep)
	b.Log(rep)
}

// BenchmarkSquashMatrixThroughput measures simulator throughput on the
// squash-dominated corner of the matrix: the mispredict-heavy game-tree
// proxies under every scheme. Wrong-path recovery — the ROB walk, arena
// slot recycling, IQ filtering, LSU truncation, checkpoint restore —
// dominates these cells, which is exactly the path the arena's
// generation-counted handles keep allocation-free; the label exists to
// keep that win ratcheted alongside the miss-dominated one. Runs under
// -short too: the CI bench gate checks it alongside short-matrix-j1 and
// long-miss-matrix-j1.
func BenchmarkSquashMatrixThroughput(b *testing.B) {
	var benches []Benchmark
	for _, p := range Benchmarks() {
		if p.Name == "531.deepsjeng" || p.Name == "541.leela" {
			benches = append(benches, p)
		}
	}
	opts := DefaultOptions()
	opts.Parallelism = 1

	var simCycles uint64
	var cells int
	b.ResetTimer()
	m0 := mallocsNow()
	for i := 0; i < b.N; i++ {
		m, err := RunMatrix(context.Background(), Configs(), Schemes(), benches, opts)
		if err != nil {
			b.Fatal(err)
		}
		simCycles += m.TotalSimCycles()
		cells += m.NumRuns()
	}
	rep := harness.NewBenchReport("squash-matrix-j1", cells, simCycles, b.Elapsed(), 1).WithAllocs(mallocsNow() - m0)
	b.ReportMetric(rep.SimCyclesPerSec, "simCycles/s")
	b.ReportMetric(rep.AllocsPerCycle, "allocs/simCycle")
	appendBenchReport(b, "BENCH_core.json", rep)
	b.Log(rep)
}

// mallocsNow reads the process-wide cumulative heap-allocation count; the
// delta across a measured window, amortized over simulated cycles, is the
// allocs/simCycle metric the bench gate holds flat.
func mallocsNow() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// BenchmarkSessionCacheHit measures warm-cache Session throughput: how
// fast already-simulated cells are delivered (cells/s) — the serving path
// behind a warm `-cache` re-run, where the simulator never runs. The
// measurement is appended to BENCH_core.json alongside the cold-path
// simulator-throughput entry, so the performance trajectory tracks both.
func BenchmarkSessionCacheHit(b *testing.B) {
	var benches []Benchmark
	for _, p := range Benchmarks() {
		if p.Name == "505.mcf" || p.Name == "525.x264" {
			benches = append(benches, p)
		}
	}
	opts := benchOptions()
	opts.Parallelism = 1
	spec := MatrixSpec{Name: "cache-hit", Configs: Configs(), Benches: benches}
	cache, err := OpenCache(CacheOptions{})
	if err != nil {
		b.Fatal(err)
	}

	// Cold pass (untimed): populate the shared cache.
	warmup := NewSession(SessionConfig{Options: opts, Cache: cache})
	if _, err := warmup.Matrix(context.Background(), spec); err != nil {
		b.Fatal(err)
	}

	// A single warm render takes well under a millisecond — far too short
	// to gate at a 25% regression threshold under -benchtime=1x (CI).
	// Repeat it a fixed number of times per iteration so the measured
	// window is tens of milliseconds; the reported numbers are rates, so
	// the repetition only stabilizes them.
	const reps = 200
	b.ResetTimer()
	var cells int
	var delivered uint64
	for i := 0; i < b.N; i++ {
		for r := 0; r < reps; r++ {
			s := NewSession(SessionConfig{Options: opts, Cache: cache})
			m, err := s.Matrix(context.Background(), spec)
			if err != nil {
				b.Fatal(err)
			}
			st := s.Stats()
			if st.Simulated != 0 {
				b.Fatalf("warm session simulated %d cells, want 0", st.Simulated)
			}
			cells += st.Cells
			delivered += m.TotalSimCycles()
		}
	}
	b.ReportMetric(float64(cells)/b.Elapsed().Seconds(), "cells/s")
	rep := harness.NewBenchReport("session-cache-hit", cells, delivered, b.Elapsed(), 1)
	appendBenchReport(b, "BENCH_core.json", rep)
	b.Log(rep)
}

// appendBenchReport merges rep into an existing BENCH_core.json (written
// by BenchmarkCoreMatrixThroughput earlier in the run), replacing any
// prior entry with the same label.
func appendBenchReport(b *testing.B, path string, rep harness.BenchReport) {
	b.Helper()
	var runs []harness.BenchReport
	if f, err := harness.ReadBenchReport(path); err == nil {
		for _, r := range f.Runs {
			if r.Label != rep.Label {
				runs = append(runs, r)
			}
		}
	}
	runs = append(runs, rep)
	if err := harness.WriteBenchReport(path, runs...); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSimulatorThroughput measures raw model speed (simulated cycles
// per second) — the practical budget behind every experiment above.
func BenchmarkSimulatorThroughput(b *testing.B) {
	prof, err := workloads.ByName("525.x264")
	if err != nil {
		b.Fatal(err)
	}
	prog := prof.Build(4)
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		c := core.MustNew(core.MegaConfig(), core.KindBaseline, prog)
		res, err := c.Run(core.RunLimits{MaxCycles: 50_000})
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simCycles/s")
}
