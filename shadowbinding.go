// Package shadowbinding is the public facade of the ShadowBinding
// reproduction: a cycle-level out-of-order CPU model with the paper's
// three in-core secure speculation microarchitectures (STT-Rename,
// STT-Issue, NDA-Permissive) plus the literature's two classic
// comparison points (Delay-on-Miss, InvisiSpec-style invisible loads), a
// SPEC CPU2017 proxy suite, an analytical synthesis model for
// timing/area/power, Spectre v1 / SSB security checks, and an evaluation
// driver that regenerates every table and figure of the paper (Kvalsvik
// & Själander, MICRO 2025) plus the extended 6-scheme comparison
// (fig_ext).
//
// Quick start — open a Session and render one experiment; only the cells
// that experiment needs are simulated, each at most once:
//
//	s := shadowbinding.NewSession(shadowbinding.SessionConfig{Options: shadowbinding.DefaultOptions()})
//	fig, err := s.Experiment(ctx, "fig6")
//
// or run a single benchmark:
//
//	cfg := shadowbinding.MegaConfig()
//	run, err := shadowbinding.RunBenchmark(cfg, shadowbinding.STTIssue, "538.imagick", shadowbinding.DefaultOptions())
//
// A Session is the unit of evaluation: every (configuration, scheme,
// benchmark, options) cell is an independent, content-addressed job —
// keyed by a fingerprint of its inputs plus a simulator version stamp —
// executed at most once per key on a bounded worker pool
// (Options.Parallelism; zero means all CPUs), streamed to subscribers as
// it completes, and persisted through a pluggable CellCache — OpenCache
// assembles the standard stack: an in-memory LRU, over an on-disk JSON
// store (CacheOptions.Dir), over a shared farm (CacheOptions.Remote, with
// RemoteCompute asking the farm to simulate misses and stream whole
// experiments) — so a warm re-run simulates nothing. Results are deterministic:
// identical matrices and figure text at any parallelism and any cache
// temperature. NewEvaluation and RunMatrix remain as eager compatibility
// wrappers over the same engine.
//
// Schemes and experiments are open-ended: both live in registries
// (core.RegisterScheme, RegisterExperiment) and everything here — the
// Schemes/SecureSchemes/ExperimentIDs enumerations, SchemeByName, every
// Session — enumerates them, so a drop-in scheme file in internal/core or
// a drop-in experiment registration shows up in every cmd and example
// without touching pipeline, harness, or facade code.
package shadowbinding

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/diffsim"
	"repro/internal/farm"
	"repro/internal/harness"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Re-exported core types.
type (
	// Config parameterizes a core (Table 1 configurations via the
	// constructors below).
	Config = core.Config
	// Scheme identifies a secure speculation scheme.
	Scheme = core.SchemeKind
	// Options bounds evaluation runs.
	Options = harness.Options
	// Run is one (benchmark, configuration, scheme) measurement.
	Run = harness.Run
	// Matrix is a full (configuration × scheme × benchmark) sweep.
	Matrix = harness.Matrix
	// Benchmark is a SPEC CPU2017 proxy profile.
	Benchmark = workloads.Profile
	// AttackResult is a Spectre v1 verdict.
	AttackResult = attack.Result
	// TraceReport is a digested per-run KPI view.
	TraceReport = trace.Report
	// BenchReport is one simulator-throughput measurement (BENCH_core.json).
	BenchReport = harness.BenchReport
	// BenchFile is the on-disk BENCH_core.json layout (schema + runs +
	// aggregate throughput).
	BenchFile = harness.BenchFile

	// Session is a long-lived, lazy evaluation context over the cell
	// engine: matrices and experiments are materialized on demand from
	// content-addressed, cacheable cells.
	Session = harness.Session
	// SessionConfig parameterizes NewSession.
	SessionConfig = harness.SessionConfig
	// SessionStats is a session's cell accounting (requests, cache hits,
	// simulations, simulated cycles).
	SessionStats = harness.SessionStats
	// CellCache persists content-addressed cell results.
	CellCache = harness.CellCache
	// CellResult is one completed cell streamed to Session subscribers.
	CellResult = harness.CellResult
	// MatrixSpec declares a cell set as a configurations × benchmarks
	// cross product (schemes come from the session).
	MatrixSpec = harness.MatrixSpec
	// ExperimentSpec describes one experiment to the registry.
	ExperimentSpec = harness.ExperimentSpec

	// CellJob names one content-addressed simulation cell.
	CellJob = harness.CellJob
	// CellJobWire is the serializable form of one cell request — what the
	// farm protocol posts to the compute endpoint.
	CellJobWire = harness.CellJobWire
	// ExperimentJobWire is the serializable form of one whole experiment
	// request — what POST /v1/experiments carries; the receiver enumerates
	// the identical per-cell key set.
	ExperimentJobWire = harness.ExperimentJobWire
	// ExperimentResolver is the optional CellCache extension behind
	// streamed experiments: a cache that can resolve a whole MatrixSpec in
	// one round trip (the farm client in compute mode implements it).
	ExperimentResolver = harness.ExperimentResolver

	// FarmServer is the networked cell-farm service (cmd/shadowbindingd):
	// remote CellCache on GET/PUT, compute-on-miss with fleet-wide
	// single-flight on POST, streamed whole experiments on
	// POST /v1/experiments, rendezvous-hashed worker fan-out with health
	// tracking, /v1/stats counters with latency percentiles.
	FarmServer = farm.Server
	// FarmServerConfig parameterizes NewFarmServer.
	FarmServerConfig = farm.ServerConfig
	// FarmStats is the farm server's counter snapshot.
	FarmStats = farm.Stats
	// HTTPCache is a CellCache speaking the farm protocol — the client
	// side of -remote. It also implements harness.CellResolver (compute
	// mode asks the farm to simulate a missing cell) and
	// harness.ExperimentResolver (a whole matrix becomes one streaming
	// request).
	HTTPCache = farm.HTTPCache
	// HTTPCacheOptions parameterizes NewHTTPCache (timeouts, retries,
	// backoff, compute mode, breaker).
	HTTPCacheOptions = farm.HTTPCacheOptions
	// StreamClient consumes the farm's experiment stream endpoint
	// directly — OpenCache with RemoteCompute uses it under the hood.
	StreamClient = farm.StreamClient
	// StreamError is the typed failure of an experiment stream; its
	// Delivered count marks how many cells arrived (and remain valid).
	StreamError = farm.StreamError
)

// CacheOptions selects the cell-cache stack OpenCache assembles. The zero
// value is valid and yields a process-private in-memory LRU.
type CacheOptions struct {
	// Dir adds a persistent on-disk JSON layer under the memory layer, so
	// cells survive across processes (the cmds' -cache flag).
	Dir string
	// Remote adds a farm-backed layer (base URL, e.g.
	// "http://127.0.0.1:8484") as the slowest tier — a shared fleet-wide
	// store (the cmds' -remote flag).
	Remote string
	// RemoteCompute additionally asks the farm to simulate missing cells —
	// single cells on miss, and whole experiments as one streaming request
	// (the cmds' -remote-compute flag). Requires Remote.
	RemoteCompute bool
	// MemoryCap bounds the in-memory LRU layer in entries (zero:
	// DefaultMemoryCacheSize).
	MemoryCap int
}

// OpenCache assembles the standard cell-cache stack from options: an
// in-memory LRU, over an on-disk store when Dir is set, over a farm client
// when Remote is set — fastest-first, with every hit backfilling the
// faster layers. This is the one cache constructor; the layer-specific
// constructors below remain as deprecated wrappers.
func OpenCache(opt CacheOptions) (CellCache, error) {
	if opt.RemoteCompute && opt.Remote == "" {
		return nil, fmt.Errorf("shadowbinding: CacheOptions.RemoteCompute needs a Remote farm URL")
	}
	layers := []harness.CellCache{harness.NewMemoryCache(opt.MemoryCap)}
	if opt.Dir != "" {
		disk, err := harness.NewDiskCache(opt.Dir)
		if err != nil {
			return nil, err
		}
		layers = append(layers, disk)
	}
	if opt.Remote != "" {
		layers = append(layers, farm.NewHTTPCache(opt.Remote, farm.HTTPCacheOptions{Compute: opt.RemoteCompute}))
	}
	if len(layers) == 1 {
		return layers[0], nil
	}
	return harness.NewTieredCache(layers...), nil
}

// DefaultMemoryCacheSize is the in-memory layer's default entry bound.
const DefaultMemoryCacheSize = harness.DefaultMemoryCacheSize

// OpenCellCache builds the memory(+disk) cache stack.
//
// Deprecated: Use OpenCache(CacheOptions{Dir: dir}).
func OpenCellCache(dir string) (CellCache, error) { return harness.OpenCellCache(dir) }

// NewMemoryCache returns a bounded in-memory LRU cell store.
//
// Deprecated: Use OpenCache; the zero CacheOptions gives exactly this
// layer. Compose layers manually only for custom CellCache implementations.
func NewMemoryCache(capacity int) CellCache { return harness.NewMemoryCache(capacity) }

// NewDiskCache opens an on-disk JSON cell store.
//
// Deprecated: Use OpenCache(CacheOptions{Dir: dir}), which layers the
// standard in-memory LRU on top.
func NewDiskCache(dir string) (CellCache, error) { return harness.NewDiskCache(dir) }

// NewTieredCache layers cell caches fastest-first.
//
// Deprecated: Use OpenCache for the standard stacks; compose manually only
// for custom CellCache implementations.
func NewTieredCache(layers ...CellCache) CellCache { return harness.NewTieredCache(layers...) }

// NewHTTPCache returns a farm-backed cell cache for a daemon's base URL.
//
// Deprecated: Use OpenCache(CacheOptions{Remote: url, RemoteCompute: ...}),
// which layers it under the standard local stack; construct directly only
// to tune HTTPCacheOptions.
func NewHTTPCache(baseURL string, opt HTTPCacheOptions) *HTTPCache {
	return farm.NewHTTPCache(baseURL, opt)
}

// ErrStreamTruncated marks an experiment stream that died before its
// trailer; errors.Is against a StreamClient failure detects it.
var ErrStreamTruncated = farm.ErrStreamTruncated

// The Session API surface, backed by the harness cell engine.
var (
	// NewSession opens a lazy evaluation session.
	NewSession = harness.NewSession

	// NewFarmServer builds the cell-farm HTTP service; serve its
	// Handler() with any http.Server (see cmd/shadowbindingd).
	NewFarmServer = farm.NewServer
	// NewStreamClient returns a client for the farm's experiment stream
	// endpoint (nil *http.Client for defaults).
	NewStreamClient = farm.NewStreamClient
	// WireJob flattens a (CellJob, Options) pair into its wire form.
	WireJob = harness.WireJob
	// WireExperiment flattens a resolved MatrixSpec (Schemes filled) and
	// its run bounds into the experiment wire form.
	WireExperiment = harness.WireExperiment
	// CellKey derives the content-addressed key of one (job, options)
	// cell — the identity streamed experiment cells validate against.
	CellKey = harness.CellKey

	// RegisterExperiment adds a drop-in experiment: its id joins
	// ExperimentIDs, every cmd's -experiment flag, and Session.Experiment.
	RegisterExperiment = harness.RegisterExperiment
	// Experiments returns every registered experiment in presentation
	// order.
	Experiments = harness.Experiments
	// ExperimentIDs lists the registered experiment ids accepted by
	// Session.Experiment and (*Evaluation).Experiment.
	ExperimentIDs = harness.ExperimentIDs

	// BoomSpec is the paper's main matrix (4 BOOM configs × full suite);
	// Gem5Spec the Section 8.6 comparison matrix; ExtSpec the Boom matrix
	// pinned to every registered scheme (the fig_ext cell set).
	BoomSpec = harness.BoomSpec
	Gem5Spec = harness.Gem5Spec
	ExtSpec  = harness.ExtSpec
)

// SimVersion is the simulator version stamp embedded in every cell
// fingerprint; cached results from other versions are never served.
const SimVersion = core.SimVersion

// Throughput reporting (BENCH_core.json), backed by the harness.
var (
	NewBenchReport   = harness.NewBenchReport
	WriteBenchReport = harness.WriteBenchReport
	ReadBenchReport  = harness.ReadBenchReport
)

// The paper's four schemes (Section 7) plus the two classic alternatives
// the secure-speculation literature compares against: Delay-on-Miss
// (Sakalis et al.) and InvisiSpec-style invisible loads (Yan et al.).
const (
	Baseline   = core.KindBaseline
	STTRename  = core.KindSTTRename
	STTIssue   = core.KindSTTIssue
	NDA        = core.KindNDA
	DoM        = core.KindDoM
	InvisiSpec = core.KindInvisiSpec
)

// Table 1 configurations.
var (
	SmallConfig  = core.SmallConfig
	MediumConfig = core.MediumConfig
	LargeConfig  = core.LargeConfig
	MegaConfig   = core.MegaConfig
	Configs      = core.Configs
	ConfigByName = core.ConfigByName

	// Scheme enumeration, backed by the core registry.
	Schemes       = core.SchemeKinds
	SecureSchemes = core.SecureSchemeKinds
	SchemeNames   = core.SchemeNames
)

// SchemeByName resolves one registered scheme name ("stt-issue", ...).
func SchemeByName(name string) (Scheme, error) {
	k, ok := core.SchemeKindByName(name)
	if !ok {
		return 0, fmt.Errorf("shadowbinding: unknown scheme %q (known: %s)",
			name, strings.Join(core.SchemeNames(), ", "))
	}
	return k, nil
}

// ParseSchemes parses a comma-separated scheme filter such as
// "stt-rename,nda", dropping duplicates. An empty string selects every
// registered scheme.
func ParseSchemes(csv string) ([]Scheme, error) {
	if strings.TrimSpace(csv) == "" {
		return Schemes(), nil
	}
	var out []Scheme
	seen := make(map[Scheme]bool)
	for _, name := range strings.Split(csv, ",") {
		k, err := SchemeByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out, nil
}

// WithBaseline prepends the baseline when absent: every figure and
// comparison normalizes against it, so a filtered sweep still needs the
// baseline cells.
func WithBaseline(schemes []Scheme) []Scheme {
	for _, k := range schemes {
		if k == Baseline {
			return schemes
		}
	}
	return append([]Scheme{Baseline}, schemes...)
}

// DefaultOptions returns evaluation run bounds (warmup + fixed measurement
// window per run).
func DefaultOptions() Options { return harness.DefaultOptions() }

// Benchmarks returns the 22-benchmark SPEC CPU2017 proxy suite.
func Benchmarks() []Benchmark { return workloads.Suite() }

// BenchmarkByName returns one proxy profile.
func BenchmarkByName(name string) (Benchmark, error) { return workloads.ByName(name) }

// RunBenchmark measures one (configuration, scheme, benchmark) cell.
func RunBenchmark(cfg Config, kind Scheme, bench string, opts Options) (Run, error) {
	p, err := workloads.ByName(bench)
	if err != nil {
		return Run{}, err
	}
	return harness.RunOne(cfg, kind, p, opts)
}

// RunBenchmarkTraced is RunBenchmark with a per-cycle JSONL trace written
// to w (meta line first, then one stage record per line — see
// internal/trace). The recorder is observational: the returned Run is
// identical to an untraced one.
func RunBenchmarkTraced(cfg Config, kind Scheme, bench string, opts Options, w io.Writer) (Run, error) {
	p, err := workloads.ByName(bench)
	if err != nil {
		return Run{}, err
	}
	rec, err := trace.NewRecorder(w, trace.Meta{
		Bench:  bench,
		Config: cfg.Name,
		Scheme: kind.String(),
		Warmup: opts.WarmupCycles,
		Budget: opts.MeasureCycles,
	})
	if err != nil {
		return Run{}, err
	}
	run, err := harness.RunOneRecorded(cfg, kind, p, opts, rec)
	if ferr := rec.Flush(); err == nil && ferr != nil {
		err = fmt.Errorf("shadowbinding: flush trace: %w", ferr)
	}
	return run, err
}

// The trace viewer (internal/trace): RenderTraceHTML renders a
// -trace-out JSONL file as the self-contained viewer page; ServeTrace
// serves it over HTTP, re-rendering the file on each request.
var (
	RenderTraceHTML = trace.RenderTraceFile
	ServeTrace      = trace.ServeTrace
)

// RunMatrix sweeps (configs × schemes × benches) on the parallel
// evaluation engine: Options.Parallelism worker goroutines (zero means all
// CPUs), fail-fast on the first error, cancellable through ctx, and with
// deterministic matrix contents regardless of scheduling order.
func RunMatrix(ctx context.Context, configs []Config, schemes []Scheme, benches []Benchmark, opts Options) (*Matrix, error) {
	return harness.RunMatrixContext(ctx, configs, schemes, benches, opts)
}

// TraceOf digests a run's counters into TraceDoctor-style KPIs.
func TraceOf(r Run) TraceReport { return trace.New(r.Scheme, r.Stats) }

// SpectreV1 runs the Spectre v1 proof of concept under one scheme.
func SpectreV1(cfg Config, kind Scheme) (AttackResult, error) {
	return attack.RunSpectreV1(cfg, kind)
}

// SpectreV1All runs the attack under every scheme.
func SpectreV1All(cfg Config) ([]AttackResult, error) { return attack.RunAll(cfg) }

// SpectreSSB runs the Speculative Store Bypass (Spectre v4) attack under
// one scheme — the D-shadow counterpart of SpectreV1.
func SpectreSSB(cfg Config, kind Scheme) (AttackResult, error) {
	return attack.RunSpectreSSB(cfg, kind)
}

// Differential fuzzing (internal/diffsim): a seeded random-program oracle
// that cross-checks every registered scheme against the in-order
// architectural reference. Every case is a reproducible (seed, feature
// mask) pair; a failure's error message embeds the replay invocation.
type (
	// FuzzCase identifies one differential fuzz case.
	FuzzCase = diffsim.Case
	// FuzzFeatureMask selects the behaviours a generated program mixes.
	FuzzFeatureMask = diffsim.FeatureMask
)

// FuzzFeatAll enables every generator feature.
const FuzzFeatAll = diffsim.FeatAll

// FuzzCaseForIndex derives the i'th case of a campaign from its base seed.
var FuzzCaseForIndex = diffsim.CaseForIndex

// FuzzConfigForCase returns the Table 1 configuration a case runs on
// (derived from the seed, so replays select the same core).
var FuzzConfigForCase = diffsim.ConfigForCase

// FuzzCampaign checks n generated programs (cases i in [0,n) of the base
// seed) against every registered scheme on a parallelism-bounded worker
// pool. The first failing case is returned with its replay command
// embedded (fail-fast; lowest index among the cases that ran).
func FuzzCampaign(ctx context.Context, baseSeed uint64, n, parallelism int, progress func(format string, args ...any)) error {
	return diffsim.Campaign(ctx, baseSeed, n, parallelism, progress)
}

// ReplayFuzzCase re-runs one case — typically transcribed from a campaign
// failure message — through the full differential oracle.
func ReplayFuzzCase(c FuzzCase) error {
	return diffsim.CheckCase(diffsim.ConfigForCase(c), core.SchemeKinds(), c)
}

// Evaluation holds the measured matrices behind the paper's tables and
// figures: the four BOOM configurations over the full suite, plus the
// gem5-style configurations over the 19-benchmark comparable suite. It is
// the eager compatibility wrapper over a Session — both matrices are
// materialized up front; prefer a Session to simulate (and cache) only
// what a given experiment needs.
type Evaluation struct {
	Boom *harness.Matrix
	Gem5 *harness.Matrix
}

// NewEvaluation runs the full sweep (4 configs × every registered scheme
// × 22 benchmarks plus 2 gem5 configs × the same schemes × 19 benchmarks)
// on the parallel engine.
func NewEvaluation(opts Options) (*Evaluation, error) {
	return NewEvaluationContext(context.Background(), Schemes(), opts)
}

// NewEvaluationContext is NewEvaluation restricted to a scheme subset and
// cancellable through ctx. The baseline is always included: the figures
// normalize against it. Both matrices are materialized eagerly through a
// default (memory-cached, process-private) Session.
func NewEvaluationContext(ctx context.Context, schemes []Scheme, opts Options) (*Evaluation, error) {
	if len(schemes) == 0 {
		schemes = Schemes()
	}
	s := NewSession(SessionConfig{Options: opts, Schemes: WithBaseline(schemes)})
	return EvaluationFromSession(ctx, s)
}

// EvaluationFromSession materializes both evaluation matrices through an
// existing session — with a warm CellCache this costs zero simulation.
func EvaluationFromSession(ctx context.Context, s *Session) (*Evaluation, error) {
	boom, err := s.Matrix(ctx, BoomSpec())
	if err != nil {
		return nil, err
	}
	gem5, err := s.Matrix(ctx, Gem5Spec())
	if err != nil {
		return nil, err
	}
	return &Evaluation{Boom: boom, Gem5: gem5}, nil
}

// TotalSimCycles sums the simulated cycles behind both matrices (warmup
// included) for throughput accounting.
func (e *Evaluation) TotalSimCycles() uint64 {
	return e.Boom.TotalSimCycles() + e.Gem5.TotalSimCycles()
}

// NumRuns returns the number of (config, scheme, benchmark) cells across
// both matrices.
func (e *Evaluation) NumRuns() int {
	return e.Boom.NumRuns() + e.Gem5.NumRuns()
}

// Table/figure emitters; each returns the experiment rendered as text.

func (e *Evaluation) Table1() string   { return harness.Table1(e.Boom) }
func (e *Evaluation) Figure6() string  { return harness.Figure6(e.Boom) }
func (e *Evaluation) Figure7() string  { return harness.Figure7(e.Boom) }
func (e *Evaluation) Figure8() string  { return harness.Figure8(e.Boom) }
func (e *Evaluation) Figure9() string  { return harness.Figure9(e.Boom.Configs) }
func (e *Evaluation) Figure10() string { return harness.Figure10(e.Boom) }
func (e *Evaluation) Table3() string   { return harness.Table3(e.Boom) }
func (e *Evaluation) Table4() string   { return harness.Table4() }
func (e *Evaluation) Table5() string   { return harness.Table5(e.Boom, e.Gem5) }

// SecurityReport runs the Spectre v1 matrix on the Mega configuration and
// renders the verdict table (the paper's Section 7 check).
func SecurityReport() (string, error) {
	results, err := attack.RunAll(core.MegaConfig())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Spectre v1 (bounds-check bypass) on the Mega configuration:\n")
	fmt.Fprintf(&b, "%-12s %-8s %-14s %s\n", "scheme", "leaked", "recovered", "hot probe slots")
	for _, r := range results {
		rec := "-"
		if r.GuessedSecret >= 0 {
			rec = fmt.Sprintf("%d (planted %d)", r.GuessedSecret, attack.SecretValue&63)
		}
		fmt.Fprintf(&b, "%-12s %-8v %-14s %v\n", r.Scheme, r.Leaked, rec, r.HotSlots)
	}
	fmt.Fprintf(&b, "\nSpeculative Store Bypass (Spectre v4) on the Mega configuration:\n")
	fmt.Fprintf(&b, "%-12s %-8s %-14s %s\n", "scheme", "leaked", "recovered", "hot probe slots")
	for _, kind := range core.SchemeKinds() {
		r, err := attack.RunSpectreSSB(core.MegaConfig(), kind)
		if err != nil {
			return "", err
		}
		rec := "-"
		if r.GuessedSecret >= 0 {
			rec = fmt.Sprintf("%d (planted %d)", r.GuessedSecret, attack.SSBSecret&63)
		}
		fmt.Fprintf(&b, "%-12s %-8v %-14s %v\n", r.Scheme, r.Leaked, rec, r.HotSlots)
	}
	return b.String(), nil
}

// Experiment renders one registered experiment by id from the eagerly
// swept matrices ("fig1" is an alias for the Table 3 performance data it
// plots). Dispatch goes through the experiment registry, so drop-in
// experiments whose needs are covered by the Boom/Gem5 matrices render
// here too; experiments needing other cell sets require a Session.
func (e *Evaluation) Experiment(id string) (string, error) {
	return harness.RenderExperiment(id, map[string]*harness.Matrix{
		"boom": e.Boom,
		"gem5": e.Gem5,
	})
}
