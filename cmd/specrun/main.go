// Command specrun runs a single benchmark cell and dumps its full counter
// set and TraceDoctor-style analysis, including the baseline comparison
// used for the paper's Section 9.2 discussion. With -schemes it sweeps the
// benchmark under several schemes at once on the parallel engine.
//
// Usage:
//
//	specrun -bench 548.exchange2 -config mega -scheme stt-rename
//	specrun -bench 505.mcf -schemes stt-rename,stt-issue,nda -j 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	sb "repro"
	"repro/internal/trace"
)

func main() {
	bench := flag.String("bench", "548.exchange2", "benchmark name (see -list)")
	config := flag.String("config", "mega", "configuration: small, medium, large, mega, gem5-stt, gem5-nda")
	scheme := flag.String("scheme", "stt-rename", "single scheme: baseline, stt-rename, stt-issue, nda")
	schemesCSV := flag.String("schemes", "", "comma-separated scheme sweep (overrides -scheme; baseline always included)")
	parallel := flag.Int("j", 0, "worker pool size for a -schemes sweep (0 = all CPUs)")
	warmup := flag.Uint64("warmup", 8_000, "warmup cycles")
	measure := flag.Uint64("measure", 32_000, "measured cycles")
	list := flag.Bool("list", false, "list benchmarks and exit")
	benchOut := flag.String("bench-out", "", "write a BENCH_core.json throughput report for the measured cell(s) to this path")
	flag.Parse()

	if *list {
		for _, p := range sb.Benchmarks() {
			fmt.Printf("%-18s %s\n", p.Name, p.Character)
		}
		return
	}

	cfg, err := sb.ConfigByName(*config)
	if err != nil {
		fatal(err)
	}
	opts := sb.DefaultOptions()
	opts.WarmupCycles = *warmup
	opts.MeasureCycles = *measure
	opts.Parallelism = *parallel

	if *schemesCSV != "" {
		sweep(cfg, *bench, *schemesCSV, opts, *benchOut)
		return
	}

	kind, err := sb.SchemeByName(*scheme)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	run, err := sb.RunBenchmark(cfg, kind, *bench, opts)
	if err != nil {
		fatal(err)
	}
	writeBench(*benchOut, "specrun-cell", 1, run.TotalCycles, time.Since(start), 1)
	fmt.Printf("%s on %s under %s: IPC %.4f (%d instructions / %d cycles)\n\n",
		*bench, cfg.Name, kind, run.IPC, run.Insts, run.Cycles)
	fmt.Println(run.Stats)
	fmt.Println(sb.TraceOf(run))

	if kind != sb.Baseline {
		base, err := sb.RunBenchmark(cfg, sb.Baseline, *bench, opts)
		if err != nil {
			fatal(err)
		}
		cmp := trace.Compare(sb.TraceOf(base), sb.TraceOf(run))
		fmt.Println(cmp)
	}
}

// sweep runs one benchmark under several schemes concurrently and prints
// a comparison table plus the per-scheme trace deltas against baseline.
func sweep(cfg sb.Config, bench, schemesCSV string, opts sb.Options, benchOut string) {
	schemes, err := sb.ParseSchemes(schemesCSV)
	if err != nil {
		fatal(err)
	}
	schemes = sb.WithBaseline(schemes)
	prof, err := sb.BenchmarkByName(bench)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	m, err := sb.RunMatrix(context.Background(),
		[]sb.Config{cfg}, schemes, []sb.Benchmark{prof}, opts)
	if err != nil {
		fatal(err)
	}
	writeBench(benchOut, "specrun-sweep", m.NumRuns(), m.TotalSimCycles(), time.Since(start), opts.Parallelism)

	fmt.Printf("%s on %s, %d schemes\n\n", bench, cfg.Name, len(schemes))
	fmt.Printf("%-12s %8s %10s\n", "scheme", "IPC", "vs base")
	for _, k := range schemes {
		fmt.Printf("%-12s %8.4f %9.1f%%\n", k,
			m.MeanIPC(cfg.Name, k), 100*m.BenchNormIPC(cfg.Name, k, bench))
	}
	fmt.Println()
	baseCell, _ := m.Cell(cfg.Name, sb.Baseline)
	for _, k := range schemes {
		if k == sb.Baseline {
			continue
		}
		cell, ok := m.Cell(cfg.Name, k)
		if !ok || len(cell.Runs) == 0 || len(baseCell.Runs) == 0 {
			continue
		}
		fmt.Println(trace.Compare(sb.TraceOf(baseCell.Runs[0]), sb.TraceOf(cell.Runs[0])))
	}
}

// writeBench emits the throughput report when -bench-out was given.
func writeBench(path, label string, cells int, simCycles uint64, wall time.Duration, workers int) {
	if path == "" {
		return
	}
	rep := sb.NewBenchReport(label, cells, simCycles, wall, workers)
	if err := sb.WriteBenchReport(path, rep); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "specrun:", rep)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "specrun:", err)
	os.Exit(1)
}
