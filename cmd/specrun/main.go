// Command specrun runs a single benchmark cell and dumps its full counter
// set and TraceDoctor-style analysis, including the baseline comparison
// used for the paper's Section 9.2 discussion. With -schemes it sweeps the
// benchmark under several schemes at once on the parallel engine. Cells
// resolve through a Session, so -cache makes repeated dives into the same
// cell free.
//
// Usage:
//
//	specrun -bench 548.exchange2 -config mega -scheme stt-rename
//	specrun -bench 505.mcf -schemes stt-rename,stt-issue,nda -j 4
//	specrun -bench 505.mcf -scheme nda -cache ~/.cache/shadowbinding
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	sb "repro"
	"repro/internal/cliutil"
	"repro/internal/trace"
)

const tool = "specrun"

func main() {
	bench := flag.String("bench", "548.exchange2", "benchmark name (see -list)")
	config := flag.String("config", "mega", "configuration: small, medium, large, mega, gem5-stt, gem5-nda")
	scheme := flag.String("scheme", "stt-rename", "single scheme: "+strings.Join(sb.SchemeNames(), ", "))
	warmup := flag.Uint64("warmup", 8_000, "warmup cycles")
	measure := flag.Uint64("measure", 32_000, "measured cycles")
	list := flag.Bool("list", false, "list benchmarks and exit")
	common := cliutil.Register(flag.CommandLine, "")
	common.RegisterTrace(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, p := range sb.Benchmarks() {
			fmt.Printf("%-18s %s\n", p.Name, p.Character)
		}
		return
	}

	cfg, err := sb.ConfigByName(*config)
	if err != nil {
		cliutil.Fatal(tool, err)
	}
	prof, err := sb.BenchmarkByName(*bench)
	if err != nil {
		cliutil.Fatal(tool, err)
	}
	opts := sb.DefaultOptions()
	opts.WarmupCycles = *warmup
	opts.MeasureCycles = *measure

	// One Build per cmd: scheme axis (baseline included — the sweep table
	// normalizes against it), cache stack, lazy session, SIGINT context.
	h, err := common.Build(tool, opts, true)
	if err != nil {
		cliutil.Fatal(tool, err)
	}
	defer h.Close()

	if common.SchemesCSV != "" {
		sweep(cfg, prof, h, common)
		return
	}

	kind, err := sb.SchemeByName(*scheme)
	if err != nil {
		cliutil.Fatal(tool, err)
	}
	sess := h.Session
	start := time.Now()
	var run sb.Run
	if common.TraceOut != "" {
		// Traced runs go straight to the simulator (a cached cell cannot
		// replay its pipeline events); the recorder is observational, so
		// everything printed below matches an untraced run exactly.
		run = common.RunTraced(tool, cfg, kind, *bench, h.Options)
	} else if run, err = sess.Run(h.Ctx, cfg, kind, prof); err != nil {
		cliutil.Fatal(tool, err)
	}
	fmt.Printf("%s on %s under %s: IPC %.4f (%d instructions / %d cycles)\n\n",
		*bench, cfg.Name, kind, run.IPC, run.Insts, run.Cycles)
	fmt.Println(run.Stats)
	fmt.Println(sb.TraceOf(run))

	if kind != sb.Baseline {
		base, err := sess.Run(h.Ctx, cfg, sb.Baseline, prof)
		if err != nil {
			cliutil.Fatal(tool, err)
		}
		cmp := trace.Compare(sb.TraceOf(base), sb.TraceOf(run))
		fmt.Println(cmp)
	}
	finish(sess, common, "specrun-cell", start, 1) // the two cells run sequentially
}

// sweep runs one benchmark under several schemes concurrently and prints
// a comparison table plus the per-scheme trace deltas against baseline.
func sweep(cfg sb.Config, prof sb.Benchmark, h *cliutil.Handles, common *cliutil.Flags) {
	start := time.Now()
	m, err := h.Session.Matrix(h.Ctx, sb.MatrixSpec{
		Name: "specrun", Configs: []sb.Config{cfg}, Benches: []sb.Benchmark{prof},
	})
	if err != nil {
		cliutil.Fatal(tool, err)
	}

	fmt.Printf("%s on %s, %d schemes\n\n", prof.Name, cfg.Name, len(h.Schemes))
	fmt.Printf("%-12s %8s %10s\n", "scheme", "IPC", "vs base")
	for _, k := range h.Schemes {
		fmt.Printf("%-12s %8.4f %9.1f%%\n", k,
			m.MeanIPC(cfg.Name, k), 100*m.BenchNormIPC(cfg.Name, k, prof.Name))
	}
	fmt.Println()
	for _, line := range cliutil.TraceDeltaLines(m, cfg.Name, h.Schemes) {
		fmt.Println(line)
	}
	finish(h.Session, common, "specrun-sweep", start, h.Options.Parallelism)
}

// finish emits the cache summary and the -bench-out throughput report for
// whatever the session actually simulated.
func finish(sess *sb.Session, common *cliutil.Flags, label string, start time.Time, workers int) {
	st := sess.Stats()
	if common.CacheEnabled() {
		cliutil.PrintCacheSummary(tool, st)
	}
	common.EmitBench(tool, label, st.Simulated, st.SimCycles, time.Since(start), workers)
}
