// Command specrun runs a single (benchmark, configuration, scheme) cell
// and dumps its full counter set and TraceDoctor-style analysis, including
// the baseline comparison used for the paper's Section 9.2 discussion.
//
// Usage:
//
//	specrun -bench 548.exchange2 -config mega -scheme stt-rename
package main

import (
	"flag"
	"fmt"
	"os"

	sb "repro"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	bench := flag.String("bench", "548.exchange2", "benchmark name (see -list)")
	config := flag.String("config", "mega", "configuration: small, medium, large, mega, gem5-stt, gem5-nda")
	scheme := flag.String("scheme", "stt-rename", "scheme: baseline, stt-rename, stt-issue, nda")
	warmup := flag.Uint64("warmup", 8_000, "warmup cycles")
	measure := flag.Uint64("measure", 32_000, "measured cycles")
	list := flag.Bool("list", false, "list benchmarks and exit")
	flag.Parse()

	if *list {
		for _, p := range sb.Benchmarks() {
			fmt.Printf("%-18s %s\n", p.Name, p.Character)
		}
		return
	}

	cfg, err := sb.ConfigByName(*config)
	if err != nil {
		fatal(err)
	}
	kind, ok := core.SchemeKindByName(*scheme)
	if !ok {
		fatal(fmt.Errorf("unknown scheme %q", *scheme))
	}
	opts := sb.DefaultOptions()
	opts.WarmupCycles = *warmup
	opts.MeasureCycles = *measure

	run, err := sb.RunBenchmark(cfg, kind, *bench, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s on %s under %s: IPC %.4f (%d instructions / %d cycles)\n\n",
		*bench, cfg.Name, kind, run.IPC, run.Insts, run.Cycles)
	fmt.Println(run.Stats)
	fmt.Println(sb.TraceOf(run))

	if kind != sb.Baseline {
		base, err := sb.RunBenchmark(cfg, sb.Baseline, *bench, opts)
		if err != nil {
			fatal(err)
		}
		cmp := trace.Compare(sb.TraceOf(base), sb.TraceOf(run))
		fmt.Println(cmp)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "specrun:", err)
	os.Exit(1)
}
