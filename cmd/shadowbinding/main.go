// Command shadowbinding reproduces the paper's evaluation through the
// Session API: experiments are rendered lazily from content-addressed
// simulation cells, each executed at most once and — with -cache —
// persisted on disk, so a warm re-run of any experiment simulates
// nothing.
//
// Usage:
//
//	shadowbinding -experiment all
//	shadowbinding -experiment fig6 -measure 100000
//	shadowbinding -experiment fig7 -schemes stt-issue,nda -j 4
//	shadowbinding -experiment fig_ext                    # all schemes head-to-head
//	shadowbinding -experiment table1 -cache ~/.cache/shadowbinding   # warm runs are free
//	shadowbinding -experiment security
//
// Differential fuzzing (long offline campaigns and failure replay):
//
//	shadowbinding -fuzz 100000 -j 8          # campaign: 100k random programs
//	shadowbinding -fuzz-seed 123 -fuzz-mask 0x2f   # replay one failure
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	sb "repro"
	"repro/internal/cliutil"
)

const tool = "shadowbinding"

func main() {
	experiment := flag.String("experiment", "all",
		"experiment id: all, security, or one of "+strings.Join(sb.ExperimentIDs(), ", "))
	warmup := flag.Uint64("warmup", 8_000, "warmup cycles per run")
	measure := flag.Uint64("measure", 32_000, "measured cycles per run")
	scale := flag.Int("scale", 1, "workload iteration multiplier")
	quiet := flag.Bool("q", false, "suppress progress output")
	fuzzN := flag.Int("fuzz", 0, "run a differential fuzzing campaign of N generated programs (cross-checks every scheme against the architectural reference)")
	fuzzSeed := flag.Uint64("fuzz-seed", 1, "base seed for -fuzz; without -fuzz, replay exactly one case (pair with -fuzz-mask)")
	fuzzMask := flag.Uint64("fuzz-mask", 0, "feature mask for a single-case replay (0 = all features)")
	traceCell := flag.String("trace-cell", "548.exchange2@mega@stt-rename",
		"cell to trace with -trace-out, as bench@config@scheme")
	serveTrace := flag.String("serve-trace", "", "serve the pipeline-trace viewer for this -trace-out JSONL file")
	serveAddr := flag.String("serve-addr", "127.0.0.1:8383", "listen address for -serve-trace")
	traceHTML := flag.String("trace-html", "",
		"with -serve-trace: render the viewer page to this file and exit instead of serving")
	common := cliutil.Register(flag.CommandLine, "")
	common.RegisterTrace(flag.CommandLine)
	flag.Parse()

	opts := sb.DefaultOptions()
	opts.WarmupCycles = *warmup
	opts.MeasureCycles = *measure
	opts.Scale = *scale
	if !*quiet {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	// One Build per cmd: scheme axis (baseline included — figures
	// normalize against it), cache stack, lazy session, SIGINT context,
	// and whole-run profiling (cell construction included — see
	// mem.Main.WriteRange for why that matters).
	h, err := common.Build(tool, opts, true)
	if err != nil {
		cliutil.Fatal(tool, err)
	}
	defer h.Close()

	fuzzFlagSet, experimentSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "fuzz", "fuzz-seed", "fuzz-mask":
			fuzzFlagSet = true
		case "experiment":
			experimentSet = true
		}
	})
	if fuzzFlagSet {
		if experimentSet {
			cliutil.Fatal(tool, fmt.Errorf("-experiment cannot be combined with -fuzz/-fuzz-seed/-fuzz-mask"))
		}
		runFuzz(h.Ctx, *fuzzN, *fuzzSeed, *fuzzMask, common.Parallelism, *quiet)
		return
	}

	if *serveTrace != "" {
		if *traceHTML != "" {
			page, err := sb.RenderTraceHTML(*serveTrace)
			if err != nil {
				cliutil.Fatal(tool, err)
			}
			if err := os.WriteFile(*traceHTML, page, 0o644); err != nil {
				cliutil.Fatal(tool, err)
			}
			fmt.Fprintf(os.Stderr, "%s: rendered %s to %s\n", tool, *serveTrace, *traceHTML)
			return
		}
		fmt.Fprintf(os.Stderr, "%s: serving trace viewer for %s on http://%s/\n", tool, *serveTrace, *serveAddr)
		if err := sb.ServeTrace(*serveAddr, *serveTrace); err != nil {
			cliutil.Fatal(tool, err)
		}
		return
	}
	if common.TraceOut != "" {
		runTracedCell(common, *traceCell, h.Options)
		return
	}

	if *experiment == "security" {
		report, err := sb.SecurityReport()
		if err != nil {
			cliutil.Fatal(tool, err)
		}
		fmt.Print(report)
		return
	}

	ids := []string{*experiment}
	if *experiment == "all" {
		ids = sb.ExperimentIDs()
	}
	start := time.Now()
	for _, id := range ids {
		out, err := h.Session.Experiment(h.Ctx, id)
		if err != nil {
			cliutil.Fatal(tool, err)
		}
		fmt.Println(out)
	}
	// The bench report covers the session sweep only — the security
	// check below simulates outside the cell engine.
	sweepWall := time.Since(start)
	if *experiment == "all" {
		report, err := sb.SecurityReport()
		if err != nil {
			cliutil.Fatal(tool, err)
		}
		fmt.Println(report)
	}

	st := h.Session.Stats()
	if common.CacheEnabled() {
		cliutil.PrintCacheSummary(tool, st)
	}
	common.EmitBench(tool, "evaluation-sweep", st.Simulated, st.SimCycles, sweepWall, h.Options.Parallelism)
}

// runTracedCell runs one bench@config@scheme cell with the JSONL trace
// recorder attached (-trace-out) and prints its headline result. The
// recorder is observational, so the printed numbers match an untraced
// run of the same cell.
func runTracedCell(common *cliutil.Flags, cell string, opts sb.Options) {
	parts := strings.Split(cell, "@")
	if len(parts) != 3 {
		cliutil.Fatal(tool, fmt.Errorf("-trace-cell wants bench@config@scheme, got %q", cell))
	}
	cfg, err := sb.ConfigByName(parts[1])
	if err != nil {
		cliutil.Fatal(tool, err)
	}
	kind, err := sb.SchemeByName(parts[2])
	if err != nil {
		cliutil.Fatal(tool, err)
	}
	run := common.RunTraced(tool, cfg, kind, parts[0], opts)
	fmt.Printf("%s on %s under %s: IPC %.4f (%d instructions / %d cycles)\n",
		run.Bench, run.Config, run.Scheme, run.IPC, run.Insts, run.Cycles)
}

// runFuzz drives the differential fuzzing subsystem: a campaign of n
// generated programs when n > 0, otherwise a single-case replay from a
// failure message's (seed, mask) pair.
func runFuzz(ctx context.Context, n int, seed, mask uint64, parallel int, quiet bool) {
	if n > 0 {
		var progress func(format string, args ...any)
		if !quiet {
			progress = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}
		}
		if err := sb.FuzzCampaign(ctx, seed, n, parallel, progress); err != nil {
			cliutil.Fatal(tool, err)
		}
		fmt.Printf("fuzz: %d cases passed (base seed %d, schemes %s)\n",
			n, seed, strings.Join(sb.SchemeNames(), ","))
		return
	}

	c := sb.FuzzCase{Seed: seed, Mask: sb.FuzzFeatureMask(mask)}
	if c.Mask == 0 {
		c.Mask = sb.FuzzFeatAll
	}
	if err := sb.ReplayFuzzCase(c); err != nil {
		cliutil.Fatal(tool, err)
	}
	fmt.Printf("fuzz: case %v passed on %s (schemes %s)\n",
		c, sb.FuzzConfigForCase(c).Name, strings.Join(sb.SchemeNames(), ","))
}
