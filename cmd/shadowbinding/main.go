// Command shadowbinding reproduces the paper's evaluation: it runs the
// full (configuration × scheme × benchmark) sweep on the parallel
// evaluation engine and prints any table or figure from the evaluation
// section, plus the Spectre v1 security check.
//
// Usage:
//
//	shadowbinding -experiment all
//	shadowbinding -experiment fig6 -measure 100000
//	shadowbinding -experiment fig7 -schemes stt-issue,nda -j 4
//	shadowbinding -experiment security
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	sb "repro"
)

func main() {
	experiment := flag.String("experiment", "all",
		"experiment id: all, security, or one of "+strings.Join(sb.ExperimentIDs(), ", "))
	warmup := flag.Uint64("warmup", 8_000, "warmup cycles per run")
	measure := flag.Uint64("measure", 32_000, "measured cycles per run")
	scale := flag.Int("scale", 1, "workload iteration multiplier")
	parallel := flag.Int("j", 0, "worker pool size for the sweep (0 = all CPUs)")
	schemesCSV := flag.String("schemes", "",
		"comma-separated scheme filter (default all: "+strings.Join(sb.SchemeNames(), ",")+"); baseline is always included")
	quiet := flag.Bool("q", false, "suppress progress output")
	benchOut := flag.String("bench-out", "", "write a BENCH_core.json throughput report for the sweep to this path")
	flag.Parse()

	if *experiment == "security" {
		report, err := sb.SecurityReport()
		if err != nil {
			fatal(err)
		}
		fmt.Print(report)
		return
	}

	schemes, err := sb.ParseSchemes(*schemesCSV)
	if err != nil {
		fatal(err)
	}

	opts := sb.DefaultOptions()
	opts.WarmupCycles = *warmup
	opts.MeasureCycles = *measure
	opts.Scale = *scale
	opts.Parallelism = *parallel
	if !*quiet {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	// Ctrl-C cancels the sweep instead of killing it mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sweepStart := time.Now()
	eval, err := sb.NewEvaluationContext(ctx, schemes, opts)
	if err != nil {
		fatal(err)
	}
	if *benchOut != "" {
		rep := sb.NewBenchReport("evaluation-sweep", eval.NumRuns(), eval.TotalSimCycles(),
			time.Since(sweepStart), opts.Parallelism)
		if err := sb.WriteBenchReport(*benchOut, rep); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "shadowbinding:", rep)
	}

	ids := []string{*experiment}
	if *experiment == "all" {
		ids = sb.ExperimentIDs()
	}
	for _, id := range ids {
		out, err := eval.Experiment(id)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if *experiment == "all" {
		report, err := sb.SecurityReport()
		if err != nil {
			fatal(err)
		}
		fmt.Println(report)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shadowbinding:", err)
	os.Exit(1)
}
