// Command shadowbinding reproduces the paper's evaluation: it runs the
// full (configuration × scheme × benchmark) sweep on the parallel
// evaluation engine and prints any table or figure from the evaluation
// section, plus the Spectre v1 security check.
//
// Usage:
//
//	shadowbinding -experiment all
//	shadowbinding -experiment fig6 -measure 100000
//	shadowbinding -experiment fig7 -schemes stt-issue,nda -j 4
//	shadowbinding -experiment security
//
// Differential fuzzing (long offline campaigns and failure replay):
//
//	shadowbinding -fuzz 100000 -j 8          # campaign: 100k random programs
//	shadowbinding -fuzz-seed 123 -fuzz-mask 0x2f   # replay one failure
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	sb "repro"
)

func main() {
	experiment := flag.String("experiment", "all",
		"experiment id: all, security, or one of "+strings.Join(sb.ExperimentIDs(), ", "))
	warmup := flag.Uint64("warmup", 8_000, "warmup cycles per run")
	measure := flag.Uint64("measure", 32_000, "measured cycles per run")
	scale := flag.Int("scale", 1, "workload iteration multiplier")
	parallel := flag.Int("j", 0, "worker pool size for the sweep (0 = all CPUs)")
	schemesCSV := flag.String("schemes", "",
		"comma-separated scheme filter (default all: "+strings.Join(sb.SchemeNames(), ",")+"); baseline is always included")
	quiet := flag.Bool("q", false, "suppress progress output")
	benchOut := flag.String("bench-out", "", "write a BENCH_core.json throughput report for the sweep to this path")
	fuzzN := flag.Int("fuzz", 0, "run a differential fuzzing campaign of N generated programs (cross-checks every scheme against the architectural reference)")
	fuzzSeed := flag.Uint64("fuzz-seed", 1, "base seed for -fuzz; without -fuzz, replay exactly one case (pair with -fuzz-mask)")
	fuzzMask := flag.Uint64("fuzz-mask", 0, "feature mask for a single-case replay (0 = all features)")
	flag.Parse()

	fuzzFlagSet, experimentSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "fuzz", "fuzz-seed", "fuzz-mask":
			fuzzFlagSet = true
		case "experiment":
			experimentSet = true
		}
	})
	if fuzzFlagSet {
		if experimentSet {
			fatal(fmt.Errorf("-experiment cannot be combined with -fuzz/-fuzz-seed/-fuzz-mask"))
		}
		runFuzz(*fuzzN, *fuzzSeed, *fuzzMask, *parallel, *quiet)
		return
	}

	if *experiment == "security" {
		report, err := sb.SecurityReport()
		if err != nil {
			fatal(err)
		}
		fmt.Print(report)
		return
	}

	schemes, err := sb.ParseSchemes(*schemesCSV)
	if err != nil {
		fatal(err)
	}

	opts := sb.DefaultOptions()
	opts.WarmupCycles = *warmup
	opts.MeasureCycles = *measure
	opts.Scale = *scale
	opts.Parallelism = *parallel
	if !*quiet {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	// Ctrl-C cancels the sweep instead of killing it mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sweepStart := time.Now()
	eval, err := sb.NewEvaluationContext(ctx, schemes, opts)
	if err != nil {
		fatal(err)
	}
	if *benchOut != "" {
		rep := sb.NewBenchReport("evaluation-sweep", eval.NumRuns(), eval.TotalSimCycles(),
			time.Since(sweepStart), opts.Parallelism)
		if err := sb.WriteBenchReport(*benchOut, rep); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "shadowbinding:", rep)
	}

	ids := []string{*experiment}
	if *experiment == "all" {
		ids = sb.ExperimentIDs()
	}
	for _, id := range ids {
		out, err := eval.Experiment(id)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if *experiment == "all" {
		report, err := sb.SecurityReport()
		if err != nil {
			fatal(err)
		}
		fmt.Println(report)
	}
}

// runFuzz drives the differential fuzzing subsystem: a campaign of n
// generated programs when n > 0, otherwise a single-case replay from a
// failure message's (seed, mask) pair.
func runFuzz(n int, seed, mask uint64, parallel int, quiet bool) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if n > 0 {
		var progress func(format string, args ...any)
		if !quiet {
			progress = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}
		}
		if err := sb.FuzzCampaign(ctx, seed, n, parallel, progress); err != nil {
			fatal(err)
		}
		fmt.Printf("fuzz: %d cases passed (base seed %d, schemes %s)\n",
			n, seed, strings.Join(sb.SchemeNames(), ","))
		return
	}

	c := sb.FuzzCase{Seed: seed, Mask: sb.FuzzFeatureMask(mask)}
	if c.Mask == 0 {
		c.Mask = sb.FuzzFeatAll
	}
	if err := sb.ReplayFuzzCase(c); err != nil {
		fatal(err)
	}
	fmt.Printf("fuzz: case %v passed on %s (schemes %s)\n",
		c, sb.FuzzConfigForCase(c).Name, strings.Join(sb.SchemeNames(), ","))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shadowbinding:", err)
	os.Exit(1)
}
