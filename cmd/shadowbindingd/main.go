// Command shadowbindingd serves the evaluation cell farm: a networked,
// content-addressed store and compute service over the same cell engine
// the cmds use locally. Any shadowbinding/specrun process points -remote
// at it for a shared fleet-wide cache layer; with -remote-compute the
// daemon also simulates missing cells (coalescing duplicate in-flight
// requests fleet-wide), and with -workers it shards that cold compute
// across a pool of worker daemons by key hash.
//
// Usage:
//
//	shadowbindingd -addr 127.0.0.1:8484 -cache ~/.cache/shadowbinding
//	shadowbindingd -addr :8484 -workers http://w1:8484,http://w2:8484
//	shadowbindingd -addr :8485 -cache /var/cache/farm-w1   # a worker
//
// Protocol (see internal/farm): GET/PUT /v1/cells/{key} for the remote
// cache, POST /v1/cells for compute-on-miss, POST /v1/experiments for a
// streamed whole experiment, GET /v1/stats for counters. Workers are
// rendezvous-hashed and health-probed; a dead worker's keys re-shard to
// the survivors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	sb "repro"
	"repro/internal/cliutil"
)

const tool = "shadowbindingd"

func main() {
	addr := flag.String("addr", "127.0.0.1:8484", "listen address")
	workers := flag.String("workers", "", "comma-separated worker base URLs to shard cold compute across (each a shadowbindingd)")
	probe := flag.Duration("probe", 0, "worker health-probe interval (0: 2s; negative: passive failure detection only)")
	verbose := flag.Bool("v", false, "log at debug level (includes per-cell engine lines)")
	common := cliutil.Register(flag.CommandLine,
		"cell cache directory backing the farm store (empty: in-memory only, nothing survives the process)")
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	// The same Build every cmd uses; the daemon takes the cache stack and
	// the SIGINT context (-remote even chains this daemon onto an upstream
	// farm store) and leaves the session untouched.
	h, err := common.Build(tool, sb.DefaultOptions(), false)
	if err != nil {
		cliutil.Fatal(tool, err)
	}
	defer h.Close()

	var workerURLs []string
	if *workers != "" {
		for _, u := range strings.Split(*workers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				workerURLs = append(workerURLs, u)
			}
		}
	}

	farm := sb.NewFarmServer(sb.FarmServerConfig{
		Cache:         h.Cache,
		Workers:       workerURLs,
		Parallelism:   common.Parallelism,
		ProbeInterval: *probe,
		Logger:        logger,
	})
	defer farm.Close() // stop the worker health prober
	srv := &http.Server{Addr: *addr, Handler: farm.Handler()}

	// SIGINT drains in-flight requests instead of dropping them mid-cell.
	ctx := h.Ctx
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- srv.Shutdown(shutdownCtx)
	}()

	logger.Info("serving cell farm",
		"addr", *addr,
		"cache", common.CacheDir,
		"workers", len(workerURLs),
		"version", sb.SimVersion,
	)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		cliutil.Fatal(tool, err)
	}
	if err := <-done; err != nil {
		cliutil.Fatal(tool, fmt.Errorf("shutdown: %w", err))
	}
	st := farm.Stats()
	logger.Info("farm stopped",
		"gets", st.Gets, "puts", st.Puts, "computes", st.Computes,
		"simulated", st.EngineSimulated, "sim_cycles", st.SimCycles,
	)
}
