// Command spectre runs the Spectre v1 and Speculative Store Bypass proofs
// of concept (the paper's Section 7 security verification) under every
// registered scheme — or a -schemes subset — and prints the verdicts. The
// per-scheme attacks are independent and run on a bounded worker pool;
// Ctrl-C cancels the pool and exits non-zero.
//
// Usage:
//
//	spectre                      # Mega configuration, all schemes
//	spectre -config small -schemes baseline,nda -j 2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	sb "repro"
	"repro/internal/attack"
	"repro/internal/cliutil"
	"repro/internal/harness"
)

const tool = "spectre"

func main() {
	config := flag.String("config", "mega", "configuration: small, medium, large, mega")
	common := cliutil.Register(flag.CommandLine,
		"accepted for CLI symmetry; attack verdicts are security checks and are always re-simulated")
	flag.Parse()

	cfg, err := sb.ConfigByName(*config)
	if err != nil {
		cliutil.Fatal(tool, err)
	}

	// One Build per cmd: scheme axis as given (verdicts are per-scheme,
	// nothing normalizes), SIGINT context, profiling. Attack verdicts are
	// security checks and never resolve through the cell cache.
	h, err := common.Build(tool, sb.DefaultOptions(), false)
	if err != nil {
		cliutil.Fatal(tool, err)
	}
	defer h.Close()
	schemes, ctx := h.Schemes, h.Ctx

	// Two attacks per scheme: Spectre v1 first, then SSB, each block in
	// registry order. Slots are fixed up front so the concurrent attacks
	// can never reorder the report.
	jobs := make([]func() (sb.AttackResult, error), 0, 2*len(schemes))
	for _, kind := range schemes {
		jobs = append(jobs, func() (sb.AttackResult, error) { return sb.SpectreV1(cfg, kind) })
	}
	for _, kind := range schemes {
		jobs = append(jobs, func() (sb.AttackResult, error) { return sb.SpectreSSB(cfg, kind) })
	}

	start := time.Now()
	results := make([]sb.AttackResult, len(jobs))
	err = harness.ParallelDo(ctx, len(jobs), common.Parallelism, func(i int) error {
		r, err := jobs[i]()
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		cliutil.Fatal(tool, err)
	}
	var simCycles uint64
	for _, r := range results {
		simCycles += r.Cycles
	}
	common.EmitBench(tool, "spectre-attack-matrix", len(jobs), simCycles, time.Since(start), common.Parallelism)

	fmt.Printf("Spectre v1 bounds-check bypass on the %s configuration\n", cfg.Name)
	fmt.Printf("planted secret: %d (probe slot %d)\n\n", attack.SecretValue, attack.SecretValue&63)
	fmt.Printf("(first %d rows: Spectre v1; last %d: Speculative Store Bypass)\n", len(schemes), len(schemes))
	exit := 0
	for _, r := range results {
		verdict := "BLOCKED"
		if r.Leaked {
			verdict = "LEAKED"
			if r.Scheme != sb.Baseline {
				exit = 1 // a secure scheme leaking is a reproduction failure
			}
		}
		fmt.Printf("%-12s %-8s hot slots %v", r.Scheme, verdict, r.HotSlots)
		if r.GuessedSecret >= 0 {
			fmt.Printf("  -> recovered %d", r.GuessedSecret)
		}
		fmt.Println()
	}
	h.Close() // os.Exit skips defers; flush profiles explicitly
	os.Exit(exit)
}
