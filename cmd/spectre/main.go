// Command spectre runs the Spectre v1 and Speculative Store Bypass proofs
// of concept (the paper's Section 7 security verification) under every
// registered scheme — or a -schemes subset — and prints the verdicts. The
// per-scheme attacks are independent and run on a bounded worker pool.
//
// Usage:
//
//	spectre                      # Mega configuration, all schemes
//	spectre -config small -schemes baseline,nda -j 2
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	sb "repro"
	"repro/internal/attack"
)

func main() {
	config := flag.String("config", "mega", "configuration: small, medium, large, mega")
	schemesCSV := flag.String("schemes", "", "comma-separated scheme filter (default: all registered schemes)")
	parallel := flag.Int("j", 0, "worker pool size for the attack matrix (0 = all CPUs)")
	benchOut := flag.String("bench-out", "", "write a BENCH_core.json throughput report for the attack matrix to this path")
	flag.Parse()

	cfg, err := sb.ConfigByName(*config)
	if err != nil {
		fatal(err)
	}
	schemes, err := sb.ParseSchemes(*schemesCSV)
	if err != nil {
		fatal(err)
	}

	// Two attacks per scheme: Spectre v1 first, then SSB, each block in
	// registry order. Slots are fixed up front so the concurrent attacks
	// can never reorder the report.
	jobs := make([]func() (sb.AttackResult, error), 0, 2*len(schemes))
	for _, kind := range schemes {
		jobs = append(jobs, func() (sb.AttackResult, error) { return sb.SpectreV1(cfg, kind) })
	}
	for _, kind := range schemes {
		jobs = append(jobs, func() (sb.AttackResult, error) { return sb.SpectreSSB(cfg, kind) })
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	start := time.Now()
	results := make([]sb.AttackResult, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = jobs[i]()
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			fatal(err)
		}
	}
	if *benchOut != "" {
		var simCycles uint64
		for _, r := range results {
			simCycles += r.Cycles
		}
		rep := sb.NewBenchReport("spectre-attack-matrix", len(jobs), simCycles, time.Since(start), workers)
		if err := sb.WriteBenchReport(*benchOut, rep); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "spectre:", rep)
	}

	fmt.Printf("Spectre v1 bounds-check bypass on the %s configuration\n", cfg.Name)
	fmt.Printf("planted secret: %d (probe slot %d)\n\n", attack.SecretValue, attack.SecretValue&63)
	fmt.Printf("(first %d rows: Spectre v1; last %d: Speculative Store Bypass)\n", len(schemes), len(schemes))
	exit := 0
	for _, r := range results {
		verdict := "BLOCKED"
		if r.Leaked {
			verdict = "LEAKED"
			if r.Scheme != sb.Baseline {
				exit = 1 // a secure scheme leaking is a reproduction failure
			}
		}
		fmt.Printf("%-12s %-8s hot slots %v", r.Scheme, verdict, r.HotSlots)
		if r.GuessedSecret >= 0 {
			fmt.Printf("  -> recovered %d", r.GuessedSecret)
		}
		fmt.Println()
	}
	os.Exit(exit)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spectre:", err)
	os.Exit(1)
}
