// Command spectre runs the Spectre v1 proof of concept (the paper's
// Section 7 security verification) under every secure speculation scheme
// and prints the verdicts.
//
// Usage:
//
//	spectre            # Mega configuration
//	spectre -config small
package main

import (
	"flag"
	"fmt"
	"os"

	sb "repro"
	"repro/internal/attack"
)

func main() {
	config := flag.String("config", "mega", "configuration: small, medium, large, mega")
	flag.Parse()

	cfg, err := sb.ConfigByName(*config)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spectre:", err)
		os.Exit(1)
	}
	results, err := sb.SpectreV1All(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spectre:", err)
		os.Exit(1)
	}
	fmt.Printf("Spectre v1 bounds-check bypass on the %s configuration\n", cfg.Name)
	fmt.Printf("planted secret: %d (probe slot %d)\n\n", attack.SecretValue, attack.SecretValue&63)
	exit := 0
	for _, kind := range sb.Schemes() {
		r, err := sb.SpectreSSB(cfg, kind)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spectre:", err)
			os.Exit(1)
		}
		results = append(results, r)
	}
	fmt.Println("(first four rows: Spectre v1; last four: Speculative Store Bypass)")
	for _, r := range results {
		verdict := "BLOCKED"
		if r.Leaked {
			verdict = "LEAKED"
			if r.Scheme != sb.Baseline {
				exit = 1 // a secure scheme leaking is a reproduction failure
			}
		}
		fmt.Printf("%-12s %-8s hot slots %v", r.Scheme, verdict, r.HotSlots)
		if r.GuessedSecret >= 0 {
			fmt.Printf("  -> recovered %d", r.GuessedSecret)
		}
		fmt.Println()
	}
	os.Exit(exit)
}
