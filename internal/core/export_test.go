package core

// Test-only accessors, visible to the external core_test package within
// this test binary. The fault-injection switches sabotage exactly the
// mechanism each scheme's security argument rests on, so the differential
// oracle's mutation tests (mutation_test.go) can prove its Probe
// invariants actually bite.

// SetDoMDelayDisabledForTest disables Delay-on-Miss's speculative-miss
// delay, degrading dom to baseline behaviour. Returns a restore func.
func SetDoMDelayDisabledForTest(v bool) (restore func()) {
	prev := domDelayDisabled
	domDelayDisabled = v
	return func() { domDelayDisabled = prev }
}

// SetInvisiBufferDisabledForTest disables InvisiSpec's speculative buffer,
// degrading invisispec to baseline behaviour. Returns a restore func.
func SetInvisiBufferDisabledForTest(v bool) (restore func()) {
	prev := invisiBufferDisabled
	invisiBufferDisabled = v
	return func() { invisiBufferDisabled = prev }
}
