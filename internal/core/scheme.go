package core

// SchemeKind enumerates the evaluated secure speculation schemes
// (Section 7): the unsafe baseline, STT with rename-time tainting, STT
// with issue-time tainting, and NDA-Permissive. Kinds are registry keys —
// a new scheme picks an unused value and registers it (see registry.go);
// the built-in four self-register from their defining files.
type SchemeKind uint8

// Built-in scheme kinds.
const (
	KindBaseline SchemeKind = iota
	KindSTTRename
	KindSTTIssue
	KindNDA
)

// issuePart selects which half of an instruction is being issued. Stores
// are a single micro-op with independently issuing address and data halves
// (Section 9.2); everything else issues whole.
type issuePart uint8

const (
	partWhole issuePart = iota
	partStoreAddr
	partStoreData
)

// scheme is the hook interface the pipeline calls at the points the paper's
// microarchitectures modify. Uops are identified by their arena slot index
// (always live at hook time); schemes reach their fields through the
// core's arena. The baseline is the empty implementation.
type scheme interface {
	kind() SchemeKind

	// renameOne is called for every uop in rename (program) order. The
	// STT-Rename taint chain lives here.
	renameOne(u int32)
	// allocPhys is called when a physical destination register is
	// allocated (STT-Issue clears the register's taint).
	allocPhys(pd int)

	// saveCheckpoint/restoreCheckpoint bracket branch checkpoints;
	// STT-Rename must checkpoint its taint RAT (Section 4.2).
	saveCheckpoint(id int)
	restoreCheckpoint(id int)
	// fullFlush clears all taint state (memory-ordering flush).
	fullFlush()

	// canSelect is the pre-selection readiness mask. A false return means
	// the uop is not eligible this cycle and consumes no issue slot
	// (STT-Rename knows taints at rename; blocked transmitters are never
	// selected).
	canSelect(u int32, part issuePart) bool
	// onIssue is the at-issue taint unit. A false return converts the
	// already-consumed issue slot into a nop (STT-Issue, Section 4.3) and
	// back-propagates the blocking YRoT into the issue-queue entry.
	onIssue(u int32, part issuePart) bool

	// delaysLoadBroadcast reports whether completed speculative loads must
	// withhold their ready broadcast until non-speculative (NDA).
	delaysLoadBroadcast() bool
	// specWakeup reports whether speculative L1-hit scheduling of load
	// dependents is retained (NDA removes it, Section 5.1).
	specWakeup(base bool) bool

	// delaysSpecMiss reports whether speculative loads that miss in the L1
	// must wait for the visibility point before touching the memory
	// hierarchy (Delay-on-Miss). The hit/miss disambiguation comes from
	// mem.Hierarchy.Peek, consulted by issueLoad before any side effect.
	delaysSpecMiss() bool
	// invisibleSpecLoads reports whether speculative loads bypass the cache
	// side-effect path into a per-load speculative buffer and must re-access
	// ("expose") the hierarchy once they reach the visibility point
	// (InvisiSpec).
	invisibleSpecLoads() bool
}

// baseline is the unmodified, unsafe core.
type baseline struct{}

func init() {
	RegisterScheme(SchemeSpec{
		Kind:  KindBaseline,
		Name:  "baseline",
		Order: 0,
		New:   func(*Core) scheme { return baseline{} },
	})
}

func (baseline) kind() SchemeKind                { return KindBaseline }
func (baseline) renameOne(int32)                 {}
func (baseline) allocPhys(int)                   {}
func (baseline) saveCheckpoint(int)              {}
func (baseline) restoreCheckpoint(int)           {}
func (baseline) fullFlush()                      {}
func (baseline) canSelect(int32, issuePart) bool { return true }
func (baseline) onIssue(int32, issuePart) bool   { return true }
func (baseline) delaysLoadBroadcast() bool       { return false }
func (baseline) specWakeup(base bool) bool       { return base }
func (baseline) delaysSpecMiss() bool            { return false }
func (baseline) invisibleSpecLoads() bool        { return false }
