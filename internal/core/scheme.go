package core

// SchemeKind enumerates the evaluated secure speculation schemes
// (Section 7): the unsafe baseline, STT with rename-time tainting, STT
// with issue-time tainting, and NDA-Permissive.
type SchemeKind uint8

// Scheme kinds.
const (
	KindBaseline SchemeKind = iota
	KindSTTRename
	KindSTTIssue
	KindNDA
)

func (k SchemeKind) String() string {
	switch k {
	case KindBaseline:
		return "baseline"
	case KindSTTRename:
		return "stt-rename"
	case KindSTTIssue:
		return "stt-issue"
	case KindNDA:
		return "nda"
	}
	return "scheme?"
}

// SchemeKinds returns all four kinds in the paper's presentation order.
func SchemeKinds() []SchemeKind {
	return []SchemeKind{KindBaseline, KindSTTRename, KindSTTIssue, KindNDA}
}

// SchemeKindByName parses a scheme name.
func SchemeKindByName(name string) (SchemeKind, bool) {
	for _, k := range SchemeKinds() {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// issuePart selects which half of an instruction is being issued. Stores
// are a single micro-op with independently issuing address and data halves
// (Section 9.2); everything else issues whole.
type issuePart uint8

const (
	partWhole issuePart = iota
	partStoreAddr
	partStoreData
)

// scheme is the hook interface the pipeline calls at the points the paper's
// microarchitectures modify. The baseline is the empty implementation.
type scheme interface {
	kind() SchemeKind

	// renameOne is called for every uop in rename (program) order. The
	// STT-Rename taint chain lives here.
	renameOne(u *uop)
	// allocPhys is called when a physical destination register is
	// allocated (STT-Issue clears the register's taint).
	allocPhys(pd int)

	// saveCheckpoint/restoreCheckpoint bracket branch checkpoints;
	// STT-Rename must checkpoint its taint RAT (Section 4.2).
	saveCheckpoint(id int)
	restoreCheckpoint(id int)
	// fullFlush clears all taint state (memory-ordering flush).
	fullFlush()

	// canSelect is the pre-selection readiness mask. A false return means
	// the uop is not eligible this cycle and consumes no issue slot
	// (STT-Rename knows taints at rename; blocked transmitters are never
	// selected).
	canSelect(u *uop, part issuePart) bool
	// onIssue is the at-issue taint unit. A false return converts the
	// already-consumed issue slot into a nop (STT-Issue, Section 4.3) and
	// back-propagates the blocking YRoT into the issue-queue entry.
	onIssue(u *uop, part issuePart) bool

	// delaysLoadBroadcast reports whether completed speculative loads must
	// withhold their ready broadcast until non-speculative (NDA).
	delaysLoadBroadcast() bool
	// specWakeup reports whether speculative L1-hit scheduling of load
	// dependents is retained (NDA removes it, Section 5.1).
	specWakeup(base bool) bool
}

// baseline is the unmodified, unsafe core.
type baseline struct{}

func (baseline) kind() SchemeKind               { return KindBaseline }
func (baseline) renameOne(*uop)                 {}
func (baseline) allocPhys(int)                  {}
func (baseline) saveCheckpoint(int)             {}
func (baseline) restoreCheckpoint(int)          {}
func (baseline) fullFlush()                     {}
func (baseline) canSelect(*uop, issuePart) bool { return true }
func (baseline) onIssue(*uop, issuePart) bool   { return true }
func (baseline) delaysLoadBroadcast() bool      { return false }
func (baseline) specWakeup(base bool) bool      { return base }

func newScheme(k SchemeKind, c *Core) scheme {
	switch k {
	case KindBaseline:
		return baseline{}
	case KindSTTRename:
		return newSTTRename(c)
	case KindSTTIssue:
		return newSTTIssue(c)
	case KindNDA:
		return nda{}
	}
	panic("core: unknown scheme kind")
}

// nda implements NDA-Permissive (Section 5): the only pipeline changes are
// the delayed, split load broadcast and the removal of speculative L1-hit
// wakeup; the broadcast mechanics live in the core's writeback and
// visibility-point stages.
type nda struct{}

func (nda) kind() SchemeKind               { return KindNDA }
func (nda) renameOne(*uop)                 {}
func (nda) allocPhys(int)                  {}
func (nda) saveCheckpoint(int)             {}
func (nda) restoreCheckpoint(int)          {}
func (nda) fullFlush()                     {}
func (nda) canSelect(*uop, issuePart) bool { return true }
func (nda) onIssue(*uop, issuePart) bool   { return true }
func (nda) delaysLoadBroadcast() bool      { return true }
func (nda) specWakeup(bool) bool           { return false }
