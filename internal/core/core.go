// Package core implements the ShadowBinding out-of-order processor model:
// a cycle-level, execute-driven superscalar pipeline in the style of the
// Berkeley Out-of-Order Machine, together with the paper's three secure
// speculation microarchitectures (STT-Rename, STT-Issue, NDA-Permissive).
//
// The pipeline executes speculatively down predicted paths — including
// wrong paths, which is what makes the Spectre v1 reproduction in
// internal/attack meaningful — and recovers through per-branch checkpoints
// and a commit-time flush for memory-ordering violations, as BOOM does.
//
// Speculation shadows follow the paper's scope (Section 2.1): C-shadows
// from unresolved conditional branches and indirect jumps, and D-shadows
// from stores with unresolved addresses. Each cycle the visibility point
// advances over shadow-free instructions; loads crossing it become
// non-speculative and are broadcast — at most one per memory port per
// cycle (Section 5.1) — which advances the YRoT-safety frontier used by
// the STT schemes and releases NDA's withheld load broadcasts.
package core

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/mem"
)

// watchdogCycles is the no-commit limit after which Run reports a deadlock.
const watchdogCycles = 200_000

// Core is one simulated processor core running one program.
type Core struct {
	cfg  Config
	prog *isa.Program
	sch  scheme
	hier *mem.Hierarchy
	main *mem.Main
	fe   *frontend

	cycle  uint64
	seqCtr uint64

	rob   *rob
	prf   *physRegFile
	rat   *rat
	arat  [isa.NumRegs]int // committed RAT (memory-ordering flush recovery)
	ckpts *checkpointFile
	iq    []*uop
	exec  []*uop // issued, in flight
	lsu   *lsu
	mdp   *memDepPredictor

	divBusyUntil uint64

	// Visibility point and the bounded non-speculative-load broadcast.
	nonSpecLoadQ []*uop
	curSafeSeq   int64 // YRoT-safety frontier as of this cycle's broadcast
	prevSafeSeq  int64 // frontier visible to rename-stage state (1 cycle stale)

	halted          bool
	lastCommitCycle uint64

	// CommitHook, when set, receives every committed instruction in order;
	// tests use it to compare against the architectural reference model.
	CommitHook func(isa.Commit)

	Stats Stats
}

// New builds a core for the given configuration, secure scheme, and
// program. The program's initial data image is loaded into main memory.
func New(cfg Config, kind SchemeKind, prog *isa.Program) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	c := &Core{
		cfg:         cfg,
		prog:        prog,
		main:        mem.NewMain(),
		hier:        mem.NewHierarchy(cfg.Hier),
		rob:         newROB(cfg.ROBSize),
		prf:         newPhysRegFile(cfg.PhysRegs),
		rat:         newRAT(),
		ckpts:       newCheckpointFile(cfg.MaxBranches),
		lsu:         newLSU(),
		mdp:         newMemDepPredictor(),
		curSafeSeq:  noYRoT,
		prevSafeSeq: noYRoT,
	}
	for i := range c.arat {
		c.arat[i] = i
	}
	c.fe = newFrontend(&c.cfg, prog)
	sch, err := newScheme(kind, c)
	if err != nil {
		return nil, err
	}
	c.sch = sch
	c.main.LoadImage(prog.InitialMemory())
	return c, nil
}

// MustNew is New that panics on error, for known-good static setups.
func MustNew(cfg Config, kind SchemeKind, prog *isa.Program) *Core {
	c, err := New(cfg, kind, prog)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// Scheme returns the active secure speculation scheme.
func (c *Core) Scheme() SchemeKind { return c.sch.kind() }

// Hierarchy exposes the memory system (cache side-channel probes).
func (c *Core) Hierarchy() *mem.Hierarchy { return c.hier }

// Memory exposes architectural (committed) data memory.
func (c *Core) Memory() *mem.Main { return c.main }

// Cycle returns the current cycle number.
func (c *Core) Cycle() uint64 { return c.cycle }

// Halted reports whether the program's Halt has reached commit.
func (c *Core) Halted() bool { return c.halted }

// Step advances the machine by one cycle. Stages run back-to-front so an
// instruction moves through at most one stage per cycle.
func (c *Core) Step() {
	c.cycle++
	c.Stats.Cycles = c.cycle
	c.commitStage()
	if c.halted {
		return
	}
	c.vpStage()
	c.writebackStage()
	c.issueStage()
	c.renameStage()
	c.fe.step(c.cycle)
	c.Stats.Fetched = c.fe.fetched
	c.Stats.BTBMissForcedNT = c.fe.btbMissesNT
	c.prevSafeSeq = c.curSafeSeq
}

// RunLimits bounds a Run invocation.
type RunLimits struct {
	MaxCycles uint64
	MaxInsts  uint64
}

// Result summarizes a Run.
type Result struct {
	Cycles uint64
	Insts  uint64
	IPC    float64
	Halted bool
	Stats  Stats
}

// Run executes until the program halts or a limit is reached. It returns
// an error if the machine stops committing instructions (a model deadlock,
// which is always a bug).
func (c *Core) Run(lim RunLimits) (Result, error) {
	if lim.MaxCycles == 0 {
		lim.MaxCycles = ^uint64(0)
	}
	if lim.MaxInsts == 0 {
		lim.MaxInsts = ^uint64(0)
	}
	for !c.halted && c.cycle < lim.MaxCycles && c.Stats.Committed < lim.MaxInsts {
		c.Step()
		if c.cycle-c.lastCommitCycle > watchdogCycles {
			return c.result(), fmt.Errorf("core: %s/%s: no commit for %d cycles at cycle %d (pc %d, rob %d)",
				c.cfg.Name, c.sch.kind(), watchdogCycles, c.cycle, c.fe.pc, c.rob.len())
		}
	}
	return c.result(), nil
}

func (c *Core) result() Result {
	return Result{
		Cycles: c.cycle,
		Insts:  c.Stats.Committed,
		IPC:    c.Stats.IPC(),
		Halted: c.halted,
		Stats:  c.Stats,
	}
}

// ---------------------------------------------------------------------------
// Commit

func (c *Core) commitStage() {
	for n := 0; n < c.cfg.Width; n++ {
		u := c.rob.peek()
		if u == nil {
			return
		}
		if u.inst.Op == isa.Halt {
			c.halted = true
			return
		}
		if !u.completed() {
			return
		}
		if u.orderViolation && u.isLoad() {
			// BOOM's memory-ordering recovery: flush at commit of the load
			// that read stale data and refetch from it. The dependence
			// predictor learns the PC so the refetched load waits for older
			// store addresses instead of re-violating.
			c.Stats.MemOrderFlushes++
			c.mdp.record(u.pc)
			c.flushPipeline(u.pc)
			return
		}
		c.rob.pop()
		c.lastCommitCycle = c.cycle
		c.Stats.Committed++
		switch u.class() {
		case isa.ClassLoad:
			c.Stats.CommittedLoads++
			// Commit is the definitive visibility point: a load can reach
			// commit without the VP scan having seen it (commit runs ahead
			// of the scan within a cycle), so advance the YRoT-safety
			// frontier here or taints rooted at this load would never
			// clear.
			if !u.broadcasted {
				u.broadcasted = true
				if int64(u.seq) > c.curSafeSeq {
					c.curSafeSeq = int64(u.seq)
				}
				c.Stats.YRoTBroadcasts++
			}
			if u.broadcastPending {
				// The bounded broadcast network has not reached this load
				// yet, but commit proves it non-speculative; release the
				// ready broadcast before its register can be reallocated.
				u.broadcastPending = false
				if u.pd != noReg {
					c.prf.readyAt[u.pd] = c.cycle
				}
			}
		case isa.ClassStore:
			c.Stats.CommittedStores++
			c.main.Write(u.addr, u.result)
			c.hier.Store(u.addr, c.cycle)
		case isa.ClassBranch:
			c.Stats.CommittedBranches++
			c.fe.dir.Update(u.pc, u.predHist, u.taken)
			if u.taken {
				c.fe.btb.Update(u.pc, u.target, false, false)
			}
		case isa.ClassJump:
			c.Stats.CommittedJumps++
			if u.inst.Op == isa.Jalr {
				isCall := u.inst.Rd == isa.RegLink
				isRet := u.inst.Rd == isa.X0 && u.inst.Rs1 == isa.RegLink
				c.fe.btb.Update(u.pc, u.target, isCall, isRet)
			}
		}
		if u.pd != noReg {
			c.arat[u.inst.Rd] = u.pd
			if u.stalePd != noReg {
				c.prf.release(u.stalePd)
			}
		}
		c.releaseCheckpointOf(u)
		c.lsu.commitOldest(u)
		if c.CommitHook != nil {
			c.CommitHook(commitRecord(u))
		}
	}
}

func (c *Core) releaseCheckpointOf(u *uop) {
	if u.ckpt < 0 {
		return
	}
	ck := c.ckpts.get(u.ckpt)
	if ck.inUse && ck.seq == u.seq {
		c.ckpts.release(u.ckpt)
	}
	u.ckpt = -1
}

func commitRecord(u *uop) isa.Commit {
	rec := isa.Commit{
		PC:     u.pc,
		Inst:   u.inst,
		Value:  u.result,
		Taken:  u.taken,
		Target: u.target,
	}
	if u.isLoad() || u.isStore() {
		rec.Addr = u.addr &^ 7
	}
	if u.pd != noReg {
		rec.Rd = u.inst.Rd
	}
	return rec
}

// ---------------------------------------------------------------------------
// Visibility point and bounded broadcast

func (c *Core) vpStage() {
	c.rob.forEach(func(u *uop) bool {
		if u.nonSpec {
			return true
		}
		if u.castsCShadow() && u.state != stateDone {
			return false
		}
		if u.castsDShadow() && !u.addrReady {
			return false
		}
		if u.isLoad() && u.orderViolation {
			// A load that read stale data is bound to be squashed at
			// commit, not committed: it must never reach the visibility
			// point, or its (wrong, possibly secret) value would be
			// declared safe and broadcast.
			return false
		}
		u.nonSpec = true
		if u.isLoad() {
			c.nonSpecLoadQ = append(c.nonSpecLoadQ, u)
		}
		return true
	})
	// Broadcast non-speculative loads: at most one per memory port per
	// cycle (the broadcast network shared by STT's YRoT wakeups and NDA's
	// delayed ready broadcasts, Sections 4.4 and 5.1).
	for n := 0; n < c.cfg.MemPorts && len(c.nonSpecLoadQ) > 0; n++ {
		ld := c.nonSpecLoadQ[0]
		c.nonSpecLoadQ = c.nonSpecLoadQ[1:]
		if ld.broadcasted {
			continue // already broadcast at commit
		}
		ld.broadcasted = true
		if int64(ld.seq) > c.curSafeSeq {
			c.curSafeSeq = int64(ld.seq)
		}
		c.Stats.YRoTBroadcasts++
		if ld.broadcastPending {
			// NDA: release the withheld ready broadcast; dependents can
			// issue next cycle.
			ld.broadcastPending = false
			c.prf.readyAt[ld.pd] = c.cycle + 1
		}
	}
}

// ---------------------------------------------------------------------------
// Writeback

func (c *Core) writebackStage() {
	if len(c.exec) == 0 {
		return
	}
	inflight := c.exec
	sort.Slice(inflight, func(i, j int) bool { return inflight[i].seq < inflight[j].seq })
	var remaining []*uop
	for _, u := range inflight {
		if u.state == stateSquashed {
			continue
		}
		if u.isStore() {
			if c.storeWriteback(u) {
				remaining = append(remaining, u)
			}
			continue
		}
		if u.doneAt > c.cycle {
			remaining = append(remaining, u)
			continue
		}
		c.completeUop(u)
	}
	c.exec = remaining
}

// storeWriteback advances a store's halves; it reports whether the store
// is still in flight.
func (c *Core) storeWriteback(u *uop) bool {
	if u.addrIssued && !u.addrReady && u.addrDoneAt <= c.cycle {
		u.addrReady = true
		if v := c.lsu.checkViolations(u); v > 0 {
			c.Stats.MemOrderViolations += uint64(v)
		}
	}
	if u.dataIssued && !u.dataReady && u.dataDoneAt <= c.cycle {
		u.dataReady = true
	}
	if u.addrReady && u.dataReady {
		u.state = stateDone
		return false
	}
	return true
}

func (c *Core) completeUop(u *uop) {
	u.state = stateDone
	if u.pd != noReg {
		c.prf.value[u.pd] = u.result
	}
	switch u.class() {
	case isa.ClassLoad:
		c.loadBroadcast(u)
	case isa.ClassBranch:
		c.resolveControl(u, true)
	case isa.ClassJump:
		if u.inst.Op == isa.Jalr {
			c.resolveControl(u, false)
		}
	}
}

// loadBroadcast applies the scheme's broadcast policy when load data
// arrives.
func (c *Core) loadBroadcast(u *uop) {
	if u.pd == noReg {
		return
	}
	if c.sch.delaysLoadBroadcast() && !u.nonSpec {
		// NDA: data is written to the register file but the ready
		// broadcast is withheld until the load is non-speculative
		// (Figure 5b's split data-write/broadcast buses).
		u.broadcastPending = true
		c.Stats.DelayedBroadcasts++
		return
	}
	if !c.sch.specWakeup(c.cfg.SpecWakeup) {
		// Without speculative wakeup the broadcast follows writeback.
		c.prf.readyAt[u.pd] = c.cycle + 1
	}
	// With speculative wakeup readyAt was announced at issue.
}

// resolveControl handles branch/jalr resolution, squashing on mispredict.
func (c *Core) resolveControl(u *uop, conditional bool) {
	c.Stats.BranchesResolved++
	if u.target == u.predTarget {
		c.releaseCheckpointOf(u)
		return
	}
	c.Stats.Mispredicts++
	c.squashAfterBranch(u, conditional)
}

// ---------------------------------------------------------------------------
// Squash and flush

func (c *Core) reclaim(u *uop) {
	c.Stats.SquashedUops++
	u.state = stateSquashed
	if u.pd != noReg {
		c.prf.release(u.pd)
		u.pd = noReg
	}
}

// squashAfterBranch restores state to the mispredicted control instruction
// u and redirects fetch to its actual target. Younger checkpoints are
// released; u's own checkpoint provides the RAT, taint (scheme), RAS, and
// history recovery state.
func (c *Core) squashAfterBranch(u *uop, conditional bool) {
	ck := c.ckpts.get(u.ckpt)
	c.rob.squashYoungerThan(u.seq, c.reclaim)
	c.filterIQ()
	c.lsu.squashYoungerThan(u.seq)
	c.rat.restore(ck.ratCopy)
	c.sch.restoreCheckpoint(u.ckpt)
	c.fe.ras.Restore(ck.rasTop)
	if conditional {
		c.fe.ghr = ck.ghr<<1 | b2u(u.taken)
	} else {
		c.fe.ghr = ck.ghr
	}
	// Checkpoints held by squashed younger branches.
	for id := range c.ckpts.cks {
		if c.ckpts.cks[id].inUse && c.ckpts.cks[id].seq > u.seq {
			c.ckpts.release(id)
		}
	}
	c.releaseCheckpointOf(u)
	c.fe.redirect(u.target)
}

// flushPipeline squashes everything in flight and refetches from pc
// (memory-ordering violation recovery).
func (c *Core) flushPipeline(pc uint64) {
	c.rob.squashYoungerThan(0, c.reclaim)
	c.rat.restore(c.arat)
	c.ckpts.releaseAll()
	c.sch.fullFlush()
	c.lsu.clear()
	c.iq = c.iq[:0]
	c.exec = c.exec[:0]
	c.nonSpecLoadQ = c.nonSpecLoadQ[:0]
	c.fe.redirect(pc)
}

func (c *Core) filterIQ() {
	live := c.iq[:0]
	for _, u := range c.iq {
		if u.state != stateSquashed {
			live = append(live, u)
		}
	}
	c.iq = live
}

// ---------------------------------------------------------------------------
// Issue

func (c *Core) issueStage() {
	slots := c.cfg.IssueWidth
	memPorts := c.cfg.MemPorts
	aluUnits := c.cfg.Width
	mulUnits := 1
	divFree := c.divBusyUntil <= c.cycle

	keep := make([]*uop, 0, len(c.iq))
	for _, u := range c.iq {
		if u.state == stateSquashed {
			continue
		}
		if slots <= 0 {
			keep = append(keep, u)
			continue
		}
		switch {
		case u.isStore():
			c.issueStoreParts(u, &slots, &memPorts)
			if !(u.addrIssued && u.dataIssued) {
				keep = append(keep, u)
			}
		case u.isLoad():
			if !c.issueLoad(u, &slots, &memPorts) {
				keep = append(keep, u)
			}
		default:
			if !c.issueSimple(u, &slots, &aluUnits, &mulUnits, &divFree) {
				keep = append(keep, u)
			}
		}
	}
	c.iq = keep
}

// issueStoreParts attempts the address and data halves of a store.
func (c *Core) issueStoreParts(u *uop, slots, memPorts *int) {
	if !u.addrIssued && *slots > 0 && *memPorts > 0 && u.retryAt <= c.cycle &&
		c.prf.readyBy(u.ps1, c.cycle) && c.sch.canSelect(u, partStoreAddr) {
		*slots--
		if c.sch.onIssue(u, partStoreAddr) {
			*memPorts--
			u.addrIssued = true
			u.addr = c.prf.read(u.ps1) + uint64(u.inst.Imm)
			u.addrDoneAt = c.cycle + c.cfg.ExecDelay + c.cfg.AGULat
			c.Stats.IssuedUops++
			c.markExecuting(u)
		}
	}
	if !u.dataIssued && *slots > 0 && c.prf.readyBy(u.ps2, c.cycle) && c.sch.canSelect(u, partStoreData) {
		*slots--
		if c.sch.onIssue(u, partStoreData) {
			u.dataIssued = true
			u.result = c.prf.read(u.ps2)
			u.dataDoneAt = c.cycle + c.cfg.ExecDelay + 1
			c.Stats.IssuedUops++
			c.markExecuting(u)
		}
	}
}

func (c *Core) markExecuting(u *uop) {
	if u.state == stateWaiting {
		u.state = stateExecuting
		c.exec = append(c.exec, u)
	}
}

// issueLoad attempts a load; it reports whether the uop left the queue.
func (c *Core) issueLoad(u *uop, slots, memPorts *int) bool {
	if *memPorts <= 0 || u.retryAt > c.cycle ||
		!c.prf.readyBy(u.ps1, c.cycle) || !c.sch.canSelect(u, partWhole) {
		return false
	}
	*slots--
	if !c.sch.onIssue(u, partWhole) {
		return false // nop-ed by the taint unit; stays queued
	}
	*memPorts--
	u.addr = c.prf.read(u.ps1) + uint64(u.inst.Imm)
	res, val, fromSeq, sawUnknown := c.lsu.search(u)
	if res == fwdNone && sawUnknown && c.mdp.mustWait(u.pc, c.cycle) {
		// Dependence predictor: this load recently read stale data past an
		// unresolved store address; wait instead of speculating no-alias.
		c.Stats.MemDepStalls++
		u.retryAt = c.cycle + 2
		return false
	}
	switch res {
	case fwdWait:
		// An older store to the same word has not read its data yet; the
		// load replays once it has.
		c.Stats.FwdWaits++
		u.retryAt = c.cycle + 2
		return false
	case fwdHit:
		c.Stats.FwdHits++
		u.result = val
		u.fwdFromSeq = fromSeq
		u.doneAt = c.cycle + c.cfg.ExecDelay + c.cfg.AGULat + c.cfg.FwdLat
		u.hitL1 = true
	case fwdNone:
		done, hit, ok := c.hier.Load(u.pc, u.addr, c.cycle+c.cfg.ExecDelay+c.cfg.AGULat)
		if !ok {
			c.Stats.MSHRRetries++
			u.retryAt = c.cycle + 2
			return false
		}
		u.result = c.main.Read(u.addr)
		u.doneAt = done
		u.hitL1 = hit
	}
	c.Stats.IssuedUops++
	if !u.nonSpec {
		c.Stats.SpecLoadsExecuted++
	}
	if u.pd != noReg && c.sch.specWakeup(c.cfg.SpecWakeup) {
		c.prf.readyAt[u.pd] = u.doneAt
	}
	c.markExecuting(u)
	return true
}

// issueSimple handles ALU, MUL, DIV, branch, and jump micro-ops; it
// reports whether the uop left the queue.
func (c *Core) issueSimple(u *uop, slots, aluUnits, mulUnits *int, divFree *bool) bool {
	switch u.class() {
	case isa.ClassMul:
		if *mulUnits <= 0 {
			return false
		}
	case isa.ClassDiv:
		if !*divFree {
			return false
		}
	default:
		if *aluUnits <= 0 {
			return false
		}
	}
	if !c.prf.readyBy(u.ps1, c.cycle) || !c.prf.readyBy(u.ps2, c.cycle) ||
		!c.sch.canSelect(u, partWhole) {
		return false
	}
	*slots--
	if !c.sch.onIssue(u, partWhole) {
		return false
	}
	a, b := c.prf.read(u.ps1), c.prf.read(u.ps2)
	var lat uint64
	switch u.class() {
	case isa.ClassMul:
		*mulUnits--
		lat = c.cfg.MulLat
		u.result = isa.EvalALU(u.inst.Op, a, b, u.inst.Imm)
	case isa.ClassDiv:
		*divFree = false
		lat = c.cfg.DivLat
		c.divBusyUntil = c.cycle + c.cfg.DivLat
		u.result = isa.EvalALU(u.inst.Op, a, b, u.inst.Imm)
	case isa.ClassBranch:
		*aluUnits--
		lat = c.cfg.ALULat
		u.taken = isa.BranchTaken(u.inst.Op, a, b)
		if u.taken {
			u.target = uint64(int64(u.pc) + u.inst.Imm)
		} else {
			u.target = u.pc + 1
		}
	case isa.ClassJump:
		*aluUnits--
		lat = c.cfg.ALULat
		u.taken = true
		if u.pd != noReg {
			u.result = u.pc + 1 // link value
		}
		if u.inst.Op == isa.Jal {
			u.target = uint64(int64(u.pc) + u.inst.Imm)
		} else {
			u.target = a + uint64(u.inst.Imm)
		}
	default: // ALU
		*aluUnits--
		lat = c.cfg.ALULat
		u.result = isa.EvalALU(u.inst.Op, a, b, u.inst.Imm)
	}
	u.doneAt = c.cycle + lat
	if u.inst.IsControl() {
		// Control resolution becomes visible only after the issue-to-
		// execute depth; values still bypass at ALU latency.
		u.doneAt += c.cfg.ExecDelay
	}
	if u.pd != noReg {
		// The value is computed here and bypassed: consumers may read it
		// as soon as readyAt, which can precede the (possibly delayed)
		// writeback event.
		c.prf.value[u.pd] = u.result
		c.prf.readyAt[u.pd] = c.cycle + lat
	}
	c.Stats.IssuedUops++
	c.markExecuting(u)
	return true
}

// ---------------------------------------------------------------------------
// Rename

func (c *Core) renameStage() {
	for n := 0; n < c.cfg.Width; n++ {
		e, ok := c.fe.peek(c.cycle)
		if !ok {
			c.Stats.RenameStallEmpty++
			return
		}
		in := e.inst
		cls := isa.ClassOf(in.Op)
		needsIQ := cls != isa.ClassNop && cls != isa.ClassHalt &&
			!(in.Op == isa.Jal && in.Rd == isa.X0)
		needsCkpt := cls == isa.ClassBranch || in.Op == isa.Jalr
		switch {
		case c.rob.full():
			c.Stats.RenameStallROB++
			return
		case needsIQ && len(c.iq) >= c.cfg.IQSize:
			c.Stats.RenameStallIQ++
			return
		case cls == isa.ClassLoad && c.lsu.lqLen() >= c.cfg.LQSize:
			c.Stats.RenameStallLQ++
			return
		case cls == isa.ClassStore && c.lsu.sqLen() >= c.cfg.SQSize:
			c.Stats.RenameStallSQ++
			return
		case in.HasDest() && !c.prf.hasFree():
			c.Stats.RenameStallPhys++
			return
		case needsCkpt && !c.ckpts.hasFree():
			c.Stats.RenameStallCkpt++
			return
		}
		c.fe.consume()
		c.seqCtr++
		u := &uop{
			seq:         c.seqCtr,
			pc:          e.pc,
			inst:        in,
			pd:          noReg,
			stalePd:     noReg,
			ps1:         noReg,
			ps2:         noReg,
			ckpt:        -1,
			lqIdx:       -1,
			sqIdx:       -1,
			fwdFromSeq:  -1,
			yrot:        noYRoT,
			yrotAddr:    noYRoT,
			yrotData:    noYRoT,
			blockedYRoT: noYRoT,
			predTaken:   e.predTaken,
			predTarget:  e.predTarget,
			predHist:    e.predHist,
			rasTop:      e.rasTop,
			target:      e.pc + 1,
		}
		if in.ReadsRs1() {
			u.ps1 = c.rat.lookup(in.Rs1)
		}
		if in.ReadsRs2() {
			u.ps2 = c.rat.lookup(in.Rs2)
		}
		if in.HasDest() {
			u.pd = c.prf.alloc()
			c.sch.allocPhys(u.pd)
			u.stalePd = c.rat.write(in.Rd, u.pd)
		}
		c.sch.renameOne(u)
		if needsCkpt {
			id := c.ckpts.alloc()
			ck := c.ckpts.get(id)
			ck.seq = u.seq
			ck.ratCopy = c.rat.snapshot()
			ck.ghr = e.predHist
			ck.rasTop = e.rasTop
			u.ckpt = id
			c.sch.saveCheckpoint(id)
		}
		switch {
		case cls == isa.ClassNop || cls == isa.ClassHalt:
			u.state = stateDone
		case in.Op == isa.Jal && in.Rd == isa.X0:
			// A pure direct jump does no work and never mispredicts.
			u.state = stateDone
			u.taken = true
			u.target = e.predTarget
		default:
			c.iq = append(c.iq, u)
		}
		if u.isLoad() {
			c.lsu.addLoad(u)
		}
		if u.isStore() {
			c.lsu.addStore(u)
		}
		c.rob.push(u)
	}
}
