// Package core implements the ShadowBinding out-of-order processor model:
// a cycle-level, execute-driven superscalar pipeline in the style of the
// Berkeley Out-of-Order Machine, together with the paper's three secure
// speculation microarchitectures (STT-Rename, STT-Issue, NDA-Permissive)
// and the two classic comparison points from the wider literature —
// Delay-on-Miss (dom.go) and InvisiSpec-style invisible loads
// (invisispec.go) — as registry drop-ins.
//
// The pipeline executes speculatively down predicted paths — including
// wrong paths, which is what makes the Spectre v1 reproduction in
// internal/attack meaningful — and recovers through per-branch checkpoints
// and a commit-time flush for memory-ordering violations, as BOOM does.
//
// Speculation shadows follow the paper's scope (Section 2.1): C-shadows
// from unresolved conditional branches and indirect jumps, and D-shadows
// from stores with unresolved addresses. Each cycle the visibility point
// advances over shadow-free instructions; loads crossing it become
// non-speculative and are broadcast — at most one per memory port per
// cycle (Section 5.1) — which advances the YRoT-safety frontier used by
// the STT schemes and releases NDA's withheld load broadcasts.
package core

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// watchdogCycles is the no-commit limit after which Run reports a deadlock.
const watchdogCycles = 200_000

// Core is one simulated processor core running one program.
type Core struct {
	cfg  Config
	prog *isa.Program
	sch  scheme
	hier *mem.Hierarchy
	main *mem.Main
	fe   *frontend

	cycle  uint64
	seqCtr uint64

	// a is the arena every in-flight uop lives in (see arena.go): hot
	// fields in struct-of-arrays slices for the per-cycle scans, cold
	// fields in an AoS body, slots recycled through generation-counted
	// handles the moment a uop commits or is squashed.
	a *uopArena

	rob    *rob
	prf    *physRegFile
	rat    *rat
	arat   [isa.NumRegs]int // committed RAT (memory-ordering flush recovery)
	ckpts  *checkpointFile
	iq     []int32    // arena slots of waiting uops, program order
	events eventQueue // scheduled completions of issued uops
	lsu    *lsu
	mdp    *memDepPredictor

	// vpDone counts the leading ROB entries the visibility-point walk has
	// already passed (its resume offset).
	vpDone int

	divBusyUntil uint64

	// Visibility point and the bounded non-speculative-load broadcast.
	// The queue holds generation-counted handles: a queued load that
	// commits (broadcast released there) or is squashed simply goes stale
	// and is skipped by the drain without burning a broadcast port.
	nonSpecLoadQ []uopRef
	curSafeSeq   int64 // YRoT-safety frontier as of this cycle's broadcast
	prevSafeSeq  int64 // frontier visible to rename-stage state (1 cycle stale)

	halted          bool
	lastCommitCycle uint64

	// Idle-cycle skipping state (see Run). progressed records whether any
	// stage changed machine state this cycle; a cycle that ends with it
	// clear is idle, and Run may warp the clock to the next wake target
	// instead of ticking through the gap. idleStall points at the rename
	// stall counter the cycle charged, so a skip can charge the skipped
	// cycles to the same (frozen) stall reason the ticking machine would
	// have.
	progressed bool
	idleStall  *uint64
	stepped    uint64 // cycles actually simulated (cycle − stepped = warped)

	// CommitHook, when set, receives every committed instruction in order;
	// tests use it to compare against the architectural reference model.
	CommitHook func(isa.Commit)

	// Probe, when set, receives security-relevant pipeline events (issue
	// decisions and load ready broadcasts; see probe.go). Strictly
	// observational: attaching a Probe must not perturb timing. The
	// differential fuzzing oracle uses it to assert the schemes' security
	// invariants.
	Probe Probe
	// taintQ caches the scheme's optional read-only taint view for the
	// probe dispatch (nil for schemes that track no taint).
	taintQ taintQuerier

	// Recorder, when set, receives every micro-op's stage transitions
	// (fetch/rename/issue/writeback/visibility-point/commit/squash) with
	// scheme delay annotations — the per-cycle trace export behind
	// -trace-out (see recorder.go). Like Probe, strictly observational:
	// attaching a Recorder must not perturb timing, and the nil case
	// costs one pointer compare per site.
	Recorder Recorder

	Stats Stats
}

// New builds a core for the given configuration, secure scheme, and
// program. The program's initial data image is loaded into main memory.
func New(cfg Config, kind SchemeKind, prog *isa.Program) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	a := newUopArena()
	c := &Core{
		cfg:         cfg,
		prog:        prog,
		main:        mem.NewMain(),
		hier:        mem.NewHierarchy(cfg.Hier),
		a:           a,
		rob:         newROB(cfg.ROBSize, a),
		prf:         newPhysRegFile(cfg.PhysRegs, a),
		rat:         newRAT(),
		ckpts:       newCheckpointFile(cfg.MaxBranches),
		lsu:         newLSU(a),
		mdp:         newMemDepPredictor(),
		curSafeSeq:  noYRoT,
		prevSafeSeq: noYRoT,
	}
	for i := range c.arat {
		c.arat[i] = i
	}
	c.fe = newFrontend(&c.cfg, prog)
	sch, err := newScheme(kind, c)
	if err != nil {
		return nil, err
	}
	c.sch = sch
	c.taintQ, _ = sch.(taintQuerier)
	// Install the data image segment-wise: flattening to a map first
	// (InitialMemory) cost more than the simulation the cell runs.
	for _, seg := range prog.Data {
		c.main.WriteRange(seg.Addr, seg.Words)
	}
	return c, nil
}

// MustNew is New that panics on error, for known-good static setups.
func MustNew(cfg Config, kind SchemeKind, prog *isa.Program) *Core {
	c, err := New(cfg, kind, prog)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// Scheme returns the active secure speculation scheme.
func (c *Core) Scheme() SchemeKind { return c.sch.kind() }

// Hierarchy exposes the memory system (cache side-channel probes).
func (c *Core) Hierarchy() *mem.Hierarchy { return c.hier }

// Memory exposes architectural (committed) data memory.
func (c *Core) Memory() *mem.Main { return c.main }

// Cycle returns the current cycle number.
func (c *Core) Cycle() uint64 { return c.cycle }

// Halted reports whether the program's Halt has reached commit.
func (c *Core) Halted() bool { return c.halted }

// ArchReg returns the committed architectural value of register r: the
// value the program observes for r at the current commit point. Wrong-path
// and in-flight (uncommitted) writes are invisible, so after a halted run
// this matches the in-order reference simulator.
func (c *Core) ArchReg(r isa.Reg) uint64 {
	if r == isa.X0 {
		return 0
	}
	return c.prf.value[c.arat[r]]
}

// Step advances the machine by one cycle. Stages run back-to-front so an
// instruction moves through at most one stage per cycle.
func (c *Core) Step() {
	c.cycle++
	c.stepped++
	c.Stats.Cycles = c.cycle
	c.progressed = false
	c.commitStage()
	if c.halted {
		return
	}
	c.vpStage()
	c.writebackStage()
	c.issueStage()
	c.renameStage()
	c.fe.step(c.cycle)
	if c.fe.fetched != c.Stats.Fetched {
		// The front end fetches whenever it is neither stalled nor full, so
		// a fetch-count change is exactly "fetch made progress".
		c.progressed = true
	}
	c.Stats.Fetched = c.fe.fetched
	c.Stats.BTBMissForcedNT = c.fe.btbMissesNT
	c.prevSafeSeq = c.curSafeSeq
}

// RunLimits bounds a Run invocation.
type RunLimits struct {
	MaxCycles uint64
	MaxInsts  uint64
}

// Result summarizes a Run.
type Result struct {
	Cycles uint64
	Insts  uint64
	IPC    float64
	Halted bool
	Stats  Stats
}

// Run executes until the program halts or a limit is reached. It returns
// an error if the machine stops committing instructions (a model deadlock,
// which is always a bug).
//
// Run is event-driven across idle stretches: after a cycle in which no
// stage changed machine state, it warps the clock directly to the cycle
// before the next scheduled wake-up (nextWake) instead of ticking through
// the gap one empty cycle at a time. The warp is cycle-exact, not merely
// cycle-approximate — every stage is gated on comparisons of the clock
// against exactly the times nextWake scans, so nothing can happen strictly
// inside the gap, and skipping may never change which cycle anything
// happens on, only how fast we get there. The commit-stream goldens and
// the cycle-pinned DoM/InvisiSpec tests hold byte-identical with skipping
// active, which is the proof. Callers that drive Step directly get the
// plain ticking machine.
func (c *Core) Run(lim RunLimits) (Result, error) {
	if lim.MaxCycles == 0 {
		lim.MaxCycles = ^uint64(0)
	}
	if lim.MaxInsts == 0 {
		lim.MaxInsts = ^uint64(0)
	}
	for !c.halted && c.cycle < lim.MaxCycles && c.Stats.Committed < lim.MaxInsts {
		blockedBefore := c.Stats.TaintBlockedSelects
		c.Step()
		if c.cycle-c.lastCommitCycle > watchdogCycles {
			return c.result(), fmt.Errorf("core: %s/%s: no commit for %d cycles at cycle %d (pc %d, rob %d)",
				c.cfg.Name, c.sch.kind(), watchdogCycles, c.cycle, c.fe.pc, c.rob.len())
		}
		if c.progressed || c.halted {
			continue
		}
		wake := c.nextWake()
		if wake == noWake {
			// Nothing is scheduled at all: the machine is deadlock-bound,
			// and ticking into the watchdog reports it at its exact cycle.
			continue
		}
		// Warp to the last cycle of the idle gap. Clamps keep the observable
		// trajectory identical to ticking: Result.Cycles may not overshoot
		// the caller's limit (the harness's warmup/measure boundaries land
		// exactly), and the watchdog must trip at the same cycle it would
		// have.
		target := wake - 1
		if target > lim.MaxCycles {
			target = lim.MaxCycles
		}
		if wd := c.lastCommitCycle + watchdogCycles; target > wd {
			target = wd
		}
		if target <= c.cycle {
			continue
		}
		// The ticking machine would have charged every skipped cycle to the
		// same (frozen) rename stall reason and re-blocked the same tainted
		// selections; replay those per-cycle statistics in bulk.
		skipped := target - c.cycle
		c.cycle = target
		c.Stats.Cycles = target
		if c.idleStall != nil {
			*c.idleStall += skipped
		}
		c.Stats.TaintBlockedSelects += skipped * (c.Stats.TaintBlockedSelects - blockedBefore)
	}
	return c.result(), nil
}

// noWake is nextWake's "nothing scheduled" sentinel.
const noWake = ^uint64(0)

// nextWake returns the earliest future cycle at which any stage of an idle
// machine could make progress, or noWake when nothing is scheduled. Every
// implicit "wake at cycle X" in the machine is an explicit field this scan
// reads: completion events (the heap head), the front-end pipeline depth
// (the oldest fetch entry's readyAt), LSU retry backoffs and operand
// wake-ups cached in the issue-queue scoreboard (retryAt/srcReadyAt — the
// visibility-point walk re-arms parked Delay-on-Miss loads through the
// same field), the divider, in-flight MSHR fills, and the ROB head's
// InvisiSpec exposure completion. Values at or before the current cycle
// describe conditions that are already satisfied yet still blocked on
// something non-temporal (a full resource, a taint frontier); time alone
// cannot unblock those, so they are ignored. The sentinels neverRetry and
// neverReady equal noWake and fall out of the min naturally.
func (c *Core) nextWake() uint64 {
	w := uint64(noWake)
	consider := func(t uint64) {
		if t > c.cycle && t < w {
			w = t
		}
	}
	if at, ok := c.events.nextAt(); ok {
		consider(at)
	}
	if c.fe.qlen() > 0 {
		consider(c.fe.queue[c.fe.head].readyAt)
	}
	if head, ok := c.rob.peek(); ok {
		if b := &c.a.body[head]; b.invisible && b.exposed {
			consider(b.exposeDoneAt)
		}
	}
	consider(c.divBusyUntil)
	consider(c.hier.EarliestMSHRDone())
	a := c.a
	for _, u := range c.iq {
		if a.state[u] == stateSquashed {
			continue
		}
		// Each entry wakes when the last of its time-based issue gates
		// opens; a max with an unannounced operand (neverReady) correctly
		// reports "no time-based wake" for that entry.
		switch a.cls[u] {
		case isa.ClassStore:
			b := &a.body[u]
			if !b.addrIssued {
				consider(max(a.retryAt[u], a.src1ReadyAt[u]))
			}
			if !b.dataIssued {
				consider(a.src2ReadyAt[u])
			}
		case isa.ClassLoad:
			consider(max(a.retryAt[u], a.src1ReadyAt[u]))
		default:
			consider(max(a.src1ReadyAt[u], a.src2ReadyAt[u]))
		}
	}
	return w
}

func (c *Core) result() Result {
	return Result{
		Cycles: c.cycle,
		Insts:  c.Stats.Committed,
		IPC:    c.Stats.IPC(),
		Halted: c.halted,
		Stats:  c.Stats,
	}
}

// ---------------------------------------------------------------------------
// Commit

func (c *Core) commitStage() {
	for n := 0; n < c.cfg.Width; n++ {
		u, ok := c.rob.peek()
		if !ok {
			return
		}
		b := &c.a.body[u]
		if b.inst.Op == isa.Halt {
			c.halted = true
			return
		}
		if c.a.state[u] != stateDone {
			return
		}
		if b.orderViolation && c.a.isLoad(u) {
			// BOOM's memory-ordering recovery: flush at commit of the load
			// that read stale data and refetch from it. The dependence
			// predictor learns the PC so the refetched load waits for older
			// store addresses instead of re-violating.
			c.Stats.MemOrderFlushes++
			pc := b.pc
			c.mdp.record(pc)
			c.flushPipeline(pc)
			return
		}
		if b.invisible {
			// InvisiSpec: an invisible load cannot retire before its
			// exposure re-access completes. Commit can outrun the
			// visibility-point walk within a cycle, so the exposure may
			// have to start here; reaching commit proves non-speculation.
			b.nonSpec = true
			if !b.exposed && !c.exposeLoad(u, c.cycle) {
				return // all MSHRs busy; retry next cycle
			}
			if b.exposeDoneAt > c.cycle {
				return // exposure in flight; the load stalls at the head
			}
		}
		c.rob.pop()
		c.progressed = true
		var commitAnnot TraceAnnot
		if c.vpDone > 0 {
			// Head pop shifts the visibility-point walk's resume offset.
			// An unvisited head (commit ran ahead of the walk, offset 0)
			// stays at the new head.
			c.vpDone--
		}
		c.lastCommitCycle = c.cycle
		c.Stats.Committed++
		switch c.a.cls[u] {
		case isa.ClassLoad:
			c.Stats.CommittedLoads++
			// Commit is the definitive visibility point: a load can reach
			// commit without the VP scan having seen it (commit runs ahead
			// of the scan within a cycle), so advance the YRoT-safety
			// frontier here or taints rooted at this load would never
			// clear.
			if !b.broadcasted {
				b.broadcasted = true
				if seq := int64(c.a.seq[u]); seq > c.curSafeSeq {
					c.curSafeSeq = seq
				}
				c.Stats.YRoTBroadcasts++
			}
			if b.broadcastPending {
				// The bounded broadcast network has not reached this load
				// yet, but commit proves it non-speculative; release the
				// ready broadcast before its register can be reallocated.
				b.broadcastPending = false
				commitAnnot |= AnnotNDAReleased
				if b.pd != noReg {
					c.prf.announce(b.pd, c.cycle)
					if c.Probe != nil {
						c.probeBroadcast(u, c.cycle, false, true)
					}
				}
			}
		case isa.ClassStore:
			c.Stats.CommittedStores++
			c.main.Write(b.addr, b.result)
			c.hier.Store(b.addr, c.cycle)
		case isa.ClassBranch:
			c.Stats.CommittedBranches++
			c.fe.dir.Update(b.pc, b.predHist, b.taken)
			if b.taken {
				c.fe.btb.Update(b.pc, b.target, false, false)
			} else {
				// A branch that stops being taken must not keep its stale
				// taken-target entry: the front end only redirects on a
				// direction-predictor taken AND a BTB hit, so a dead entry
				// would force wrong-path redirects forever (e.g. after a
				// loop exit).
				c.fe.btb.Invalidate(b.pc)
			}
		case isa.ClassJump:
			c.Stats.CommittedJumps++
			if b.inst.Op == isa.Jalr {
				isCall := b.inst.Rd == isa.RegLink
				isRet := b.inst.Rd == isa.X0 && b.inst.Rs1 == isa.RegLink
				c.fe.btb.Update(b.pc, b.target, isCall, isRet)
			}
		}
		if b.pd != noReg {
			c.arat[b.inst.Rd] = b.pd
			if b.stalePd != noReg {
				c.prf.release(b.stalePd)
			}
		}
		c.releaseCheckpointOf(u)
		c.lsu.commitOldest(u)
		if c.CommitHook != nil {
			c.CommitHook(c.commitRecord(u))
		}
		if c.Recorder != nil {
			c.recordStage(u, StageCommit, partWhole, commitAnnot)
		}
		// The slot recycles immediately: a committed uop has provably
		// drained every live reference — its events fired before it could
		// complete, its operand watches were announced before it could
		// issue — and the one container that may still name it (the
		// pending-broadcast queue) holds a generation-counted handle that
		// just went stale.
		c.a.release(u)
	}
}

func (c *Core) releaseCheckpointOf(u int32) {
	b := &c.a.body[u]
	if b.ckpt < 0 {
		return
	}
	ck := c.ckpts.get(b.ckpt)
	if ck.inUse && ck.seq == c.a.seq[u] {
		c.ckpts.release(b.ckpt)
	}
	b.ckpt = -1
}

func (c *Core) commitRecord(u int32) isa.Commit {
	b := &c.a.body[u]
	rec := isa.Commit{
		PC:     b.pc,
		Inst:   b.inst,
		Value:  b.result,
		Taken:  b.taken,
		Target: b.target,
	}
	if c.a.isLoad(u) || c.a.isStore(u) {
		rec.Addr = b.addr &^ 7
	}
	if b.pd != noReg {
		rec.Rd = b.inst.Rd
	}
	return rec
}

// ---------------------------------------------------------------------------
// Visibility point and bounded broadcast

func (c *Core) vpStage() {
	// Resume the walk at the last stall point: everything older is
	// already non-speculative (nonSpec is never cleared on a live uop),
	// so re-walking from the head would only re-skip marked entries.
	c.vpDone = c.rob.forEachFrom(c.vpDone, func(u int32) bool {
		b := &c.a.body[u]
		if c.a.castsCShadow(u) && c.a.state[u] != stateDone {
			return false
		}
		if c.a.castsDShadow(u) && !b.addrReady {
			return false
		}
		if c.a.isLoad(u) && b.orderViolation {
			// A load that read stale data is bound to be squashed at
			// commit, not committed: it must never reach the visibility
			// point, or its (wrong, possibly secret) value would be
			// declared safe and broadcast.
			return false
		}
		// Every guard above has passed: the uop is at the visibility
		// point. Mark it before the exposure re-access so the probe can
		// observe (rather than assume) that exposures are never
		// speculative — a load whose exposure stalls on a busy MSHR is
		// already safe, it just hasn't paid the re-access yet.
		b.nonSpec = true
		if b.invisible && !b.exposed && !c.exposeLoad(u, c.cycle) {
			// InvisiSpec exposure needs an MSHR and none is free: the
			// walk stalls here and retries next cycle.
			return false
		}
		var vpAnnot TraceAnnot
		if c.a.isLoad(u) {
			if b.missDelayed && c.a.state[u] == stateWaiting {
				// Delay-on-Miss wakeup: the miss is non-speculative now;
				// the parked load may re-attempt its access next cycle.
				// This re-arm is the explicit wake registration nextWake's
				// retryAt scan depends on.
				c.a.retryAt[u] = c.cycle + 1
				vpAnnot |= AnnotDoMResumed
			}
			c.nonSpecLoadQ = append(c.nonSpecLoadQ, c.a.ref(u))
		}
		c.progressed = true
		if c.Recorder != nil {
			c.recordStage(u, StageVP, partWhole, vpAnnot)
		}
		return true
	})
	// Broadcast non-speculative loads: at most one per memory port per
	// cycle (the broadcast network shared by STT's YRoT wakeups and NDA's
	// delayed ready broadcasts, Sections 4.4 and 5.1). Stale handles —
	// loads already broadcast at commit, or squashed wrong-path loads;
	// either way the slot was released and the generation moved on — are
	// dropped without consuming a port: they put nothing on the broadcast
	// network, so charging them a slot would under-model the bandwidth
	// available to real broadcasts behind them in the queue.
	// The queue drains from the front by index, with one compaction at the
	// end of the cycle: popping via q = q[1:] would slide the slice along
	// its backing array until the walk's append reallocates it — a
	// per-window heap allocation in the hottest loop of the simulator.
	q := c.nonSpecLoadQ
	pop := 0
	for n := 0; n < c.cfg.MemPorts && pop < len(q); {
		ref := q[pop]
		pop++
		if !c.a.live(ref) {
			continue
		}
		ld := ref.idx
		b := &c.a.body[ld]
		if b.broadcasted {
			continue
		}
		n++
		b.broadcasted = true
		if seq := int64(c.a.seq[ld]); seq > c.curSafeSeq {
			c.curSafeSeq = seq
		}
		c.Stats.YRoTBroadcasts++
		if b.broadcastPending {
			// NDA: release the withheld ready broadcast; dependents can
			// issue next cycle.
			b.broadcastPending = false
			c.prf.announce(b.pd, c.cycle+1)
			if c.Probe != nil {
				c.probeBroadcast(ld, c.cycle+1, false, true)
			}
			if c.Recorder != nil {
				c.recordStage(ld, StageVP, partWhole, AnnotNDAReleased)
			}
		}
	}
	if pop > 0 {
		c.progressed = true
		kept := copy(q, q[pop:])
		c.nonSpecLoadQ = q[:kept]
	}
}

// exposeLoad performs the InvisiSpec exposure re-access for an invisible
// load that reached the visibility point (or commit): the real hierarchy
// access — fills, MSHR occupancy, prefetcher training — whose completion
// gates the load's commit. It reports false when every MSHR is busy; the
// caller retries next cycle (fills drain on their own, so this cannot
// wedge).
func (c *Core) exposeLoad(u int32, now uint64) bool {
	// Either outcome disqualifies idle-skipping this cycle: success mutates
	// the hierarchy, and every stalled cycle is a real MSHR probe (with its
	// own retry accounting) that the ticking machine performs per cycle.
	c.progressed = true
	b := &c.a.body[u]
	if b.exposeTried == now+1 {
		// commitStage already attempted (and failed) this exposure this
		// cycle; the visibility-point walk runs after it and must not
		// probe the MSHR file again — one stalled cycle is one retry,
		// not two.
		return false
	}
	done, hit, ok := c.hier.Load(b.pc, b.addr, now)
	if !ok {
		b.exposeTried = now + 1
		c.Stats.ExposureRetries++
		return false
	}
	b.exposed = true
	b.exposeDoneAt = done
	c.lsu.specBufDrop(u)
	c.Stats.Exposures++
	if c.Probe != nil {
		c.probeCacheAccess(u, now, CacheAccessExposure, hit)
	}
	if c.Recorder != nil {
		// Both exposure sites — the visibility-point walk and commit —
		// report StageVP: commit is the definitive visibility point, and
		// either way the exposure is the delay InvisiSpec inserted there.
		an := AnnotExposure
		if hit {
			an |= AnnotL1Hit
		}
		c.recordStage(u, StageVP, partWhole, an)
	}
	return true
}

// ---------------------------------------------------------------------------
// Writeback

// writebackStage retires the completion events due this cycle. Events pop
// in (cycle, seq) order, so same-cycle completions are processed oldest-
// first — in particular, an older mispredicted branch squashes younger
// same-cycle completions before their events surface, and those surface
// with stale handles (the squash released their slots) and are discarded.
func (c *Core) writebackStage() {
	for {
		e, ok := c.events.due(c.cycle)
		if !ok {
			return
		}
		c.progressed = true
		if !c.a.live(e.ref) {
			continue // owner squashed after issue; the event outlived it
		}
		u := e.ref.idx
		b := &c.a.body[u]
		switch e.kind {
		case evStoreAddr:
			b.addrReady = true
			if v := c.lsu.checkViolations(u); v > 0 {
				c.Stats.MemOrderViolations += uint64(v)
			}
			if b.dataReady {
				c.a.state[u] = stateDone
			}
			if c.Recorder != nil {
				c.recordStage(u, StageWriteback, partStoreAddr, 0)
			}
		case evStoreData:
			b.dataReady = true
			if b.addrReady {
				c.a.state[u] = stateDone
			}
			if c.Recorder != nil {
				c.recordStage(u, StageWriteback, partStoreData, 0)
			}
		default:
			c.completeUop(u)
		}
	}
}

func (c *Core) completeUop(u int32) {
	c.a.state[u] = stateDone
	b := &c.a.body[u]
	if b.pd != noReg {
		c.prf.value[b.pd] = b.result
	}
	switch c.a.cls[u] {
	case isa.ClassLoad:
		c.loadBroadcast(u)
	case isa.ClassBranch:
		c.resolveControl(u, true)
	case isa.ClassJump:
		if b.inst.Op == isa.Jalr {
			c.resolveControl(u, false)
		}
	}
	if c.Recorder != nil {
		// After the switch so the record carries what completion caused:
		// loadBroadcast just decided whether NDA withholds the ready
		// broadcast, and a control uop's actual target is compared against
		// its prediction (u itself survives its own squash, so the slot is
		// still live here).
		var an TraceAnnot
		if b.broadcastPending {
			an |= AnnotNDAWithheld
		}
		if c.a.isLoad(u) {
			if b.hitL1 {
				an |= AnnotL1Hit
			}
			if b.invisible {
				an |= AnnotInvisible
			}
		}
		if (c.a.cls[u] == isa.ClassBranch || b.inst.Op == isa.Jalr) && b.target != b.predTarget {
			an |= AnnotMispredict
		}
		c.recordStage(u, StageWriteback, partWhole, an)
	}
}

// loadBroadcast applies the scheme's broadcast policy when load data
// arrives.
func (c *Core) loadBroadcast(u int32) {
	b := &c.a.body[u]
	if b.pd == noReg {
		return
	}
	if c.sch.delaysLoadBroadcast() && !b.nonSpec {
		// NDA: data is written to the register file but the ready
		// broadcast is withheld until the load is non-speculative
		// (Figure 5b's split data-write/broadcast buses).
		b.broadcastPending = true
		c.Stats.DelayedBroadcasts++
		return
	}
	if !c.sch.specWakeup(c.cfg.SpecWakeup) {
		// Without speculative wakeup the broadcast follows writeback.
		c.prf.announce(b.pd, c.cycle+1)
		if c.Probe != nil {
			c.probeBroadcast(u, c.cycle+1, !b.nonSpec, false)
		}
	}
	// With speculative wakeup readyAt was announced (and probed) at issue.
}

// resolveControl handles branch/jalr resolution, squashing on mispredict.
func (c *Core) resolveControl(u int32, conditional bool) {
	c.Stats.BranchesResolved++
	b := &c.a.body[u]
	if b.target == b.predTarget {
		c.releaseCheckpointOf(u)
		return
	}
	c.Stats.Mispredicts++
	c.squashAfterBranch(u, conditional)
}

// ---------------------------------------------------------------------------
// Squash and flush

// reclaim kills one squashed uop and releases its arena slot on the spot.
// Pending events, wakeup-list entries, and broadcast-queue entries that
// still name the uop hold generation-counted handles, which the release
// just invalidated — no deferred bookkeeping, no allocation, and the slot
// is immediately reusable by the refetched path. The freed slot's data
// stays readable until the next alloc, which the rest of the squash window
// (IQ filter, LSU tail truncation) relies on.
func (c *Core) reclaim(u int32) {
	c.Stats.SquashedUops++
	c.a.state[u] = stateSquashed
	if c.Recorder != nil {
		c.recordStage(u, StageSquash, partWhole, 0)
	}
	// A squashed invisible load is discarded from the speculative buffer
	// without ever being exposed — no cache state was touched, none will
	// be (the InvisiSpec security argument).
	c.lsu.specBufDrop(u)
	b := &c.a.body[u]
	if b.pd != noReg {
		c.prf.release(b.pd)
		b.pd = noReg
	}
	c.a.release(u)
}

// squashAfterBranch restores state to the mispredicted control instruction
// u and redirects fetch to its actual target. Younger checkpoints are
// released; u's own checkpoint provides the RAT, taint (scheme), RAS, and
// history recovery state.
func (c *Core) squashAfterBranch(u int32, conditional bool) {
	b := &c.a.body[u]
	seq := c.a.seq[u]
	ck := c.ckpts.get(b.ckpt)
	c.rob.squashYoungerThan(seq, c.reclaim)
	if c.vpDone > c.rob.len() {
		// The walk never passes an unresolved branch, so its visited
		// prefix survives the tail truncation; cap it all the same.
		c.vpDone = c.rob.len()
	}
	c.filterIQ()
	c.pruneNonSpecLoadQ(seq)
	c.lsu.squashYoungerThan(seq)
	c.rat.restore(ck.ratCopy)
	c.sch.restoreCheckpoint(b.ckpt)
	c.fe.ras.Restore(ck.rasTop)
	if conditional {
		c.fe.ghr = ck.ghr<<1 | b2u(b.taken)
	} else {
		c.fe.ghr = ck.ghr
	}
	// Checkpoints held by squashed younger branches.
	for id := range c.ckpts.cks {
		if c.ckpts.cks[id].inUse && c.ckpts.cks[id].seq > seq {
			c.ckpts.release(id)
		}
	}
	c.releaseCheckpointOf(u)
	c.fe.redirect(b.target)
}

// flushPipeline squashes everything in flight and refetches from pc
// (memory-ordering violation recovery).
func (c *Core) flushPipeline(pc uint64) {
	c.progressed = true
	c.rob.squashYoungerThan(0, c.reclaim)
	c.vpDone = 0
	c.rat.restore(c.arat)
	c.ckpts.releaseAll()
	c.sch.fullFlush()
	c.lsu.clear()
	c.iq = c.iq[:0]
	c.events.clear()
	c.prf.clearWaiters()
	c.nonSpecLoadQ = c.nonSpecLoadQ[:0]
	c.fe.redirect(pc)
}

// pruneNonSpecLoadQ drops dead entries from the pending broadcast queue
// after a branch squash: every squashed load's handle just went stale.
// flushPipeline clears the queue wholesale, but a branch squash did not —
// and while the drain would skip stale handles anyway, leaving them queued
// would make later vpStage drains report progress on cycles where nothing
// real happened, shrinking idle-warp coverage.
func (c *Core) pruneNonSpecLoadQ(limit uint64) {
	live := c.nonSpecLoadQ[:0]
	for _, ref := range c.nonSpecLoadQ {
		if c.a.live(ref) && c.a.seq[ref.idx] <= limit {
			live = append(live, ref)
		}
	}
	c.nonSpecLoadQ = live
}

func (c *Core) filterIQ() {
	live := c.iq[:0]
	for _, u := range c.iq {
		if c.a.state[u] != stateSquashed {
			live = append(live, u)
		}
	}
	c.iq = live
}

// ---------------------------------------------------------------------------
// Issue

// issueStage selects ready uops in age order. Readiness comes from the
// scoreboard: each entry carries its operands' announced readiness times
// (src1ReadyAt/src2ReadyAt, refreshed by physRegFile wakeups), so the scan
// is integer compares over the arena's contiguous hot slices — no
// per-operand register-file polling, no pointer chasing.
func (c *Core) issueStage() {
	slots := c.cfg.IssueWidth
	memPorts := c.cfg.MemPorts
	aluUnits := c.cfg.Width
	mulUnits := 1
	divFree := c.divBusyUntil <= c.cycle

	// The queue compacts in place, writing an entry only when something
	// ahead of it actually left: on an all-stalled cycle the scan stores
	// nothing at all.
	a := c.a
	iq := c.iq
	w := 0
	for i, u := range iq {
		if a.state[u] == stateSquashed {
			continue
		}
		kept := true
		if slots > 0 {
			switch cls := a.cls[u]; cls {
			case isa.ClassStore:
				c.issueStoreParts(u, &slots, &memPorts)
				b := &a.body[u]
				kept = !(b.addrIssued && b.dataIssued)
			case isa.ClassLoad:
				// Not-ready fast path: the full attempt's own readiness
				// short-circuit fires before any side effect, so skipping
				// here is equivalent and keeps the scheme hooks cold.
				if a.retryAt[u] <= c.cycle && a.src1ReadyAt[u] <= c.cycle {
					kept = !c.issueLoad(u, &slots, &memPorts)
				}
			default:
				if a.src1ReadyAt[u] <= c.cycle && a.src2ReadyAt[u] <= c.cycle {
					kept = !c.issueSimple(u, cls, &slots, &aluUnits, &mulUnits, &divFree)
				}
			}
		}
		if kept {
			if w != i {
				iq[w] = u
			}
			w++
		}
	}
	if w != len(iq) {
		c.iq = iq[:w]
	}
}

// issueStoreParts attempts the address and data halves of a store.
func (c *Core) issueStoreParts(u int32, slots, memPorts *int) {
	b := &c.a.body[u]
	if !b.addrIssued && *slots > 0 && *memPorts > 0 && c.a.retryAt[u] <= c.cycle &&
		c.a.src1ReadyAt[u] <= c.cycle && c.sch.canSelect(u, partStoreAddr) {
		*slots--
		c.progressed = true // slot consumed: issue, or a state-mutating nop
		if c.sch.onIssue(u, partStoreAddr) {
			*memPorts--
			b.addrIssued = true
			b.addr = c.prf.read(b.ps1) + uint64(b.inst.Imm)
			b.addrDoneAt = c.cycle + c.cfg.ExecDelay + c.cfg.AGULat
			c.Stats.IssuedUops++
			c.schedule(u, b.addrDoneAt, evStoreAddr)
			if c.Probe != nil {
				c.probeIssue(u, partStoreAddr)
			}
			if c.Recorder != nil {
				c.recordStage(u, StageIssue, partStoreAddr, 0)
			}
		} else if c.Recorder != nil {
			c.recordStage(u, StageIssue, partStoreAddr, AnnotSTTNopped)
		}
	}
	if !b.dataIssued && *slots > 0 && c.a.src2ReadyAt[u] <= c.cycle && c.sch.canSelect(u, partStoreData) {
		*slots--
		c.progressed = true
		if c.sch.onIssue(u, partStoreData) {
			b.dataIssued = true
			b.result = c.prf.read(b.ps2)
			b.dataDoneAt = c.cycle + c.cfg.ExecDelay + 1
			c.Stats.IssuedUops++
			c.schedule(u, b.dataDoneAt, evStoreData)
			if c.Probe != nil {
				c.probeIssue(u, partStoreData)
			}
			if c.Recorder != nil {
				c.recordStage(u, StageIssue, partStoreData, 0)
			}
		} else if c.Recorder != nil {
			c.recordStage(u, StageIssue, partStoreData, AnnotSTTNopped)
		}
	}
}

// schedule enqueues a completion event for u's issued part and moves the
// uop out of the waiting state.
func (c *Core) schedule(u int32, at uint64, kind evKind) {
	if c.a.state[u] == stateWaiting {
		c.a.state[u] = stateExecuting
	}
	c.events.push(event{at: at, seq: c.a.seq[u], kind: kind, ref: c.a.ref(u)})
}

// issueLoad attempts a load; it reports whether the uop left the queue.
func (c *Core) issueLoad(u int32, slots, memPorts *int) bool {
	if *memPorts <= 0 || c.a.retryAt[u] > c.cycle ||
		c.a.src1ReadyAt[u] > c.cycle || !c.sch.canSelect(u, partWhole) {
		return false
	}
	*slots--
	// Every path from here mutates state (an issue, a nop with taint
	// back-propagation, a retry backoff, a Delay-on-Miss park), so the
	// cycle cannot be idle-skipped.
	c.progressed = true
	if !c.sch.onIssue(u, partWhole) {
		if c.Recorder != nil {
			c.recordStage(u, StageIssue, partWhole, AnnotSTTNopped)
		}
		return false // nop-ed by the taint unit; stays queued
	}
	*memPorts--
	b := &c.a.body[u]
	b.addr = c.prf.read(b.ps1) + uint64(b.inst.Imm)
	res, val, fromSeq, sawUnknown := c.lsu.search(u)
	if res == fwdNone && sawUnknown && c.mdp.mustWait(b.pc, c.cycle) {
		// Dependence predictor: this load recently read stale data past an
		// unresolved store address; wait instead of speculating no-alias.
		c.Stats.MemDepStalls++
		c.a.retryAt[u] = c.cycle + 2
		return false
	}
	switch res {
	case fwdWait:
		// An older store to the same word has not read its data yet; the
		// load replays once it has.
		c.Stats.FwdWaits++
		c.a.retryAt[u] = c.cycle + 2
		return false
	case fwdHit:
		c.Stats.FwdHits++
		b.result = val
		b.fwdFromSeq = fromSeq
		c.a.doneAt[u] = c.cycle + c.cfg.ExecDelay + c.cfg.AGULat + c.cfg.FwdLat
		b.hitL1 = true
	case fwdNone:
		at := c.cycle + c.cfg.ExecDelay + c.cfg.AGULat
		if !b.nonSpec && c.sch.delaysSpecMiss() {
			if _, hit := c.hier.Peek(b.addr, at); !hit {
				// Delay-on-Miss: a speculative miss must leave no trace in
				// the hierarchy. The load parks until the visibility-point
				// walk marks it non-speculative and re-arms its retryAt
				// (value prediction off: dependents simply wait).
				// The park happens exactly once per load: the only
				// re-arm path (the visibility-point walk) marks the
				// load non-speculative first, so a woken load can
				// never re-enter this branch.
				b.missDelayed = true
				c.Stats.DoMDelayedLoads++
				c.a.retryAt[u] = neverRetry
				if c.Recorder != nil {
					c.recordStage(u, StageIssue, partWhole, AnnotDoMParked)
				}
				return false
			}
		}
		if !b.nonSpec && c.sch.invisibleSpecLoads() {
			// InvisiSpec: the access goes to the per-load speculative
			// buffer — hierarchy latency, none of its side effects. The
			// exposure re-access happens at the visibility point.
			done, hit := c.hier.Peek(b.addr, at)
			b.result = c.main.Read(b.addr)
			c.a.doneAt[u] = done
			b.hitL1 = hit
			b.invisible = true
			if n := c.lsu.specBufAdd(u); n > c.Stats.SpecBufPeak {
				c.Stats.SpecBufPeak = n
			}
			c.Stats.InvisibleLoads++
			if c.Probe != nil {
				c.probeCacheAccess(u, at, CacheAccessInvisible, hit)
			}
			break
		}
		done, hit, ok := c.hier.Load(b.pc, b.addr, at)
		if !ok {
			c.Stats.MSHRRetries++
			c.a.retryAt[u] = c.cycle + 2
			return false
		}
		b.result = c.main.Read(b.addr)
		c.a.doneAt[u] = done
		b.hitL1 = hit
		if c.Probe != nil {
			c.probeCacheAccess(u, at, CacheAccessDemand, hit)
		}
	}
	c.Stats.IssuedUops++
	if !b.nonSpec {
		c.Stats.SpecLoadsExecuted++
	}
	if b.pd != noReg && c.sch.specWakeup(c.cfg.SpecWakeup) {
		c.prf.announce(b.pd, c.a.doneAt[u])
		if c.Probe != nil {
			c.probeBroadcast(u, c.a.doneAt[u], !b.nonSpec, false)
		}
	}
	c.schedule(u, c.a.doneAt[u], evDone)
	if c.Probe != nil {
		c.probeIssue(u, partWhole)
	}
	if c.Recorder != nil {
		var an TraceAnnot
		if b.hitL1 {
			an |= AnnotL1Hit
		}
		if b.invisible {
			an |= AnnotInvisible
		}
		c.recordStage(u, StageIssue, partWhole, an)
	}
	return true
}

// issueSimple handles ALU, MUL, DIV, branch, and jump micro-ops; it
// reports whether the uop left the queue. The caller passes the decoded
// class and has already established operand readiness.
func (c *Core) issueSimple(u int32, cls isa.Class, slots, aluUnits, mulUnits *int, divFree *bool) bool {
	switch cls {
	case isa.ClassMul:
		if *mulUnits <= 0 {
			return false
		}
	case isa.ClassDiv:
		if !*divFree {
			return false
		}
	default:
		if *aluUnits <= 0 {
			return false
		}
	}
	if !c.sch.canSelect(u, partWhole) {
		return false
	}
	*slots--
	c.progressed = true
	if !c.sch.onIssue(u, partWhole) {
		if c.Recorder != nil {
			c.recordStage(u, StageIssue, partWhole, AnnotSTTNopped)
		}
		return false
	}
	b := &c.a.body[u]
	a, bb := c.prf.read(b.ps1), c.prf.read(b.ps2)
	var lat uint64
	switch cls {
	case isa.ClassMul:
		*mulUnits--
		lat = c.cfg.MulLat
		b.result = isa.EvalALU(b.inst.Op, a, bb, b.inst.Imm)
	case isa.ClassDiv:
		*divFree = false
		lat = c.cfg.DivLat
		c.divBusyUntil = c.cycle + c.cfg.DivLat
		b.result = isa.EvalALU(b.inst.Op, a, bb, b.inst.Imm)
	case isa.ClassBranch:
		*aluUnits--
		lat = c.cfg.ALULat
		b.taken = isa.BranchTaken(b.inst.Op, a, bb)
		if b.taken {
			b.target = uint64(int64(b.pc) + b.inst.Imm)
		} else {
			b.target = b.pc + 1
		}
	case isa.ClassJump:
		*aluUnits--
		lat = c.cfg.ALULat
		b.taken = true
		if b.pd != noReg {
			b.result = b.pc + 1 // link value
		}
		if b.inst.Op == isa.Jal {
			b.target = uint64(int64(b.pc) + b.inst.Imm)
		} else {
			b.target = a + uint64(b.inst.Imm)
		}
	default: // ALU
		*aluUnits--
		lat = c.cfg.ALULat
		b.result = isa.EvalALU(b.inst.Op, a, bb, b.inst.Imm)
	}
	doneAt := c.cycle + lat
	if b.inst.IsControl() {
		// Control resolution becomes visible only after the issue-to-
		// execute depth; values still bypass at ALU latency.
		doneAt += c.cfg.ExecDelay
	}
	c.a.doneAt[u] = doneAt
	if b.pd != noReg {
		// The value is computed here and bypassed: consumers may read it
		// as soon as readyAt, which can precede the (possibly delayed)
		// writeback event.
		c.prf.value[b.pd] = b.result
		c.prf.announce(b.pd, c.cycle+lat)
	}
	c.Stats.IssuedUops++
	c.schedule(u, doneAt, evDone)
	if c.Probe != nil {
		c.probeIssue(u, partWhole)
	}
	if c.Recorder != nil {
		c.recordStage(u, StageIssue, partWhole, 0)
	}
	return true
}

// ---------------------------------------------------------------------------
// Rename

// watchOperands caches the operands' readiness times in the issue-queue
// entry and registers wakeup watches for operands whose producers have
// not yet announced a completion time. From here on, readiness updates
// flow to the entry through physRegFile.announce.
func (c *Core) watchOperands(u int32) {
	b := &c.a.body[u]
	if b.ps1 != noReg {
		c.a.src1ReadyAt[u] = c.prf.readyAt[b.ps1]
		if c.a.src1ReadyAt[u] == neverReady {
			c.prf.watch(b.ps1, c.a.ref(u))
		}
	}
	if b.ps2 != noReg {
		c.a.src2ReadyAt[u] = c.prf.readyAt[b.ps2]
		if c.a.src2ReadyAt[u] == neverReady && b.ps2 != b.ps1 {
			c.prf.watch(b.ps2, c.a.ref(u))
		}
	}
}

// renameStall charges a rename-stall cycle to one cause counter and
// records which, so an idle-cycle skip can charge every skipped cycle to
// the same counter: the stall cause is a function of machine state that an
// idle machine holds frozen.
func (c *Core) renameStall(ctr *uint64) {
	*ctr++
	c.idleStall = ctr
}

func (c *Core) renameStage() {
	for n := 0; n < c.cfg.Width; n++ {
		e, ok := c.fe.peek(c.cycle)
		if !ok {
			c.renameStall(&c.Stats.RenameStallEmpty)
			return
		}
		in := e.inst
		cls := isa.ClassOf(in.Op)
		needsIQ := cls != isa.ClassNop && cls != isa.ClassHalt &&
			!(in.Op == isa.Jal && in.Rd == isa.X0)
		needsCkpt := cls == isa.ClassBranch || in.Op == isa.Jalr
		switch {
		case c.rob.full():
			c.renameStall(&c.Stats.RenameStallROB)
			return
		case needsIQ && len(c.iq) >= c.cfg.IQSize:
			c.renameStall(&c.Stats.RenameStallIQ)
			return
		case cls == isa.ClassLoad && c.lsu.lqLen() >= c.cfg.LQSize:
			c.renameStall(&c.Stats.RenameStallLQ)
			return
		case cls == isa.ClassStore && c.lsu.sqLen() >= c.cfg.SQSize:
			c.renameStall(&c.Stats.RenameStallSQ)
			return
		case in.HasDest() && !c.prf.hasFree():
			c.renameStall(&c.Stats.RenameStallPhys)
			return
		case needsCkpt && !c.ckpts.hasFree():
			c.renameStall(&c.Stats.RenameStallCkpt)
			return
		}
		c.fe.consume()
		c.progressed = true
		c.seqCtr++
		u := c.a.alloc()
		c.a.seq[u] = c.seqCtr
		c.a.cls[u] = cls
		c.a.body[u] = uop{
			pc:          e.pc,
			inst:        in,
			pd:          noReg,
			stalePd:     noReg,
			ps1:         noReg,
			ps2:         noReg,
			ckpt:        -1,
			lqIdx:       -1,
			sqIdx:       -1,
			fwdFromSeq:  -1,
			yrot:        noYRoT,
			yrotAddr:    noYRoT,
			yrotData:    noYRoT,
			blockedYRoT: noYRoT,
			predTaken:   e.predTaken,
			predTarget:  e.predTarget,
			predHist:    e.predHist,
			rasTop:      e.rasTop,
			target:      e.pc + 1,
		}
		b := &c.a.body[u]
		if in.ReadsRs1() {
			b.ps1 = c.rat.lookup(in.Rs1)
		}
		if in.ReadsRs2() {
			b.ps2 = c.rat.lookup(in.Rs2)
		}
		if in.HasDest() {
			b.pd = c.prf.alloc()
			c.sch.allocPhys(b.pd)
			b.stalePd = c.rat.write(in.Rd, b.pd)
		}
		c.sch.renameOne(u)
		if needsCkpt {
			id := c.ckpts.alloc()
			ck := c.ckpts.get(id)
			ck.seq = c.seqCtr
			ck.ratCopy = c.rat.snapshot()
			ck.ghr = e.predHist
			ck.rasTop = e.rasTop
			b.ckpt = id
			c.sch.saveCheckpoint(id)
		}
		switch {
		case cls == isa.ClassNop || cls == isa.ClassHalt:
			c.a.state[u] = stateDone
		case in.Op == isa.Jal && in.Rd == isa.X0:
			// A pure direct jump does no work and never mispredicts.
			c.a.state[u] = stateDone
			b.taken = true
			b.target = e.predTarget
		default:
			c.watchOperands(u)
			c.iq = append(c.iq, u)
		}
		if cls == isa.ClassLoad {
			c.lsu.addLoad(u)
		}
		if cls == isa.ClassStore {
			c.lsu.addStore(u)
		}
		c.rob.push(u)
		if c.Recorder != nil {
			// The fetch record is stamped retroactively: the fetch entry's
			// readyAt is its fetch cycle plus the front-end depth, and the
			// front end itself knows no sequence numbers.
			c.recordStageAt(u, e.readyAt-c.cfg.FrontendDelay, StageFetch, partWhole, 0)
			c.recordStage(u, StageRename, partWhole, 0)
		}
	}
}
