package core

import (
	"repro/internal/branch"
	"repro/internal/isa"
)

// fetchEntry is one instruction in the fetch buffer, annotated with the
// front end's predictions.
type fetchEntry struct {
	pc         uint64
	inst       isa.Inst
	predTaken  bool
	predTarget uint64
	predHist   uint64 // GHR before this instruction's own prediction
	rasTop     int    // RAS top after this instruction's push/pop
	readyAt    uint64 // cycle the entry reaches rename (front-end depth)
}

// frontend is the fetch unit: PC, direction predictor, BTB, RAS, global
// history, and the fetch buffer feeding rename.
type frontend struct {
	cfg  *Config
	prog *isa.Program
	dir  branch.DirPredictor
	btb  *branch.BTB
	ras  *branch.RAS

	pc  uint64
	ghr uint64
	// The fetch buffer is a head-indexed deque over a fixed backing array:
	// queue[head:] are the live entries. Consuming by reslicing (q = q[1:])
	// would walk the slice along its array until the next append
	// reallocates — a steady drip of garbage from the hottest producer in
	// the simulator. push compacts the consumed prefix in place instead,
	// so the buffer never allocates after construction.
	queue   []fetchEntry
	head    int
	stalled bool // fetched a Halt (possibly wrong-path); wait for redirect

	// Statistics.
	fetched     uint64
	btbMissesNT uint64 // predicted-taken branches forced not-taken by a BTB miss
}

func newFrontend(cfg *Config, prog *isa.Program) *frontend {
	var dir branch.DirPredictor
	switch cfg.Predictor {
	case "tage":
		dir = branch.NewDefaultTAGE()
	case "gshare":
		dir = branch.NewGshare(4096, 12)
	case "bimodal":
		dir = branch.NewBimodal(4096)
	}
	return &frontend{
		cfg:   cfg,
		prog:  prog,
		dir:   dir,
		btb:   branch.NewBTB(cfg.BTBSize),
		ras:   branch.NewRAS(cfg.RASDepth),
		pc:    prog.Entry,
		queue: make([]fetchEntry, 0, cfg.FetchBufSize),
	}
}

// qlen returns the number of buffered (unconsumed) fetch entries.
func (f *frontend) qlen() int { return len(f.queue) - f.head }

// push appends a fetch entry, compacting the consumed prefix in place when
// the backing array is exhausted. The caller guarantees qlen < FetchBufSize,
// so the post-compaction append always fits in the original allocation.
func (f *frontend) push(e fetchEntry) {
	if len(f.queue) == cap(f.queue) && f.head > 0 {
		n := copy(f.queue, f.queue[f.head:])
		f.queue = f.queue[:n]
		f.head = 0
	}
	f.queue = append(f.queue, e)
}

// step fetches up to Width instructions along the predicted path.
func (f *frontend) step(now uint64) {
	if f.stalled {
		return
	}
	for n := 0; n < f.cfg.Width; n++ {
		if f.qlen() >= f.cfg.FetchBufSize {
			return
		}
		in := f.prog.At(f.pc)
		e := fetchEntry{
			pc:       f.pc,
			inst:     in,
			predHist: f.ghr,
			rasTop:   f.ras.Top(),
			readyAt:  now + f.cfg.FrontendDelay,
		}
		f.fetched++
		redirected := false
		switch isa.ClassOf(in.Op) {
		case isa.ClassHalt:
			f.push(e)
			f.stalled = true
			return
		case isa.ClassBranch:
			pred := f.dir.Predict(f.pc, f.ghr)
			if pred {
				if target, _, _, hit := f.btb.Lookup(f.pc); hit {
					e.predTaken = true
					e.predTarget = target
					f.pc = target
					redirected = true
				} else {
					// Without a target the front end cannot redirect;
					// fall through (an effective not-taken prediction).
					f.btbMissesNT++
					pred = false
				}
			}
			if !pred {
				e.predTarget = e.pc + 1
			}
			f.ghr = f.ghr<<1 | b2u(e.predTaken)
		case isa.ClassJump:
			if in.Op == isa.Jal {
				e.predTaken = true
				e.predTarget = uint64(int64(f.pc) + in.Imm)
				if in.Rd == isa.RegLink {
					f.ras.Push(f.pc + 1)
				}
				f.pc = e.predTarget
				redirected = true
			} else { // jalr
				e.predTaken = true
				if in.Rd == isa.X0 && in.Rs1 == isa.RegLink {
					if target, ok := f.ras.Pop(); ok {
						e.predTarget = target
					} else {
						e.predTarget = f.pc + 1
					}
				} else if target, _, _, hit := f.btb.Lookup(f.pc); hit {
					e.predTarget = target
				} else {
					e.predTarget = f.pc + 1
				}
				if in.Rd == isa.RegLink {
					f.ras.Push(f.pc + 1)
				}
				f.pc = e.predTarget
				redirected = true
			}
		}
		e.rasTop = f.ras.Top()
		if !redirected {
			e.predTarget = e.pc + 1
			f.pc = e.pc + 1
		}
		f.push(e)
		// A taken control instruction ends the fetch group.
		if redirected && e.predTarget != e.pc+1 {
			return
		}
	}
}

// redirect restarts fetch at pc, discarding the buffer.
func (f *frontend) redirect(pc uint64) {
	f.queue = f.queue[:0]
	f.head = 0
	f.stalled = false
	f.pc = pc
}

// peek returns the oldest fetch entry if it has cleared the front-end
// pipeline by cycle now, without consuming it.
func (f *frontend) peek(now uint64) (fetchEntry, bool) {
	if f.qlen() == 0 || f.queue[f.head].readyAt > now {
		return fetchEntry{}, false
	}
	return f.queue[f.head], true
}

// consume removes the oldest fetch entry (after a successful peek).
func (f *frontend) consume() {
	f.head++
	if f.head == len(f.queue) {
		f.queue = f.queue[:0]
		f.head = 0
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
