package core

import "repro/internal/isa"

// The arena-backed uop store.
//
// Uops used to be heap-allocated and passed around as *uop. That had two
// costs the profiles eventually surfaced: the per-cycle issue and wake
// scans chased pointers across the heap (each entry a cache miss once the
// pool shuffled), and a squashed uop could never be recycled while a
// pending completion event or register-file wakeup list still referenced
// it — which made squashes the one steady-state allocation source and
// grew a web of special cases (inNonSpecQ/dead deferred pooling).
//
// The arena replaces both mechanisms at once:
//
//   - Storage is struct-of-arrays for the fields the per-cycle scans
//     actually touch (state, cls, seq, src1ReadyAt/src2ReadyAt, retryAt,
//     doneAt): the issue-queue and nextWake scans walk a few contiguous
//     uint64 slices that stay L1-resident even at ROB-192 occupancy,
//     instead of striding through ~200-byte heap objects. Cold per-uop
//     state (prediction bookkeeping, store halves, scheme fields) stays
//     together in an array-of-structs body, paid for only on the
//     instruction's own pipeline events.
//
//   - Slots are reclaimed through generation-counted handles. A uopRef
//     names a slot AND the generation it was allocated under; release
//     bumps the slot's generation, so every outstanding reference to the
//     old occupant becomes stale and self-invalidating — holders just
//     compare generations and skip. Long-lived containers that can outlive
//     a uop (the completion-event heap, prf wakeup lists, the pending
//     broadcast queue) hold uopRefs; containers whose entries are removed
//     exactly when the uop dies (ROB, issue queue, LSU queues) hold raw
//     indices. Squashed uops therefore recycle immediately: reclaim
//     releases the slot on the spot and whatever references remain
//     evaporate by generation mismatch.
//
// The arena grows only while the in-flight population reaches a new
// high-water mark (bounded by ROB size); after warmup, alloc and release
// are free-list pushes and pops — no allocation on any path, squashes
// included.

// uopRef is a generation-counted handle to an arena slot. The zero value
// is never live (generations start at 1), so zeroed containers are safe.
type uopRef struct {
	idx int32
	gen uint32
}

// uopArena stores every in-flight uop of one core.
type uopArena struct {
	// Hot struct-of-arrays fields, indexed by slot. These are exactly the
	// fields the per-cycle issue/nextWake/writeback scans read.
	state       []uopState
	cls         []isa.Class // decoded at rename, immutable thereafter
	seq         []uint64
	src1ReadyAt []uint64
	src2ReadyAt []uint64
	retryAt     []uint64
	doneAt      []uint64

	gen  []uint32 // current generation per slot; bumped on release
	body []uop    // cold fields, array-of-structs
	free []int32  // LIFO free list; keeps live uops in a compact index range
}

func newUopArena() *uopArena { return &uopArena{} }

// alloc claims a slot with hot fields reset (waiting, all times zero) and
// returns its index; the caller fully reinitializes seq, cls, and body.
// The LIFO free list keeps the live population in a dense low-index range,
// which is what keeps the hot slices cache-resident.
func (a *uopArena) alloc() int32 {
	if n := len(a.free); n > 0 {
		i := a.free[n-1]
		a.free = a.free[:n-1]
		a.state[i] = stateWaiting
		a.src1ReadyAt[i] = 0
		a.src2ReadyAt[i] = 0
		a.retryAt[i] = 0
		a.doneAt[i] = 0
		return i
	}
	i := int32(len(a.body))
	a.state = append(a.state, stateWaiting)
	a.cls = append(a.cls, 0)
	a.seq = append(a.seq, 0)
	a.src1ReadyAt = append(a.src1ReadyAt, 0)
	a.src2ReadyAt = append(a.src2ReadyAt, 0)
	a.retryAt = append(a.retryAt, 0)
	a.doneAt = append(a.doneAt, 0)
	a.gen = append(a.gen, 1)
	a.body = append(a.body, uop{})
	return i
}

// release retires a slot: the generation bump invalidates every
// outstanding uopRef to the old occupant, and the slot returns to the
// free list for immediate reuse. Slot data stays readable (squash cleanup
// walks freed tail entries) until alloc hands the slot out again.
func (a *uopArena) release(i int32) {
	a.gen[i]++
	a.free = append(a.free, i)
}

// ref materializes a handle to a live slot, for placement in containers
// that may outlive the uop.
func (a *uopArena) ref(i int32) uopRef { return uopRef{idx: i, gen: a.gen[i]} }

// live reports whether r still names the uop it was created for.
func (a *uopArena) live(r uopRef) bool { return a.gen[r.idx] == r.gen }

// ---------------------------------------------------------------------------
// Class predicates over arena slots (cls is decoded once at rename).

// isLoad reports whether the uop in slot i is a load.
func (a *uopArena) isLoad(i int32) bool { return a.cls[i] == isa.ClassLoad }

// isStore reports whether the uop in slot i is a store.
func (a *uopArena) isStore(i int32) bool { return a.cls[i] == isa.ClassStore }

// castsCShadow reports whether the uop casts a control shadow until it
// executes: conditional branches and indirect jumps. Direct jumps (jal)
// never mispredict in this machine.
func (a *uopArena) castsCShadow(i int32) bool {
	return a.cls[i] == isa.ClassBranch || a.body[i].inst.Op == isa.Jalr
}

// castsDShadow reports whether the uop casts a data (memory aliasing)
// shadow until its address is known.
func (a *uopArena) castsDShadow(i int32) bool { return a.cls[i] == isa.ClassStore }

// isTransmitter reports whether executing the uop has an observable,
// operand-dependent effect (Section 3.1): loads and store address
// generation (cache/STLF visibility), conditional branches and indirect
// jumps (resolution timing), and divides (operand-dependent latency in
// real dividers).
func (a *uopArena) isTransmitter(i int32) bool {
	switch a.cls[i] {
	case isa.ClassLoad, isa.ClassStore, isa.ClassBranch, isa.ClassDiv:
		return true
	case isa.ClassJump:
		return a.body[i].inst.Op == isa.Jalr
	}
	return false
}

// transmitterPart reports whether issuing the given part of slot i has an
// observable, operand-dependent effect. Store address generation transmits
// (it becomes visible to store-to-load forwarding); store data movement
// does not — stores only write the cache at non-speculative commit.
func (a *uopArena) transmitterPart(i int32, part issuePart) bool {
	if a.isStore(i) {
		return part == partStoreAddr
	}
	return a.isTransmitter(i)
}
