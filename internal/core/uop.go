package core

import "repro/internal/isa"

// uopState tracks a micro-op through the backend.
type uopState uint8

const (
	stateWaiting   uopState = iota // in the issue queue
	stateExecuting                 // issued, in a functional unit or the LSU
	stateDone                      // result written back, awaiting commit
	stateSquashed                  // killed; slot released, refs go stale
)

// noReg marks an absent physical register operand.
const noReg = -1

// noYRoT marks an untainted YRoT. YRoTs are load sequence numbers; a YRoT
// is safe once the core's non-speculative-load frontier has passed it, so
// -1 (older than every load) is always safe.
const noYRoT int64 = -1

// neverRetry parks a load's retryAt until some stage explicitly re-arms it
// (Delay-on-Miss: the visibility-point walk wakes delayed misses). A load
// left parked with no waker would trip the commit watchdog — loudly, by
// design.
const neverRetry = ^uint64(0)

// uop is the cold (array-of-structs) portion of one in-flight micro-op:
// the fields touched on the instruction's own pipeline events rather than
// by the per-cycle scans. The hot fields — state, cls, seq, the issue
// scoreboard's src1ReadyAt/src2ReadyAt, retryAt, and doneAt — live in the
// arena's struct-of-arrays slices (see arena.go) under the same slot
// index. Stores are a single micro-op whose address and data halves can
// issue independently (BOOM-style partial issue, Section 9.2 of the
// paper).
type uop struct {
	pc   uint64
	inst isa.Inst

	// Rename state.
	pd      int // physical destination, noReg if none
	stalePd int // previous mapping of the destination, freed at commit
	ps1     int // physical sources, noReg when the arch source is x0/unused
	ps2     int
	ckpt    int // checkpoint id for branches/jalr, -1 otherwise

	// Prediction state (control instructions).
	predTaken  bool
	predTarget uint64
	predHist   uint64 // global history at prediction time
	rasTop     int    // RAS top at prediction time

	// Execution results.
	taken  bool
	target uint64 // next PC (control); pc+1 otherwise
	result uint64
	hitL1  bool // loads: L1 hit

	addrDoneAt uint64 // stores: cycle the address half completes
	dataDoneAt uint64 // stores: cycle the data half completes

	broadcastPending bool // NDA: completed but ready-broadcast withheld
	broadcasted      bool // has advanced the non-speculative-load frontier

	// Store halves.
	addrIssued bool
	dataIssued bool
	addrReady  bool // effective address computed (clears the D-shadow)
	dataReady  bool

	// Memory state.
	addr           uint64
	lqIdx          int   // index in the load queue, -1 otherwise
	sqIdx          int   // index in the store queue, -1 otherwise
	fwdFromSeq     int64 // seq of the store this load forwarded from, -1 none
	orderViolation bool  // memory ordering violation; flush when it reaches commit

	// Speculation state.
	nonSpec bool // passed the visibility point (bound to commit)

	// Delay-on-Miss state.
	missDelayed bool // load parked as a speculative L1 miss (once per load)

	// InvisiSpec state. An invisible load holds a per-load speculative
	// buffer entry (inSpecBuf, accounted by the LSU) from issue until it is
	// exposed or squashed; exposeDoneAt gates commit on the exposure
	// re-access.
	invisible    bool   // issued into the speculative buffer, no cache side effects
	inSpecBuf    bool   // currently occupying a speculative-buffer entry
	exposed      bool   // exposure re-access performed at the visibility point
	exposeDoneAt uint64 // cycle the exposure access completes; commit waits on it
	// exposeTried is 1 + the cycle of the last failed exposure attempt
	// (the +1 keeps the zero value distinct from cycle 0): commitStage
	// and the visibility-point walk can both reach an unexposed load in
	// the same cycle, and the second caller must not retry — or count —
	// the same stalled attempt twice.
	exposeTried uint64

	// Secure-scheme state.
	yrot        int64 // STT-Rename: YRoT computed at rename
	yrotAddr    int64 // split-store-taint ablation: address-half YRoT
	yrotData    int64 // split-store-taint ablation: data-half YRoT
	blockedYRoT int64 // STT-Issue: YRoT back-propagated into the IQ entry
	wasNopped   bool  // STT-Issue: at least one issue slot was wasted
}
