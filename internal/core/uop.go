package core

import "repro/internal/isa"

// uopState tracks a micro-op through the backend.
type uopState uint8

const (
	stateWaiting   uopState = iota // in the issue queue
	stateExecuting                 // issued, in a functional unit or the LSU
	stateDone                      // result written back, awaiting commit
	stateSquashed                  // killed; awaiting ROB cleanup
)

// noReg marks an absent physical register operand.
const noReg = -1

// noYRoT marks an untainted YRoT. YRoTs are load sequence numbers; a YRoT
// is safe once the core's non-speculative-load frontier has passed it, so
// -1 (older than every load) is always safe.
const noYRoT int64 = -1

// neverRetry parks a load's retryAt until some stage explicitly re-arms it
// (Delay-on-Miss: the visibility-point walk wakes delayed misses). A load
// left parked with no waker would trip the commit watchdog — loudly, by
// design.
const neverRetry = ^uint64(0)

// uop is one in-flight micro-op. Stores are a single micro-op whose address
// and data halves can issue independently (BOOM-style partial issue,
// Section 9.2 of the paper).
type uop struct {
	seq  uint64 // global age; assigned at rename
	pc   uint64
	inst isa.Inst
	// cls memoizes inst.Op's class, biased by +1 so the zero value means
	// "not yet decoded": rename pre-decodes, hand-built uops (tests)
	// decode on first use. The issue and writeback loops consult the
	// class several times per uop per cycle, so the ClassOf switch is too
	// hot to re-run there.
	cls isa.Class

	// Rename state.
	pd      int // physical destination, noReg if none
	stalePd int // previous mapping of the destination, freed at commit
	ps1     int // physical sources, noReg when the arch source is x0/unused
	ps2     int
	ckpt    int // checkpoint id for branches/jalr, -1 otherwise

	state uopState

	// Prediction state (control instructions).
	predTaken  bool
	predTarget uint64
	predHist   uint64 // global history at prediction time
	rasTop     int    // RAS top at prediction time

	// Execution results.
	taken   bool
	target  uint64 // next PC (control); pc+1 otherwise
	result  uint64
	doneAt  uint64 // cycle the result is (or will be) available
	hitL1   bool   // loads: L1 hit
	retryAt uint64 // LSU retry backoff (MSHR full / forwarding wait)

	addrDoneAt uint64 // stores: cycle the address half completes
	dataDoneAt uint64 // stores: cycle the data half completes

	broadcastPending bool // NDA: completed but ready-broadcast withheld
	broadcasted      bool // has advanced the non-speculative-load frontier

	// Store halves.
	addrIssued bool
	dataIssued bool
	addrReady  bool // effective address computed (clears the D-shadow)
	dataReady  bool

	// Memory state.
	addr           uint64
	lqIdx          int   // index in the load queue, -1 otherwise
	sqIdx          int   // index in the store queue, -1 otherwise
	fwdFromSeq     int64 // seq of the store this load forwarded from, -1 none
	orderViolation bool  // memory ordering violation; flush when it reaches commit

	// Speculation state.
	nonSpec bool // passed the visibility point (bound to commit)

	// Issue-scoreboard state: each operand's readiness time, cached at
	// rename and refreshed by the register file's wakeup announcement, so
	// the issue scan compares integers instead of re-polling readyAt per
	// operand per cycle. Zero (always ready) covers the noReg pseudo-
	// source; neverReady marks a producer that has not yet announced.
	src1ReadyAt uint64
	src2ReadyAt uint64

	// Pool lifecycle (see freeUop): a committed uop may still be
	// referenced by a stale pending-broadcast queue entry.
	inNonSpecQ bool // currently queued for the bounded broadcast
	dead       bool // committed while still queued; recycle at the drain

	// Delay-on-Miss state.
	missDelayed bool // load parked as a speculative L1 miss (once per load)

	// InvisiSpec state. An invisible load holds a per-load speculative
	// buffer entry (inSpecBuf, accounted by the LSU) from issue until it is
	// exposed or squashed; exposeDoneAt gates commit on the exposure
	// re-access.
	invisible    bool   // issued into the speculative buffer, no cache side effects
	inSpecBuf    bool   // currently occupying a speculative-buffer entry
	exposed      bool   // exposure re-access performed at the visibility point
	exposeDoneAt uint64 // cycle the exposure access completes; commit waits on it
	// exposeTried is 1 + the cycle of the last failed exposure attempt
	// (the +1 keeps the zero value distinct from cycle 0): commitStage
	// and the visibility-point walk can both reach an unexposed load in
	// the same cycle, and the second caller must not retry — or count —
	// the same stalled attempt twice.
	exposeTried uint64

	// Secure-scheme state.
	yrot        int64 // STT-Rename: YRoT computed at rename
	yrotAddr    int64 // split-store-taint ablation: address-half YRoT
	yrotData    int64 // split-store-taint ablation: data-half YRoT
	blockedYRoT int64 // STT-Issue: YRoT back-propagated into the IQ entry
	wasNopped   bool  // STT-Issue: at least one issue slot was wasted
}

// class returns the uop's operation class (memoized; see cls).
func (u *uop) class() isa.Class {
	if u.cls == 0 {
		u.cls = isa.ClassOf(u.inst.Op) + 1
	}
	return u.cls - 1
}

// isLoad reports whether the uop is a load.
func (u *uop) isLoad() bool { return u.class() == isa.ClassLoad }

// isStore reports whether the uop is a store.
func (u *uop) isStore() bool { return u.class() == isa.ClassStore }

// castsCShadow reports whether the uop casts a control shadow until it
// executes: conditional branches and indirect jumps. Direct jumps (jal)
// never mispredict in this machine.
func (u *uop) castsCShadow() bool {
	return u.class() == isa.ClassBranch || u.inst.Op == isa.Jalr
}

// castsDShadow reports whether the uop casts a data (memory aliasing)
// shadow until its address is known.
func (u *uop) castsDShadow() bool { return u.isStore() }

// isTransmitter reports whether executing the uop has an observable,
// operand-dependent effect (Section 3.1): loads and store address
// generation (cache/STLF visibility), conditional branches and indirect
// jumps (resolution timing), and divides (operand-dependent latency in
// real dividers).
func (u *uop) isTransmitter() bool {
	switch u.class() {
	case isa.ClassLoad, isa.ClassStore, isa.ClassBranch, isa.ClassDiv:
		return true
	case isa.ClassJump:
		return u.inst.Op == isa.Jalr
	}
	return false
}

// completed reports whether the uop is finished and eligible to commit.
func (u *uop) completed() bool { return u.state == stateDone }
