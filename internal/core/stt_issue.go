package core

// sttIssue implements the paper's novel STT microarchitecture (Section
// 4.3): taint computation is delayed until the issue stage and performed
// over physical registers by a taint unit. There is no same-cycle
// dependency chain (dependent instructions cannot issue together) and no
// taint checkpoints (physical-register taints are overwritten on
// reallocation before reuse), at the cost of a taint table sized by the
// physical register count and of wasted issue slots: a tainted transmitter
// is only discovered after selection and is replaced with a nop.
//
// The issue-stage taint unit reads the current cycle's non-speculative-
// load frontier, one cycle fresher than what STT-Rename's rename-stage
// state can see — the one-cycle issue advantage of Section 9.1.
//
// Idle-skip contract (core.Run): taint blocking (here and in STT-Rename)
// is frontier-based, never time-based — a blocked transmitter unblocks
// only when the non-speculative frontier advances, which requires some
// other uop to make progress first. An idle cycle therefore cannot be
// ended by a taint state change, and nextWake needs no candidate from the
// taint unit; the warp replays the per-cycle TaintBlockedSelects charge
// in bulk instead.
type sttIssue struct {
	c     *Core
	taint []int64 // per physical register
}

func init() {
	RegisterScheme(SchemeSpec{
		Kind:   KindSTTIssue,
		Name:   "stt-issue",
		Order:  2,
		Secure: true,
		New:    func(c *Core) scheme { return newSTTIssue(c) },
	})
}

func newSTTIssue(c *Core) *sttIssue {
	s := &sttIssue{c: c, taint: make([]int64, c.cfg.PhysRegs)}
	for i := range s.taint {
		s.taint[i] = noYRoT
	}
	return s
}

func (s *sttIssue) kind() SchemeKind { return KindSTTIssue }

func (s *sttIssue) renameOne(int32) {}

// allocPhys clears the taint of a freshly allocated register. This is why
// STT-Issue needs no checkpoints: a stale taint can only be observed
// through a register that is still architecturally live, and live
// registers' taints are valid across squashes (Section 4.3).
func (s *sttIssue) allocPhys(pd int) { s.taint[pd] = noYRoT }

func (s *sttIssue) saveCheckpoint(int)    {}
func (s *sttIssue) restoreCheckpoint(int) {}

func (s *sttIssue) fullFlush() {
	for i := range s.taint {
		s.taint[i] = noYRoT
	}
}

// sourceTaint reads a physical source's taint, treating already-safe roots
// as untainted.
func (s *sttIssue) sourceTaint(ps int) int64 {
	if ps == noReg {
		return noYRoT
	}
	t := s.taint[ps]
	if t <= s.c.curSafeSeq {
		return noYRoT
	}
	return t
}

// canSelect masks an entry whose back-propagated YRoT is still unsafe
// (step 5 in Figure 4): after a nop-issue, the entry is not re-selected
// until the YRoT broadcast declares it safe.
func (s *sttIssue) canSelect(u int32, part issuePart) bool {
	if part == partStoreData {
		return true
	}
	b := &s.c.a.body[u]
	return b.blockedYRoT == noYRoT || b.blockedYRoT <= s.c.curSafeSeq
}

// onIssue is the taint unit (step 2 in Figure 4): compute the YRoT from
// the operands' taints, bar tainted transmitters (wasting the slot), and
// propagate the taint to the destination register.
func (s *sttIssue) onIssue(u int32, part issuePart) bool {
	a := s.c.a
	b := &a.body[u]
	var y int64
	switch part {
	case partStoreAddr:
		// Only the address operand transmits; an untainted address can
		// issue even while the data operand is tainted (Section 9.2).
		y = s.sourceTaint(b.ps1)
	case partStoreData:
		return true
	default:
		y = s.sourceTaint(b.ps1)
		if t2 := s.sourceTaint(b.ps2); t2 > y {
			y = t2
		}
	}
	if y != noYRoT && a.transmitterPart(u, part) {
		// Tainted transmitter: issue a nop instead and back-propagate the
		// YRoT to the issue-queue entry (steps 4 and 5 in Figure 4).
		b.blockedYRoT = y
		b.wasNopped = true
		s.c.Stats.TaintNopSlots++
		return false
	}
	b.blockedYRoT = noYRoT
	if b.pd != noReg {
		if a.isLoad(u) {
			s.taint[b.pd] = int64(a.seq[u])
		} else {
			s.taint[b.pd] = y
		}
	}
	return true
}

func (s *sttIssue) delaysLoadBroadcast() bool { return false }
func (s *sttIssue) specWakeup(base bool) bool { return base }
func (s *sttIssue) delaysSpecMiss() bool      { return false }
func (s *sttIssue) invisibleSpecLoads() bool  { return false }

// taintedPart is the probe's read-only taint view (see probe.go): the same
// operand-taint computation onIssue's taint unit performs, against the
// current cycle's frontier. Safe to query after onIssue — only the
// destination's taint is written there, never a source's.
func (s *sttIssue) taintedPart(u int32, part issuePart) bool {
	b := &s.c.a.body[u]
	switch part {
	case partStoreData:
		return false
	case partStoreAddr:
		return s.sourceTaint(b.ps1) != noYRoT
	}
	if s.sourceTaint(b.ps1) != noYRoT {
		return true
	}
	return s.sourceTaint(b.ps2) != noYRoT
}
