package core

import "repro/internal/isa"

// sttRename implements Speculative Taint Tracking with taint computation in
// the rename stage (Section 4.1). The YRoT (youngest root of taint) of each
// renamed instruction is the youngest taint among its sources; because a
// source may be renamed in the same cycle, YRoT computations chain through
// the rename group — the single-cycle dependency chain the paper identifies
// as STT-Rename's fundamental scaling limit. The chain itself is a timing
// phenomenon (modeled in internal/synth); here we faithfully compute the
// values it produces and record the chain depths reached.
//
// YRoTs are load sequence numbers. A YRoT is safe once the core's
// non-speculative-load frontier (advanced by the bounded YRoT broadcast in
// the visibility-point stage) has passed it. Blocked transmitters consult
// the previous cycle's frontier: the rename-stage taint RAT learns about
// broadcasts one cycle later than the issue-stage taint unit, which is the
// one-cycle disadvantage versus STT-Issue discussed in Section 9.1.
type sttRename struct {
	c     *Core
	taint [isa.NumRegs]int64
	ckpts [][isa.NumRegs]int64

	// Same-cycle chain tracking for statistics: which rename cycle last
	// wrote each taint entry, and at what chain depth.
	writtenAt  [isa.NumRegs]uint64
	chainDepth [isa.NumRegs]int
}

func init() {
	RegisterScheme(SchemeSpec{
		Kind:   KindSTTRename,
		Name:   "stt-rename",
		Order:  1,
		Secure: true,
		New:    func(c *Core) scheme { return newSTTRename(c) },
	})
}

func newSTTRename(c *Core) *sttRename {
	s := &sttRename{c: c, ckpts: make([][isa.NumRegs]int64, c.cfg.MaxBranches)}
	for i := range s.taint {
		s.taint[i] = noYRoT
	}
	return s
}

func (s *sttRename) kind() SchemeKind { return KindSTTRename }

// sourceTaint reads one source's taint and the same-cycle chain depth it
// was produced at.
func (s *sttRename) sourceTaint(r isa.Reg) (int64, int) {
	if r == isa.X0 {
		return noYRoT, 0
	}
	t := s.taint[r]
	if t == noYRoT {
		return noYRoT, 0
	}
	depth := 0
	if s.writtenAt[r] == s.c.cycle {
		depth = s.chainDepth[r]
	}
	return t, depth
}

func (s *sttRename) renameOne(u int32) {
	a := s.c.a
	b := &a.body[u]
	var t1, t2 int64 = noYRoT, noYRoT
	var d1, d2 int
	if b.inst.ReadsRs1() {
		t1, d1 = s.sourceTaint(b.inst.Rs1)
	}
	if b.inst.ReadsRs2() {
		t2, d2 = s.sourceTaint(b.inst.Rs2)
	}
	yrot := t1
	if t2 > yrot {
		yrot = t2
	}
	depth := d1
	if d2 > depth {
		depth = d2
	}
	b.yrot = yrot
	if s.c.cfg.SplitStoreTaints && a.isStore(u) {
		b.yrotAddr = t1
		b.yrotData = t2
	}
	if yrot != noYRoT {
		s.c.Stats.TaintedRenames++
		depth++ // this uop's own comparator extends the chain
		if depth > s.c.Stats.MaxRenameChain {
			s.c.Stats.MaxRenameChain = depth
		}
		s.c.Stats.RenameChainSum += uint64(depth)
	}
	if b.inst.HasDest() {
		rd := b.inst.Rd
		if a.isLoad(u) {
			// A load's destination is rooted at the load itself.
			s.taint[rd] = int64(a.seq[u])
		} else {
			s.taint[rd] = yrot
		}
		s.writtenAt[rd] = s.c.cycle
		s.chainDepth[rd] = depth
	}
}

func (s *sttRename) allocPhys(int) {}

func (s *sttRename) saveCheckpoint(id int)    { s.ckpts[id] = s.taint }
func (s *sttRename) restoreCheckpoint(id int) { s.taint = s.ckpts[id] }

func (s *sttRename) fullFlush() {
	for i := range s.taint {
		s.taint[i] = noYRoT
	}
}

// partYRoT returns the YRoT governing the given part of u.
func (s *sttRename) partYRoT(u int32, part issuePart) int64 {
	b := &s.c.a.body[u]
	if s.c.cfg.SplitStoreTaints && s.c.a.isStore(u) {
		switch part {
		case partStoreAddr:
			return b.yrotAddr
		case partStoreData:
			return b.yrotData
		}
	}
	return b.yrot
}

func (s *sttRename) canSelect(u int32, part issuePart) bool {
	if !s.c.a.transmitterPart(u, part) {
		return true
	}
	y := s.partYRoT(u, part)
	if y <= s.c.prevSafeSeq {
		return true
	}
	s.c.Stats.TaintBlockedSelects++
	return false
}

func (s *sttRename) onIssue(int32, issuePart) bool { return true }

// taintedPart is the probe's read-only taint view (see probe.go): whether
// the part's governing YRoT is still beyond the frontier rename-stage
// state can see — exactly the condition canSelect blocks transmitters on.
func (s *sttRename) taintedPart(u int32, part issuePart) bool {
	y := s.partYRoT(u, part)
	return y != noYRoT && y > s.c.prevSafeSeq
}

func (s *sttRename) delaysLoadBroadcast() bool { return false }
func (s *sttRename) specWakeup(base bool) bool { return base }
func (s *sttRename) delaysSpecMiss() bool      { return false }
func (s *sttRename) invisibleSpecLoads() bool  { return false }
