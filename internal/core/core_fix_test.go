package core

import (
	"testing"

	"repro/internal/isa"
)

// TestSquashedLoadNeverAdvancesSafeSeq asserts the YRoT-safety invariant:
// a squashed wrong-path load's handle in the pending broadcast queue goes
// stale when its arena slot is released — even after the slot is recycled
// by a younger load — and must not move curSafeSeq when the queue drains.
// Only live loads broadcast, and stale entries burn no broadcast port.
func TestSquashedLoadNeverAdvancesSafeSeq(t *testing.T) {
	cfg := MegaConfig()
	cfg.MemPorts = 1
	c := MustNew(cfg, KindBaseline, sumProgram(4))
	a := c.a

	dead := mkUop(a, 10, uop{inst: isa.Inst{Op: isa.Ld}, nonSpec: true})
	deadRef := a.ref(dead)
	a.release(dead) // squash: the handle is now stale, the slot reusable
	stale := mkUop(a, 11, uop{inst: isa.Inst{Op: isa.Ld}, nonSpec: true, broadcasted: true, pd: noReg})
	a.state[stale] = stateDone
	live := mkUop(a, 12, uop{inst: isa.Inst{Op: isa.Ld}, nonSpec: true, pd: noReg})
	a.state[live] = stateDone
	c.nonSpecLoadQ = append(c.nonSpecLoadQ, deadRef, a.ref(stale), a.ref(live))

	c.vpStage()

	if c.curSafeSeq == 10 || c.curSafeSeq == 11 {
		t.Fatalf("safety frontier advanced by a dead or stale load: curSafeSeq %d", c.curSafeSeq)
	}
	// With one broadcast port, the two stale entries must not have eaten
	// the slot: the live load behind them broadcasts this very cycle.
	if c.curSafeSeq != 12 {
		t.Fatalf("live load not broadcast past stale entries: curSafeSeq %d, want 12", c.curSafeSeq)
	}
	if c.Stats.YRoTBroadcasts != 1 {
		t.Fatalf("YRoTBroadcasts %d, want 1 (stale entries must not broadcast)", c.Stats.YRoTBroadcasts)
	}
	if len(c.nonSpecLoadQ) != 0 {
		t.Fatalf("queue not drained: %d entries left", len(c.nonSpecLoadQ))
	}
}

// TestBroadcastPortNotBurnedByStaleEntries pins the port accounting: an
// entry already broadcast at commit is skipped for free, so a fresh load
// behind it still gets the cycle's single port.
func TestBroadcastPortNotBurnedByStaleEntries(t *testing.T) {
	cfg := MegaConfig()
	cfg.MemPorts = 1
	c := MustNew(cfg, KindBaseline, sumProgram(4))
	a := c.a

	stale := mkUop(a, 5, uop{inst: isa.Inst{Op: isa.Ld}, nonSpec: true, broadcasted: true, pd: noReg})
	a.state[stale] = stateDone
	fresh1 := mkUop(a, 6, uop{inst: isa.Inst{Op: isa.Ld}, nonSpec: true, pd: noReg})
	a.state[fresh1] = stateDone
	fresh2 := mkUop(a, 7, uop{inst: isa.Inst{Op: isa.Ld}, nonSpec: true, pd: noReg})
	a.state[fresh2] = stateDone
	c.nonSpecLoadQ = append(c.nonSpecLoadQ, a.ref(stale), a.ref(fresh1), a.ref(fresh2))

	c.vpStage()

	if !a.body[fresh1].broadcasted {
		t.Fatal("stale entry consumed the broadcast port; fresh load was starved")
	}
	if a.body[fresh2].broadcasted {
		t.Fatal("two broadcasts on a single-port cycle")
	}
	if len(c.nonSpecLoadQ) != 1 || c.nonSpecLoadQ[0].idx != fresh2 {
		t.Fatalf("queue should hold only the second fresh load, got %d entries", len(c.nonSpecLoadQ))
	}
}

// TestPruneNonSpecLoadQOnBranchSquash pins squashAfterBranch's pruning of
// the pending broadcast queue: entries younger than the squashing branch,
// and stale handles of any age, are dropped.
func TestPruneNonSpecLoadQOnBranchSquash(t *testing.T) {
	c := MustNew(MegaConfig(), KindBaseline, sumProgram(4))
	a := c.a

	older := mkUop(a, 1, uop{inst: isa.Inst{Op: isa.Ld}, nonSpec: true, pd: noReg})
	a.state[older] = stateDone
	squashed := mkUop(a, 3, uop{inst: isa.Inst{Op: isa.Ld}, nonSpec: true, pd: noReg})
	squashedRef := a.ref(squashed)
	a.release(squashed)
	younger := mkUop(a, 9, uop{inst: isa.Inst{Op: isa.Ld}, nonSpec: true, pd: noReg})
	a.state[younger] = stateDone
	c.nonSpecLoadQ = append(c.nonSpecLoadQ, a.ref(older), squashedRef, a.ref(younger))

	c.pruneNonSpecLoadQ(6)

	if len(c.nonSpecLoadQ) != 1 || c.nonSpecLoadQ[0].idx != older {
		t.Fatalf("prune kept %d entries, want only the older live load", len(c.nonSpecLoadQ))
	}
}

// loopExitProgram runs a counted loop whose backward branch is taken n-1
// times and then commits not-taken once at the exit.
func loopExitProgram(n int64) (*isa.Program, uint64) {
	b := isa.NewBuilder("loopexit")
	b.Li(isa.X5, 0)
	b.Li(isa.X6, n)
	b.Label("loop")
	b.Addi(isa.X5, isa.X5, 1)
	b.Blt(isa.X5, isa.X6, "loop")
	b.Halt()
	p := b.MustBuild()
	for pc := uint64(0); pc < uint64(p.Len()); pc++ {
		if isa.ClassOf(p.At(pc).Op) == isa.ClassBranch {
			return p, pc
		}
	}
	panic("loopExitProgram: no branch found")
}

// TestBTBRetrainsOnNotTakenCommit pins the loop-exit fix: once the loop
// branch commits not-taken, its stale taken-target BTB entry is
// invalidated instead of forcing predicted-taken redirects forever.
func TestBTBRetrainsOnNotTakenCommit(t *testing.T) {
	p, branchPC := loopExitProgram(50)
	c := MustNew(MegaConfig(), KindBaseline, p)
	if _, err := c.Run(RunLimits{MaxCycles: 100_000}); err != nil {
		t.Fatal(err)
	}
	if !c.Halted() {
		t.Fatal("program did not halt")
	}
	if _, _, _, hit := c.fe.btb.Lookup(branchPC); hit {
		t.Fatalf("BTB still holds the stale taken-target entry for the exited loop branch at pc %d", branchPC)
	}
}
