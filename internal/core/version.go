package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// SimVersion stamps the simulator's modeled behaviour. It participates in
// every cell fingerprint (internal/harness), so persisted cell results are
// invalidated wholesale when the model changes. Bump it for any change that
// can alter a simulated result — pipeline timing, scheme semantics, memory
// hierarchy, workload generation — and leave it alone for perf-only
// refactors that keep the commit-stream and figure goldens byte-identical.
const SimVersion = "shadowbinding-sim/v3"

// Fingerprint returns a stable content hash of the configuration: every
// field that parameterizes the core and its memory hierarchy, in canonical
// form. Two configurations with equal fingerprints simulate identically
// (given the same SimVersion); any knob change — width, latencies, cache
// geometry, predictor — yields a new fingerprint. The harness composes it
// into cell keys for the content-addressed result cache.
func (c Config) Fingerprint() string {
	// Config is a tree of exported scalar fields; encoding/json marshals
	// them in declaration order, which makes the encoding canonical for a
	// given SimVersion (struct changes imply a version bump).
	data, err := json.Marshal(c)
	if err != nil {
		// Config contains no channels, funcs, or cycles; Marshal cannot
		// fail on it short of memory corruption.
		panic(fmt.Sprintf("core: fingerprint %s: %v", c.Name, err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:16])
}
