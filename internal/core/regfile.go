package core

import "repro/internal/isa"

// neverReady is a readyAt sentinel for registers whose producers have not
// yet announced a completion time.
const neverReady = ^uint64(0)

// physRegFile is the physical register file plus its free list and the
// ready/wakeup scoreboard.
type physRegFile struct {
	a       *uopArena
	value   []uint64
	readyAt []uint64 // first cycle a consumer may issue using the value
	free    []int    // LIFO free list

	// waiters holds, per register, handles to the issue-queue uops whose
	// cached operand-readiness is pending this register's announcement —
	// the scoreboard's wakeup port.
	waiters [][]uopRef
}

func newPhysRegFile(n int, a *uopArena) *physRegFile {
	p := &physRegFile{
		a:       a,
		value:   make([]uint64, n),
		readyAt: make([]uint64, n),
		waiters: make([][]uopRef, n),
	}
	// Physical registers 0..31 initially back the architectural registers
	// and are ready with value zero; the rest are free.
	for i := 0; i < isa.NumRegs; i++ {
		p.readyAt[i] = 0
	}
	for i := n - 1; i >= isa.NumRegs; i-- {
		p.readyAt[i] = neverReady
		p.free = append(p.free, i)
	}
	return p
}

func (p *physRegFile) hasFree() bool { return len(p.free) > 0 }

// alloc pops a free register and marks it not ready.
func (p *physRegFile) alloc() int {
	n := len(p.free)
	if n == 0 {
		panic("core: free list underflow")
	}
	r := p.free[n-1]
	p.free = p.free[:n-1]
	p.readyAt[r] = neverReady
	return r
}

// release returns a register to the free list.
func (p *physRegFile) release(r int) {
	p.readyAt[r] = neverReady
	p.free = append(p.free, r)
}

// readyBy reports whether register r can feed an instruction issuing at
// cycle now. The noReg pseudo-source (x0 or unused) is always ready.
func (p *physRegFile) readyBy(r int, now uint64) bool {
	return r == noReg || p.readyAt[r] <= now
}

// watch registers the uop handle as a waiter on r's readiness
// announcement.
func (p *physRegFile) watch(r int, ref uopRef) {
	p.waiters[r] = append(p.waiters[r], ref)
}

// announce publishes the cycle at which register r's value may feed a
// consumer and wakes the issue-queue entries waiting on it. A register's
// readyAt is written exactly once between alloc and release — every
// producer path (issue-time wakeup, writeback broadcast, NDA's delayed
// broadcast) announces exactly once — so a waiter list drains exactly
// once per allocation. Squashed waiters may linger in a list as stale
// handles; the generation check skips them, which matters because their
// slot may already host an unrelated live instruction.
func (p *physRegFile) announce(r int, at uint64) {
	p.readyAt[r] = at
	ws := p.waiters[r]
	if len(ws) == 0 {
		return
	}
	a := p.a
	for _, ref := range ws {
		if a.gen[ref.idx] != ref.gen {
			continue // waiter squashed; slot may be reused
		}
		b := &a.body[ref.idx]
		if b.ps1 == r {
			a.src1ReadyAt[ref.idx] = at
		}
		if b.ps2 == r {
			a.src2ReadyAt[ref.idx] = at
		}
	}
	p.waiters[r] = ws[:0]
}

// clearWaiters empties every wakeup list (full-pipeline flush: the whole
// issue queue is gone).
func (p *physRegFile) clearWaiters() {
	for r := range p.waiters {
		p.waiters[r] = p.waiters[r][:0]
	}
}

// read returns the register value; noReg reads as zero (x0).
func (p *physRegFile) read(r int) uint64 {
	if r == noReg {
		return 0
	}
	return p.value[r]
}

// rat is the register alias table mapping architectural to physical
// registers. Index 0 (x0) is never renamed.
type rat struct {
	m [isa.NumRegs]int
}

func newRAT() *rat {
	var r rat
	for i := range r.m {
		r.m[i] = i
	}
	return &r
}

// lookup returns the physical register for an architectural source, or
// noReg for x0.
func (r *rat) lookup(a isa.Reg) int {
	if a == isa.X0 {
		return noReg
	}
	return r.m[a]
}

// write binds an architectural destination to a physical register and
// returns the previous mapping (the stale register to free at commit).
func (r *rat) write(a isa.Reg, pd int) (stale int) {
	stale = r.m[a]
	r.m[a] = pd
	return stale
}

// snapshot copies the table (checkpoint).
func (r *rat) snapshot() [isa.NumRegs]int { return r.m }

// restore overwrites the table from a checkpoint.
func (r *rat) restore(s [isa.NumRegs]int) { r.m = s }

// checkpoint is the per-branch recovery state. STT-Rename additionally
// checkpoints its taint RAT, keyed by the same id (Section 4.2).
type checkpoint struct {
	inUse   bool
	seq     uint64 // seq of the owning branch
	ratCopy [isa.NumRegs]int
	ghr     uint64 // global history *before* this branch's prediction
	rasTop  int
}

// checkpointFile manages the fixed pool of branch checkpoints.
type checkpointFile struct {
	cks []checkpoint
}

func newCheckpointFile(n int) *checkpointFile {
	return &checkpointFile{cks: make([]checkpoint, n)}
}

func (c *checkpointFile) hasFree() bool {
	for i := range c.cks {
		if !c.cks[i].inUse {
			return true
		}
	}
	return false
}

// alloc claims a checkpoint slot, returning its id, or -1 if none free.
func (c *checkpointFile) alloc() int {
	for i := range c.cks {
		if !c.cks[i].inUse {
			c.cks[i].inUse = true
			return i
		}
	}
	return -1
}

func (c *checkpointFile) get(id int) *checkpoint { return &c.cks[id] }

func (c *checkpointFile) release(id int) { c.cks[id] = checkpoint{} }

// releaseAll clears every checkpoint (full-pipeline flush).
func (c *checkpointFile) releaseAll() {
	for i := range c.cks {
		c.cks[i] = checkpoint{}
	}
}
