package core

// The completion-event queue behind the event-driven writeback stage.
//
// The original writeback walked and re-sorted every in-flight uop every
// cycle; with a fixed measurement window of tens of thousands of cycles
// per matrix cell, that per-cycle constant dominated simulator throughput.
// Instead, every issued uop (or store half) schedules one completion event
// at the cycle its result becomes architecturally visible, and writeback
// pops exactly the events due this cycle.
//
// Events for squashed uops are not removed eagerly: they surface at their
// fire time and are discarded by the owner's generation mismatch (the
// squash released the slot, so the event's uopRef went stale). The fire
// time itself stays meaningful — at and seq are stored by value — which is
// why nextAt may report a squashed owner's wake (a squashed divide's event
// still marks when the divider frees).

// evKind selects what completes when an event fires.
type evKind uint8

const (
	evDone      evKind = iota // non-store uop: result available
	evStoreAddr               // store: address half completes
	evStoreData               // store: data half completes
)

// event is one scheduled completion. The owner is held by generation-
// counted handle; at and seq are captured by value so ordering and wake
// times survive the owner's death.
type event struct {
	at   uint64 // cycle the event fires
	seq  uint64 // owner's age; orders same-cycle events oldest-first
	kind evKind
	ref  uopRef
}

// eventQueue is a binary min-heap ordered by (at, seq). Because every
// event is scheduled strictly in the future and writeback drains the queue
// every cycle, all events due at once share the same fire cycle, so pops
// come out in program order — exactly the order the sort-based writeback
// processed them in.
type eventQueue struct {
	h []event
}

func (q *eventQueue) empty() bool { return len(q.h) == 0 }

// nextAt returns the fire cycle of the earliest pending event — the
// idle-cycle skipper's primary wake target. Events of squashed uops count
// too: they surface (and are discarded) at their fire cycle on the ticking
// machine as well, and some wake times exist only through them.
func (q *eventQueue) nextAt() (uint64, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

// clear drops every pending event (full-pipeline flush).
func (q *eventQueue) clear() {
	q.h = q.h[:0]
}

func (q *eventQueue) less(i, j int) bool {
	a, b := &q.h[i], &q.h[j]
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// push schedules an event.
func (q *eventQueue) push(e event) {
	q.h = append(q.h, e)
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

// due pops the oldest pending event if it fires at or before now.
func (q *eventQueue) due(now uint64) (event, bool) {
	if len(q.h) == 0 || q.h[0].at > now {
		return event{}, false
	}
	e := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h = q.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(q.h) && q.less(l, smallest) {
			smallest = l
		}
		if r < len(q.h) && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.h[i], q.h[smallest] = q.h[smallest], q.h[i]
		i = smallest
	}
	return e, true
}
