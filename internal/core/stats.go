package core

import (
	"fmt"
	"strings"
)

// Stats aggregates the core's performance counters. The taxonomy mirrors
// the KPIs the paper extracts with TraceDoctor (Section 7): committed
// work, stall causes, squash causes, forwarding behaviour, and the
// scheme-specific taint/broadcast activity.
type Stats struct {
	Cycles    uint64
	Committed uint64

	CommittedLoads    uint64
	CommittedStores   uint64
	CommittedBranches uint64
	CommittedJumps    uint64

	Fetched uint64

	// Control speculation.
	BranchesResolved uint64
	Mispredicts      uint64
	BTBMissForcedNT  uint64

	// Memory speculation.
	MemOrderViolations uint64 // loads found to have read stale data
	MemOrderFlushes    uint64 // pipeline flushes at commit of such loads
	FwdHits            uint64 // store-to-load forwards
	FwdWaits           uint64 // loads replayed waiting for store data
	SpecLoadsExecuted  uint64 // loads executed while speculative
	MSHRRetries        uint64
	MemDepStalls       uint64 // dependence-predictor forced waits

	SquashedUops uint64

	// Rename stalls, counted per stalled slot-cycle.
	RenameStallROB   uint64
	RenameStallIQ    uint64
	RenameStallLQ    uint64
	RenameStallSQ    uint64
	RenameStallPhys  uint64
	RenameStallCkpt  uint64
	RenameStallEmpty uint64 // fetch buffer empty (front-end starvation)

	IssuedUops uint64

	// Secure-scheme activity.
	TaintedRenames      uint64 // STT-Rename: uops renamed with a live YRoT
	MaxRenameChain      int    // STT-Rename: deepest same-cycle YRoT chain
	RenameChainSum      uint64
	TaintBlockedSelects uint64 // STT-Rename: selection vetoes (uop-cycles)
	TaintNopSlots       uint64 // STT-Issue: issue slots wasted on nops
	YRoTBroadcasts      uint64 // non-speculative-load broadcasts
	DelayedBroadcasts   uint64 // NDA: load broadcasts withheld at completion

	DoMDelayedLoads uint64 // DoM: loads parked as speculative L1 misses
	InvisibleLoads  uint64 // InvisiSpec: loads issued into the speculative buffer
	Exposures       uint64 // InvisiSpec: exposure re-accesses performed
	ExposureRetries uint64 // InvisiSpec: exposures deferred on a full MSHR file
	SpecBufPeak     int    // InvisiSpec: peak speculative-buffer occupancy
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// MispredictRate returns mispredictions per resolved branch.
func (s Stats) MispredictRate() float64 {
	if s.BranchesResolved == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.BranchesResolved)
}

// String renders a compact multi-line counter dump.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles               %12d\n", s.Cycles)
	fmt.Fprintf(&b, "committed            %12d  (IPC %.4f)\n", s.Committed, s.IPC())
	fmt.Fprintf(&b, "  loads/stores       %12d / %d\n", s.CommittedLoads, s.CommittedStores)
	fmt.Fprintf(&b, "  branches/jumps     %12d / %d\n", s.CommittedBranches, s.CommittedJumps)
	fmt.Fprintf(&b, "fetched              %12d\n", s.Fetched)
	fmt.Fprintf(&b, "branches resolved    %12d  (%.2f%% mispredicted)\n", s.BranchesResolved, 100*s.MispredictRate())
	fmt.Fprintf(&b, "mem-order violations %12d  (flushes %d)\n", s.MemOrderViolations, s.MemOrderFlushes)
	fmt.Fprintf(&b, "stlf hits/waits      %12d / %d\n", s.FwdHits, s.FwdWaits)
	fmt.Fprintf(&b, "speculative loads    %12d\n", s.SpecLoadsExecuted)
	fmt.Fprintf(&b, "squashed uops        %12d\n", s.SquashedUops)
	fmt.Fprintf(&b, "issued uops          %12d\n", s.IssuedUops)
	fmt.Fprintf(&b, "rename stalls        rob %d iq %d lq %d sq %d phys %d ckpt %d fe %d\n",
		s.RenameStallROB, s.RenameStallIQ, s.RenameStallLQ, s.RenameStallSQ,
		s.RenameStallPhys, s.RenameStallCkpt, s.RenameStallEmpty)
	fmt.Fprintf(&b, "taint: renames %d, max chain %d, blocked selects %d, nop slots %d\n",
		s.TaintedRenames, s.MaxRenameChain, s.TaintBlockedSelects, s.TaintNopSlots)
	fmt.Fprintf(&b, "broadcasts: yrot %d, delayed %d\n", s.YRoTBroadcasts, s.DelayedBroadcasts)
	fmt.Fprintf(&b, "dom: delayed loads %d; invisispec: invisible %d, exposures %d (retries %d, buf peak %d)\n",
		s.DoMDelayedLoads, s.InvisibleLoads, s.Exposures, s.ExposureRetries, s.SpecBufPeak)
	return b.String()
}
