package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// randomProgram generates a structured, terminating program: an outer
// counted loop whose body is a random mix of ALU ops, loads and stores to
// a small data region, forward data-dependent branches, and leaf calls.
// Termination is by construction: the only backward edge is the outer
// loop's counter branch.
func randomProgram(seed int64, iters int64) *isa.Program {
	r := rand.New(rand.NewSource(seed))
	b := isa.NewBuilder(fmt.Sprintf("rand%d", seed))
	const base = 0x20000
	words := make([]uint64, 256)
	for i := range words {
		words[i] = r.Uint64() >> 8
	}
	b.Data(base, words)

	// Working registers x5..x15; x18 data base; x28/x29 loop counter/limit.
	work := []isa.Reg{isa.X5, isa.X6, isa.X7, isa.X8, isa.X9, isa.X10, isa.X11, isa.X12, isa.X13, isa.X14, isa.X15}
	pick := func() isa.Reg { return work[r.Intn(len(work))] }
	b.Li(isa.X18, base)
	for _, w := range work {
		b.Li(w, int64(r.Intn(1024)))
	}
	b.Li(isa.X28, 0)
	b.Li(isa.X29, iters)

	// Two leaf functions used by random calls.
	b.J("main")
	b.Label("leaf0")
	b.Addi(isa.X15, isa.X15, 7)
	b.Xor(isa.X14, isa.X14, isa.X15)
	b.Ret()
	b.Label("leaf1")
	b.Andi(isa.X13, isa.X13, 255)
	b.Slli(isa.X13, isa.X13, 1)
	b.Ret()

	b.Label("main")
	b.Label("loop")
	nBlocks := 2 + r.Intn(3)
	for blk := 0; blk < nBlocks; blk++ {
		n := 3 + r.Intn(8)
		for i := 0; i < n; i++ {
			switch r.Intn(10) {
			case 0, 1, 2: // reg-reg ALU
				ops := []isa.Op{isa.Add, isa.Sub, isa.And, isa.Or, isa.Xor, isa.Sltu}
				b.Emit(isa.Inst{Op: ops[r.Intn(len(ops))], Rd: pick(), Rs1: pick(), Rs2: pick()})
			case 3, 4: // reg-imm ALU
				ops := []isa.Op{isa.Addi, isa.Andi, isa.Xori, isa.Slli, isa.Srli}
				op := ops[r.Intn(len(ops))]
				imm := int64(r.Intn(64))
				b.Emit(isa.Inst{Op: op, Rd: pick(), Rs1: pick(), Imm: imm})
			case 5: // mul/div
				ops := []isa.Op{isa.Mul, isa.Div, isa.Rem}
				b.Emit(isa.Inst{Op: ops[r.Intn(len(ops))], Rd: pick(), Rs1: pick(), Rs2: pick()})
			case 6: // load from masked address
				idx := pick()
				b.Andi(isa.X30, idx, 255)
				b.Slli(isa.X30, isa.X30, 3)
				b.Add(isa.X30, isa.X30, isa.X18)
				b.Ld(pick(), isa.X30, 0)
			case 7: // store to masked address
				idx := pick()
				b.Andi(isa.X30, idx, 255)
				b.Slli(isa.X30, isa.X30, 3)
				b.Add(isa.X30, isa.X30, isa.X18)
				b.Sd(pick(), isa.X30, 0)
			case 8: // forward data-dependent branch over a couple of ops
				skip := fmt.Sprintf("skip_%d_%d_%d", seed, blk, i)
				b.Andi(isa.X31, pick(), 1)
				b.Beq(isa.X31, isa.X0, skip)
				b.Addi(pick(), pick(), 1)
				b.Xor(pick(), pick(), pick())
				b.Label(skip)
			case 9: // call a leaf
				if r.Intn(2) == 0 {
					b.Call("leaf0")
				} else {
					b.Call("leaf1")
				}
			}
		}
	}
	b.Addi(isa.X28, isa.X28, 1)
	b.Blt(isa.X28, isa.X29, "loop")
	b.Halt()
	return b.MustBuild()
}

// TestRandomProgramsMatchOracle is the core's main differential test: for
// several seeds, every scheme and a sampled set of configurations must
// commit exactly the oracle's instruction stream.
func TestRandomProgramsMatchOracle(t *testing.T) {
	cfgs := []Config{SmallConfig(), MegaConfig()}
	if !testing.Short() {
		cfgs = Configs()
	}
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		p := randomProgram(seed, 30)
		for _, cfg := range cfgs {
			for _, kind := range allSchemes() {
				t.Run(fmt.Sprintf("seed%d/%s/%s", seed, cfg.Name, kind), func(t *testing.T) {
					res := runChecked(t, cfg, kind, p, RunLimits{MaxCycles: 4_000_000})
					if !res.Halted {
						t.Fatalf("did not halt: %+v", res)
					}
				})
			}
		}
	}
}

// TestRandomProgramsMemoryEquivalence checks final data-memory state
// against the oracle for random store-heavy programs.
func TestRandomProgramsMemoryEquivalence(t *testing.T) {
	for seed := int64(10); seed < 14; seed++ {
		p := randomProgram(seed, 20)
		oracle := isa.NewArchSim(p)
		if _, err := oracle.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		for _, kind := range allSchemes() {
			c := MustNew(LargeConfig(), kind, p)
			if _, err := c.Run(RunLimits{MaxCycles: 4_000_000}); err != nil {
				t.Fatalf("seed %d %s: %v", seed, kind, err)
			}
			for i := uint64(0); i < 256; i++ {
				addr := 0x20000 + i*8
				if got, want := c.Memory().Read(addr), oracle.Mem(addr); got != want {
					t.Fatalf("seed %d %s: mem[%#x] = %d, want %d", seed, kind, addr, got, want)
				}
			}
		}
	}
}

// TestSplitStoreTaintAblation verifies the Section 9.2 optimization: with
// split store taints, STT-Rename must not be slower, and on a
// forwarding-heavy kernel must reduce taint-blocked store address issues.
func TestSplitStoreTaintAblation(t *testing.T) {
	p := storeLoadProgram(300)
	base := MegaConfig()
	unified := MustNew(base, KindSTTRename, p)
	resU, err := unified.Run(RunLimits{MaxCycles: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	split := base
	split.SplitStoreTaints = true
	sc := MustNew(split, KindSTTRename, p)
	resS, err := sc.Run(RunLimits{MaxCycles: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if resS.Cycles > resU.Cycles {
		t.Errorf("split store taints slowed STT-Rename: %d > %d cycles", resS.Cycles, resU.Cycles)
	}
}
