package core

import "repro/internal/isa"

// The per-cycle trace hook API — the simulator-side half of the paper's
// TraceDoctor methodology (Section 7): where internal/trace digests
// end-of-run counters, a Recorder sees every micro-op's passage through
// every pipeline stage, cycle-stamped, with the scheme-inserted delays
// (a Delay-on-Miss park, an InvisiSpec exposure, an NDA withheld
// broadcast, an STT nop slot) annotated at the event that caused them.
// The exchange2 forwarding-error pathology of Section 9.2 was found with
// exactly this kind of per-instruction extraction.
//
// Recorders follow the Probe contract (probe.go): strictly observational.
// Every hook fires after the pipeline has committed to the reported
// transition, carries copies of the relevant state, and must not perturb
// timing — the commit stream and cycle count of a run with a Recorder
// attached are byte-identical to the same run without one
// (TestRecorderIsObservational). When Core.Recorder is nil the dispatch
// cost is one pointer compare per site.

// Recorder observes per-uop pipeline stage transitions.
type Recorder interface {
	// OnStage fires once per micro-op stage transition. Events are
	// emitted in non-decreasing cycle order; within a cycle they follow
	// the back-to-front stage processing order (commit before issue
	// before rename). Implementations must not retain the event past the
	// call (it is a value; retaining copies is fine).
	OnStage(ev StageEvent)
}

// Stage identifies a pipeline stage transition in a StageEvent.
type Stage uint8

const (
	// StageFetch is the cycle the instruction was fetched. It is
	// reported retroactively alongside StageRename (the front end does
	// not know sequence numbers; wrong-path fetches that never reach
	// rename are not traced).
	StageFetch Stage = iota
	// StageRename is the cycle the uop was renamed into the backend.
	StageRename
	// StageIssue is an issue-stage selection outcome: a successful issue
	// of the whole uop or a store half (Part), a Delay-on-Miss park
	// (AnnotDoMParked), or an STT taint nop (AnnotSTTNopped).
	StageIssue
	// StageWriteback is the cycle a completion event retired (store
	// halves report their Part).
	StageWriteback
	// StageVP is the cycle the visibility-point walk passed the uop —
	// the moment it became non-speculative — or, annotated, a VP-side
	// scheme event on it (exposure re-access, NDA broadcast release).
	StageVP
	// StageCommit is the cycle the uop retired architecturally.
	StageCommit
	// StageSquash is the cycle the uop was squashed (branch mispredict
	// recovery or a memory-ordering flush).
	StageSquash

	numStages
)

var stageNames = [numStages]string{
	StageFetch:     "fetch",
	StageRename:    "rename",
	StageIssue:     "issue",
	StageWriteback: "writeback",
	StageVP:        "vp",
	StageCommit:    "commit",
	StageSquash:    "squash",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage?"
}

// TraceAnnot is a bitset of scheme and memory annotations on a StageEvent
// — where each scheme inserts its delays, stamped on the event that
// inserted them.
type TraceAnnot uint16

const (
	// AnnotL1Hit marks an issued load that hit the L1 (or forwarded from
	// the store queue), and an exposure that hit.
	AnnotL1Hit TraceAnnot = 1 << iota
	// AnnotDoMParked marks a Delay-on-Miss park: the issue attempt found
	// a speculative L1 miss and the load parked until the visibility
	// point (Stage is StageIssue; no issue happened).
	AnnotDoMParked
	// AnnotDoMResumed marks the visibility-point walk re-arming a parked
	// load (Stage is StageVP).
	AnnotDoMResumed
	// AnnotInvisible marks an InvisiSpec load issued into the
	// speculative buffer instead of the cache hierarchy.
	AnnotInvisible
	// AnnotExposure marks an InvisiSpec exposure re-access starting
	// (Stage is StageVP; commit-driven exposures report the same stage —
	// commit is the definitive visibility point).
	AnnotExposure
	// AnnotNDAWithheld marks a completed load whose ready broadcast NDA
	// withheld at writeback.
	AnnotNDAWithheld
	// AnnotNDAReleased marks the withheld broadcast being released by
	// the visibility point (StageVP) or commit (StageCommit).
	AnnotNDAReleased
	// AnnotSTTNopped marks an issue slot the STT taint unit wasted on a
	// nop instead of the selected uop (Stage is StageIssue; the uop
	// stays queued).
	AnnotSTTNopped
	// AnnotMispredict marks a resolved control instruction whose
	// predicted target was wrong (Stage is StageWriteback).
	AnnotMispredict

	numAnnots = 9
)

var annotNames = [numAnnots]string{
	"l1-hit",
	"dom-park",
	"dom-resume",
	"invisible",
	"exposure",
	"nda-withheld",
	"nda-release",
	"stt-nop",
	"mispredict",
}

// AnnotNames renders the set as stable dash-case names in bit order.
func (a TraceAnnot) AnnotNames() []string {
	var out []string
	for i := 0; i < numAnnots; i++ {
		if a&(1<<i) != 0 {
			out = append(out, annotNames[i])
		}
	}
	return out
}

// AppendNames appends the set's names to dst separated by '|' — the
// allocation-free encoder path (see internal/trace).
func (a TraceAnnot) AppendNames(dst []byte) []byte {
	first := true
	for i := 0; i < numAnnots; i++ {
		if a&(1<<i) == 0 {
			continue
		}
		if !first {
			dst = append(dst, '|')
		}
		first = false
		dst = append(dst, annotNames[i]...)
	}
	return dst
}

// StageEvent describes one micro-op stage transition.
type StageEvent struct {
	Cycle uint64
	Seq   uint64 // program-order sequence number assigned at rename
	PC    uint64
	Op    isa.Op
	Stage Stage
	// Part distinguishes store address/data halves at issue and
	// writeback; everything else reports PartWhole.
	Part IssuePart
	// Annot carries the scheme and memory annotations of this event.
	Annot TraceAnnot
	// Speculative reports whether the uop had not yet passed the
	// visibility point when the event fired.
	Speculative bool
}

// recordStage reports a stage transition at the current cycle. Callers
// check c.Recorder != nil first so the nil case costs one compare.
func (c *Core) recordStage(u int32, stage Stage, part issuePart, annot TraceAnnot) {
	c.recordStageAt(u, c.cycle, stage, part, annot)
}

// recordStageAt is recordStage with an explicit cycle stamp (the
// retroactive fetch record).
func (c *Core) recordStageAt(u int32, cycle uint64, stage Stage, part issuePart, annot TraceAnnot) {
	b := &c.a.body[u]
	c.Recorder.OnStage(StageEvent{
		Cycle:       cycle,
		Seq:         c.a.seq[u],
		PC:          b.pc,
		Op:          b.inst.Op,
		Stage:       stage,
		Part:        part,
		Annot:       annot,
		Speculative: !b.nonSpec,
	})
}
