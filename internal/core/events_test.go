package core

import (
	"testing"
)

// TestEventQueueOrdering pins the heap's (at, seq) ordering: pops come out
// by fire cycle, and same-cycle events in program order — the property the
// writeback stage relies on to process completions oldest-first.
func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	u := &uop{}
	for _, e := range []event{
		{at: 9, seq: 3, u: u},
		{at: 5, seq: 7, u: u},
		{at: 5, seq: 2, u: u},
		{at: 12, seq: 1, u: u},
		{at: 5, seq: 4, u: u},
	} {
		q.push(e)
	}
	if _, ok := q.due(4); ok {
		t.Fatal("nothing fires before cycle 5")
	}
	var got []uint64
	for {
		e, ok := q.due(9)
		if !ok {
			break
		}
		got = append(got, e.seq)
	}
	want := []uint64{2, 4, 7, 3}
	if len(got) != len(want) {
		t.Fatalf("popped %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("popped %v, want %v", got, want)
		}
	}
	if e, ok := q.due(12); !ok || e.seq != 1 {
		t.Fatalf("final event = %+v ok=%v, want seq 1", e, ok)
	}
	if !q.empty() {
		t.Fatal("queue should be empty")
	}
}

// TestROBForEachFrom pins the visibility-point cursor walk: resuming at an
// offset skips the visited prefix, a refusal returns the blocking offset,
// and a full pass returns the count.
func TestROBForEachFrom(t *testing.T) {
	r := newROB(8)
	for i := uint64(1); i <= 5; i++ {
		r.push(&uop{seq: i})
	}
	var seen []uint64
	off := r.forEachFrom(0, func(u *uop) bool {
		if u.seq == 3 {
			return false
		}
		seen = append(seen, u.seq)
		return true
	})
	if off != 2 || len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("walk stopped at off %d after %v", off, seen)
	}
	// Resume past the blocker once it clears.
	seen = seen[:0]
	off = r.forEachFrom(off, func(u *uop) bool { seen = append(seen, u.seq); return true })
	if off != r.len() || len(seen) != 3 || seen[0] != 3 {
		t.Fatalf("resumed walk: off %d, seen %v", off, seen)
	}
	// Offsets survive head pops (the caller shifts them down) and work
	// across the ring seam.
	r.pop()
	r.pop()
	r.push(&uop{seq: 6})
	r.push(&uop{seq: 7})
	seen = seen[:0]
	off = r.forEachFrom(3, func(u *uop) bool { seen = append(seen, u.seq); return true })
	if off != r.len() || len(seen) != 2 || seen[0] != 6 || seen[1] != 7 {
		t.Fatalf("wrapped walk: off %d, seen %v", off, seen)
	}
}

// TestUopPoolRecycles asserts the rename pool actually recycles committed
// uops: after a run, rename must have reused pooled uops instead of
// allocating one per rename.
func TestUopPoolRecycles(t *testing.T) {
	c := MustNew(MegaConfig(), KindBaseline, sumProgram(200))
	res, err := c.Run(RunLimits{MaxCycles: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("did not halt")
	}
	if len(c.pool) == 0 {
		t.Fatal("rename pool empty after a full run; commit is not recycling uops")
	}
	// Far fewer live uops than renames: the pool bounds allocations by
	// pipeline depth, not instruction count.
	if got := len(c.pool); uint64(got) >= res.Insts {
		t.Fatalf("pool holds %d uops for %d committed instructions; recycling is not bounding allocations", got, res.Insts)
	}
}
