package core

import (
	"testing"

	"repro/internal/isa"
)

// TestEventQueueOrdering pins the heap's (at, seq) ordering: pops come out
// by fire cycle, and same-cycle events in program order — the property the
// writeback stage relies on to process completions oldest-first.
func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	for _, e := range []event{
		{at: 9, seq: 3},
		{at: 5, seq: 7},
		{at: 5, seq: 2},
		{at: 12, seq: 1},
		{at: 5, seq: 4},
	} {
		q.push(e)
	}
	if _, ok := q.due(4); ok {
		t.Fatal("nothing fires before cycle 5")
	}
	var got []uint64
	for {
		e, ok := q.due(9)
		if !ok {
			break
		}
		got = append(got, e.seq)
	}
	want := []uint64{2, 4, 7, 3}
	if len(got) != len(want) {
		t.Fatalf("popped %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("popped %v, want %v", got, want)
		}
	}
	if e, ok := q.due(12); !ok || e.seq != 1 {
		t.Fatalf("final event = %+v ok=%v, want seq 1", e, ok)
	}
	if !q.empty() {
		t.Fatal("queue should be empty")
	}
}

// TestROBForEachFrom pins the visibility-point cursor walk: resuming at an
// offset skips the visited prefix, a refusal returns the blocking offset,
// and a full pass returns the count.
func TestROBForEachFrom(t *testing.T) {
	a := newUopArena()
	r := newROB(8, a)
	for i := uint64(1); i <= 5; i++ {
		r.push(mkUop(a, i, uop{}))
	}
	var seen []uint64
	off := r.forEachFrom(0, func(u int32) bool {
		if a.seq[u] == 3 {
			return false
		}
		seen = append(seen, a.seq[u])
		return true
	})
	if off != 2 || len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("walk stopped at off %d after %v", off, seen)
	}
	// Resume past the blocker once it clears.
	seen = seen[:0]
	off = r.forEachFrom(off, func(u int32) bool { seen = append(seen, a.seq[u]); return true })
	if off != r.len() || len(seen) != 3 || seen[0] != 3 {
		t.Fatalf("resumed walk: off %d, seen %v", off, seen)
	}
	// Offsets survive head pops (the caller shifts them down) and work
	// across the ring seam.
	a.release(r.pop())
	a.release(r.pop())
	r.push(mkUop(a, 6, uop{}))
	r.push(mkUop(a, 7, uop{}))
	seen = seen[:0]
	off = r.forEachFrom(3, func(u int32) bool { seen = append(seen, a.seq[u]); return true })
	if off != r.len() || len(seen) != 2 || seen[0] != 6 || seen[1] != 7 {
		t.Fatalf("wrapped walk: off %d, seen %v", off, seen)
	}
}

// TestUopArenaRecycles asserts commit and squash actually recycle arena
// slots: after a run, the arena's footprint must be bounded by pipeline
// depth, not by instruction count.
func TestUopArenaRecycles(t *testing.T) {
	c := MustNew(MegaConfig(), KindBaseline, sumProgram(200))
	res, err := c.Run(RunLimits{MaxCycles: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("did not halt")
	}
	if len(c.a.free) == 0 {
		t.Fatal("arena free list empty after a full run; commit is not releasing slots")
	}
	// Far fewer slots than renames: recycling bounds the arena by the
	// in-flight window (ROB size), not by the committed instruction count.
	if got := len(c.a.body); got > c.cfg.ROBSize || uint64(got) >= res.Insts {
		t.Fatalf("arena grew to %d slots for %d committed instructions (ROB %d); recycling is not bounding growth",
			got, res.Insts, c.cfg.ROBSize)
	}
}

// TestArenaGenerationStaleness pins the handle contract everything else
// relies on: a release invalidates every outstanding ref to the slot, and
// a recycled slot's new ref does not validate the old one.
func TestArenaGenerationStaleness(t *testing.T) {
	a := newUopArena()
	u := mkUop(a, 1, uop{inst: isa.Inst{Op: isa.Ld}})
	ref := a.ref(u)
	if !a.live(ref) {
		t.Fatal("fresh ref must be live")
	}
	a.release(u)
	if a.live(ref) {
		t.Fatal("ref survived its uop's release")
	}
	u2 := mkUop(a, 2, uop{inst: isa.Inst{Op: isa.Add}})
	if u2 != u {
		t.Fatalf("LIFO free list expected: got slot %d, want %d", u2, u)
	}
	if a.live(ref) {
		t.Fatal("stale ref validated against the slot's new occupant")
	}
	if !a.live(a.ref(u2)) {
		t.Fatal("recycled slot's own ref must be live")
	}
	if a.cls[u2] != isa.ClassALU || a.seq[u2] != 2 {
		t.Fatalf("recycled slot kept stale hot fields: cls %v seq %d", a.cls[u2], a.seq[u2])
	}
}
