package core

import "testing"

// countingRecorder tallies stage events and annotations without
// inspecting the run.
type countingRecorder struct {
	total    uint64
	byStage  [numStages]uint64
	byAnnot  [numAnnots]uint64
	badStage int
}

func (r *countingRecorder) OnStage(ev StageEvent) {
	r.total++
	if int(ev.Stage) >= int(numStages) {
		r.badStage++
		return
	}
	r.byStage[ev.Stage]++
	for i := 0; i < numAnnots; i++ {
		if ev.Annot&(1<<i) != 0 {
			r.byAnnot[i]++
		}
	}
}

// TestRecorderIsObservational pins the recorder API's core contract,
// mirroring TestProbeIsObservational: attaching a stage-trace recorder
// must not perturb timing or architectural results — the commit stream
// and cycle count with a recorder are byte-identical to a run without
// one, for every registered scheme.
func TestRecorderIsObservational(t *testing.T) {
	cfg := MegaConfig()
	for _, kind := range SchemeKinds() {
		rec := &countingRecorder{}
		withHash, withCycles := hashedRunWith(t, cfg, kind, "505.mcf", probeBudget, nil, rec)
		bareHash, bareCycles := hashedRun(t, cfg, kind, "505.mcf", probeBudget, nil)
		if withHash != bareHash || withCycles != bareCycles {
			t.Errorf("%s: recorder perturbed the run: hash %s/%s cycles %d/%d",
				kind, withHash, bareHash, withCycles, bareCycles)
		}
		if rec.badStage > 0 {
			t.Errorf("%s: %d events with out-of-range stage", kind, rec.badStage)
		}
		for _, st := range []Stage{StageFetch, StageRename, StageIssue, StageWriteback, StageCommit} {
			if rec.byStage[st] == 0 {
				t.Errorf("%s: no %s events recorded", kind, st)
			}
		}
		// Rename admits a uop; commit or squash retires it. The counts
		// can differ only by the uops still in flight at the cycle cap.
		entered := rec.byStage[StageRename]
		left := rec.byStage[StageCommit] + rec.byStage[StageSquash]
		if left > entered {
			t.Errorf("%s: %d commits+squashes but only %d renames", kind, left, entered)
		}
		if entered-left > uint64(cfg.ROBSize) {
			t.Errorf("%s: %d uops unaccounted for (> ROB size %d)", kind, entered-left, cfg.ROBSize)
		}
	}
}

// TestRecorderSchemeAnnotations asserts each scheme's delay insertions
// are visible in the trace on a memory-bound proxy: DoM parks, InvisiSpec
// invisible loads and exposures, NDA withheld/released broadcasts, and
// STT-Issue nop slots.
func TestRecorderSchemeAnnotations(t *testing.T) {
	cfg := MegaConfig()
	annotIdx := func(name string) int {
		for i, n := range annotNames {
			if n == name {
				return i
			}
		}
		t.Fatalf("unknown annotation %q", name)
		return -1
	}
	cases := []struct {
		kind   SchemeKind
		annots []string
	}{
		{KindDoM, []string{"dom-park", "dom-resume"}},
		{KindInvisiSpec, []string{"invisible", "exposure"}},
		{KindNDA, []string{"nda-withheld", "nda-release"}},
		{KindSTTIssue, []string{"stt-nop"}},
	}
	for _, tc := range cases {
		rec := &countingRecorder{}
		hashedRunWith(t, cfg, tc.kind, "505.mcf", probeBudget, nil, rec)
		for _, name := range tc.annots {
			if rec.byAnnot[annotIdx(name)] == 0 {
				t.Errorf("%s: no %s annotations recorded", tc.kind, name)
			}
		}
	}
	// The baseline inserts no scheme delays: none of the scheme
	// annotations may appear.
	rec := &countingRecorder{}
	hashedRunWith(t, cfg, KindBaseline, "505.mcf", probeBudget, nil, rec)
	for _, name := range []string{"dom-park", "dom-resume", "invisible", "exposure", "nda-withheld", "nda-release", "stt-nop"} {
		if n := rec.byAnnot[annotIdx(name)]; n > 0 {
			t.Errorf("baseline: %d %s annotations recorded", n, name)
		}
	}
}

// TestAnnotNames pins the two annotation renderers against each other.
func TestAnnotNames(t *testing.T) {
	set := AnnotL1Hit | AnnotDoMParked | AnnotMispredict
	want := "l1-hit|dom-park|mispredict"
	if got := string(set.AppendNames(nil)); got != want {
		t.Errorf("AppendNames = %q, want %q", got, want)
	}
	names := set.AnnotNames()
	if len(names) != 3 || names[0] != "l1-hit" || names[1] != "dom-park" || names[2] != "mispredict" {
		t.Errorf("AnnotNames = %v", names)
	}
	if got := TraceAnnot(0).AppendNames(nil); len(got) != 0 {
		t.Errorf("empty set rendered %q", got)
	}
}
