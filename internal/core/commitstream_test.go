package core

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/workloads"
)

var updateStreams = flag.Bool("update", false, "rewrite testdata/commit_streams.golden")

const (
	deepBudget  = 30_000 // the original representative cells
	suiteBudget = 8_000  // the full 22-proxy suite, reduced budget
)

// streamTier is one group of pinned cells: a (configuration × benchmark)
// slice hashed at a common cycle budget, for every registered scheme.
type streamTier struct {
	configs []Config
	benches []string
	budget  uint64
}

// streamTiers enumerates the pinned slice of the evaluation matrix. The
// first tier is the original deep-budget representatives (the narrowest
// and widest configurations, one memory-bound and one forwarding-heavy
// proxy) — its keys and enumeration order are preserved so those hashes
// stay byte-identical across golden extensions. The second tier pins the
// full 22-proxy suite on the same two configurations at a reduced budget,
// so every proxy's committed stream — and with it every workload
// behaviour knob — is hash-pinned for every scheme.
func streamTiers() []streamTier {
	var suite []string
	for _, p := range workloads.Suite() {
		suite = append(suite, p.Name)
	}
	edges := []Config{SmallConfig(), MegaConfig()}
	return []streamTier{
		{configs: edges, benches: []string{"505.mcf", "548.exchange2"}, budget: deepBudget},
		{configs: edges, benches: suite, budget: suiteBudget},
	}
}

// cellKey renders the golden-file key for one cell. The deep-budget tier
// keeps its historical key format; reduced-budget cells carry the budget
// as a suffix so the two tiers can pin the same benchmark independently.
func cellKey(cfg Config, kind SchemeKind, bench string, budget uint64) string {
	if budget == deepBudget {
		return fmt.Sprintf("%s/%s/%s", cfg.Name, kind, bench)
	}
	return fmt.Sprintf("%s/%s/%s@%d", cfg.Name, kind, bench, budget)
}

// hashedRun runs one cell for a cycle budget and hashes every committed
// instruction record, with an optional probe attached; it is shared with
// the probe-observationality tests so both hash the same record fields.
func hashedRun(t *testing.T, cfg Config, kind SchemeKind, bench string, budget uint64, probe Probe) (hash string, cycles uint64) {
	t.Helper()
	return hashedRunWith(t, cfg, kind, bench, budget, probe, nil)
}

// hashedRunWith is hashedRun with an optional stage-trace recorder too —
// shared with the recorder-observationality tests so probes and recorders
// are held to the same byte-identity bar.
func hashedRunWith(t *testing.T, cfg Config, kind SchemeKind, bench string, budget uint64, probe Probe, rec Recorder) (hash string, cycles uint64) {
	t.Helper()
	prof, err := workloads.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	c := MustNew(cfg, kind, prof.Build(1))
	c.Probe = probe
	c.Recorder = rec
	h := sha256.New()
	c.CommitHook = func(rec isa.Commit) {
		fmt.Fprintf(h, "%d %v %d %d %v %d %d\n",
			rec.PC, rec.Inst, rec.Value, rec.Addr, rec.Taken, rec.Target, rec.Rd)
	}
	if _, err := c.Run(RunLimits{MaxCycles: budget}); err != nil {
		t.Fatalf("%s/%s/%s: %v", cfg.Name, kind, bench, err)
	}
	return hex.EncodeToString(h.Sum(nil)), c.Cycle()
}

// commitStreamHash is hashedRun without a probe (the golden cells).
func commitStreamHash(t *testing.T, cfg Config, kind SchemeKind, bench string, budget uint64) string {
	t.Helper()
	hash, _ := hashedRun(t, cfg, kind, bench, budget, nil)
	return hash
}

// TestCommittedStreamGolden pins the committed-instruction stream of each
// cell as a hash. This is the byte-identical oracle for scheduler and
// pipeline refactors: a perf-only change to the core must reproduce every
// hash exactly. An intentional model change regenerates the file with
// -update.
func TestCommittedStreamGolden(t *testing.T) {
	path := filepath.Join("testdata", "commit_streams.golden")
	tiers := streamTiers()

	if *updateStreams {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, tier := range tiers {
			for _, cfg := range tier.configs {
				for _, kind := range SchemeKinds() {
					for _, bench := range tier.benches {
						fmt.Fprintf(&b, "%s %s\n", cellKey(cfg, kind, bench, tier.budget),
							commitStreamHash(t, cfg, kind, bench, tier.budget))
					}
				}
			}
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to generate): %v", err)
	}
	defer f.Close()
	want := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 {
			want[fields[0]] = fields[1]
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for _, tier := range tiers {
		for _, cfg := range tier.configs {
			for _, kind := range SchemeKinds() {
				for _, bench := range tier.benches {
					key := cellKey(cfg, kind, bench, tier.budget)
					cfg, kind, bench, budget := cfg, kind, bench, tier.budget
					t.Run(key, func(t *testing.T) {
						wantHash, ok := want[key]
						if !ok {
							t.Fatalf("no golden hash for %s (regenerate with -update)", key)
						}
						if got := commitStreamHash(t, cfg, kind, bench, budget); got != wantHash {
							t.Errorf("committed stream diverged: hash %s, want %s; if the model change is intentional, regenerate with -update", got, wantHash)
						}
					})
				}
			}
		}
	}
}
