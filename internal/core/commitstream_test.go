package core

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/workloads"
)

var updateStreams = flag.Bool("update", false, "rewrite testdata/commit_streams.golden")

// streamCells is the representative slice of the evaluation matrix whose
// committed-instruction streams are pinned: the narrowest and widest
// configurations, every scheme, one memory-bound and one forwarding-heavy
// proxy. Together they exercise squashes, memory-ordering flushes, taint
// blocking, and delayed broadcasts.
func streamCells() (configs []Config, benches []string) {
	return []Config{SmallConfig(), MegaConfig()}, []string{"505.mcf", "548.exchange2"}
}

// commitStreamHash runs one cell for a fixed cycle budget and hashes every
// committed instruction record.
func commitStreamHash(t *testing.T, cfg Config, kind SchemeKind, bench string) string {
	t.Helper()
	prof, err := workloads.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	c := MustNew(cfg, kind, prof.Build(1))
	h := sha256.New()
	c.CommitHook = func(rec isa.Commit) {
		fmt.Fprintf(h, "%d %v %d %d %v %d %d\n",
			rec.PC, rec.Inst, rec.Value, rec.Addr, rec.Taken, rec.Target, rec.Rd)
	}
	if _, err := c.Run(RunLimits{MaxCycles: 30_000}); err != nil {
		t.Fatalf("%s/%s/%s: %v", cfg.Name, kind, bench, err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestCommittedStreamGolden pins the committed-instruction stream of each
// representative cell as a hash. This is the byte-identical oracle for
// scheduler and pipeline refactors: a perf-only change to the core must
// reproduce every hash exactly. An intentional model change regenerates
// the file with -update.
func TestCommittedStreamGolden(t *testing.T) {
	path := filepath.Join("testdata", "commit_streams.golden")
	configs, benches := streamCells()

	if *updateStreams {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, cfg := range configs {
			for _, kind := range SchemeKinds() {
				for _, bench := range benches {
					fmt.Fprintf(&b, "%s/%s/%s %s\n", cfg.Name, kind, bench,
						commitStreamHash(t, cfg, kind, bench))
				}
			}
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to generate): %v", err)
	}
	defer f.Close()
	want := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 {
			want[fields[0]] = fields[1]
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for _, cfg := range configs {
		for _, kind := range SchemeKinds() {
			for _, bench := range benches {
				key := fmt.Sprintf("%s/%s/%s", cfg.Name, kind, bench)
				t.Run(key, func(t *testing.T) {
					wantHash, ok := want[key]
					if !ok {
						t.Fatalf("no golden hash for %s (regenerate with -update)", key)
					}
					if got := commitStreamHash(t, cfg, kind, bench); got != wantHash {
						t.Errorf("committed stream diverged: hash %s, want %s; if the model change is intentional, regenerate with -update", got, wantHash)
					}
				})
			}
		}
	}
}
