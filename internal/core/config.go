package core

import (
	"fmt"

	"repro/internal/mem"
)

// Config parameterizes one core. The four named constructors mirror the
// paper's Table 1 BOOM configurations (Small/Medium/Large/Mega).
type Config struct {
	Name string

	// Width is the fetch, decode, rename, and commit width.
	Width int
	// IssueWidth is the maximum instructions selected for issue per cycle
	// (including store address/data partial issues and scheme-wasted slots).
	IssueWidth int
	// MemPorts is the number of parallel memory issues per cycle; it also
	// bounds the per-cycle non-speculative-load broadcast bandwidth
	// (Section 5.1 of the paper).
	MemPorts int

	ROBSize  int
	IQSize   int
	LQSize   int
	SQSize   int
	PhysRegs int
	// MaxBranches is the number of in-flight branch checkpoints.
	MaxBranches int

	// FrontendDelay is the fetch-to-rename depth in cycles; it sets the
	// branch misprediction redirect penalty.
	FrontendDelay uint64
	// FetchBufSize is the fetch buffer capacity in instructions.
	FetchBufSize int

	// ExecDelay is the issue-to-execute pipeline depth (register read and
	// wakeup/select pipelining): it delays architecturally visible events
	// (branch resolution, store address arrival at the LSU, cache access
	// start) without breaking back-to-back ALU bypass.
	ExecDelay uint64

	// Functional unit latencies.
	ALULat uint64
	MulLat uint64
	DivLat uint64 // fixed divider latency (non-pipelined unit)
	AGULat uint64
	FwdLat uint64 // store-to-load forwarding latency after the AGU

	// SpecWakeup enables speculative scheduling of load dependents assuming
	// an L1 hit. NDA removes this logic (Section 5.1).
	SpecWakeup bool

	// SplitStoreTaints is the Section 9.2 optimization for STT-Rename:
	// track separate address/data taints for stores so untainted address
	// generation can issue early. Off by default (the paper's design).
	SplitStoreTaints bool

	// Predictor selects the direction predictor: "tage", "gshare", or
	// "bimodal".
	Predictor string
	BTBSize   int
	RASDepth  int

	Hier mem.HierarchyConfig
}

// Validate checks the configuration for structural sanity.
func (c Config) Validate() error {
	switch {
	case c.Width < 1 || c.Width > 8:
		return fmt.Errorf("core: %s: width %d out of range", c.Name, c.Width)
	case c.IssueWidth < 1:
		return fmt.Errorf("core: %s: issue width %d", c.Name, c.IssueWidth)
	case c.MemPorts < 1:
		return fmt.Errorf("core: %s: mem ports %d", c.Name, c.MemPorts)
	case c.ROBSize < 2*c.Width:
		return fmt.Errorf("core: %s: ROB %d too small for width %d", c.Name, c.ROBSize, c.Width)
	case c.IQSize < c.Width:
		return fmt.Errorf("core: %s: IQ %d too small", c.Name, c.IQSize)
	case c.LQSize < 1 || c.SQSize < 1:
		return fmt.Errorf("core: %s: LQ/SQ must be positive", c.Name)
	case c.PhysRegs < 34:
		return fmt.Errorf("core: %s: need at least 34 physical registers, have %d", c.Name, c.PhysRegs)
	case c.MaxBranches < 1:
		return fmt.Errorf("core: %s: need at least one branch checkpoint", c.Name)
	case c.FetchBufSize < c.Width:
		return fmt.Errorf("core: %s: fetch buffer smaller than width", c.Name)
	}
	switch c.Predictor {
	case "tage", "gshare", "bimodal":
	default:
		return fmt.Errorf("core: %s: unknown predictor %q", c.Name, c.Predictor)
	}
	return nil
}

func baseConfig(name string, width, memPorts, rob int) Config {
	return Config{
		Name:          name,
		Width:         width,
		IssueWidth:    width + 2,
		MemPorts:      memPorts,
		ROBSize:       rob,
		IQSize:        12 * width,
		LQSize:        8 * width,
		SQSize:        8 * width,
		PhysRegs:      32 + rob + 8,
		MaxBranches:   4 * width,
		FrontendDelay: 4,
		ExecDelay:     2,
		FetchBufSize:  4*width + 4,
		ALULat:        1,
		MulLat:        3,
		DivLat:        12,
		AGULat:        1,
		FwdLat:        1,
		SpecWakeup:    true,
		Predictor:     "tage",
		BTBSize:       512,
		RASDepth:      16,
		Hier:          mem.DefaultHierarchyConfig(),
	}
}

// SmallConfig is the 1-wide BOOM (Table 1: width 1, 1 memory port, 32 ROB
// entries; baseline SPEC2017 IPC 0.46 in the paper).
func SmallConfig() Config { return baseConfig("small", 1, 1, 32) }

// MediumConfig is the 2-wide BOOM (Table 1: width 2, 1 memory port, 64 ROB
// entries; baseline IPC 0.60).
func MediumConfig() Config { return baseConfig("medium", 2, 1, 64) }

// LargeConfig is the 3-wide BOOM (Table 1: width 3, 1 memory port, 96 ROB
// entries; baseline IPC 0.943).
func LargeConfig() Config { return baseConfig("large", 3, 1, 96) }

// MegaConfig is the 4-wide BOOM (Table 1: width 4, 2 memory ports, 128 ROB
// entries; baseline IPC 1.27). It is the paper's default configuration.
func MegaConfig() Config { return baseConfig("mega", 4, 2, 128) }

// Configs returns the four Table 1 configurations in ascending width order.
func Configs() []Config {
	return []Config{SmallConfig(), MediumConfig(), LargeConfig(), MegaConfig()}
}

// Gem5STTConfig approximates the configuration of the original STT paper's
// gem5 evaluation (Section 8.6 / Table 5 footnote 3): a wide core with an
// idealized single-cycle L1, which the paper shows reaches a Mega-class
// baseline IPC.
func Gem5STTConfig() Config {
	c := baseConfig("gem5-stt", 4, 2, 192)
	c.IQSize = 48
	c.LQSize = 32
	c.SQSize = 32
	c.MaxBranches = 20
	c.Hier = mem.Gem5HierarchyConfig()
	return c
}

// Gem5NDAConfig approximates the original NDA paper's gem5 configuration
// (Table 5 footnote 4): a mid-sized core whose baseline IPC the paper finds
// lands between the Medium and Large BOOM.
func Gem5NDAConfig() Config {
	c := baseConfig("gem5-nda", 2, 1, 80)
	c.IQSize = 24
	c.Hier = mem.Gem5HierarchyConfig()
	return c
}

// ConfigByName returns a named configuration, matching the Table 1 names.
func ConfigByName(name string) (Config, error) {
	switch name {
	case "small":
		return SmallConfig(), nil
	case "medium":
		return MediumConfig(), nil
	case "large":
		return LargeConfig(), nil
	case "mega":
		return MegaConfig(), nil
	case "gem5-stt":
		return Gem5STTConfig(), nil
	case "gem5-nda":
		return Gem5NDAConfig(), nil
	}
	return Config{}, fmt.Errorf("core: unknown config %q", name)
}
