package core

// lsu holds the load and store queues and implements store-to-load
// forwarding and memory-ordering-violation detection. Queues are kept in
// program (seq) order; capacities are enforced at rename. Entries are raw
// arena indices: a uop's queue entry is removed at the same pipeline event
// that ends its life (head removal at commit, tail truncation at squash),
// so the queues never hold a recycled slot across a cycle boundary.
//
// The LSU speculates that loads do not alias older stores with unresolved
// addresses ("always predict no-alias", as the unmodified BOOM does). When
// a store address resolves and a younger load turns out to have executed
// with stale data, the load is marked with an ordering violation and the
// pipeline is flushed when that load reaches commit — BOOM's recovery
// mechanism. The paper's exchange2 analysis (Section 9.2) hinges on this
// machinery: schemes that delay store address generation suffer more such
// violations.
type lsu struct {
	a  *uopArena
	lq []int32
	sq []int32

	// specBufLive counts the live InvisiSpec speculative-buffer entries.
	// The buffer is modeled per load-queue entry (an invisible load holds
	// one from issue until exposure or squash), so occupancy is bounded by
	// LQSize — the hardware sizing the Stats.SpecBufPeak counter reports.
	specBufLive int
}

func newLSU(a *uopArena) *lsu { return &lsu{a: a} }

func (l *lsu) lqLen() int { return len(l.lq) }
func (l *lsu) sqLen() int { return len(l.sq) }

func (l *lsu) addLoad(i int32) {
	l.a.body[i].lqIdx = len(l.lq)
	l.lq = append(l.lq, i)
}

func (l *lsu) addStore(i int32) {
	l.a.body[i].sqIdx = len(l.sq)
	l.sq = append(l.sq, i)
}

// fwdResult is the outcome of a forwarding search.
type fwdResult uint8

const (
	fwdNone fwdResult = iota // no older store matches: go to memory
	fwdHit                   // forward from a ready older store
	fwdWait                  // matching older store's data not ready yet
)

// search scans older stores for the load's address (8-byte word
// granularity), youngest first. sawUnknown reports whether any older store
// had an unresolved address, i.e. the load would execute speculatively.
func (l *lsu) search(load int32) (res fwdResult, value uint64, fromSeq int64, sawUnknown bool) {
	a := l.a
	addr := a.body[load].addr &^ 7
	loadSeq := a.seq[load]
	for i := len(l.sq) - 1; i >= 0; i-- {
		si := l.sq[i]
		if a.seq[si] >= loadSeq {
			continue
		}
		st := &a.body[si]
		if !st.addrReady {
			sawUnknown = true
			continue
		}
		if st.addr&^7 != addr {
			continue
		}
		if st.dataReady {
			return fwdHit, st.result, int64(a.seq[si]), sawUnknown
		}
		return fwdWait, 0, int64(a.seq[si]), sawUnknown
	}
	return fwdNone, 0, -1, sawUnknown
}

// checkViolations is called when a store's address resolves: any younger
// load that already executed against the same word without forwarding from
// this store (or a younger one) read stale data. The offending loads are
// marked; the oldest will flush the pipeline at commit. Returns the number
// of violations found.
func (l *lsu) checkViolations(st int32) int {
	n := 0
	a := l.a
	addr := a.body[st].addr &^ 7
	stSeq := a.seq[st]
	for _, li := range l.lq {
		if a.seq[li] <= stSeq || a.state[li] == stateWaiting || a.state[li] == stateSquashed {
			continue
		}
		ld := &a.body[li]
		if ld.addr&^7 != addr {
			continue
		}
		if ld.fwdFromSeq >= int64(stSeq) {
			continue // got its data from this store or a younger one
		}
		if !ld.orderViolation {
			ld.orderViolation = true
			n++
		}
	}
	return n
}

// specBufAdd claims a speculative-buffer entry for an invisible load and
// returns the new occupancy (for the peak statistic).
func (l *lsu) specBufAdd(i int32) int {
	l.a.body[i].inSpecBuf = true
	l.specBufLive++
	return l.specBufLive
}

// specBufDrop releases a load's speculative-buffer entry, if it holds one:
// at exposure, or when a squash kills the load before it ever reached the
// visibility point (the no-side-effect discard that makes wrong-path
// invisible loads invisible for good).
func (l *lsu) specBufDrop(i int32) {
	b := &l.a.body[i]
	if b.inSpecBuf {
		b.inSpecBuf = false
		l.specBufLive--
	}
}

// commitOldest removes the queue head for a committing load or store. The
// removal copies down in place rather than reslicing off the front:
// sliding the slice along its backing array would make the rename-side
// append reallocate once the capacity walks off the end — one heap
// allocation per LQSize commits, forever. The copy is a handful of moves
// over a queue bounded by LQ/SQ size.
func (l *lsu) commitOldest(i int32) {
	if l.a.isLoad(i) && len(l.lq) > 0 && l.lq[0] == i {
		n := copy(l.lq, l.lq[1:])
		l.lq = l.lq[:n]
	}
	if l.a.isStore(i) && len(l.sq) > 0 && l.sq[0] == i {
		n := copy(l.sq, l.sq[1:])
		l.sq = l.sq[:n]
	}
}

// squashYoungerThan drops all queue entries with seq > limit. It runs
// inside the squash window, after the ROB walk released the squashed
// slots: the freed tails are readable (nothing reallocates mid-squash)
// and their seq values still identify them.
func (l *lsu) squashYoungerThan(limit uint64) {
	for len(l.lq) > 0 && l.a.seq[l.lq[len(l.lq)-1]] > limit {
		l.lq = l.lq[:len(l.lq)-1]
	}
	for len(l.sq) > 0 && l.a.seq[l.sq[len(l.sq)-1]] > limit {
		l.sq = l.sq[:len(l.sq)-1]
	}
}

// clear empties both queues (full-pipeline flush).
func (l *lsu) clear() {
	l.lq = l.lq[:0]
	l.sq = l.sq[:0]
}

// memDepPredictor is a store-set-style memory dependence predictor: loads
// whose PC recently caused an ordering violation are forced to wait until
// all older store addresses are known, instead of speculating no-alias.
// Real BOOMs carry an equivalent structure; without it, a scheme that
// systematically delays store addresses (STT, Section 9.2) would livelock
// on a flush/re-violate cycle. Entries decay periodically so the predictor
// tracks phase behaviour rather than pinning loads forever.
type memDepPredictor struct {
	pcs        [64]uint64
	valid      [64]bool
	decayEvery uint64
	lastDecay  uint64
}

func newMemDepPredictor() *memDepPredictor {
	return &memDepPredictor{decayEvery: 16_384}
}

func (m *memDepPredictor) index(pc uint64) int { return int(pc % uint64(len(m.pcs))) }

// record marks a load PC as violation-prone.
func (m *memDepPredictor) record(pc uint64) {
	i := m.index(pc)
	m.pcs[i] = pc
	m.valid[i] = true
}

// mustWait reports whether the load at pc should wait for all older store
// addresses, decaying stale entries as a side effect.
func (m *memDepPredictor) mustWait(pc, now uint64) bool {
	if now-m.lastDecay >= m.decayEvery {
		m.lastDecay = now
		for i := range m.valid {
			m.valid[i] = false
		}
	}
	i := m.index(pc)
	return m.valid[i] && m.pcs[i] == pc
}
