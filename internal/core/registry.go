package core

import (
	"fmt"
	"sort"
	"sync"
)

// SchemeFactory builds a scheme implementation bound to one core instance.
// Factories run inside New, after the core's configuration is validated and
// its structures (physical register file, checkpoint file, ...) are sized,
// so they may read c.cfg to size their own state.
type SchemeFactory func(c *Core) scheme

// SchemeSpec describes one secure speculation scheme to the registry.
type SchemeSpec struct {
	Kind   SchemeKind    // unique id; also the value carried by Run/Stats
	Name   string        // unique CLI/display name, e.g. "stt-rename"
	Order  int           // presentation order in SchemeKinds and the figures
	Secure bool          // false only for the unsafe baseline
	New    SchemeFactory // constructor invoked by core.New
}

// registry holds every known scheme. The built-in four self-register from
// their defining files' init functions; a new scheme is a one-file drop-in
// that declares its kind and calls RegisterScheme from its own init.
var registry = struct {
	sync.RWMutex
	specs map[SchemeKind]SchemeSpec
}{specs: make(map[SchemeKind]SchemeSpec)}

// RegisterScheme adds a scheme to the registry. It panics on a nil factory,
// an empty name, or a kind/name collision: registration happens at init
// time, where a broken drop-in should fail loudly, not at run time.
func RegisterScheme(spec SchemeSpec) {
	if spec.New == nil {
		panic(fmt.Sprintf("core: RegisterScheme(%q): nil factory", spec.Name))
	}
	if spec.Name == "" {
		panic(fmt.Sprintf("core: RegisterScheme(kind %d): empty name", spec.Kind))
	}
	registry.Lock()
	defer registry.Unlock()
	if prev, ok := registry.specs[spec.Kind]; ok {
		panic(fmt.Sprintf("core: scheme kind %d registered twice (%q, %q)", spec.Kind, prev.Name, spec.Name))
	}
	for _, s := range registry.specs {
		if s.Name == spec.Name {
			panic(fmt.Sprintf("core: scheme name %q registered twice", spec.Name))
		}
	}
	registry.specs[spec.Kind] = spec
}

// deregisterScheme removes a registration; tests use it to unwind drop-ins.
func deregisterScheme(kind SchemeKind) {
	registry.Lock()
	defer registry.Unlock()
	delete(registry.specs, kind)
}

// schemeSpecs returns all registrations sorted by presentation order.
func schemeSpecs() []SchemeSpec {
	registry.RLock()
	specs := make([]SchemeSpec, 0, len(registry.specs))
	for _, s := range registry.specs {
		specs = append(specs, s)
	}
	registry.RUnlock()
	sort.Slice(specs, func(i, j int) bool {
		if specs[i].Order != specs[j].Order {
			return specs[i].Order < specs[j].Order
		}
		return specs[i].Kind < specs[j].Kind
	})
	return specs
}

// SchemeKinds returns every registered kind in presentation order (for the
// built-in four, the paper's order: baseline, stt-rename, stt-issue, nda).
func SchemeKinds() []SchemeKind {
	specs := schemeSpecs()
	kinds := make([]SchemeKind, len(specs))
	for i, s := range specs {
		kinds[i] = s.Kind
	}
	return kinds
}

// SecureSchemeKinds returns the registered kinds with Secure set, in
// presentation order — everything the baseline is compared against.
func SecureSchemeKinds() []SchemeKind {
	var kinds []SchemeKind
	for _, s := range schemeSpecs() {
		if s.Secure {
			kinds = append(kinds, s.Kind)
		}
	}
	return kinds
}

// SchemeKindByName parses a registered scheme name.
func SchemeKindByName(name string) (SchemeKind, bool) {
	registry.RLock()
	defer registry.RUnlock()
	for _, s := range registry.specs {
		if s.Name == name {
			return s.Kind, true
		}
	}
	return 0, false
}

// SchemeNames returns every registered scheme name in presentation order.
func SchemeNames() []string {
	specs := schemeSpecs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

func (k SchemeKind) String() string {
	registry.RLock()
	defer registry.RUnlock()
	if s, ok := registry.specs[k]; ok {
		return s.Name
	}
	return "scheme?"
}

// newScheme instantiates the registered implementation for a kind.
func newScheme(k SchemeKind, c *Core) (scheme, error) {
	registry.RLock()
	spec, ok := registry.specs[k]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown scheme kind %d (known: %v)", k, SchemeNames())
	}
	return spec.New(c), nil
}
