package core

import (
	"testing"

	"repro/internal/isa"
)

// missChaseProgram is the idle-skip stress workload: an LCG walks a 1 MiB
// region (larger than the L2), so nearly every load is a DRAM miss, the
// varying stride defeats the prefetcher, and — when mispredict is set — a
// pseudo-random branch keeps control speculation honest. The address chain
// lives in registers, not loaded data, so the program is miss-heavy without
// needing a data image.
func missChaseProgram(iters int64, mispredict bool) *isa.Program {
	name := "misschase"
	if !mispredict {
		name = "misschase-predictable"
	}
	b := isa.NewBuilder(name)
	const base = 0x10_0000
	b.Li(isa.X5, base)
	b.Li(isa.X6, 12345)      // LCG state
	b.Li(isa.X7, iters)      // trip count
	b.Li(isa.X8, 1103515245) // LCG multiplier
	b.Li(isa.X10, 0)         // accumulator
	b.Label("loop")
	b.Mul(isa.X6, isa.X6, isa.X8)
	b.Addi(isa.X6, isa.X6, 12345)
	b.Srli(isa.X9, isa.X6, 7) // discard the weak low LCG bits
	b.Andi(isa.X9, isa.X9, (1<<17)-1)
	b.Slli(isa.X9, isa.X9, 3)
	b.Add(isa.X9, isa.X9, isa.X5)
	b.Ld(isa.X11, isa.X9, 0)
	b.Add(isa.X10, isa.X10, isa.X11)
	if mispredict {
		b.Srli(isa.X12, isa.X6, 9)
		b.Andi(isa.X12, isa.X12, 1)
		b.Beq(isa.X12, isa.X0, "even")
		b.Addi(isa.X10, isa.X10, 3)
		b.Label("even")
	}
	b.Addi(isa.X7, isa.X7, -1)
	b.Bne(isa.X7, isa.X0, "loop")
	b.Halt()
	return b.MustBuild()
}

// missPointerChaseProgram is the serialized-miss workload: each load's address
// comes from the previously loaded value (a random permutation over a
// 1 MiB table, larger than the L2), so misses cannot overlap and the
// machine drains completely between fills — the mcf-style access pattern
// the idle-cycle warp exists for.
func missPointerChaseProgram(iters int64) *isa.Program {
	const words = 1 << 17
	table := make([]uint64, words)
	for i := range table {
		table[i] = uint64(i*1103515245+12345) & (words - 1) // bijective: odd multiplier mod 2^k
	}
	b := isa.NewBuilder("ptrchase")
	const base = 0x10_0000
	b.Data(base, table)
	b.Li(isa.X5, base)
	b.Li(isa.X6, 1) // current index
	b.Li(isa.X7, iters)
	b.Label("loop")
	b.Slli(isa.X9, isa.X6, 3)
	b.Add(isa.X9, isa.X9, isa.X5)
	b.Ld(isa.X6, isa.X9, 0) // next index = table[current]
	b.Addi(isa.X7, isa.X7, -1)
	b.Bne(isa.X7, isa.X0, "loop")
	b.Halt()
	return b.MustBuild()
}

// runTicking is Run without the idle-cycle warp: the plain cycle-by-cycle
// machine, used as the equivalence reference.
func runTicking(c *Core, lim RunLimits) Result {
	if lim.MaxCycles == 0 {
		lim.MaxCycles = ^uint64(0)
	}
	if lim.MaxInsts == 0 {
		lim.MaxInsts = ^uint64(0)
	}
	for !c.halted && c.cycle < lim.MaxCycles && c.Stats.Committed < lim.MaxInsts {
		c.Step()
	}
	return c.result()
}

// TestIdleSkipEquivalence is the idle-cycle skipper's contract test: Run
// (which warps over idle stretches) and a pure Step loop must produce the
// same commit stream, the same Result, and the same Stats — cycle counts,
// stall attributions, scheme counters, everything. Skipping may never
// change which cycle anything happens on, only how fast we get there.
func TestIdleSkipEquivalence(t *testing.T) {
	kinds := []SchemeKind{KindBaseline, KindSTTRename, KindSTTIssue, KindNDA, KindDoM, KindInvisiSpec}

	cases := []struct {
		name string
		cfg  Config
		prog *isa.Program
		lim  RunLimits
	}{
		// Miss-dominated with mispredicts: long idle windows punctuated by
		// squashes; the MaxCycles limit binds, so the warp's end-of-window
		// clamp is exercised too.
		{"chase/small", SmallConfig(), missChaseProgram(20_000, true), RunLimits{MaxCycles: 30_000}},
		{"chase/mega", MegaConfig(), missChaseProgram(20_000, true), RunLimits{MaxCycles: 30_000}},
		// Serialized data-dependent misses: the deepest idle windows.
		{"ptrchase/small", SmallConfig(), missPointerChaseProgram(20_000), RunLimits{MaxCycles: 30_000}},
		{"ptrchase/mega", MegaConfig(), missPointerChaseProgram(20_000), RunLimits{MaxCycles: 30_000}},
		// Runs to Halt: the terminal drain must match.
		{"chase-halt/mega", MegaConfig(), missChaseProgram(150, true), RunLimits{}},
		// Busy loops with almost no idle cycles: the skipper must stay out
		// of the way. MaxInsts binds on the second.
		{"sum/mega", MegaConfig(), sumProgram(2_000), RunLimits{}},
		{"storeload/small", SmallConfig(), storeLoadProgram(800), RunLimits{MaxInsts: 5_000}},
	}

	for _, tc := range cases {
		for _, kind := range kinds {
			t.Run(tc.name+"/"+kind.String(), func(t *testing.T) {
				var skipCommits, tickCommits []isa.Commit

				cs := MustNew(tc.cfg, kind, tc.prog)
				cs.CommitHook = func(rec isa.Commit) { skipCommits = append(skipCommits, rec) }
				skipRes, err := cs.Run(tc.lim)
				if err != nil {
					t.Fatalf("Run: %v", err)
				}

				ct := MustNew(tc.cfg, kind, tc.prog)
				ct.CommitHook = func(rec isa.Commit) { tickCommits = append(tickCommits, rec) }
				tickRes := runTicking(ct, tc.lim)

				if len(skipCommits) != len(tickCommits) {
					t.Fatalf("commit count diverged: skip %d, tick %d", len(skipCommits), len(tickCommits))
				}
				for i := range skipCommits {
					if skipCommits[i] != tickCommits[i] {
						t.Fatalf("commit #%d diverged:\nskip: %+v\ntick: %+v", i, skipCommits[i], tickCommits[i])
					}
				}
				if skipRes != tickRes {
					t.Errorf("results diverged:\nskip: %+v\ntick: %+v", skipRes, tickRes)
				}
			})
		}
	}
}

// TestIdleSkipEngages guards the point of the tentpole: on a miss-dominated
// workload the warp must actually fire, covering a large share of the
// simulated cycles. (The equivalence test alone would pass even if nextWake
// never found a window.)
func TestIdleSkipEngages(t *testing.T) {
	prog := missPointerChaseProgram(20_000)
	for _, kind := range []SchemeKind{KindBaseline, KindDoM, KindInvisiSpec} {
		c := MustNew(MegaConfig(), kind, prog)
		const limit = 30_000
		if _, err := c.Run(RunLimits{MaxCycles: limit}); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		stepped := c.stepped
		if stepped == 0 || c.cycle < limit/2 {
			t.Fatalf("%v: degenerate run: stepped=%d cycle=%d", kind, stepped, c.cycle)
		}
		warped := c.cycle - stepped
		if warped*2 < c.cycle {
			t.Errorf("%v: idle warp covered %d of %d cycles (<50%%) on a serialized-miss chase", kind, warped, c.cycle)
		}
	}
}

// TestSteadyStateZeroAlloc pins the allocation-free hot loop: once warmed
// up, the core must simulate at zero heap allocations per cycle. Both
// phases of the uop lifecycle are covered: the predictable case exercises
// the commit path (slots recycle at retirement), and the mispredicting
// case hammers the squash path — wrong-path uops must recycle through the
// arena free list the moment they are reclaimed, since a squashed slot's
// lingering references (pending events, wakeup lists, the broadcast queue)
// are generation-checked handles, not liveness keep-alives.
func TestSteadyStateZeroAlloc(t *testing.T) {
	cases := []struct {
		name       string
		mispredict bool
	}{
		{"predictable", false},
		{"squash-heavy", true},
	}
	for _, tc := range cases {
		for _, kind := range []SchemeKind{KindBaseline, KindSTTRename, KindDoM, KindInvisiSpec} {
			prog := missChaseProgram(1<<40, tc.mispredict)
			c := MustNew(MegaConfig(), kind, prog)
			// Warm every pool past its high-water mark: arena, event heap,
			// queues, memory pages, predictor tables.
			if _, err := c.Run(RunLimits{MaxCycles: 20_000}); err != nil {
				t.Fatalf("%s/%v: warmup: %v", tc.name, kind, err)
			}
			target := c.Cycle()
			avg := testing.AllocsPerRun(50, func() {
				target += 500
				if _, err := c.Run(RunLimits{MaxCycles: target}); err != nil {
					t.Fatalf("%s/%v: %v", tc.name, kind, err)
				}
			})
			if avg != 0 {
				t.Errorf("%s/%v: steady-state Run allocates: %.2f allocs per 500 cycles", tc.name, kind, avg)
			}
		}
	}
}
