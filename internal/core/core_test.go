package core

import (
	"fmt"
	"testing"

	"repro/internal/isa"
)

// runChecked runs prog on a core and verifies every committed instruction
// against the in-order architectural reference simulator. It returns the
// result for further assertions.
func runChecked(t *testing.T, cfg Config, kind SchemeKind, prog *isa.Program, lim RunLimits) Result {
	t.Helper()
	oracle := isa.NewArchSim(prog)
	c := MustNew(cfg, kind, prog)
	var nChecked uint64
	c.CommitHook = func(got isa.Commit) {
		want := oracle.Step()
		nChecked++
		if got.PC != want.PC || got.Inst != want.Inst {
			t.Fatalf("%s/%s: commit #%d: stream diverged: got pc=%d %v, want pc=%d %v",
				cfg.Name, kind, nChecked, got.PC, got.Inst, want.PC, want.Inst)
		}
		if got != want {
			t.Fatalf("%s/%s: commit #%d (pc=%d %v): got %+v, want %+v",
				cfg.Name, kind, nChecked, got.PC, got.Inst, got, want)
		}
	}
	res, err := c.Run(lim)
	if err != nil {
		t.Fatalf("%s/%s: %v\n%s", cfg.Name, kind, err, c.Stats)
	}
	return res
}

func sumProgram(n int64) *isa.Program {
	b := isa.NewBuilder("sum")
	b.Li(isa.X5, 0)
	b.Li(isa.X6, n)
	b.Li(isa.X10, 0)
	b.Label("loop")
	b.Add(isa.X10, isa.X10, isa.X5)
	b.Addi(isa.X5, isa.X5, 1)
	b.Blt(isa.X5, isa.X6, "loop")
	b.Halt()
	return b.MustBuild()
}

// storeLoadProgram exercises store-to-load forwarding and memory-order
// speculation: stores and immediately dependent loads to a tiny region.
func storeLoadProgram(iters int64) *isa.Program {
	b := isa.NewBuilder("storeload")
	const base = 0x2000
	b.Li(isa.X5, base)
	b.Li(isa.X6, 0)     // i
	b.Li(isa.X7, iters) // limit
	b.Li(isa.X10, 0)    // acc
	b.Label("loop")
	b.Andi(isa.X8, isa.X6, 7)
	b.Slli(isa.X8, isa.X8, 3)
	b.Add(isa.X8, isa.X8, isa.X5) // addr = base + 8*(i&7)
	b.Sd(isa.X6, isa.X8, 0)       // M[addr] = i
	b.Ld(isa.X9, isa.X8, 0)       // forward
	b.Add(isa.X10, isa.X10, isa.X9)
	b.Addi(isa.X6, isa.X6, 1)
	b.Blt(isa.X6, isa.X7, "loop")
	b.Halt()
	return b.MustBuild()
}

// pointerChaseProgram builds a shuffled linked list and walks it: a
// long-latency dependent-load chain.
func pointerChaseProgram(nodes, hops int) *isa.Program {
	b := isa.NewBuilder("chase")
	const base = 0x10000
	// next[i] = (i*7+1) mod nodes, a full cycle when gcd(7,nodes)=1.
	words := make([]uint64, nodes)
	for i := range words {
		words[i] = base + uint64((i*7+1)%nodes)*8
	}
	b.Data(base, words)
	b.Li(isa.X5, base)
	b.Li(isa.X6, 0)
	b.Li(isa.X7, int64(hops))
	b.Label("loop")
	b.Ld(isa.X5, isa.X5, 0)
	b.Addi(isa.X6, isa.X6, 1)
	b.Blt(isa.X6, isa.X7, "loop")
	b.Halt()
	return b.MustBuild()
}

// branchyProgram mixes data-dependent branches over loaded values.
func branchyProgram(iters int64) *isa.Program {
	b := isa.NewBuilder("branchy")
	const base = 0x3000
	words := make([]uint64, 64)
	for i := range words {
		words[i] = uint64(i*i*2654435761) >> 7
	}
	b.Data(base, words)
	b.Li(isa.X5, base)
	b.Li(isa.X6, 0)
	b.Li(isa.X7, iters)
	b.Li(isa.X10, 0)
	b.Label("loop")
	b.Andi(isa.X8, isa.X6, 63)
	b.Slli(isa.X8, isa.X8, 3)
	b.Add(isa.X8, isa.X8, isa.X5)
	b.Ld(isa.X9, isa.X8, 0)
	b.Andi(isa.X11, isa.X9, 1)
	b.Beq(isa.X11, isa.X0, "even")
	b.Addi(isa.X10, isa.X10, 3)
	b.J("next")
	b.Label("even")
	b.Addi(isa.X10, isa.X10, 1)
	b.Label("next")
	b.Addi(isa.X6, isa.X6, 1)
	b.Blt(isa.X6, isa.X7, "loop")
	b.Halt()
	return b.MustBuild()
}

func callProgram(iters int64) *isa.Program {
	b := isa.NewBuilder("calls")
	b.Li(isa.X6, 0)
	b.Li(isa.X7, iters)
	b.Li(isa.X10, 0)
	b.Label("loop")
	b.Call("addone")
	b.Addi(isa.X6, isa.X6, 1)
	b.Blt(isa.X6, isa.X7, "loop")
	b.Halt()
	b.Label("addone")
	b.Addi(isa.X10, isa.X10, 1)
	b.Ret()
	return b.MustBuild()
}

func allSchemes() []SchemeKind { return SchemeKinds() }

func TestCoreMatchesOracleOnKernels(t *testing.T) {
	progs := []*isa.Program{
		sumProgram(200),
		storeLoadProgram(150),
		pointerChaseProgram(64, 300),
		branchyProgram(200),
		callProgram(100),
	}
	for _, cfg := range Configs() {
		for _, kind := range allSchemes() {
			for _, p := range progs {
				t.Run(fmt.Sprintf("%s/%s/%s", cfg.Name, kind, p.Name), func(t *testing.T) {
					res := runChecked(t, cfg, kind, p, RunLimits{MaxCycles: 2_000_000})
					if !res.Halted {
						t.Fatalf("did not halt: %+v", res)
					}
				})
			}
		}
	}
}

func TestCoreFinalArchState(t *testing.T) {
	p := sumProgram(100)
	oracle := isa.NewArchSim(p)
	if _, err := oracle.Run(10_000); err != nil {
		t.Fatal(err)
	}
	for _, kind := range allSchemes() {
		c := MustNew(MegaConfig(), kind, p)
		res, err := c.Run(RunLimits{MaxCycles: 1_000_000})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Insts != oracle.InstCount() {
			t.Errorf("%s: committed %d, oracle %d", kind, res.Insts, oracle.InstCount())
		}
		// The committed value of x10 is visible via the committed RAT.
		got := c.prf.read(c.arat[isa.X10])
		if got != oracle.Reg(isa.X10) {
			t.Errorf("%s: x10 = %d, want %d", kind, got, oracle.Reg(isa.X10))
		}
	}
}

func TestCoreMemoryStateMatchesOracle(t *testing.T) {
	p := storeLoadProgram(100)
	oracle := isa.NewArchSim(p)
	if _, err := oracle.Run(100_000); err != nil {
		t.Fatal(err)
	}
	for _, kind := range allSchemes() {
		c := MustNew(MegaConfig(), kind, p)
		if _, err := c.Run(RunLimits{MaxCycles: 1_000_000}); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for i := uint64(0); i < 8; i++ {
			addr := 0x2000 + i*8
			if got, want := c.Memory().Read(addr), oracle.Mem(addr); got != want {
				t.Errorf("%s: mem[%#x] = %d, want %d", kind, addr, got, want)
			}
		}
	}
}

// TestSchemeIPCOrdering checks the paper's first-order performance facts on
// a memory-plus-compute workload: baseline >= STT-Issue and STT variants
// >= NDA is not universal per benchmark, but baseline must dominate all
// secure schemes, and every scheme must still make progress.
func TestSchemeIPCOrdering(t *testing.T) {
	p := branchyProgram(400)
	ipc := map[SchemeKind]float64{}
	for _, kind := range allSchemes() {
		c := MustNew(MegaConfig(), kind, p)
		res, err := c.Run(RunLimits{MaxCycles: 2_000_000})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		ipc[kind] = res.IPC
	}
	if ipc[KindBaseline] < ipc[KindSTTRename] || ipc[KindBaseline] < ipc[KindSTTIssue] || ipc[KindBaseline] < ipc[KindNDA] {
		t.Errorf("baseline must dominate secure schemes: %v", ipc)
	}
	for k, v := range ipc {
		if v <= 0 {
			t.Errorf("%s: IPC %v", k, v)
		}
	}
}

// dependentChaseProgram is the Spectre-shaped kernel: a long-latency
// pointer chase over a large shuffled list feeds a data-dependent branch
// (a slow-resolving C-shadow), under which a small, fast (L1-resident)
// load chain executes speculatively. The fast chain's dependent load and
// branch have ready operands long before the slow shadow resolves, so STT
// must block/nop them and NDA must withhold the fast loads' broadcasts.
func dependentChaseProgram(hops int) *isa.Program {
	b := isa.NewBuilder("depchase")
	const big = 0x100000
	const small = 0x8000
	const bigNodes = 4096 // 32 KiB footprint per lap x sparse layout: misses
	bigWords := make([]uint64, bigNodes*8)
	for i := 0; i < bigNodes; i++ {
		next := (i*2654435761 + 1) % bigNodes // pseudo-random permutation walk
		bigWords[i*8] = big + uint64(next)*64
	}
	b.Data(big, bigWords)
	smallWords := make([]uint64, 64)
	for i := range smallWords {
		smallWords[i] = small + uint64((i*7+1)%64)*8
	}
	b.Data(small, smallWords)

	b.Li(isa.X20, big)  // slow chase pointer
	b.Li(isa.X5, small) // fast chase pointer
	b.Li(isa.X6, 0)     // i
	b.Li(isa.X7, int64(hops))
	b.Label("loop")
	b.Ld(isa.X8, isa.X20, 0)      // slow load (cache miss)
	b.Beq(isa.X8, isa.X0, "done") // slow-resolving shadow over the rest
	b.Add(isa.X20, isa.X8, isa.X0)
	b.Ld(isa.X9, isa.X5, 0)        // fast speculative load (taint root)
	b.Ld(isa.X10, isa.X9, 0)       // dependent load: tainted transmitter
	b.Add(isa.X5, isa.X10, isa.X0) // keep the fast chain live
	b.Addi(isa.X6, isa.X6, 1)
	b.Blt(isa.X6, isa.X7, "loop")
	b.Label("done")
	b.Halt()
	return b.MustBuild()
}

func TestSTTBlocksTaintedTransmitters(t *testing.T) {
	p := dependentChaseProgram(300)

	cRen := MustNew(MegaConfig(), KindSTTRename, p)
	if _, err := cRen.Run(RunLimits{MaxCycles: 1_000_000}); err != nil {
		t.Fatal(err)
	}
	if cRen.Stats.TaintBlockedSelects == 0 {
		t.Error("STT-Rename recorded no taint-blocked selections")
	}
	if cRen.Stats.TaintedRenames == 0 {
		t.Error("STT-Rename recorded no tainted renames")
	}

	cIss := MustNew(MegaConfig(), KindSTTIssue, p)
	if _, err := cIss.Run(RunLimits{MaxCycles: 1_000_000}); err != nil {
		t.Fatal(err)
	}
	if cIss.Stats.TaintNopSlots == 0 {
		t.Error("STT-Issue wasted no issue slots (nops expected)")
	}
}

func TestNDADelaysBroadcasts(t *testing.T) {
	p := dependentChaseProgram(200)
	c := MustNew(MegaConfig(), KindNDA, p)
	if _, err := c.Run(RunLimits{MaxCycles: 1_000_000}); err != nil {
		t.Fatal(err)
	}
	if c.Stats.DelayedBroadcasts == 0 {
		t.Error("NDA recorded no delayed broadcasts")
	}
}

func TestBaselineSpeculatesLoads(t *testing.T) {
	p := branchyProgram(300)
	c := MustNew(MegaConfig(), KindBaseline, p)
	if _, err := c.Run(RunLimits{MaxCycles: 1_000_000}); err != nil {
		t.Fatal(err)
	}
	if c.Stats.SpecLoadsExecuted == 0 {
		t.Error("baseline executed no speculative loads; speculation machinery inert")
	}
	if c.Stats.Mispredicts == 0 {
		t.Error("branchy workload produced no mispredictions")
	}
}

func TestForwardingAndViolations(t *testing.T) {
	p := storeLoadProgram(200)
	c := MustNew(MegaConfig(), KindBaseline, p)
	if _, err := c.Run(RunLimits{MaxCycles: 1_000_000}); err != nil {
		t.Fatal(err)
	}
	if c.Stats.FwdHits == 0 {
		t.Error("no store-to-load forwards on a forwarding-heavy kernel")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := MegaConfig()
	bad.Width = 0
	if _, err := New(bad, KindBaseline, sumProgram(1)); err == nil {
		t.Error("invalid config accepted")
	}
	bad2 := MegaConfig()
	bad2.Predictor = "oracle"
	if _, err := New(bad2, KindBaseline, sumProgram(1)); err == nil {
		t.Error("unknown predictor accepted")
	}
}

func TestConfigByName(t *testing.T) {
	for _, name := range []string{"small", "medium", "large", "mega", "gem5-stt", "gem5-nda"} {
		cfg, err := ConfigByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", name, err)
		}
	}
	if _, err := ConfigByName("giga"); err == nil {
		t.Error("unknown config accepted")
	}
}

func TestSchemeKindByName(t *testing.T) {
	for _, k := range SchemeKinds() {
		got, ok := SchemeKindByName(k.String())
		if !ok || got != k {
			t.Errorf("round trip failed for %v", k)
		}
	}
	if _, ok := SchemeKindByName("specshield"); ok {
		t.Error("unknown scheme accepted")
	}
}

func TestDeterminism(t *testing.T) {
	p := branchyProgram(300)
	run := func() (uint64, uint64) {
		c := MustNew(MegaConfig(), KindSTTIssue, p)
		res, err := c.Run(RunLimits{MaxCycles: 1_000_000})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles, res.Insts
	}
	c1, i1 := run()
	c2, i2 := run()
	if c1 != c2 || i1 != i2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", c1, i1, c2, i2)
	}
}

func TestROBRing(t *testing.T) {
	a := newUopArena()
	r := newROB(4, a)
	if !r.empty() || r.full() {
		t.Fatal("fresh ROB state wrong")
	}
	for i := uint64(1); i <= 4; i++ {
		r.push(mkUop(a, i, uop{}))
	}
	if !r.full() {
		t.Fatal("ROB should be full")
	}
	n := r.squashYoungerThan(2, func(u int32) { a.release(u) })
	if n != 2 || r.len() != 2 {
		t.Fatalf("squash removed %d, len %d", n, r.len())
	}
	if a.seq[r.pop()] != 1 || a.seq[r.pop()] != 2 {
		t.Fatal("pop order wrong after squash")
	}
	// Wrap-around behaviour.
	r.push(mkUop(a, 5, uop{}))
	r.push(mkUop(a, 6, uop{}))
	var seen []uint64
	r.forEach(func(u int32) bool { seen = append(seen, a.seq[u]); return true })
	if len(seen) != 2 || seen[0] != 5 || seen[1] != 6 {
		t.Fatalf("forEach after wrap = %v", seen)
	}
}

func TestPhysRegFile(t *testing.T) {
	p := newPhysRegFile(40, newUopArena())
	if !p.readyBy(noReg, 0) {
		t.Error("noReg must always be ready")
	}
	if p.read(noReg) != 0 {
		t.Error("noReg must read zero")
	}
	if !p.readyBy(5, 0) {
		t.Error("initial architectural registers must be ready")
	}
	r := p.alloc()
	if p.readyBy(r, 1_000_000) {
		t.Error("fresh register must not be ready")
	}
	p.release(r)
	r2 := p.alloc()
	if r2 != r {
		t.Errorf("LIFO free list expected: got %d want %d", r2, r)
	}
	free := len(p.free)
	want := 40 - 32 - 1
	if free != want {
		t.Errorf("free count %d, want %d", free, want)
	}
}

func TestCheckpointFile(t *testing.T) {
	f := newCheckpointFile(2)
	a := f.alloc()
	b := f.alloc()
	if a < 0 || b < 0 || f.hasFree() {
		t.Fatal("allocation bookkeeping wrong")
	}
	if f.alloc() != -1 {
		t.Fatal("over-allocation allowed")
	}
	f.release(a)
	if !f.hasFree() {
		t.Fatal("release did not free")
	}
	f.releaseAll()
	if f.alloc() == -1 || f.alloc() == -1 {
		t.Fatal("releaseAll did not free everything")
	}
}
