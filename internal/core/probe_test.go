package core

import "testing"

// countingProbe records event counts without inspecting them.
type countingProbe struct {
	issues, broadcasts int
	taintedTransmit    int
	specBroadcasts     int

	cacheAccesses int
	specMSHRs     int // speculative accesses occupying an MSHR
	specVisible   int // speculative accesses that were not invisible
	exposures     int
}

func (p *countingProbe) OnIssue(ev IssueEvent) {
	p.issues++
	if ev.Transmitter && ev.Tainted {
		p.taintedTransmit++
	}
}

func (p *countingProbe) OnLoadBroadcast(ev BroadcastEvent) {
	p.broadcasts++
	if ev.Speculative {
		p.specBroadcasts++
	}
}

func (p *countingProbe) OnCacheAccess(ev CacheAccessEvent) {
	p.cacheAccesses++
	if ev.Speculative && ev.MSHR {
		p.specMSHRs++
	}
	if ev.Speculative && ev.Kind != CacheAccessInvisible {
		p.specVisible++
	}
	if ev.Kind == CacheAccessExposure {
		p.exposures++
	}
}

// probeBudget bounds the probe-test runs; hashedRun (the shared cell
// runner in commitstream_test.go) does the hashing.
const probeBudget = 10_000

// TestProbeIsObservational pins the probe API's core contract: attaching
// a probe must not perturb timing or architectural results — the commit
// stream and cycle count with a probe are byte-identical to a run without
// one, for every scheme.
func TestProbeIsObservational(t *testing.T) {
	cfg := MegaConfig()
	for _, kind := range SchemeKinds() {
		probe := &countingProbe{}
		withHash, withCycles := hashedRun(t, cfg, kind, "505.mcf", probeBudget, probe)
		bareHash, bareCycles := hashedRun(t, cfg, kind, "505.mcf", probeBudget, nil)
		if withHash != bareHash || withCycles != bareCycles {
			t.Errorf("%s: probe perturbed the run: hash %s/%s cycles %d/%d",
				kind, withHash, bareHash, withCycles, bareCycles)
		}
		if probe.issues == 0 {
			t.Errorf("%s: probe saw no issue events", kind)
		}
		if probe.broadcasts == 0 {
			t.Errorf("%s: probe saw no broadcast events", kind)
		}
	}
}

// TestProbeSecurityInvariantsOnProxies asserts the schemes' invariants on
// a real proxy workload, not just generated programs: STT never issues a
// tainted transmitter, NDA never releases a speculative load broadcast.
func TestProbeSecurityInvariantsOnProxies(t *testing.T) {
	cfg := MegaConfig()
	for _, kind := range []SchemeKind{KindSTTRename, KindSTTIssue} {
		probe := &countingProbe{}
		hashedRun(t, cfg, kind, "505.mcf", probeBudget, probe)
		if probe.taintedTransmit > 0 {
			t.Errorf("%s: %d tainted transmitters issued", kind, probe.taintedTransmit)
		}
	}
	probe := &countingProbe{}
	hashedRun(t, cfg, KindNDA, "505.mcf", probeBudget, probe)
	if probe.specBroadcasts > 0 {
		t.Errorf("nda: %d speculative load broadcasts released", probe.specBroadcasts)
	}

	// DoM: no speculative load may occupy an MSHR past the L1.
	dom := &countingProbe{}
	hashedRun(t, cfg, KindDoM, "505.mcf", probeBudget, dom)
	if dom.specMSHRs > 0 {
		t.Errorf("dom: %d speculative MSHR occupancies", dom.specMSHRs)
	}
	// InvisiSpec: every speculative access is invisible; exposures happen.
	inv := &countingProbe{}
	hashedRun(t, cfg, KindInvisiSpec, "505.mcf", probeBudget, inv)
	if inv.specVisible > 0 {
		t.Errorf("invisispec: %d speculative accesses reached the cache side-effect path", inv.specVisible)
	}
	if inv.exposures == 0 {
		t.Error("invisispec: no exposure re-accesses observed on a memory-bound proxy")
	}
}
