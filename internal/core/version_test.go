package core

import "testing"

// TestConfigFingerprint: the fingerprint must be deterministic, equal for
// equal configurations, and sensitive to every knob — it keys the
// harness's persisted cell results.
func TestConfigFingerprint(t *testing.T) {
	if SimVersion == "" {
		t.Fatal("SimVersion must be non-empty")
	}
	a, b := MegaConfig(), MegaConfig()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equal configs must have equal fingerprints")
	}
	mutations := map[string]func(*Config){
		"width":     func(c *Config) { c.Width++ },
		"name":      func(c *Config) { c.Name = "mega2" },
		"div lat":   func(c *Config) { c.DivLat++ },
		"l1 hit":    func(c *Config) { c.Hier.L1D.HitLat++ },
		"predictor": func(c *Config) { c.Predictor = "gshare" },
		"split st":  func(c *Config) { c.SplitStoreTaints = true },
	}
	for name, mutate := range mutations {
		c := MegaConfig()
		mutate(&c)
		if c.Fingerprint() == a.Fingerprint() {
			t.Errorf("%s: mutated config kept the same fingerprint", name)
		}
	}
}
