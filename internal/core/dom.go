package core

// dom implements Delay-on-Miss (Sakalis et al., "Efficient Invisible
// Speculative Execution through Selective Delay and Value Prediction",
// ISCA 2019) — the classic alternative the secure-speculation literature
// compares the paper's schemes against. The observation: a speculative
// load that HITS in the L1 changes no attacker-visible cache state at line
// granularity, so it may proceed exactly as on the baseline; only a
// speculative MISS — which would allocate an MSHR, occupy a fill port, and
// install a line — is a transmission. DoM therefore delays speculative
// misses until the load reaches the visibility point and performs the
// access for real only once it is bound to commit.
//
// Value prediction is off (the paper's baseline DoM variant), so a delayed
// load simply has no result: its dependents stall until the visibility
// point wakes it (issueLoad parks the load with neverRetry; the
// visibility-point walk re-arms retryAt when the load turns
// non-speculative). The hit/miss disambiguation is mem.Hierarchy.Peek — a
// side-effect-free probe of the tag arrays — consulted by issueLoad before
// the access is allowed to touch the hierarchy, so a delayed miss leaves
// no trace: no MSHR, no fill, no LRU movement, no prefetcher training.
//
// The Probe invariant the differential oracle asserts (internal/diffsim):
// under DoM no speculative load ever occupies an MSHR past the L1 — every
// speculative cache access it observes must be an L1 hit.
//
// Idle-skip contract (core.Run): a parked load is invisible to time —
// retryAt is neverRetry while it waits, so nextWake never wakes for it,
// and the visibility-point walk's re-arm (retryAt = cycle+1) is the
// explicit registration of the only event that can un-park it. A machine
// whose every in-flight load is DoM-parked therefore warps straight to
// the frontier advance that frees them.
//
// dom is also the smallest real drop-in example of the scheme registry:
// embed baseline, override the hooks the microarchitecture modifies, and
// self-register from init.
type dom struct{ baseline }

// KindDoM identifies Delay-on-Miss in the scheme registry.
const KindDoM SchemeKind = 4

// domDelayDisabled is a fault-injection switch for the differential
// oracle's mutation tests (internal/core/mutation_test.go): with the miss
// delay disabled DoM degenerates to the unsafe baseline, and the oracle's
// no-speculative-MSHR invariant must catch it. Never set outside tests.
var domDelayDisabled bool

func init() {
	RegisterScheme(SchemeSpec{
		Kind:   KindDoM,
		Name:   "dom",
		Order:  4,
		Secure: true,
		New:    func(*Core) scheme { return dom{} },
	})
}

func (dom) kind() SchemeKind     { return KindDoM }
func (dom) delaysSpecMiss() bool { return !domDelayDisabled }
