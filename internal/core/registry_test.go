package core

import (
	"reflect"
	"testing"

	"repro/internal/isa"
)

// echoKind is an out-of-range kind a drop-in scheme might pick.
const echoKind SchemeKind = 200

// echoScheme is a minimal drop-in: baseline behaviour under a new name.
// Embedding baseline inherits every hook; a real scheme overrides the ones
// its microarchitecture modifies.
type echoScheme struct{ baseline }

func (echoScheme) kind() SchemeKind { return echoKind }

func registerEcho(t *testing.T) {
	t.Helper()
	RegisterScheme(SchemeSpec{
		Kind:   echoKind,
		Name:   "echo",
		Order:  99,
		Secure: true,
		New:    func(*Core) scheme { return echoScheme{} },
	})
	t.Cleanup(func() { deregisterScheme(echoKind) })
}

func TestRegistryBuiltins(t *testing.T) {
	// Presentation order is pinned: the paper's four first, then the
	// extension schemes (DoM, InvisiSpec) in literature order — figures,
	// goldens, and CLI output all depend on this enumeration.
	want := []SchemeKind{KindBaseline, KindSTTRename, KindSTTIssue, KindNDA, KindDoM, KindInvisiSpec}
	if got := SchemeKinds(); !reflect.DeepEqual(got, want) {
		t.Errorf("SchemeKinds() = %v, want %v", got, want)
	}
	wantSecure := []SchemeKind{KindSTTRename, KindSTTIssue, KindNDA, KindDoM, KindInvisiSpec}
	if got := SecureSchemeKinds(); !reflect.DeepEqual(got, wantSecure) {
		t.Errorf("SecureSchemeKinds() = %v, want %v", got, wantSecure)
	}
	wantNames := []string{"baseline", "stt-rename", "stt-issue", "nda", "dom", "invisispec"}
	if got := SchemeNames(); !reflect.DeepEqual(got, wantNames) {
		t.Errorf("SchemeNames() = %v, want %v", got, wantNames)
	}
	for _, name := range wantNames {
		k, ok := SchemeKindByName(name)
		if !ok {
			t.Errorf("SchemeKindByName(%q) not found", name)
		}
		if k.String() != name {
			t.Errorf("kind %d String() = %q, want %q", k, k.String(), name)
		}
	}
}

func TestRegistryDropIn(t *testing.T) {
	registerEcho(t)

	kinds := SchemeKinds()
	if kinds[len(kinds)-1] != echoKind {
		t.Errorf("drop-in not last in SchemeKinds(): %v", kinds)
	}
	if k, ok := SchemeKindByName("echo"); !ok || k != echoKind {
		t.Errorf("SchemeKindByName(echo) = %v, %v", k, ok)
	}
	if echoKind.String() != "echo" {
		t.Errorf("String() = %q, want echo", echoKind.String())
	}
	secure := SecureSchemeKinds()
	if secure[len(secure)-1] != echoKind {
		t.Errorf("secure drop-in missing from SecureSchemeKinds(): %v", secure)
	}

	// The factory is live: a core built with the new kind runs.
	b := isa.NewBuilder("echo")
	b.Halt()
	c, err := New(MegaConfig(), echoKind, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if c.Scheme() != echoKind {
		t.Errorf("core scheme = %v, want %v", c.Scheme(), echoKind)
	}
	if _, err := c.Run(RunLimits{MaxCycles: 1_000}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate kind", func() {
		RegisterScheme(SchemeSpec{Kind: KindBaseline, Name: "other", New: func(*Core) scheme { return baseline{} }})
	})
	mustPanic("duplicate name", func() {
		RegisterScheme(SchemeSpec{Kind: 201, Name: "baseline", New: func(*Core) scheme { return baseline{} }})
	})
	mustPanic("empty name", func() {
		RegisterScheme(SchemeSpec{Kind: 202, New: func(*Core) scheme { return baseline{} }})
	})
	mustPanic("nil factory", func() {
		RegisterScheme(SchemeSpec{Kind: 203, Name: "nil-factory"})
	})
}

func TestUnknownSchemeKindIsAnError(t *testing.T) {
	b := isa.NewBuilder("unknown")
	b.Halt()
	if _, err := New(MegaConfig(), SchemeKind(250), b.MustBuild()); err == nil {
		t.Error("New with an unregistered kind must fail")
	}
	if got := SchemeKind(250).String(); got != "scheme?" {
		t.Errorf("unregistered String() = %q", got)
	}
}
