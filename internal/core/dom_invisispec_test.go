package core

import (
	"testing"

	"repro/internal/isa"
)

// shadowedMissProgram is the cycle-exact mini-program behind the DoM and
// InvisiSpec unit tests: a cold load feeds a conditional branch (a
// C-shadow that resolves only after a full DRAM round trip), and under
// that shadow sit a second cold load and its dependent add. The branch is
// architecturally not taken, so the shadowed pair commits.
//
//	ld  x5, (x20)      ; cold: the slow shadow source
//	bne x5, x0, skip   ; not taken; casts the C-shadow until x5 arrives
//	ld  x6, (x21)      ; cold speculative load: the scheme's decision point
//	add x7, x6, x6     ; the dependent whose wake-up cycle the tests pin
//	skip: halt
//
// warm, when set, touches x21's line up front so the shadowed load HITS
// the L1 (the DoM may-proceed case).
func shadowedMissProgram(warm bool) *isa.Program {
	b := isa.NewBuilder("shadowed-miss")
	b.Data(0x1000, []uint64{0})
	b.Data(0x2000, []uint64{21})
	b.Li(isa.X20, 0x1000)
	b.Li(isa.X21, 0x2000)
	if warm {
		b.Ld(isa.X9, isa.X21, 0)
	}
	b.Ld(isa.X5, isa.X20, 0)
	b.Bne(isa.X5, isa.X0, "skip")
	b.Ld(isa.X6, isa.X21, 0)
	b.Add(isa.X7, isa.X6, isa.X6)
	b.Label("skip")
	b.Halt()
	return b.MustBuild()
}

// issueCycleProbe records the first issue cycle of one PC.
type issueCycleProbe struct {
	pc    uint64
	cycle uint64
}

func (p *issueCycleProbe) OnIssue(ev IssueEvent) {
	if ev.PC == p.pc && p.cycle == 0 {
		p.cycle = ev.Cycle
	}
}
func (p *issueCycleProbe) OnLoadBroadcast(BroadcastEvent) {}
func (p *issueCycleProbe) OnCacheAccess(CacheAccessEvent) {}

// pcOf returns the PC of the first instruction matching op and rd.
func pcOf(t *testing.T, prog *isa.Program, op isa.Op, rd isa.Reg) uint64 {
	t.Helper()
	for pc, in := range prog.Insts {
		if in.Op == op && in.Rd == rd {
			return uint64(pc)
		}
	}
	t.Fatalf("no %v rd=%v in program", op, rd)
	return 0
}

// runShadowed runs the mini-program under one scheme and returns the
// dependent add's first issue cycle, the total run length, and the stats.
func runShadowed(t *testing.T, kind SchemeKind, warm bool) (addIssue, cycles uint64, st Stats) {
	t.Helper()
	prog := shadowedMissProgram(warm)
	c := MustNew(MegaConfig(), kind, prog)
	probe := &issueCycleProbe{pc: pcOf(t, prog, isa.Add, isa.X7)}
	c.Probe = probe
	res, err := c.Run(RunLimits{MaxCycles: 10_000})
	if err != nil {
		t.Fatalf("%s: %v", kind, err)
	}
	if !res.Halted {
		t.Fatalf("%s: did not halt", kind)
	}
	if got := c.ArchReg(isa.X7); got != 42 {
		t.Fatalf("%s: x7 = %d, want 42", kind, got)
	}
	return probe.cycle, res.Cycles, res.Stats
}

// TestDoMDelayAccounting pins Delay-on-Miss cycle accounting on the
// shadowed-miss kernel: the speculative miss is parked until the shadow
// resolves, so the dependent wakes one full memory round trip after the
// baseline's dependent, and exactly one load is accounted as delayed.
func TestDoMDelayAccounting(t *testing.T) {
	baseAdd, baseCycles, baseSt := runShadowed(t, KindBaseline, false)
	domAdd, domCycles, domSt := runShadowed(t, KindDoM, false)

	if domSt.DoMDelayedLoads != 1 {
		t.Errorf("delayed loads = %d, want exactly the one shadowed miss", domSt.DoMDelayedLoads)
	}
	if baseSt.DoMDelayedLoads != 0 {
		t.Errorf("baseline accounted %d DoM delays", baseSt.DoMDelayedLoads)
	}

	// Cycle-exact wake-up pin. Baseline overlaps the shadowed miss with
	// the shadow source's miss, so its dependent wakes right after the
	// shared DRAM round trip; DoM serializes the two misses — the shadowed
	// load starts only at the visibility point — pushing the dependent's
	// issue one full miss latency (L1 4 + L2 14 + DRAM 90 + fill 2 = 110
	// to first data) plus the park/wake handshake later.
	const wantBaseAdd, wantDoMAdd = 120, 238
	if baseAdd != wantBaseAdd {
		t.Errorf("baseline dependent issued at cycle %d, want %d", baseAdd, wantBaseAdd)
	}
	if domAdd != wantDoMAdd {
		t.Errorf("dom dependent issued at cycle %d, want %d", domAdd, wantDoMAdd)
	}
	if domCycles <= baseCycles {
		t.Errorf("dom run (%d cycles) not slower than baseline (%d)", domCycles, baseCycles)
	}
}

// TestDoMHitProceeds: a speculative load that HITS the L1 is not delayed —
// it issues exactly when the baseline's does, and nothing is accounted.
func TestDoMHitProceeds(t *testing.T) {
	baseAdd, _, _ := runShadowed(t, KindBaseline, true)
	domAdd, _, domSt := runShadowed(t, KindDoM, true)
	if domSt.DoMDelayedLoads != 0 {
		t.Errorf("L1-hit load was delayed: %d loads", domSt.DoMDelayedLoads)
	}
	if domAdd != baseAdd {
		t.Errorf("dom dependent issued at cycle %d, baseline at %d; hits must proceed unchanged", domAdd, baseAdd)
	}
}

// TestInvisiSpecExposureCost pins the invisible-load trade-off on the same
// kernel: the dependent wakes at the BASELINE cycle (the invisible access
// keeps speculation's performance), but the load cannot commit before its
// exposure re-access completes, so the run as a whole pays the re-access —
// the halt lands one exposure round trip after the baseline's.
func TestInvisiSpecExposureCost(t *testing.T) {
	baseAdd, baseCycles, _ := runShadowed(t, KindBaseline, false)
	invAdd, invCycles, invSt := runShadowed(t, KindInvisiSpec, false)

	if invSt.InvisibleLoads != 1 {
		t.Errorf("invisible loads = %d, want exactly the one shadowed load", invSt.InvisibleLoads)
	}
	if invSt.Exposures != 1 {
		t.Errorf("exposures = %d, want 1 (the committed invisible load)", invSt.Exposures)
	}
	if invSt.SpecBufPeak != 1 {
		t.Errorf("speculative-buffer peak = %d, want 1", invSt.SpecBufPeak)
	}

	// The dependent's wake is cycle-identical to baseline: invisible
	// loads lose no speculation performance.
	if invAdd != baseAdd {
		t.Errorf("invisispec dependent issued at cycle %d, baseline at %d; invisible loads must not delay dependents", invAdd, baseAdd)
	}
	// The exposure starts only at the visibility point (the shadow's
	// resolution) and re-runs the full miss, stalling the load at the ROB
	// head until it completes: the run is exactly one 110-cycle exposure
	// round trip longer than the baseline's.
	const wantBase, wantInv = 124, 234
	if baseCycles != wantBase {
		t.Errorf("baseline run = %d cycles, want %d", baseCycles, wantBase)
	}
	if invCycles != wantInv {
		t.Errorf("invisispec run = %d cycles, want %d", invCycles, wantInv)
	}
}

// TestInvisiSpecSquashedLoadNeverExposed: a wrong-path invisible load is
// dropped from the speculative buffer and never exposed — the cache never
// learns the transient address (the Spectre-blocking property, unit-sized).
func TestInvisiSpecSquashedLoadNeverExposed(t *testing.T) {
	// The branch is architecturally TAKEN (x5 = 1 at 0x1000), so the
	// fall-through load at 0x2000 is pure wrong-path speculation.
	b := isa.NewBuilder("wrong-path")
	b.Data(0x1000, []uint64{1})
	b.Data(0x2000, []uint64{7})
	b.Li(isa.X20, 0x1000)
	b.Li(isa.X21, 0x2000)
	b.Ld(isa.X5, isa.X20, 0)
	b.Bne(isa.X5, isa.X0, "skip") // taken; fall-through is wrong path
	b.Ld(isa.X6, isa.X21, 0)
	b.Label("skip")
	b.Halt()
	c := MustNew(MegaConfig(), KindInvisiSpec, b.MustBuild())
	if _, err := c.Run(RunLimits{MaxCycles: 10_000}); err != nil {
		t.Fatal(err)
	}
	if c.Stats.InvisibleLoads == 0 {
		t.Fatal("wrong-path load never issued invisibly; the kernel is inert")
	}
	if c.Stats.Exposures != 0 {
		t.Errorf("squashed wrong-path load was exposed %d times", c.Stats.Exposures)
	}
	if c.hier.Contains(0x2000) {
		t.Error("wrong-path address resident in the hierarchy: the invisible load leaked")
	}
	if c.lsu.specBufLive != 0 {
		t.Errorf("speculative buffer not drained: %d live entries", c.lsu.specBufLive)
	}
}

// TestDoMBlocksWrongPathMiss is the DoM counterpart: the wrong-path miss
// is delayed, the branch resolves first, and the squashed load never
// touches the hierarchy.
func TestDoMBlocksWrongPathMiss(t *testing.T) {
	b := isa.NewBuilder("wrong-path-dom")
	b.Data(0x1000, []uint64{1})
	b.Data(0x2000, []uint64{7})
	b.Li(isa.X20, 0x1000)
	b.Li(isa.X21, 0x2000)
	b.Ld(isa.X5, isa.X20, 0)
	b.Bne(isa.X5, isa.X0, "skip")
	b.Ld(isa.X6, isa.X21, 0)
	b.Label("skip")
	b.Halt()
	c := MustNew(MegaConfig(), KindDoM, b.MustBuild())
	if _, err := c.Run(RunLimits{MaxCycles: 10_000}); err != nil {
		t.Fatal(err)
	}
	if c.Stats.DoMDelayedLoads == 0 {
		t.Fatal("wrong-path miss was not delayed; the kernel is inert")
	}
	if c.hier.Contains(0x2000) {
		t.Error("wrong-path address resident in the hierarchy: the delayed miss leaked")
	}
}
