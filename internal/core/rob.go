package core

// rob is the reorder buffer: a ring of in-flight uops in program order.
// Entries are raw arena indices, always live: a uop leaves the ROB at the
// same moment it dies (commit pop or squash truncation), so no generation
// check is needed on reads.
type rob struct {
	a       *uopArena
	entries []int32
	head    int // oldest
	tail    int // next free slot
	count   int
}

func newROB(size int, a *uopArena) *rob {
	return &rob{a: a, entries: make([]int32, size)}
}

func (r *rob) full() bool  { return r.count == len(r.entries) }
func (r *rob) empty() bool { return r.count == 0 }
func (r *rob) len() int    { return r.count }

// push appends a uop at the tail; the caller must check full() first.
func (r *rob) push(i int32) {
	if r.full() {
		panic("core: ROB overflow")
	}
	r.entries[r.tail] = i
	r.tail = (r.tail + 1) % len(r.entries)
	r.count++
}

// peek returns the oldest uop's slot without removing it.
func (r *rob) peek() (int32, bool) {
	if r.empty() {
		return 0, false
	}
	return r.entries[r.head], true
}

// pop removes and returns the oldest uop's slot.
func (r *rob) pop() int32 {
	i, ok := r.peek()
	if !ok {
		panic("core: ROB underflow")
	}
	r.head = (r.head + 1) % len(r.entries)
	r.count--
	return i
}

// forEach visits uops oldest-first; returning false stops the walk.
func (r *rob) forEach(f func(i int32) bool) {
	i := r.head
	for n := 0; n < r.count; n++ {
		if !f(r.entries[i]) {
			return
		}
		i = (i + 1) % len(r.entries)
	}
}

// forEachFrom visits live uops oldest-first starting at the given offset
// from the head, stopping when f returns false. It returns the offset of
// the first unvisited uop — the resume point for the next cycle's walk.
// The visibility-point stage uses this to resume from its last stall
// point instead of re-walking (and re-skipping) the already-visited
// prefix every cycle; the caller keeps the offset consistent across
// commits (head pops shift it down) and squashes (tail truncation caps
// it). Note that ROB sequence numbers are NOT contiguous across a branch
// squash — squashed uops consumed sequence numbers and the refetched path
// gets fresh ones — which is why the cursor is a position, not a seq.
func (r *rob) forEachFrom(off int, f func(i int32) bool) int {
	if off < 0 {
		off = 0
	}
	i := (r.head + off) % len(r.entries)
	for n := off; n < r.count; n++ {
		if !f(r.entries[i]) {
			return n
		}
		i = (i + 1) % len(r.entries)
	}
	return r.count
}

// squashYoungerThan removes all uops with seq > limit, youngest-first,
// invoking reclaim on each before removal. It returns the number squashed.
func (r *rob) squashYoungerThan(limit uint64, reclaim func(i int32)) int {
	n := 0
	for r.count > 0 {
		lastIdx := (r.tail - 1 + len(r.entries)) % len(r.entries)
		i := r.entries[lastIdx]
		if r.a.seq[i] <= limit {
			break
		}
		reclaim(i)
		r.tail = lastIdx
		r.count--
		n++
	}
	return n
}
