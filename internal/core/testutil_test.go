package core

import "repro/internal/isa"

// mkUop allocates an arena slot for a hand-built uop in unit tests. The
// cold body is copied wholesale; seq and the decoded class land in the hot
// slices, exactly as rename would place them. The slot starts in
// stateWaiting; tests that need a different lifecycle state set
// a.state[u] directly.
func mkUop(a *uopArena, seq uint64, b uop) int32 {
	u := a.alloc()
	a.body[u] = b
	a.seq[u] = seq
	a.cls[u] = isa.ClassOf(b.inst.Op)
	return u
}
