package core

import (
	"testing"

	"repro/internal/isa"
)

// mkCore builds a Mega core around a trivial program for unit-level scheme
// manipulation.
func mkCore(t *testing.T, kind SchemeKind) *Core {
	t.Helper()
	b := isa.NewBuilder("unit")
	b.Halt()
	return MustNew(MegaConfig(), kind, b.MustBuild())
}

// TestSTTRenameSameCycleChain drives the rename-group YRoT chain directly:
// a load followed in the same group by dependent ALU ops and a dependent
// branch must chain taints through the group (Figure 3's structure).
func TestSTTRenameSameCycleChain(t *testing.T) {
	c := mkCore(t, KindSTTRename)
	s := c.sch.(*sttRename)
	a := c.a
	c.cycle = 10

	ld := mkUop(a, 100, uop{inst: isa.Inst{Op: isa.Ld, Rd: isa.X5, Rs1: isa.X1}, yrot: noYRoT, blockedYRoT: noYRoT})
	alu := mkUop(a, 101, uop{inst: isa.Inst{Op: isa.Add, Rd: isa.X6, Rs1: isa.X5, Rs2: isa.X2}, yrot: noYRoT, blockedYRoT: noYRoT})
	alu2 := mkUop(a, 102, uop{inst: isa.Inst{Op: isa.Xor, Rd: isa.X7, Rs1: isa.X6, Rs2: isa.X6}, yrot: noYRoT, blockedYRoT: noYRoT})
	br := mkUop(a, 103, uop{inst: isa.Inst{Op: isa.Beq, Rs1: isa.X7, Rs2: isa.X0}, yrot: noYRoT, blockedYRoT: noYRoT})
	for _, u := range []int32{ld, alu, alu2, br} {
		s.renameOne(u)
	}
	if a.body[ld].yrot != noYRoT {
		t.Errorf("load sources untainted, yrot = %d", a.body[ld].yrot)
	}
	if a.body[alu].yrot != 100 || a.body[alu2].yrot != 100 || a.body[br].yrot != 100 {
		t.Errorf("chain yrots = %d,%d,%d, want 100 each", a.body[alu].yrot, a.body[alu2].yrot, a.body[br].yrot)
	}
	if c.Stats.MaxRenameChain < 3 {
		t.Errorf("max same-cycle chain = %d, want >= 3", c.Stats.MaxRenameChain)
	}
	// The branch (a transmitter) must be masked while 100 is unsafe...
	c.prevSafeSeq = 99
	if s.canSelect(br, partWhole) {
		t.Error("tainted branch selectable with unsafe YRoT")
	}
	// ...and selectable once the frontier passes its root.
	c.prevSafeSeq = 100
	if !s.canSelect(br, partWhole) {
		t.Error("branch still masked after its root became safe")
	}
	// Non-transmitters are never masked.
	c.prevSafeSeq = 0
	if !s.canSelect(alu, partWhole) {
		t.Error("ALU op masked; only transmitters may be blocked")
	}
}

// TestSTTRenameCheckpointRestore verifies Section 4.2: taint state is
// checkpointed with branches and restored on squash.
func TestSTTRenameCheckpointRestore(t *testing.T) {
	c := mkCore(t, KindSTTRename)
	s := c.sch.(*sttRename)
	ld := mkUop(c.a, 10, uop{inst: isa.Inst{Op: isa.Ld, Rd: isa.X5, Rs1: isa.X1}, yrot: noYRoT})
	s.renameOne(ld)
	s.saveCheckpoint(3)
	// Younger wrong-path load overwrites the taint.
	ld2 := mkUop(c.a, 20, uop{inst: isa.Inst{Op: isa.Ld, Rd: isa.X5, Rs1: isa.X1}, yrot: noYRoT})
	s.renameOne(ld2)
	if s.taint[isa.X5] != 20 {
		t.Fatalf("taint = %d, want 20", s.taint[isa.X5])
	}
	s.restoreCheckpoint(3)
	if s.taint[isa.X5] != 10 {
		t.Errorf("taint after restore = %d, want 10", s.taint[isa.X5])
	}
	s.fullFlush()
	if s.taint[isa.X5] != noYRoT {
		t.Error("full flush left taint state")
	}
}

// TestSTTRenameUnifiedStoreTaint: the whole store is blocked when either
// operand is tainted (Section 9.2), unless split taints are enabled.
func TestSTTRenameUnifiedStoreTaint(t *testing.T) {
	c := mkCore(t, KindSTTRename)
	s := c.sch.(*sttRename)
	ld := mkUop(c.a, 5, uop{inst: isa.Inst{Op: isa.Ld, Rd: isa.X6, Rs1: isa.X1}, yrot: noYRoT})
	s.renameOne(ld)
	// sd x6, 0(x2): address operand (x2) clean, data operand (x6) tainted.
	st := mkUop(c.a, 6, uop{inst: isa.Inst{Op: isa.Sd, Rs1: isa.X2, Rs2: isa.X6}, yrot: noYRoT})
	s.renameOne(st)
	c.prevSafeSeq = 0
	if s.canSelect(st, partStoreAddr) {
		t.Error("unified taint must block the address half on a tainted data operand")
	}
	if !s.canSelect(st, partStoreData) {
		t.Error("the data half does not transmit and must not be blocked")
	}

	// With split taints the clean address half issues.
	c2 := mkCore(t, KindSTTRename)
	c2.cfg.SplitStoreTaints = true
	s2 := c2.sch.(*sttRename)
	ld2 := mkUop(c2.a, 5, uop{inst: isa.Inst{Op: isa.Ld, Rd: isa.X6, Rs1: isa.X1}, yrot: noYRoT})
	s2.renameOne(ld2)
	st2 := mkUop(c2.a, 6, uop{inst: isa.Inst{Op: isa.Sd, Rs1: isa.X2, Rs2: isa.X6}, yrot: noYRoT})
	s2.renameOne(st2)
	c2.prevSafeSeq = 0
	if !s2.canSelect(st2, partStoreAddr) {
		t.Error("split taints must let the untainted address half issue")
	}
}

// TestSTTIssueTaintUnit drives the issue-stage taint unit: propagation
// through physical registers, nop-ing of tainted transmitters, and the
// back-propagated YRoT mask.
func TestSTTIssueTaintUnit(t *testing.T) {
	c := mkCore(t, KindSTTIssue)
	s := c.sch.(*sttIssue)
	a := c.a
	c.curSafeSeq = 0

	// A load writing p40 taints it with its own seq.
	ld := mkUop(a, 50, uop{pc: 1, inst: isa.Inst{Op: isa.Ld, Rd: isa.X5, Rs1: isa.X1}, pd: 40, ps1: 3, ps2: noReg, blockedYRoT: noYRoT})
	if !s.onIssue(ld, partWhole) {
		t.Fatal("untainted load must issue")
	}
	if s.taint[40] != 50 {
		t.Fatalf("load dest taint = %d, want 50", s.taint[40])
	}
	// An ALU op reading p40 propagates to its dest p41 and is not blocked.
	alu := mkUop(a, 51, uop{inst: isa.Inst{Op: isa.Add, Rd: isa.X6, Rs1: isa.X5, Rs2: isa.X2}, pd: 41, ps1: 40, ps2: 4, blockedYRoT: noYRoT})
	if !s.onIssue(alu, partWhole) {
		t.Fatal("non-transmitter must issue tainted")
	}
	if s.taint[41] != 50 {
		t.Fatalf("propagated taint = %d, want 50", s.taint[41])
	}
	// A dependent load (transmitter) is nop-ed and back-propagates.
	dep := mkUop(a, 52, uop{inst: isa.Inst{Op: isa.Ld, Rd: isa.X7, Rs1: isa.X6}, pd: 42, ps1: 41, ps2: noReg, blockedYRoT: noYRoT})
	if s.onIssue(dep, partWhole) {
		t.Fatal("tainted transmitter must be nop-ed")
	}
	if a.body[dep].blockedYRoT != 50 || c.Stats.TaintNopSlots != 1 {
		t.Errorf("blockedYRoT = %d (nops %d), want 50 (1)", a.body[dep].blockedYRoT, c.Stats.TaintNopSlots)
	}
	if s.canSelect(dep, partWhole) {
		t.Error("masked entry selectable while YRoT unsafe")
	}
	c.curSafeSeq = 50
	if !s.canSelect(dep, partWhole) {
		t.Error("entry still masked after YRoT broadcast")
	}
	// Reallocation clears taints (the no-checkpoint argument, Section 4.3).
	s.allocPhys(41)
	if s.taint[41] != noYRoT {
		t.Error("allocPhys must clear the register's taint")
	}
}

// TestSTTIssueStoreHalves: the address half checks only its own operand;
// the data half is never vetoed (Section 9.2).
func TestSTTIssueStoreHalves(t *testing.T) {
	c := mkCore(t, KindSTTIssue)
	s := c.sch.(*sttIssue)
	c.curSafeSeq = 0
	s.taint[30] = 77 // data operand tainted
	st := mkUop(c.a, 80, uop{inst: isa.Inst{Op: isa.Sd, Rs1: isa.X2, Rs2: isa.X6}, pd: noReg, ps1: 4, ps2: 30, blockedYRoT: noYRoT})
	if !s.onIssue(st, partStoreAddr) {
		t.Error("address half with a clean address operand must issue")
	}
	if !s.onIssue(st, partStoreData) {
		t.Error("data half must never be vetoed")
	}
	s.taint[4] = 99 // now the address operand is tainted
	st2 := mkUop(c.a, 81, uop{inst: isa.Inst{Op: isa.Sd, Rs1: isa.X2, Rs2: isa.X6}, pd: noReg, ps1: 4, ps2: 30, blockedYRoT: noYRoT})
	if s.onIssue(st2, partStoreAddr) {
		t.Error("address half with a tainted address operand must be vetoed")
	}
}

func TestLSUForwardingSearch(t *testing.T) {
	a := newUopArena()
	l := newLSU(a)
	st := mkUop(a, 1, uop{inst: isa.Inst{Op: isa.Sd}, addr: 0x100, addrReady: true, dataReady: true, result: 42})
	l.addStore(st)
	ld := mkUop(a, 2, uop{inst: isa.Inst{Op: isa.Ld}, addr: 0x100})
	l.addLoad(ld)
	res, val, from, unknown := l.search(ld)
	if res != fwdHit || val != 42 || from != 1 || unknown {
		t.Errorf("search = (%v,%d,%d,%v), want hit/42/1/false", res, val, from, unknown)
	}
	// Data not ready: wait.
	a.body[st].dataReady = false
	if res, _, _, _ := l.search(ld); res != fwdWait {
		t.Errorf("search = %v, want fwdWait", res)
	}
	// Address unknown: speculate with the unknown flag.
	a.body[st].addrReady = false
	res, _, _, unknown = l.search(ld)
	if res != fwdNone || !unknown {
		t.Errorf("search = (%v, unknown=%v), want fwdNone with unknown", res, unknown)
	}
	// Different word: no match.
	a.body[st].addrReady, a.body[st].dataReady, a.body[st].addr = true, true, 0x108
	if res, _, _, _ := l.search(ld); res != fwdNone {
		t.Errorf("search = %v, want fwdNone on different word", res)
	}
}

func TestLSUViolationDetection(t *testing.T) {
	a := newUopArena()
	l := newLSU(a)
	st := mkUop(a, 1, uop{inst: isa.Inst{Op: isa.Sd}, addr: 0x200})
	l.addStore(st)
	// A younger load that executed against the same word without
	// forwarding from the store.
	ld := mkUop(a, 2, uop{inst: isa.Inst{Op: isa.Ld}, addr: 0x200, fwdFromSeq: -1})
	a.state[ld] = stateDone
	l.addLoad(ld)
	// A younger load to a different word: untouched.
	other := mkUop(a, 3, uop{inst: isa.Inst{Op: isa.Ld}, addr: 0x300, fwdFromSeq: -1})
	a.state[other] = stateDone
	l.addLoad(other)
	a.body[st].addrReady = true
	if n := l.checkViolations(st); n != 1 {
		t.Fatalf("violations = %d, want 1", n)
	}
	if !a.body[ld].orderViolation || a.body[other].orderViolation {
		t.Error("violation flags wrong")
	}
	// A load that forwarded from this store is safe.
	fwd := mkUop(a, 4, uop{inst: isa.Inst{Op: isa.Ld}, addr: 0x200, fwdFromSeq: 1})
	a.state[fwd] = stateDone
	l.addLoad(fwd)
	if n := l.checkViolations(st); n != 0 {
		t.Errorf("re-check found %d new violations, want 0", n)
	}
	if a.body[fwd].orderViolation {
		t.Error("forwarded load must not be flagged")
	}
}

func TestMemDepPredictor(t *testing.T) {
	m := newMemDepPredictor()
	if m.mustWait(0x40, 100) {
		t.Error("cold predictor must not stall")
	}
	m.record(0x40)
	if !m.mustWait(0x40, 200) {
		t.Error("recorded PC must wait")
	}
	if m.mustWait(0x41, 200) {
		t.Error("other PC must not wait")
	}
	// Decay clears entries.
	if m.mustWait(0x40, 200+m.decayEvery) {
		t.Error("entry survived decay")
	}
}

func TestFrontendRedirectAndRAS(t *testing.T) {
	b := isa.NewBuilder("fe")
	b.Call("f") // pc 0
	b.Halt()    // pc 1
	b.Label("f")
	b.Ret() // pc 2
	p := b.MustBuild()
	cfg := MegaConfig()
	fe := newFrontend(&cfg, p)
	fe.step(1)
	if len(fe.queue) == 0 {
		t.Fatal("nothing fetched")
	}
	// The call must predict-taken to pc 2 and push the return address.
	if fe.queue[0].inst.Op != isa.Jal || fe.queue[0].predTarget != 2 {
		t.Fatalf("call entry: %+v", fe.queue[0])
	}
	fe.step(2) // fetches the ret, predicted via RAS to pc 1
	var ret *fetchEntry
	for i := range fe.queue {
		if fe.queue[i].inst.Op == isa.Jalr {
			ret = &fe.queue[i]
		}
	}
	if ret == nil || ret.predTarget != 1 {
		t.Fatalf("ret prediction wrong: %+v", ret)
	}
	// Redirect clears the buffer and stall state.
	fe.stalled = true
	fe.redirect(0)
	if len(fe.queue) != 0 || fe.stalled || fe.pc != 0 {
		t.Error("redirect did not reset the front end")
	}
}

func TestNDADelaysOnlySpeculativeLoads(t *testing.T) {
	c := mkCore(t, KindNDA)
	a := c.a
	ld := mkUop(a, 1, uop{inst: isa.Inst{Op: isa.Ld, Rd: isa.X5, Rs1: isa.X1}, pd: 40})
	c.cycle = 100
	// Speculative at completion: broadcast withheld.
	c.loadBroadcast(ld)
	if !a.body[ld].broadcastPending || c.prf.readyAt[40] != neverReady {
		t.Error("speculative load's broadcast must be withheld")
	}
	// Non-speculative at completion: broadcast follows writeback (+1, no
	// speculative wakeup under NDA).
	ld2 := mkUop(a, 2, uop{inst: isa.Inst{Op: isa.Ld, Rd: isa.X6, Rs1: isa.X1}, pd: 41, nonSpec: true})
	c.loadBroadcast(ld2)
	if c.prf.readyAt[41] != 101 {
		t.Errorf("readyAt = %d, want 101", c.prf.readyAt[41])
	}
}
