package core

// invisiSpec implements an InvisiSpec-style invisible-load scheme (Yan et
// al., "InvisiSpec: Making Speculative Execution Invisible in the Cache
// Hierarchy", MICRO 2018). Speculative loads issue "invisibly": the data
// is returned into a per-load speculative buffer (modeled per load-queue
// entry; see lsu.specBufAdd) with NO side effects on the timing model's
// cache state — no MSHR, no fill, no LRU update, no prefetcher training.
// The access latency is what the hierarchy would have charged
// (mem.Hierarchy.Peek), and the value flows to dependents through the
// normal broadcast machinery, so speculation keeps its performance.
//
// When the load reaches the visibility point it must be EXPOSED: a real
// re-access of the hierarchy (this time with fills and MSHR occupancy)
// that models InvisiSpec's validation/exposure traffic. The load cannot
// commit until the exposure access completes — the modeled re-access cost
// of the conservative (InvisiSpec-Spectre) variant, where every buffered
// load validates before retirement. In this single-core model validation
// always succeeds, so only the timing cost is modeled. A squashed
// wrong-path load is simply dropped from the buffer and never exposed,
// which is exactly why the scheme blocks Spectre: the transient
// transmitter's line is never installed.
//
// The Probe invariants the differential oracle asserts (internal/diffsim):
// every cache access by a speculative load is an invisible-buffer access
// (never a demand access, never an MSHR), and exposures happen only at or
// after the visibility point.
//
// Idle-skip contract (core.Run): an exposed ROB-head load waiting out its
// exposure latency contributes exposeDoneAt as a nextWake candidate, and
// an exposure attempt that bounces off a full MSHR file marks the cycle
// as progressed — the retry happens on the very next tick, so the
// ExposureRetries count stays exact without modeling the backoff as a
// wake-up.
type invisiSpec struct{ baseline }

// KindInvisiSpec identifies the invisible-load scheme in the registry.
const KindInvisiSpec SchemeKind = 5

// invisiBufferDisabled is a fault-injection switch for the differential
// oracle's mutation tests: with the speculative buffer disabled the scheme
// degenerates to the unsafe baseline, and the oracle's
// speculative-accesses-must-be-invisible invariant must catch it. Never
// set outside tests.
var invisiBufferDisabled bool

func init() {
	RegisterScheme(SchemeSpec{
		Kind:   KindInvisiSpec,
		Name:   "invisispec",
		Order:  5,
		Secure: true,
		New:    func(*Core) scheme { return invisiSpec{} },
	})
}

func (invisiSpec) kind() SchemeKind         { return KindInvisiSpec }
func (invisiSpec) invisibleSpecLoads() bool { return !invisiBufferDisabled }
