// Mutation tests for the differential oracle's DoM and InvisiSpec Probe
// invariants: sabotage the one mechanism each scheme's security argument
// rests on and assert the oracle CATCHES it. Without these, a silently
// broken invariant hook would let a regressed scheme sail through the
// corpus. The file lives in the external core_test package so it can drive
// the real oracle (internal/diffsim imports core; an internal test file
// could not import it back).
package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/diffsim"
)

// mutationCase is a corpus case rich in shadowed speculative loads
// (pointer chases and indirect loads under data-dependent branches), so
// both sabotages are exercised on it. Pinned so the test is deterministic;
// TestMutationCaseIsSound guards against the case going stale.
var mutationCase = diffsim.Case{Seed: 9, Mask: diffsim.FeatAll}

// mutationConfig follows the campaign's seed-derived config selection, so
// the pinned case runs on the same core a real campaign would use.
func mutationConfig() core.Config { return diffsim.ConfigForCase(mutationCase) }

// TestMutationCaseIsSound: the pinned case passes the full oracle for both
// schemes when nothing is sabotaged — the mutation tests below fail it
// through the sabotage alone.
func TestMutationCaseIsSound(t *testing.T) {
	kinds := []core.SchemeKind{core.KindDoM, core.KindInvisiSpec}
	if err := diffsim.CheckCase(mutationConfig(), kinds, mutationCase); err != nil {
		t.Fatal(err)
	}
}

func wantInvariantViolation(t *testing.T, err error, fragment string) {
	t.Helper()
	if err == nil {
		t.Fatal("sabotaged scheme passed the oracle: the invariant does not bite")
	}
	if !strings.Contains(err.Error(), "security invariant violated") {
		t.Fatalf("oracle failed for the wrong reason: %v", err)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Errorf("violation message %q missing %q", err, fragment)
	}
	if !strings.Contains(err.Error(), "replay:") {
		t.Errorf("violation message %q missing the replay invocation", err)
	}
}

// TestOracleCatchesDisabledDoMDelay: with the speculative-miss delay
// disabled, dom degenerates to the unsafe baseline; its commit stream
// still matches the reference (the mutation is timing-only), so ONLY the
// no-speculative-MSHR invariant can catch it — and must.
func TestOracleCatchesDisabledDoMDelay(t *testing.T) {
	restore := core.SetDoMDelayDisabledForTest(true)
	defer restore()
	err := diffsim.CheckCase(mutationConfig(), []core.SchemeKind{core.KindDoM}, mutationCase)
	wantInvariantViolation(t, err, "occupied an MSHR")
}

// TestOracleCatchesDisabledInvisiBuffer: with the speculative buffer
// disabled, invisispec's loads take the real cache path while speculative;
// the invisible-only invariant must flag the first one.
func TestOracleCatchesDisabledInvisiBuffer(t *testing.T) {
	restore := core.SetInvisiBufferDisabledForTest(true)
	defer restore()
	err := diffsim.CheckCase(mutationConfig(), []core.SchemeKind{core.KindInvisiSpec}, mutationCase)
	wantInvariantViolation(t, err, "before exposure")
}
