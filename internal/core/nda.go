package core

// nda implements NDA-Permissive (Section 5): the only pipeline changes are
// the delayed, split load broadcast and the removal of speculative L1-hit
// wakeup; the broadcast mechanics live in the core's writeback and
// visibility-point stages.
//
// Idle-skip contract (core.Run): a withheld broadcast is released by the
// visibility-point walk, which announces dependents ready at cycle+1 —
// the release therefore lands in the dependents' cached srcReadyAt fields,
// which nextWake scans. NDA never parks anything on a time it does not
// register there.
type nda struct{}

func init() {
	RegisterScheme(SchemeSpec{
		Kind:   KindNDA,
		Name:   "nda",
		Order:  3,
		Secure: true,
		New:    func(*Core) scheme { return nda{} },
	})
}

func (nda) kind() SchemeKind                { return KindNDA }
func (nda) renameOne(int32)                 {}
func (nda) allocPhys(int)                   {}
func (nda) saveCheckpoint(int)              {}
func (nda) restoreCheckpoint(int)           {}
func (nda) fullFlush()                      {}
func (nda) canSelect(int32, issuePart) bool { return true }
func (nda) onIssue(int32, issuePart) bool   { return true }
func (nda) delaysLoadBroadcast() bool       { return true }
func (nda) specWakeup(bool) bool            { return false }
func (nda) delaysSpecMiss() bool            { return false }
func (nda) invisibleSpecLoads() bool        { return false }
