package core

import "repro/internal/isa"

// The observer hook API. A Probe receives the pipeline events that the
// secure speculation schemes' correctness arguments are stated over: issue
// decisions (did a transmitter issue, and was it tainted when it did?) and
// load ready broadcasts (was a load's data made visible to dependents while
// the load was still speculative?). The differential fuzzing oracle in
// internal/diffsim attaches a Probe to assert the paper's security
// invariants on every generated program.
//
// Probes are strictly observational: every hook fires after the pipeline
// has committed to the decision being reported, carries copies of the
// relevant state, and must not be able to perturb timing — the commit
// stream of a run with a Probe attached is byte-identical to the same run
// without one. When Core.Probe is nil the dispatch cost is a single pointer
// compare per event site.

// Probe observes security-relevant pipeline events.
type Probe interface {
	// OnIssue fires when a micro-op part wins selection and actually
	// issues (after the scheme's canSelect and onIssue both passed).
	OnIssue(ev IssueEvent)
	// OnLoadBroadcast fires when a load's ready broadcast is released to
	// dependents: at issue under speculative L1-hit wakeup, at writeback
	// otherwise, or — under NDA's delayed broadcast — when the visibility
	// point or commit releases a withheld broadcast.
	OnLoadBroadcast(ev BroadcastEvent)
	// OnCacheAccess fires when a load touches (or, invisibly, bypasses)
	// the data-cache hierarchy: a demand access from the LSU, an
	// InvisiSpec invisible-buffer access, or an exposure re-access at the
	// visibility point. The DoM and InvisiSpec security invariants are
	// stated over these events.
	OnCacheAccess(ev CacheAccessEvent)
}

// IssuePart identifies which half of a store issued; everything else
// issues whole.
type IssuePart = issuePart

// Issue parts reported by IssueEvent.
const (
	PartWhole     IssuePart = partWhole
	PartStoreAddr IssuePart = partStoreAddr
	PartStoreData IssuePart = partStoreData
)

// IssueEvent describes one issued micro-op part.
type IssueEvent struct {
	Cycle uint64
	Seq   uint64 // program-order sequence number assigned at rename
	PC    uint64
	Op    isa.Op
	Part  IssuePart
	// Transmitter reports whether issuing this part has an observable,
	// operand-dependent effect (Section 3.1).
	Transmitter bool
	// Speculative reports whether the micro-op had not yet passed the
	// visibility point when it issued.
	Speculative bool
	// Tainted reports whether the active scheme considered the issuing
	// part's operands tainted (rooted at an unsafe speculative load) at
	// the moment of issue. Always false for schemes that do not track
	// taint (baseline, NDA). An STT scheme issuing a Transmitter part
	// with Tainted set has violated its own security argument.
	Tainted bool
}

// BroadcastEvent describes one load ready broadcast.
type BroadcastEvent struct {
	Cycle uint64 // cycle at which dependents may consume the value
	Seq   uint64
	PC    uint64
	// Speculative reports whether the load was still speculative (had not
	// passed the visibility point or commit) when the broadcast was
	// released. A scheme that delays load broadcasts (NDA) must never
	// release a speculative broadcast.
	Speculative bool
	// Delayed reports whether the broadcast had been withheld by the
	// scheme and was released by the visibility point or by commit.
	Delayed bool
}

// CacheAccessKind classifies a load's cache-hierarchy interaction.
type CacheAccessKind uint8

const (
	// CacheAccessDemand is a normal LSU access: it updates replacement
	// state and, on an L1 miss, allocates (or merges into) an MSHR and
	// fills the line — the side effects a cache attacker observes.
	CacheAccessDemand CacheAccessKind = iota
	// CacheAccessInvisible is an InvisiSpec speculative-buffer access: the
	// latency of the hierarchy with none of its side effects.
	CacheAccessInvisible
	// CacheAccessExposure is the InvisiSpec re-access performed when an
	// invisible load reaches the visibility point (or commit), installing
	// the line for real. The oracle asserts exposures are never
	// speculative; the Speculative field reports the uop's actual flag
	// so that assertion is falsifiable.
	CacheAccessExposure
)

// CacheAccessEvent describes one load/cache interaction.
type CacheAccessEvent struct {
	Cycle uint64 // cycle the access starts
	Seq   uint64
	PC    uint64
	Addr  uint64
	Kind  CacheAccessKind
	// Speculative reports whether the load had not yet passed the
	// visibility point when the access started.
	Speculative bool
	// HitL1 reports whether the access hit (or, for invisible accesses,
	// would have hit) in the L1.
	HitL1 bool
	// MSHR reports whether the access occupies an MSHR past the L1 — true
	// exactly for demand and exposure misses. A scheme that delays
	// speculative misses (DoM) must never produce a speculative event with
	// MSHR set; a scheme with invisible loads (InvisiSpec) must never
	// produce a speculative event that is not CacheAccessInvisible.
	MSHR bool
}

// taintQuerier is implemented by taint-tracking schemes to give the probe
// dispatch a read-only view of the taint governing an issuing part. It is
// queried only when a Probe is attached.
type taintQuerier interface {
	taintedPart(u int32, part issuePart) bool
}

// probeIssue reports a successful issue to the attached Probe. Callers
// check c.Probe != nil first so the nil case costs one compare.
func (c *Core) probeIssue(u int32, part issuePart) {
	tainted := false
	if c.taintQ != nil {
		tainted = c.taintQ.taintedPart(u, part)
	}
	b := &c.a.body[u]
	c.Probe.OnIssue(IssueEvent{
		Cycle:       c.cycle,
		Seq:         c.a.seq[u],
		PC:          b.pc,
		Op:          b.inst.Op,
		Part:        part,
		Transmitter: c.a.transmitterPart(u, part),
		Speculative: !b.nonSpec,
		Tainted:     tainted,
	})
}

// probeBroadcast reports a load ready broadcast to the attached Probe.
func (c *Core) probeBroadcast(u int32, at uint64, speculative, delayed bool) {
	c.Probe.OnLoadBroadcast(BroadcastEvent{
		Cycle:       at,
		Seq:         c.a.seq[u],
		PC:          c.a.body[u].pc,
		Speculative: speculative,
		Delayed:     delayed,
	})
}

// probeCacheAccess reports one load/cache interaction to the attached
// Probe. Callers check c.Probe != nil first. Speculative is derived
// uniformly from the uop's visibility flag — both exposure call sites
// mark the uop non-speculative before re-accessing, so a speculative
// exposure is a genuine invariant violation the oracle can catch, not
// an artifact the probe paper over.
func (c *Core) probeCacheAccess(u int32, at uint64, kind CacheAccessKind, hitL1 bool) {
	b := &c.a.body[u]
	c.Probe.OnCacheAccess(CacheAccessEvent{
		Cycle:       at,
		Seq:         c.a.seq[u],
		PC:          b.pc,
		Addr:        b.addr,
		Kind:        kind,
		Speculative: !b.nonSpec,
		HitL1:       hitL1,
		MSHR:        kind != CacheAccessInvisible && !hitL1,
	})
}
