package attack

import (
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
)

func TestVictimProgramBuilds(t *testing.T) {
	p := victimProgram()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Architecturally the gadget must never read the secret: the oracle
	// takes the bounds-check exit on the malicious call.
	sim := isa.NewArchSim(p)
	if _, err := sim.Run(100_000); err != nil {
		t.Fatal(err)
	}
	// x7 would hold array1[x]&63 had the body executed; on the final
	// (malicious) call the branch is architecturally taken, so x7 retains
	// the last training value (< 8, never the secret slot).
	if got := sim.Reg(isa.X7); got == SecretValue&63 {
		t.Errorf("oracle architecturally read the secret: x7 = %d", got)
	}
}

// TestBaselineLeaks is the positive control: without a secure scheme the
// transient transmitter load must leave the secret-indexed line resident.
func TestBaselineLeaks(t *testing.T) {
	r, err := RunSpectreV1(core.MegaConfig(), core.KindBaseline)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Leaked {
		t.Fatal("baseline did not leak: the attack vector is inert, so scheme verdicts are meaningless")
	}
	if r.GuessedSecret != SecretValue&63 {
		t.Errorf("recovered %d (hot slots %v), want %d", r.GuessedSecret, r.HotSlots, SecretValue&63)
	}
}

// TestSchemesBlockLeak verifies the paper's Section 7 claim over the
// scheme registry: every registered secure scheme — the built-in
// STT-Rename, STT-Issue, and NDA, plus any drop-in — must block Spectre
// v1. Registering a scheme with Secure set is a promise this test
// enforces automatically.
func TestSchemesBlockLeak(t *testing.T) {
	kinds := core.SecureSchemeKinds()
	if len(kinds) < 3 {
		t.Fatalf("only %d secure schemes registered, expected at least the paper's three", len(kinds))
	}
	for _, kind := range kinds {
		r, err := RunSpectreV1(core.MegaConfig(), kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if r.Leaked {
			t.Errorf("%s: SECRET LEAKED (hot slots %v)", kind, r.HotSlots)
		}
	}
}

// TestAttackAcrossConfigs runs the full verdict matrix on every Table 1
// configuration: the baseline must leak and every scheme must block, at
// every width.
func TestAttackAcrossConfigs(t *testing.T) {
	for _, cfg := range core.Configs() {
		results, err := RunAll(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		for _, r := range results {
			leakWanted := r.Scheme == core.KindBaseline
			if r.Leaked != leakWanted {
				t.Errorf("%s/%s: leaked=%v, want %v (hot %v)", cfg.Name, r.Scheme, r.Leaked, leakWanted, r.HotSlots)
			}
		}
	}
}

// TestSplitStoreTaintsStillSecure: the Section 9.2 store-taint optimization
// must not reopen the channel.
func TestSplitStoreTaintsStillSecure(t *testing.T) {
	cfg := core.MegaConfig()
	cfg.SplitStoreTaints = true
	r, err := RunSpectreV1(cfg, core.KindSTTRename)
	if err != nil {
		t.Fatal(err)
	}
	if r.Leaked {
		t.Errorf("split store taints leaked (hot %v)", r.HotSlots)
	}
}
