package attack

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
)

// Speculative Store Bypass (Spectre v4 / CVE-2018-3639). The paper's
// combined threat model covers D-shadows precisely because of this attack
// (Section 6: "using them as the basis for a secure speculation scheme
// provides defenses against Speculative Store Bypass").
//
// The gadget:
//
//	*p = 0          // store whose address p arrives late (dependence chain)
//	y  = buf[0]     // load speculatively bypasses the store, reads the
//	                // STALE value previously planted at buf[0] — the secret
//	z  = probe[(y&63)*512]  // transmitter
//
// The LSU predicts no-alias and lets the load run ahead of the unresolved
// store address; the stale secret flows to the probe load. When the store
// address resolves, the violation is detected and the pipeline flushed —
// but on the unsafe baseline the probe line has already been filled.
// Under STT the stale load's value is tainted (the load executes under the
// store's D-shadow), so the probe load is blocked; under NDA the stale
// value's broadcast is withheld. Either way the probe line stays cold.

const (
	ssbBufAddr   = 0x0007_0000 // the slot: secret planted, then overwritten
	ssbProbeAddr = 0x0200_0000
	ssbSlowAddr  = 0x0008_0000 // long-latency input to the store's address

	// SSBSecret is planted in the slot before the gadget runs; the gadget
	// architecturally overwrites it with zero before reading it back.
	SSBSecret = 27
)

// ssbProgram builds the SSB victim. The store's address is computed from a
// value loaded at ssbSlowAddr (flushed by the harness), so it resolves
// ~100 cycles late; the reload and the dependent probe access race ahead.
func ssbProgram() *isa.Program {
	b := isa.NewBuilder("spectre-ssb")
	b.Data(ssbBufAddr, []uint64{SSBSecret})
	b.Data(ssbSlowAddr, []uint64{ssbBufAddr}) // the store's base pointer

	b.Li(isa.X20, ssbSlowAddr)
	b.Li(isa.X21, ssbBufAddr)
	b.Li(isa.X22, ssbProbeAddr)
	// The victim legitimately uses the slot, so its line is warm; the
	// transient reload must hit for its stale value to reach the
	// transmitter before the ordering violation flushes the pipeline.
	b.Ld(isa.X9, isa.X21, 0)

	// A nop sled separates setup from the gadget so the harness can pause
	// and flush the slow pointer while nothing is in flight.
	for i := 0; i < nopSledLen; i++ {
		b.Nop()
	}

	// The gadget: one round.
	b.Ld(isa.X5, isa.X20, 0) // p = *slow (flushed: ~DRAM latency)
	b.Sd(isa.X0, isa.X5, 0)  // *p = 0: overwrites the secret, address late
	b.Ld(isa.X6, isa.X21, 0) // reload buf[0]: speculatively bypasses the store
	b.Andi(isa.X6, isa.X6, 63)
	b.Slli(isa.X7, isa.X6, 9)
	b.Add(isa.X7, isa.X7, isa.X22)
	b.Ld(isa.X8, isa.X7, 0) // transmitter
	b.Halt()
	return b.MustBuild()
}

// RunSpectreSSB runs the Speculative Store Bypass attack on the given
// configuration and scheme.
func RunSpectreSSB(cfg core.Config, kind core.SchemeKind) (Result, error) {
	prog := ssbProgram()
	c, err := core.New(cfg, kind, prog)
	if err != nil {
		return Result{}, err
	}
	// Let setup commit, then flush the store's address input and prime the
	// probe array.
	if _, err := c.Run(core.RunLimits{MaxInsts: 8, MaxCycles: 1_000_000}); err != nil {
		return Result{}, fmt.Errorf("attack: ssb setup: %w", err)
	}
	c.Hierarchy().FlushLine(ssbSlowAddr)
	for slot := 0; slot < 64; slot++ {
		c.Hierarchy().FlushLine(ssbProbeAddr + uint64(slot)*slotStride)
	}
	res, err := c.Run(core.RunLimits{MaxCycles: 10_000_000})
	if err != nil {
		return Result{}, fmt.Errorf("attack: ssb transient phase: %w", err)
	}
	if !res.Halted {
		return Result{}, fmt.Errorf("attack: ssb victim did not halt")
	}

	out := Result{Scheme: kind, Config: cfg.Name, GuessedSecret: -1,
		Insts: res.Insts, Cycles: res.Cycles}
	// The architectural value at the slot is 0, so slot 0 is legitimately
	// hot; any other hot slot betrays the stale (secret) value.
	for slot := 1; slot < 64; slot++ {
		if c.Hierarchy().Contains(ssbProbeAddr + uint64(slot)*slotStride) {
			out.HotSlots = append(out.HotSlots, slot)
		}
	}
	if len(out.HotSlots) == 1 {
		out.GuessedSecret = out.HotSlots[0]
	}
	out.Leaked = len(out.HotSlots) > 0
	return out, nil
}
