package attack

import (
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
)

func TestSSBProgramArchitecture(t *testing.T) {
	p := ssbProgram()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Architecturally the reload must observe the overwrite: x6 = 0.
	sim := isa.NewArchSim(p)
	if _, err := sim.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if got := sim.Reg(isa.X6); got != 0 {
		t.Errorf("oracle reload = %d, want 0 (store must architecturally win)", got)
	}
	if got := sim.Mem(ssbBufAddr); got != 0 {
		t.Errorf("slot = %d after run, want 0", got)
	}
}

func TestSSBBaselineLeaks(t *testing.T) {
	r, err := RunSpectreSSB(core.MegaConfig(), core.KindBaseline)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Leaked {
		t.Fatal("baseline did not leak via store bypass; the D-shadow attack vector is inert")
	}
	if r.GuessedSecret != SSBSecret&63 {
		t.Errorf("recovered %d (hot %v), want %d", r.GuessedSecret, r.HotSlots, SSBSecret&63)
	}
}

// TestSSBSchemesBlock is registry-driven like TestSchemesBlockLeak: every
// registered secure scheme must block the store-bypass channel, so a new
// drop-in scheme is attack-tested the moment it registers.
func TestSSBSchemesBlock(t *testing.T) {
	for _, kind := range core.SecureSchemeKinds() {
		r, err := RunSpectreSSB(core.MegaConfig(), kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if r.Leaked {
			t.Errorf("%s: SSB SECRET LEAKED (hot %v)", kind, r.HotSlots)
		}
	}
}

func TestSSBAcrossConfigs(t *testing.T) {
	for _, cfg := range core.Configs() {
		for _, kind := range core.SchemeKinds() {
			r, err := RunSpectreSSB(cfg, kind)
			if err != nil {
				t.Fatalf("%s/%s: %v", cfg.Name, kind, err)
			}
			leakWanted := kind == core.KindBaseline
			if r.Leaked != leakWanted {
				t.Errorf("%s/%s: leaked=%v, want %v (hot %v)", cfg.Name, kind, r.Leaked, leakWanted, r.HotSlots)
			}
		}
	}
}
