// Package attack reproduces the paper's security verification (Section 7):
// a Spectre v1 proof-of-concept in the simulator's ISA, equivalent in
// structure to the BOOM-attacks suite the paper uses, plus a cache
// side-channel probe that renders the verdict.
//
// The victim gadget is the classic bounds-check bypass:
//
//	if (x < array1_size)              // array1_size is flushed: slow load
//	    y = array2[(array1[x]&63)*64] // two dependent transient loads
//
// The attacker trains the branch in-bounds, flushes array1_size, then
// supplies an out-of-bounds x that reaches a secret. On the unsafe
// baseline the second ("transmitter") load leaves the secret-indexed line
// in the cache; a real attacker would recover it by timing. The simulator
// simply inspects the tag arrays. Under STT the transmitter load is
// blocked while tainted; under NDA the secret value's broadcast is
// withheld; under DoM the transmitter's speculative miss is delayed past
// the squash; under InvisiSpec it runs invisibly and is never exposed —
// whatever the mechanism, the secret-indexed line must never be filled.
// The suites enumerate core.SecureSchemeKinds(), so a drop-in scheme is
// attack-tested the moment it registers.
package attack

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
)

// Memory layout of the victim.
const (
	sizeAddr   = 0x0005_0000 // array1_size
	array1Addr = 0x0006_0000 // 8 in-bounds elements, secret beyond them
	array2Addr = 0x0100_0000 // probe array: 64 slots, one cache line apart

	array1Len  = 8
	slotStride = 512 // bytes between probe slots (8 lines: defeats prefetch)

	// SecretValue is planted out of bounds; its low 6 bits select the
	// probe slot. Chosen above array1Len so training never touches it.
	SecretValue = 42

	trainRounds = 64

	// nopSledLen isolates the flush point from out-of-order execution; it
	// must exceed every configuration's ROB size plus fetch buffering.
	nopSledLen = 256
)

// secretIndex is the out-of-bounds index reaching the secret.
const secretIndex = array1Len

// Result is the attack verdict for one scheme.
type Result struct {
	Scheme core.SchemeKind
	Config string

	// Leaked reports whether the secret's probe slot was cache-resident
	// after the transient run — a successful Spectre v1 transmission.
	Leaked bool
	// HotSlots lists probe slots (≥ array1Len's reach) found resident.
	HotSlots []int
	// GuessedSecret is the recovered value when exactly one slot is hot.
	GuessedSecret int

	Insts  uint64
	Cycles uint64
}

// victimProgram builds the trainer+victim binary. Phase 1 runs the gadget
// trainRounds times with in-bounds indices (training the branch
// not-taken-into-mispredict... i.e. the in-bounds path). Phase 2 (after
// the harness flushes array1_size) runs the gadget once with the
// out-of-bounds index.
func victimProgram() *isa.Program {
	b := isa.NewBuilder("spectre-v1")
	// array1: benign values 0..7 (their probe slots are < array1Len and
	// are excluded from the verdict); the secret sits right past the end.
	a1 := make([]uint64, array1Len+1)
	for i := 0; i < array1Len; i++ {
		a1[i] = uint64(i)
	}
	a1[array1Len] = SecretValue
	b.Data(array1Addr, a1)
	b.Data(sizeAddr, []uint64{array1Len})

	// Registers: x10 index, x20 size addr, x21 array1, x22 array2,
	// x5..x9 scratch, x28 training counter.
	b.Li(isa.X20, sizeAddr)
	b.Li(isa.X21, array1Addr)
	b.Li(isa.X22, array2Addr)
	// The victim legitimately uses its secret (e.g. as a key), so the
	// secret's cache line is warm — the standard Spectre v1 setting.
	b.Ld(isa.X5, isa.X21, array1Len*8)

	// Training loop: x10 = x28 & 7 (always in bounds).
	b.Li(isa.X28, 0)
	b.Label("train")
	b.Andi(isa.X10, isa.X28, 7)
	b.Call("victim")
	b.Addi(isa.X28, isa.X28, 1)
	b.Slti(isa.X5, isa.X28, trainRounds)
	b.Bne(isa.X5, isa.X0, "train")

	// Marker: a nop sled so the harness can pause cleanly between
	// training and the malicious call (the harness bounds by instruction
	// count, then flushes array1_size). The sled must exceed the ROB
	// depth plus front-end buffering: when the harness pauses at a commit
	// count just inside the sled, the execution frontier — up to a full
	// ROB ahead of commit — must still be inside the sled, or the
	// malicious load would already have executed before the flush.
	for i := 0; i < nopSledLen; i++ {
		b.Nop()
	}

	// Malicious call: out-of-bounds index.
	b.Li(isa.X10, secretIndex)
	b.Call("victim")
	b.Halt()

	// The gadget.
	b.Label("victim")
	b.Ld(isa.X5, isa.X20, 0)        // array1_size (slow when flushed)
	b.Bgeu(isa.X10, isa.X5, "done") // bounds check; predicted in-bounds
	b.Slli(isa.X6, isa.X10, 3)
	b.Add(isa.X6, isa.X6, isa.X21)
	b.Ld(isa.X7, isa.X6, 0) // array1[x] — the (possibly secret) value
	b.Andi(isa.X7, isa.X7, 63)
	b.Slli(isa.X8, isa.X7, 9) // * slotStride
	b.Add(isa.X8, isa.X8, isa.X22)
	b.Ld(isa.X9, isa.X8, 0) // transmitter: fills the secret-indexed line
	b.Label("done")
	b.Ret()
	return b.MustBuild()
}

// trainInsts is the exact dynamic instruction count through the end of
// training plus half the nop sled; the harness pauses there to flush
// array1_size.
func trainInsts() uint64 {
	const setup = 5 // three li, secret warm-up load, li x28
	// Per round: andi, jal, 10-instruction gadget (in-bounds path, incl.
	// ret), addi, slti, bne.
	const perRound = 2 + 10 + 3
	return setup + trainRounds*perRound + 8
}

// RunSpectreV1 runs the attack on the given configuration and scheme.
func RunSpectreV1(cfg core.Config, kind core.SchemeKind) (Result, error) {
	prog := victimProgram()
	c, err := core.New(cfg, kind, prog)
	if err != nil {
		return Result{}, err
	}
	// Phase 1: training.
	if _, err := c.Run(core.RunLimits{MaxInsts: trainInsts(), MaxCycles: 5_000_000}); err != nil {
		return Result{}, fmt.Errorf("attack: training: %w", err)
	}
	// The attacker flushes array1_size (clflush equivalent) and primes
	// the probe array out of the cache.
	c.Hierarchy().FlushLine(sizeAddr)
	for slot := 0; slot < 64; slot++ {
		c.Hierarchy().FlushLine(array2Addr + uint64(slot)*slotStride)
	}
	// Phase 2: the transient access.
	res, err := c.Run(core.RunLimits{MaxCycles: 10_000_000})
	if err != nil {
		return Result{}, fmt.Errorf("attack: transient phase: %w", err)
	}
	if !res.Halted {
		return Result{}, fmt.Errorf("attack: victim did not halt")
	}

	out := Result{Scheme: kind, Config: cfg.Name, GuessedSecret: -1,
		Insts: res.Insts, Cycles: res.Cycles}
	// Probe: any slot reachable only through the secret (training touches
	// slots < array1Len) that is now resident betrays the secret.
	for slot := array1Len; slot < 64; slot++ {
		if c.Hierarchy().Contains(array2Addr + uint64(slot)*slotStride) {
			out.HotSlots = append(out.HotSlots, slot)
		}
	}
	if len(out.HotSlots) == 1 {
		out.GuessedSecret = out.HotSlots[0]
	}
	out.Leaked = len(out.HotSlots) > 0
	return out, nil
}

// RunAll runs the attack under every scheme on cfg, in scheme order.
func RunAll(cfg core.Config) ([]Result, error) {
	var out []Result
	for _, kind := range core.SchemeKinds() {
		r, err := RunSpectreV1(cfg, kind)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
