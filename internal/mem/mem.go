// Package mem implements the simulator's memory system: a sparse
// byte-addressed main memory holding architectural data values, and a
// timing model consisting of set-associative write-back caches (L1D, L2)
// with MSHRs and per-PC stride prefetchers, fronted by a Hierarchy that the
// core's load-store unit talks to.
//
// Data values and timing are deliberately separated: Main always holds the
// committed architectural image (plus speculative wrong-path reads see the
// same committed state), while the caches track only tags and fill times.
// This mirrors how trace-driven cache models work and keeps the timing
// model independent of value forwarding, which the LSU handles.
package mem

// Main is the architectural data memory: an aligned 64-bit word store.
// Reads of unwritten locations return zero.
type Main struct {
	words map[uint64]uint64
}

// NewMain returns an empty main memory.
func NewMain() *Main {
	return &Main{words: make(map[uint64]uint64)}
}

// LoadImage installs an address→word image, e.g. a Program's initial data.
func (m *Main) LoadImage(img map[uint64]uint64) {
	for a, w := range img {
		m.words[a&^7] = w
	}
}

// Read returns the word at the (aligned) address.
func (m *Main) Read(addr uint64) uint64 { return m.words[addr&^7] }

// Write stores a word at the (aligned) address.
func (m *Main) Write(addr, val uint64) { m.words[addr&^7] = val }

// Footprint returns the number of distinct words ever written.
func (m *Main) Footprint() int { return len(m.words) }
