// Package mem implements the simulator's memory system: a sparse
// byte-addressed main memory holding architectural data values, and a
// timing model consisting of set-associative write-back caches (L1D, L2)
// with MSHRs and per-PC stride prefetchers, fronted by a Hierarchy that the
// core's load-store unit talks to.
//
// Data values and timing are deliberately separated: Main always holds the
// committed architectural image (plus speculative wrong-path reads see the
// same committed state), while the caches track only tags and fill times.
// This mirrors how trace-driven cache models work and keeps the timing
// model independent of value forwarding, which the LSU handles.
package mem

import mathbits "math/bits"

// Memory is paged: a sparse map of fixed-size pages with a one-entry
// page cache in front of it. Loads are the single hottest data access in
// the simulator (every issued load reads Main), and the page cache turns
// the per-access hash lookup into a shift-and-compare for the common
// locality-heavy case.
const (
	pageWords = 512                   // 64-bit words per page (4 KiB)
	pageShift = 12                    // log2(pageWords * 8): address bits below the page key
	wordMask  = uint64(pageWords - 1) // word index within a page
)

type memPage struct {
	words   [pageWords]uint64
	written [pageWords / 64]uint64 // per-word dirty bits (Footprint)
}

// Main is the architectural data memory: an aligned 64-bit word store.
// Reads of unwritten locations return zero.
type Main struct {
	pages   map[uint64]*memPage
	lastKey uint64
	last    *memPage
}

// NewMain returns an empty main memory. The page map is pre-sized for a
// typical proxy-benchmark footprint so image loading doesn't grow it
// repeatedly.
func NewMain() *Main {
	return &Main{pages: make(map[uint64]*memPage, 64)}
}

// pageFor returns addr's page, allocating it when alloc is set; a nil
// return means the page has never been written.
func (m *Main) pageFor(addr uint64, alloc bool) *memPage {
	key := addr >> pageShift
	if m.last != nil && key == m.lastKey {
		return m.last
	}
	p := m.pages[key]
	if p == nil {
		if !alloc {
			return nil
		}
		p = new(memPage)
		m.pages[key] = p
	}
	m.lastKey, m.last = key, p
	return p
}

// LoadImage installs an address→word image, e.g. a Program's initial data.
func (m *Main) LoadImage(img map[uint64]uint64) {
	for a, w := range img {
		m.Write(a, w)
	}
}

// Read returns the word at the (aligned) address.
func (m *Main) Read(addr uint64) uint64 {
	p := m.pageFor(addr, false)
	if p == nil {
		return 0
	}
	return p.words[(addr>>3)&wordMask]
}

// Write stores a word at the (aligned) address.
func (m *Main) Write(addr, val uint64) {
	p := m.pageFor(addr, true)
	i := (addr >> 3) & wordMask
	p.words[i] = val
	p.written[i/64] |= 1 << (i % 64)
}

// WriteRange stores a contiguous run of words starting at the (aligned)
// address, page by page. This is the bulk image-load path: installing a
// proxy benchmark's data segment word-by-word through a scratch
// map[uint64]uint64 was the single largest cost of constructing a matrix
// cell — more than the simulation it set up — almost all of it map rehash.
// A contiguous copy touches each page once.
func (m *Main) WriteRange(addr uint64, words []uint64) {
	for len(words) > 0 {
		p := m.pageFor(addr, true)
		i := (addr >> 3) & wordMask
		n := uint64(copy(p.words[i:], words))
		for w := i; w < i+n; w++ {
			p.written[w/64] |= 1 << (w % 64)
		}
		words = words[n:]
		addr += 8 * n
	}
}

// Footprint returns the number of distinct words ever written.
func (m *Main) Footprint() int {
	n := 0
	for _, p := range m.pages {
		for _, bits := range p.written {
			n += mathbits.OnesCount64(bits)
		}
	}
	return n
}
