package mem

import (
	"testing"
	"testing/quick"
)

func TestMainReadWrite(t *testing.T) {
	m := NewMain()
	if m.Read(0x100) != 0 {
		t.Error("unwritten memory must read zero")
	}
	m.Write(0x100, 42)
	if m.Read(0x100) != 42 {
		t.Error("read after write")
	}
	m.Write(0x103, 7) // unaligned: same word
	if m.Read(0x100) != 7 {
		t.Error("unaligned write must alias the aligned word")
	}
}

func TestMainLoadImage(t *testing.T) {
	m := NewMain()
	m.LoadImage(map[uint64]uint64{0x10: 1, 0x18: 2})
	if m.Read(0x10) != 1 || m.Read(0x18) != 2 {
		t.Error("image not loaded")
	}
	if m.Footprint() != 2 {
		t.Errorf("footprint = %d, want 2", m.Footprint())
	}
}

func TestCacheConfigValidate(t *testing.T) {
	good := CacheConfig{Name: "t", SizeKB: 32, Ways: 8, LineB: 64, HitLat: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []CacheConfig{
		{Name: "zero", SizeKB: 0, Ways: 1, LineB: 64},
		{Name: "npo2line", SizeKB: 32, Ways: 8, LineB: 48},
		{Name: "npo2sets", SizeKB: 24, Ways: 8, LineB: 64},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("invalid config %s accepted", c.Name)
		}
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(CacheConfig{Name: "L1", SizeKB: 1, Ways: 2, LineB: 64, HitLat: 4})
	if _, hit := c.Access(0x1000, 10, false); hit {
		t.Fatal("cold cache must miss")
	}
	c.Fill(0x1000, 50, false)
	avail, hit := c.Access(0x1000, 60, false)
	if !hit {
		t.Fatal("filled line must hit")
	}
	if avail != 64 {
		t.Errorf("hit avail = %d, want 64 (now+HitLat)", avail)
	}
	// Hit-under-fill: access before the fill completes waits for the fill.
	c.Fill(0x2000, 100, false)
	avail, hit = c.Access(0x2000, 80, false)
	if !hit || avail != 100 {
		t.Errorf("hit-under-fill avail = %d (hit=%v), want 100", avail, hit)
	}
	// Same line within a set: 0x1040 is a different line.
	if c.Contains(0x1040) {
		t.Error("adjacent line must not be resident")
	}
	if !c.Contains(0x1000) || !c.Contains(0x103f) {
		t.Error("all bytes of a resident line must probe as present")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 ways, 64B lines, 1KB => 8 sets. Addresses 64*8 apart share a set.
	c := NewCache(CacheConfig{Name: "L1", SizeKB: 1, Ways: 2, LineB: 64, HitLat: 1})
	setStride := uint64(64 * 8)
	a, b, d := uint64(0), setStride, 2*setStride
	c.Fill(a, 0, false)
	c.Fill(b, 0, false)
	c.Access(a, 10, false) // a is now MRU
	c.Fill(d, 20, false)   // must evict b
	if !c.Contains(a) {
		t.Error("MRU line evicted")
	}
	if c.Contains(b) {
		t.Error("LRU line not evicted")
	}
	if !c.Contains(d) {
		t.Error("filled line missing")
	}
	if c.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Evictions)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(CacheConfig{Name: "L1", SizeKB: 1, Ways: 2, LineB: 64, HitLat: 1})
	c.Fill(0x40, 0, false)
	c.Fill(0x80, 0, false)
	c.InvalidateLine(0x40)
	if c.Contains(0x40) || !c.Contains(0x80) {
		t.Error("InvalidateLine wrong line")
	}
	c.InvalidateAll()
	if c.Contains(0x80) {
		t.Error("InvalidateAll left residue")
	}
}

func TestStridePrefetcherDetectsStride(t *testing.T) {
	p := NewStridePrefetcher(64, 2, 2)
	pc := uint64(0x400)
	var got []uint64
	for i := uint64(0); i < 6; i++ {
		got = p.Train(pc, 0x1000+i*64)
	}
	if len(got) != 2 {
		t.Fatalf("prefetches = %v, want 2 addresses", got)
	}
	last := uint64(0x1000 + 5*64)
	if got[0] != last+64 || got[1] != last+128 {
		t.Errorf("prefetch targets %v, want next two lines", got)
	}
}

func TestStridePrefetcherNoiseResistance(t *testing.T) {
	p := NewStridePrefetcher(64, 2, 2)
	pc := uint64(0x400)
	addrs := []uint64{0x1000, 0x9000, 0x1040, 0x22000, 0x1080}
	for _, a := range addrs {
		if got := p.Train(pc, a); len(got) != 0 {
			t.Errorf("prefetched %v on random pattern", got)
		}
	}
}

func TestStridePrefetcherZeroStride(t *testing.T) {
	p := NewStridePrefetcher(64, 1, 2)
	pc := uint64(0x10)
	for i := 0; i < 5; i++ {
		if got := p.Train(pc, 0x1000); len(got) != 0 {
			t.Errorf("zero stride must not prefetch, got %v", got)
		}
	}
}

func TestHierarchyLoadPath(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.PrefetchTable = 0 // isolate the demand path
	h := NewHierarchy(cfg)

	// Cold load: L1 miss, L2 miss, DRAM.
	done, hitL1, ok := h.Load(0, 0x1000, 100)
	if !ok || hitL1 {
		t.Fatalf("cold load: ok=%v hitL1=%v", ok, hitL1)
	}
	wantDRAM := uint64(100) + cfg.L1D.HitLat + cfg.L2.HitLat + cfg.MemLat + cfg.L1D.FillLat
	if done != wantDRAM {
		t.Errorf("DRAM load done = %d, want %d", done, wantDRAM)
	}

	// Re-access after the fill completes: L1 hit.
	done2, hitL1, ok := h.Load(0, 0x1008, wantDRAM+10)
	if !ok || !hitL1 {
		t.Fatalf("warm load should hit L1")
	}
	if done2 != wantDRAM+10+cfg.L1D.HitLat {
		t.Errorf("L1 hit done = %d", done2)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.PrefetchTable = 0
	h := NewHierarchy(cfg)
	h.Load(0, 0x1000, 0) // brings into L1+L2
	h.L1D().InvalidateAll()
	done, hitL1, ok := h.Load(0, 0x1000, 1000)
	if !ok || hitL1 {
		t.Fatalf("expected L1 miss after invalidate")
	}
	want := uint64(1000) + cfg.L1D.HitLat + cfg.L2.HitLat + cfg.L1D.FillLat
	if done != want {
		t.Errorf("L2 hit done = %d, want %d", done, want)
	}
}

func TestHierarchyMSHRLimit(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.PrefetchTable = 0
	cfg.MSHRs = 2
	h := NewHierarchy(cfg)
	if _, _, ok := h.Load(0, 0x10000, 0); !ok {
		t.Fatal("first miss rejected")
	}
	if _, _, ok := h.Load(0, 0x20000, 0); !ok {
		t.Fatal("second miss rejected")
	}
	if _, _, ok := h.Load(0, 0x30000, 0); ok {
		t.Fatal("third concurrent miss must be rejected (MSHRs full)")
	}
	if h.MSHRRejects != 1 {
		t.Errorf("rejects = %d, want 1", h.MSHRRejects)
	}
	// Miss to an already-outstanding line merges instead of rejecting.
	if _, _, ok := h.Load(0, 0x10008, 0); !ok {
		t.Fatal("merged miss must be accepted")
	}
	// After the misses complete, capacity frees up.
	if _, _, ok := h.Load(0, 0x30000, 10_000); !ok {
		t.Fatal("miss after drain rejected")
	}
}

func TestHierarchyPrefetchHidesLatency(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	h := NewHierarchy(cfg)
	pc := uint64(0x44)
	now := uint64(0)
	var lastDone uint64
	// Stream through 32 consecutive lines; by the tail of the stream the
	// prefetcher should be covering misses.
	var coldLat, tailLat uint64
	for i := uint64(0); i < 32; i++ {
		done, _, ok := h.Load(pc, 0x100000+i*64, now)
		if !ok {
			// MSHR pressure: skip forward.
			now += 10
			done, _, _ = h.Load(pc, 0x100000+i*64, now)
		}
		if i == 0 {
			coldLat = done - now
		}
		if i == 31 {
			tailLat = done - now
		}
		lastDone = done
		now = done + 1
	}
	_ = lastDone
	if h.PrefetchFills == 0 {
		t.Fatal("prefetcher issued nothing on a streaming pattern")
	}
	if tailLat >= coldLat {
		t.Errorf("prefetching did not reduce latency: cold %d, tail %d", coldLat, tailLat)
	}
}

func TestHierarchyStoreAllocates(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.PrefetchTable = 0
	h := NewHierarchy(cfg)
	h.Store(0x5000, 0)
	if !h.Contains(0x5000) {
		t.Error("store must allocate the line")
	}
	done, hitL1, ok := h.Load(0, 0x5000, 1000)
	if !ok || !hitL1 {
		t.Errorf("load after store: done=%d hit=%v", done, hitL1)
	}
}

func TestHierarchyFlush(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.Load(0, 0x9000, 0)
	h.FlushLine(0x9000)
	if h.Contains(0x9000) {
		t.Error("FlushLine left the line resident")
	}
	h.Load(0, 0xA000, 0)
	h.FlushAll()
	if h.Contains(0xA000) {
		t.Error("FlushAll left residue")
	}
}

// Property: a load is always available no earlier than now+L1 hit latency,
// and hits never take longer than the full DRAM path.
func TestHierarchyLatencyBounds(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	h := NewHierarchy(cfg)
	maxLat := cfg.L1D.HitLat + cfg.L2.HitLat + cfg.MemLat + cfg.L1D.FillLat
	f := func(addrSeed uint16, pcSeed uint8) bool {
		addr := 0x1000 + uint64(addrSeed)*8
		now := uint64(50_000) // past any pending fills from earlier iterations
		done, _, ok := h.Load(uint64(pcSeed), addr, now)
		if !ok {
			return true // MSHR-full is a legal outcome
		}
		return done >= now+cfg.L1D.HitLat && done <= now+maxLat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestHierarchyPeekMatchesLoad: Peek's verdict and timing must agree with
// an immediately following Load at every residency state — the contract
// the DoM and InvisiSpec scheme hooks rest on.
func TestHierarchyPeekMatchesLoad(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.PrefetchTable = 0
	h := NewHierarchy(cfg)

	check := func(name string, addr, now uint64) {
		t.Helper()
		peekDone, peekHit := h.Peek(addr, now)
		done, hit, ok := h.Load(0, addr, now)
		if !ok {
			t.Fatalf("%s: load rejected", name)
		}
		if peekHit != hit || peekDone != done {
			t.Errorf("%s: Peek = (%d, %v), Load = (%d, %v)", name, peekDone, peekHit, done, hit)
		}
	}

	check("cold (DRAM)", 0x1000, 100)
	check("hit under fill", 0x1000, 150) // fill in flight: hit at fill time
	check("warm L1 hit", 0x1000, 1000)
	h.L1D().InvalidateAll()
	check("L2 hit", 0x1000, 2000)
}

// TestHierarchyPeekIsSideEffectFree: Peek must not touch MSHRs, stats,
// residency, or LRU state — a delayed speculative miss probes the tags
// every attempt and must leave no trace an attacker could time.
func TestHierarchyPeekIsSideEffectFree(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.PrefetchTable = 0
	h := NewHierarchy(cfg)

	if _, hit := h.Peek(0x5000, 10); hit {
		t.Fatal("cold Peek reported a hit")
	}
	if h.Contains(0x5000) {
		t.Error("Peek installed the line")
	}
	if h.OutstandingMisses(10) != 0 {
		t.Error("Peek allocated an MSHR")
	}
	if h.Loads != 0 || h.L1D().Accesses != 0 || h.L1D().Misses != 0 {
		t.Errorf("Peek moved statistics: loads=%d accesses=%d misses=%d",
			h.Loads, h.L1D().Accesses, h.L1D().Misses)
	}

	// LRU neutrality: fill a set to capacity, Peek one line many times,
	// then force an eviction — the peeked line must still be the LRU
	// victim (Peek must not refresh lastUse).
	small := HierarchyConfig{
		L1D:    CacheConfig{Name: "L1D", SizeKB: 1, Ways: 2, LineB: 64, HitLat: 1, FillLat: 1},
		L2:     CacheConfig{Name: "L2", SizeKB: 4, Ways: 2, LineB: 64, HitLat: 2, FillLat: 1},
		MemLat: 10, MSHRs: 4,
	}
	hs := NewHierarchy(small)
	setStride := uint64(small.L1D.SizeKB) * 1024 / uint64(small.L1D.Ways) // lines mapping to set 0
	a, b, c := uint64(0), setStride, 2*setStride
	hs.Load(0, a, 0)
	hs.Load(0, b, 100) // set full; a is LRU
	for i := uint64(0); i < 8; i++ {
		hs.Peek(a, 200+i)
	}
	hs.Load(0, c, 300) // evicts the true LRU
	if hs.L1D().Contains(a) {
		t.Error("peeked line survived eviction: Peek refreshed LRU state")
	}
	if !hs.L1D().Contains(b) {
		t.Error("wrong victim evicted")
	}
}
