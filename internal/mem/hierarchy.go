package mem

// HierarchyConfig describes the full data-memory system.
type HierarchyConfig struct {
	L1D    CacheConfig
	L2     CacheConfig
	MemLat uint64 // DRAM access latency beyond the L2
	MSHRs  int    // outstanding L1 demand misses

	PrefetchTable  int
	PrefetchConf   int
	PrefetchDegree int
}

// DefaultHierarchyConfig returns a BOOM-like memory system: 32 KiB 8-way
// L1D with a 4-cycle hit, 512 KiB 8-way L2 with a 14-cycle hit beyond the
// L1, and ~90 cycles to DRAM. Stride prefetchers train at the L1D.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1D:            CacheConfig{Name: "L1D", SizeKB: 32, Ways: 8, LineB: 64, HitLat: 4, FillLat: 2, Prefetch: true},
		L2:             CacheConfig{Name: "L2", SizeKB: 512, Ways: 8, LineB: 64, HitLat: 14, FillLat: 4},
		MemLat:         90,
		MSHRs:          8,
		PrefetchTable:  256,
		PrefetchConf:   2,
		PrefetchDegree: 2,
	}
}

// Gem5HierarchyConfig returns the idealized memory system that Section 9.5
// criticizes in earlier gem5-based evaluations: a single-cycle L1 hit and a
// generous MSHR pool, which understates the cost of delaying loads.
func Gem5HierarchyConfig() HierarchyConfig {
	c := DefaultHierarchyConfig()
	c.L1D.HitLat = 1
	c.L2.HitLat = 10
	c.MemLat = 70
	c.MSHRs = 16
	return c
}

// Hierarchy is the data-memory timing front door used by the LSU.
type Hierarchy struct {
	cfg HierarchyConfig
	l1d *Cache
	l2  *Cache
	pf  *StridePrefetcher

	mshrs []mshr
	// mshrMinDone is the earliest completion among live MSHRs; expiry
	// skips the filter entirely until that cycle arrives, instead of
	// re-filtering the slice on every access.
	mshrMinDone uint64

	// Statistics.
	Loads         uint64
	Stores        uint64
	MSHRRejects   uint64
	PrefetchFills uint64
	DemandToDRAM  uint64
}

type mshr struct {
	line uint64
	done uint64
}

// NewHierarchy builds the memory system.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h := &Hierarchy{
		cfg: cfg,
		l1d: NewCache(cfg.L1D),
		l2:  NewCache(cfg.L2),
	}
	if cfg.PrefetchTable > 0 {
		h.pf = NewStridePrefetcher(cfg.PrefetchTable, cfg.PrefetchConf, cfg.PrefetchDegree)
	}
	return h
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// L1D exposes the first-level cache (side-channel probes, stats).
func (h *Hierarchy) L1D() *Cache { return h.l1d }

// L2 exposes the second-level cache.
func (h *Hierarchy) L2() *Cache { return h.l2 }

func (h *Hierarchy) expire(now uint64) {
	if len(h.mshrs) == 0 || now < h.mshrMinDone {
		return // nothing can have completed yet
	}
	live := h.mshrs[:0]
	minDone := ^uint64(0)
	for _, m := range h.mshrs {
		if m.done > now {
			live = append(live, m)
			if m.done < minDone {
				minDone = m.done
			}
		}
	}
	h.mshrs = live
	h.mshrMinDone = minDone
}

// Load performs a demand load access for the load at pc to addr at cycle
// now. It returns the cycle the data is available and whether the access
// was accepted; a false return means all MSHRs are busy and the LSU must
// retry. hitL1 reports whether the access hit in the L1 (used by the
// speculative-wakeup scheduler).
func (h *Hierarchy) Load(pc, addr, now uint64) (done uint64, hitL1, accepted bool) {
	line := h.l1d.LineAddr(addr)
	h.expire(now)

	// A line with an in-flight fill (from a prior miss or a prefetch) is a
	// hit whose data arrives when the fill completes.
	if present, _ := h.l1d.Lookup(line); !present {
		// True miss: needs an MSHR unless one is already allocated for this
		// line (miss merge).
		merged := false
		for _, m := range h.mshrs {
			if m.line == line {
				merged = true
				break
			}
		}
		if !merged && len(h.mshrs) >= h.cfg.MSHRs {
			h.MSHRRejects++
			return 0, false, false
		}
	}

	h.Loads++
	avail, hit := h.l1d.Access(line, now, false)
	if hit {
		h.train(pc, line, now)
		return avail, true, true
	}

	// L1 miss: probe the L2.
	l2Start := now + h.cfg.L1D.HitLat
	l2Avail, l2Hit := h.l2.Access(line, l2Start, false)
	if !l2Hit {
		h.DemandToDRAM++
		l2Avail = l2Start + h.cfg.L2.HitLat + h.cfg.MemLat
		h.l2.Fill(line, l2Avail, false)
	}
	done = l2Avail + h.cfg.L1D.FillLat
	h.l1d.Fill(line, done, false)
	h.mshrs = append(h.mshrs, mshr{line: line, done: done})
	if len(h.mshrs) == 1 || done < h.mshrMinDone {
		h.mshrMinDone = done
	}
	h.train(pc, line, now)
	return done, false, true
}

// Peek computes the completion cycle a demand load to addr would see if it
// accessed the hierarchy at cycle now, and whether it would hit in the L1,
// WITHOUT perturbing any state: no MSHR allocation, no fills, no LRU
// update, no statistics, no prefetcher training. It is the hit/miss
// disambiguation hook behind the delay-on-miss and invisible-load secure
// schemes (internal/core): DoM consults it to decide whether a speculative
// load may proceed (L1 hit) or must wait for the visibility point (miss),
// and InvisiSpec uses the returned latency to time an access that goes to
// a speculative buffer instead of the cache. A line with an in-flight fill
// counts as a hit whose data arrives when the fill completes, mirroring
// Load's hit-under-fill behaviour, so Peek(…) and an immediately following
// Load(…) agree on both verdict and timing.
func (h *Hierarchy) Peek(addr, now uint64) (done uint64, hitL1 bool) {
	line := h.l1d.LineAddr(addr)
	if present, availAt := h.l1d.Lookup(line); present {
		done = now + h.cfg.L1D.HitLat
		if availAt > done {
			done = availAt
		}
		return done, true
	}
	l2Start := now + h.cfg.L1D.HitLat
	if present, availAt := h.l2.Lookup(line); present {
		done = l2Start + h.cfg.L2.HitLat
		if availAt > done {
			done = availAt
		}
	} else {
		done = l2Start + h.cfg.L2.HitLat + h.cfg.MemLat
	}
	return done + h.cfg.L1D.FillLat, false
}

// Store performs the commit-time cache write for a store to addr at cycle
// now, returning when the write completes. Stores drain from a post-commit
// store buffer, so the latency rarely stalls the core; write misses
// allocate without consuming load MSHRs.
func (h *Hierarchy) Store(addr, now uint64) (done uint64) {
	h.Stores++
	line := h.l1d.LineAddr(addr)
	avail, hit := h.l1d.Access(line, now, true)
	if hit {
		return avail
	}
	l2Start := now + h.cfg.L1D.HitLat
	l2Avail, l2Hit := h.l2.Access(line, l2Start, true)
	if !l2Hit {
		l2Avail = l2Start + h.cfg.L2.HitLat + h.cfg.MemLat
		h.l2.Fill(line, l2Avail, true)
	}
	done = l2Avail + h.cfg.L1D.FillLat
	h.l1d.Fill(line, done, true)
	return done
}

func (h *Hierarchy) train(pc, line, now uint64) {
	if h.pf == nil {
		return
	}
	for _, target := range h.pf.Train(pc, line) {
		tl := h.l1d.LineAddr(target)
		if present, _ := h.l1d.Lookup(tl); present {
			continue
		}
		// Prefetches fill both levels; their latency depends on where the
		// line currently lives.
		var fillDone uint64
		if present, availAt := h.l2.Lookup(tl); present {
			fillDone = now + h.cfg.L1D.HitLat + h.cfg.L2.HitLat
			if availAt > fillDone {
				fillDone = availAt
			}
		} else {
			fillDone = now + h.cfg.L1D.HitLat + h.cfg.L2.HitLat + h.cfg.MemLat
			h.l2.Fill(tl, fillDone, false)
		}
		h.l1d.Fill(tl, fillDone+h.cfg.L1D.FillLat, false)
		h.PrefetchFills++
	}
}

// Contains reports whether addr's line is resident in the L1 or L2 — the
// attack harness's side-channel probe.
func (h *Hierarchy) Contains(addr uint64) bool {
	line := h.l1d.LineAddr(addr)
	return h.l1d.Contains(line) || h.l2.Contains(line)
}

// ContainsL1 reports L1 residency only (a finer probe).
func (h *Hierarchy) ContainsL1(addr uint64) bool {
	return h.l1d.Contains(h.l1d.LineAddr(addr))
}

// FlushAll empties both cache levels and the MSHRs.
func (h *Hierarchy) FlushAll() {
	h.l1d.InvalidateAll()
	h.l2.InvalidateAll()
	h.mshrs = nil
	if h.pf != nil {
		h.pf.Reset()
	}
}

// FlushLine evicts addr's line from both levels (clflush).
func (h *Hierarchy) FlushLine(addr uint64) {
	line := h.l1d.LineAddr(addr)
	h.l1d.InvalidateLine(line)
	h.l2.InvalidateLine(line)
}

// EarliestMSHRDone returns the earliest completion cycle among the
// outstanding MSHRs, or ^uint64(0) when none are in flight. This is the
// explicit registration of the memory system's only implicit wake-up — "a
// fill completes at cycle X" — for the core's idle-cycle skipper. The
// value may be stale-low (a completed MSHR the lazy expiry has not
// filtered yet); callers treating it as a wake hint must ignore values in
// the past, which the skipper's future-only min does.
func (h *Hierarchy) EarliestMSHRDone() uint64 {
	if len(h.mshrs) == 0 {
		return ^uint64(0)
	}
	return h.mshrMinDone
}

// OutstandingMisses returns the number of live MSHRs at cycle now.
func (h *Hierarchy) OutstandingMisses(now uint64) int {
	h.expire(now)
	return len(h.mshrs)
}
