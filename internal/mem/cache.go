package mem

import "fmt"

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name     string
	SizeKB   int // total capacity
	Ways     int
	LineB    int    // line size in bytes (power of two)
	HitLat   uint64 // cycles from access to data for a hit
	FillLat  uint64 // additional cycles to fill from the level below
	Prefetch bool   // enable the per-PC stride prefetcher at this level
}

// Validate checks the configuration for structural sanity.
func (c CacheConfig) Validate() error {
	if c.SizeKB <= 0 || c.Ways <= 0 || c.LineB <= 0 {
		return fmt.Errorf("mem: %s: non-positive geometry %+v", c.Name, c)
	}
	if c.LineB&(c.LineB-1) != 0 {
		return fmt.Errorf("mem: %s: line size %d not a power of two", c.Name, c.LineB)
	}
	lines := c.SizeKB * 1024 / c.LineB
	if lines%c.Ways != 0 {
		return fmt.Errorf("mem: %s: %d lines not divisible by %d ways", c.Name, lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: %s: %d sets not a power of two", c.Name, sets)
	}
	return nil
}

type cacheLine struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse uint64 // LRU stamp
	availAt uint64 // cycle at which an in-flight fill completes
}

// Cache is one set-associative, write-back, write-allocate cache level with
// true-LRU replacement. It models tags and fill timing only; data values
// live in Main.
type Cache struct {
	cfg       CacheConfig
	sets      [][]cacheLine
	lineShift uint
	setMask   uint64
	stamp     uint64

	// Statistics.
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Fills     uint64
}

// NewCache builds a cache from its configuration. It panics on an invalid
// configuration: geometries are compile-time constants of the experiment
// harness, never user input.
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	lines := cfg.SizeKB * 1024 / cfg.LineB
	sets := lines / cfg.Ways
	c := &Cache{cfg: cfg, sets: make([][]cacheLine, sets)}
	for i := range c.sets {
		c.sets[i] = make([]cacheLine, cfg.Ways)
	}
	for c.cfg.LineB>>c.lineShift != 1 {
		c.lineShift++
	}
	c.setMask = uint64(sets - 1)
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	l := addr >> c.lineShift
	return l & c.setMask, l >> 0 // tag keeps full line address for simplicity
}

// Lookup probes the cache without modifying replacement state. It returns
// whether the line is present and, if so, the cycle at which its fill
// completes (0 for long-resident lines).
func (c *Cache) Lookup(addr uint64) (present bool, availAt uint64) {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			return true, ln.availAt
		}
	}
	return false, 0
}

// Access performs a demand access at cycle now. It returns the cycle at
// which the data is available from this level and whether it was a hit.
// On a hit to a line still being filled, availability is the fill time
// (hit-under-fill). On a miss the caller is responsible for filling via
// Fill once the lower level responds.
func (c *Cache) Access(addr uint64, now uint64, write bool) (availAt uint64, hit bool) {
	c.Accesses++
	c.stamp++
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			c.Hits++
			ln.lastUse = c.stamp
			if write {
				ln.dirty = true
			}
			avail := now + c.cfg.HitLat
			if ln.availAt > avail {
				avail = ln.availAt
			}
			return avail, true
		}
	}
	c.Misses++
	return 0, false
}

// Fill installs the line containing addr, completing at cycle doneAt,
// evicting the LRU way. Filling an already-present line only refreshes its
// availability if the new fill completes earlier.
func (c *Cache) Fill(addr uint64, doneAt uint64, write bool) {
	c.Fills++
	c.stamp++
	set, tag := c.index(addr)
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			if doneAt < ln.availAt {
				ln.availAt = doneAt
			}
			if write {
				ln.dirty = true
			}
			ln.lastUse = c.stamp
			return
		}
		if !ln.valid {
			victim = i
			oldest = 0
			break
		}
		if ln.lastUse < oldest {
			oldest = ln.lastUse
			victim = i
		}
	}
	ln := &c.sets[set][victim]
	if ln.valid {
		c.Evictions++
	}
	*ln = cacheLine{tag: tag, valid: true, dirty: write, lastUse: c.stamp, availAt: doneAt}
}

// Contains reports whether the line holding addr is resident. It is the
// side-channel probe used by the Spectre attack harness: a real attacker
// measures access latency; the simulator can simply inspect the tag array.
func (c *Cache) Contains(addr uint64) bool {
	present, _ := c.Lookup(addr)
	return present
}

// InvalidateAll empties the cache (used by the attack harness to prime a
// clean probe array state).
func (c *Cache) InvalidateAll() {
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w] = cacheLine{}
		}
	}
}

// InvalidateLine removes the line containing addr if present (clflush).
func (c *Cache) InvalidateLine(addr uint64) {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == tag {
			c.sets[set][i] = cacheLine{}
			return
		}
	}
}

// LineAddr returns the line-aligned address for addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr &^ (uint64(c.cfg.LineB) - 1) }
