package mem

// StridePrefetcher is a per-PC stride prefetcher (the paper's gem5
// configuration uses stride prefetchers at L1D and L2, Table 2). Each table
// entry tracks the last address and stride observed for a load PC; after
// the same stride repeats confThreshold times, the prefetcher emits
// prefetches degree lines ahead.
type StridePrefetcher struct {
	entries       []strideEntry
	mask          uint64
	confThreshold int
	degree        int
	scratch       []uint64 // reused Train return buffer; see Train

	Trains     uint64
	Issued     uint64
	UsefulHint uint64 // maintained by the hierarchy on prefetched-line hits
}

type strideEntry struct {
	pc       uint64
	lastAddr uint64
	stride   int64
	conf     int
	valid    bool
}

// NewStridePrefetcher builds a prefetcher with a power-of-two table size.
func NewStridePrefetcher(tableSize, confThreshold, degree int) *StridePrefetcher {
	if tableSize&(tableSize-1) != 0 || tableSize <= 0 {
		panic("mem: prefetcher table size must be a power of two")
	}
	return &StridePrefetcher{
		entries:       make([]strideEntry, tableSize),
		mask:          uint64(tableSize - 1),
		confThreshold: confThreshold,
		degree:        degree,
		scratch:       make([]uint64, 0, degree),
	}
}

// Train observes a demand access by the load at pc to addr and returns the
// addresses to prefetch (possibly none). The returned slice is a scratch
// buffer owned by the prefetcher and overwritten by the next Train call —
// Train sits on the per-load hot path, and a fresh slice per confident
// train was one of the simulator's last steady-state allocations. Callers
// must consume it before training again (the hierarchy does, immediately).
func (p *StridePrefetcher) Train(pc, addr uint64) []uint64 {
	p.Trains++
	e := &p.entries[pc&p.mask]
	if !e.valid || e.pc != pc {
		*e = strideEntry{pc: pc, lastAddr: addr, valid: true}
		return nil
	}
	stride := int64(addr) - int64(e.lastAddr)
	if stride == e.stride && stride != 0 {
		if e.conf < p.confThreshold {
			e.conf++
		}
	} else {
		e.conf = 0
		e.stride = stride
	}
	e.lastAddr = addr
	if e.conf < p.confThreshold || e.stride == 0 {
		return nil
	}
	out := p.scratch[:0]
	next := addr
	for i := 0; i < p.degree; i++ {
		next = uint64(int64(next) + e.stride)
		out = append(out, next)
	}
	p.Issued += uint64(len(out))
	return out
}

// Reset clears all table state.
func (p *StridePrefetcher) Reset() {
	for i := range p.entries {
		p.entries[i] = strideEntry{}
	}
}
