package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/harness"
)

// The farm client. HTTPCache implements harness.CellCache over the farm
// protocol, so `-remote URL` slots a shared fleet-wide store under any
// cmd's local cache stack. It also implements harness.CellResolver: in
// compute mode a miss becomes a POST that asks the farm to simulate the
// cell — and harness.ExperimentResolver: a whole matrix becomes ONE
// streaming POST /v1/experiments (ResolveExperiment), with the per-cell
// path as the fallback for whatever a broken stream failed to deliver.
// Per the CellCache contract every failure is a miss (plus an error for
// the engine to report), never a failed run — and a breaker stops
// re-dialing a dead farm on every cell.

// HTTPCacheOptions parameterizes NewHTTPCache. The zero value is usable.
type HTTPCacheOptions struct {
	// Timeout bounds one request attempt (zero: 2m — compute requests
	// block until the farm has simulated the cell).
	Timeout time.Duration
	// Retries is the number of additional attempts after a transient
	// failure — network error, 5xx, corrupt body (zero: 2; negative: none).
	Retries int
	// Backoff is the delay before the first retry, doubled per retry
	// (zero: 100ms).
	Backoff time.Duration
	// Compute asks the farm to simulate missing cells (POST compute-on-
	// miss) instead of reporting a miss and simulating locally.
	Compute bool
	// BreakerTrips is the number of consecutive transport-level failures
	// after which the cache reports every call as an immediate miss for
	// BreakerCooldown, so a dead farm costs one connection error per
	// window, not per cell (zero: 3; negative: breaker disabled).
	BreakerTrips int
	// BreakerCooldown is the open-breaker window (zero: 5s).
	BreakerCooldown time.Duration
	// Client overrides the HTTP client (tests inject transports here);
	// Timeout still bounds each attempt through the request context.
	Client *http.Client
}

// HTTPCache is a harness.CellCache (and CellResolver) speaking the farm
// protocol against one base URL.
type HTTPCache struct {
	base string
	opt  HTTPCacheOptions
	hc   *http.Client

	mu        sync.Mutex
	failures  int       // consecutive transport failures
	openUntil time.Time // breaker open while now < openUntil
}

// NewHTTPCache returns a farm-backed cell cache for the daemon at baseURL
// (e.g. "http://127.0.0.1:8484").
func NewHTTPCache(baseURL string, opt HTTPCacheOptions) *HTTPCache {
	if opt.Timeout <= 0 {
		opt.Timeout = 2 * time.Minute
	}
	if opt.Retries == 0 {
		opt.Retries = 2
	} else if opt.Retries < 0 {
		opt.Retries = 0
	}
	if opt.Backoff <= 0 {
		opt.Backoff = 100 * time.Millisecond
	}
	if opt.BreakerTrips == 0 {
		opt.BreakerTrips = 3
	}
	if opt.BreakerCooldown <= 0 {
		opt.BreakerCooldown = 5 * time.Second
	}
	hc := opt.Client
	if hc == nil {
		hc = &http.Client{}
	}
	return &HTTPCache{base: strings.TrimRight(baseURL, "/"), opt: opt, hc: hc}
}

// transientError marks a failure worth retrying (and worth counting
// towards the breaker): the farm may answer the next attempt.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

func transient(format string, args ...any) error {
	return &transientError{err: fmt.Errorf(format, args...)}
}

// errFarmDown is returned without touching the network while the breaker
// is open.
var errFarmDown = errors.New("farm: breaker open (recent consecutive failures); treating as miss")

// Get reads one cell from the farm store; 404 is a miss, every failure is
// a miss with an error for the engine to report.
func (c *HTTPCache) Get(key string) (harness.Run, bool, error) {
	var (
		run harness.Run
		ok  bool
	)
	err := c.retry(func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+CellsPath+"/"+key, nil)
		if err != nil {
			return fmt.Errorf("farm: build get: %w", err)
		}
		req.Header.Set("Accept-Encoding", "gzip")
		resp, err := c.hc.Do(req)
		if err != nil {
			return transient("farm: get %s: %w", key, err)
		}
		defer drainClose(resp.Body)
		switch {
		case resp.StatusCode == http.StatusNotFound:
			return nil // a clean miss: no retry, no error
		case resp.StatusCode != http.StatusOK:
			return transient("farm: get %s: %s", key, resp.Status)
		}
		rd, err := maybeGunzip(resp)
		if err != nil {
			return &transientError{err: err}
		}
		env, err := decodeEnvelope(rd, key)
		if err != nil {
			return &transientError{err: err} // corrupt body: retry, then miss
		}
		run, ok = env.Run, true
		return nil
	})
	if err != nil {
		return harness.Run{}, false, err
	}
	return run, ok, nil
}

// Put writes one cell to the farm store. Errors are returned for the
// engine's warn-and-continue write path.
func (c *HTTPCache) Put(key string, r harness.Run) error {
	body, err := json.Marshal(newEnvelope(key, r, false))
	if err != nil {
		return fmt.Errorf("farm: marshal cell %s: %w", key, err)
	}
	payload, encoding := maybeGzip(body)
	return c.retry(func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base+CellsPath+"/"+key, bytes.NewReader(payload))
		if err != nil {
			return fmt.Errorf("farm: build put: %w", err)
		}
		req.Header.Set("Content-Type", "application/json")
		if encoding != "" {
			req.Header.Set("Content-Encoding", encoding)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return transient("farm: put %s: %w", key, err)
		}
		defer drainClose(resp.Body)
		if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
			return transient("farm: put %s: %s", key, resp.Status)
		}
		return nil
	})
}

// ResolveCell implements harness.CellResolver: in compute mode a lookup
// POSTs the full job so the farm resolves it (its cache, fleet-wide
// single-flight, workers); otherwise it is a plain Get. Either way a
// failure is a miss and the engine simulates locally.
func (c *HTTPCache) ResolveCell(key string, job harness.CellJob, opts harness.Options) (harness.Run, bool, error) {
	if !c.opt.Compute {
		return c.Get(key)
	}
	wire := harness.WireJob(job, opts)
	body, err := json.Marshal(wire)
	if err != nil {
		return harness.Run{}, false, fmt.Errorf("farm: marshal job: %w", err)
	}
	payload, encoding := maybeGzip(body)
	var run harness.Run
	var ok bool
	err = c.retry(func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+CellsPath, bytes.NewReader(payload))
		if err != nil {
			return fmt.Errorf("farm: build compute: %w", err)
		}
		req.Header.Set("Content-Type", "application/json")
		if encoding != "" {
			req.Header.Set("Content-Encoding", encoding)
		}
		req.Header.Set("Accept-Encoding", "gzip")
		resp, err := c.hc.Do(req)
		if err != nil {
			return transient("farm: compute %s: %w", key, err)
		}
		defer drainClose(resp.Body)
		switch {
		case resp.StatusCode == http.StatusBadRequest:
			// The farm rejected the job itself (scheme roster or version
			// skew): retrying cannot help, simulate locally.
			return fmt.Errorf("farm: compute %s rejected: %s", key, resp.Status)
		case resp.StatusCode != http.StatusOK:
			return transient("farm: compute %s: %s", key, resp.Status)
		}
		rd, err := maybeGunzip(resp)
		if err != nil {
			return &transientError{err: err}
		}
		env, err := decodeEnvelope(rd, key)
		if err != nil {
			return &transientError{err: err}
		}
		run, ok = env.Run, true
		return nil
	})
	if err != nil {
		return harness.Run{}, false, err
	}
	return run, ok, nil
}

// ResolveExperiment implements harness.ExperimentResolver: in compute
// mode, one POST /v1/experiments asks the farm to resolve the whole spec,
// and every validated streamed cell is handed to deliver as it arrives —
// under a TieredCache that backfills the faster local layers, so the
// per-cell resolution that follows is all local hits and a cold remote
// experiment costs exactly one request. Streamed keys are checked against
// the locally derived key set (the stream counterpart of ResolveCell's
// key validation). Without Compute the farm cannot be asked to simulate,
// so the cache reports a clean no-op; every failure is returned for the
// engine to degrade to per-cell resolution.
func (c *HTTPCache) ResolveExperiment(ctx context.Context, spec harness.MatrixSpec, opts harness.Options, deliver func(key string, r harness.Run)) (int, error) {
	if !c.opt.Compute {
		return 0, nil
	}
	if err := c.breakerCheck(); err != nil {
		return 0, err
	}
	wire := harness.WireExperiment(spec, opts)
	jobs, wopts, err := wire.Resolve()
	if err != nil {
		return 0, fmt.Errorf("farm: experiment %q: %w", spec.Name, err)
	}
	expect := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		expect[harness.CellKey(j, wopts)] = true
	}
	n, err := NewStreamClient(c.base, c.hc).Experiment(ctx, wire, func(env CellEnvelope) error {
		if !expect[env.Key] {
			return &StreamError{Reason: "protocol",
				Err: fmt.Errorf("farm: streamed key %s is not in experiment %q (version skew?)", env.Key, spec.Name)}
		}
		if deliver != nil {
			deliver(env.Key, env.Run)
		}
		return nil
	})
	c.breakerReport(err == nil)
	return n, err
}

// retry runs one attempt function under the per-attempt timeout, retrying
// transient failures with doubling backoff, and feeds the breaker: any
// transient failure after the last attempt counts as a trip, any success
// resets it.
func (c *HTTPCache) retry(attempt func(ctx context.Context) error) error {
	if err := c.breakerCheck(); err != nil {
		return err
	}
	delay := c.opt.Backoff
	var err error
	for try := 0; ; try++ {
		err = func() error {
			ctx, cancel := context.WithTimeout(context.Background(), c.opt.Timeout)
			defer cancel()
			return attempt(ctx)
		}()
		var te *transientError
		if err == nil || !errors.As(err, &te) {
			c.breakerReport(err == nil)
			return err
		}
		if try >= c.opt.Retries {
			c.breakerReport(false)
			return err
		}
		time.Sleep(delay)
		delay *= 2
	}
}

// breakerCheck reports errFarmDown while the breaker is open.
func (c *HTTPCache) breakerCheck() error {
	if c.opt.BreakerTrips < 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if time.Now().Before(c.openUntil) {
		return errFarmDown
	}
	return nil
}

// breakerReport feeds one call outcome into the breaker.
func (c *HTTPCache) breakerReport(success bool) {
	if c.opt.BreakerTrips < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if success {
		c.failures = 0
		return
	}
	c.failures++
	if c.failures >= c.opt.BreakerTrips {
		c.openUntil = time.Now().Add(c.opt.BreakerCooldown)
		c.failures = 0
	}
}
