package farm

import (
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Per-endpoint request-latency histograms behind /v1/stats. Buckets are
// fixed and log-spaced — bucket i covers up to latBaseMicros·latRatio^i
// microseconds — so observation is one atomic increment and a percentile
// is the upper bound of the bucket holding its rank: exact to within one
// ratio step (×1.6), which is plenty to tell a 2 ms cache hit from a 2 s
// simulation, with zero allocation and no locks on the hot path.

const (
	latBuckets    = 40
	latBaseMicros = 50.0
	latRatio      = 1.6
)

// latEndpoints is the fixed endpoint set: the histogram map is built once
// at server construction, so observation never takes a lock.
var latEndpoints = []string{"get_cell", "put_cell", "compute", "experiments", "stats", "other"}

// endpointOf classifies a request for latency accounting.
func endpointOf(r *http.Request) string {
	switch {
	case strings.HasPrefix(r.URL.Path, CellsPath+"/") && r.Method == http.MethodGet:
		return "get_cell"
	case strings.HasPrefix(r.URL.Path, CellsPath+"/") && r.Method == http.MethodPut:
		return "put_cell"
	case r.URL.Path == CellsPath && r.Method == http.MethodPost:
		return "compute"
	case r.URL.Path == ExperimentsPath && r.Method == http.MethodPost:
		return "experiments"
	case r.URL.Path == StatsPath:
		return "stats"
	}
	return "other"
}

type latencyHist struct {
	counts [latBuckets]atomic.Int64
}

// observe files one request duration.
func (h *latencyHist) observe(d time.Duration) {
	us := float64(d.Microseconds())
	i := 0
	for bound := latBaseMicros; i < latBuckets-1 && us > bound; i++ {
		bound *= latRatio
	}
	h.counts[i].Add(1)
}

// bucketBoundMs is bucket i's upper bound in milliseconds.
func bucketBoundMs(i int) float64 {
	bound := latBaseMicros
	for ; i > 0; i-- {
		bound *= latRatio
	}
	return bound / 1000
}

// summary renders the histogram as count + p50/p95/p99; ok is false when
// nothing was observed (the endpoint is then omitted from /v1/stats).
func (h *latencyHist) summary() (LatencyStats, bool) {
	var counts [latBuckets]int64
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return LatencyStats{}, false
	}
	pct := func(q float64) float64 {
		rank := int64(q * float64(total))
		if rank < 1 {
			rank = 1
		}
		var cum int64
		for i, c := range counts {
			cum += c
			if cum >= rank {
				return bucketBoundMs(i)
			}
		}
		return bucketBoundMs(latBuckets - 1)
	}
	return LatencyStats{Count: total, P50: pct(0.50), P95: pct(0.95), P99: pct(0.99)}, true
}

// latencySet is the per-endpoint histogram collection.
type latencySet struct {
	hists map[string]*latencyHist
}

func newLatencySet() *latencySet {
	m := make(map[string]*latencyHist, len(latEndpoints))
	for _, ep := range latEndpoints {
		m[ep] = &latencyHist{}
	}
	return &latencySet{hists: m}
}

func (s *latencySet) observe(endpoint string, d time.Duration) {
	if h, ok := s.hists[endpoint]; ok {
		h.observe(d)
	}
}

// snapshot summarizes every endpoint with at least one observation.
func (s *latencySet) snapshot() map[string]LatencyStats {
	out := make(map[string]LatencyStats)
	for ep, h := range s.hists {
		if st, ok := h.summary(); ok {
			out[ep] = st
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
