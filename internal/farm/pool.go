package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"strings"
	"time"

	"repro/internal/harness"
)

// The worker pool. A coordinator configured with worker URLs shards cold
// compute requests across them by key hash: every worker owns a stable
// slice of the key space, so a full-matrix fan-out distributes evenly and
// repeated requests for one cell land on the worker whose cache already
// holds it. Workers are plain shadowbindingd processes without -workers of
// their own (one forward hop — a worker never re-forwards).

type workerPool struct {
	urls    []string
	client  *http.Client
	timeout time.Duration
}

func newWorkerPool(urls []string, timeout time.Duration) *workerPool {
	trimmed := make([]string, len(urls))
	for i, u := range urls {
		trimmed[i] = strings.TrimRight(u, "/")
	}
	return &workerPool{urls: trimmed, client: &http.Client{}, timeout: timeout}
}

// pick shards key onto one worker by FNV-1a hash.
func (p *workerPool) pick(key string) string {
	h := fnv.New32a()
	h.Write([]byte(key))
	return p.urls[int(h.Sum32()%uint32(len(p.urls)))]
}

// compute forwards one job to its sharded worker and returns the worker's
// result (and the worker URL, for logging). Any failure — transport, bad
// status, corrupt or mismatched envelope — is returned for the caller to
// fall back on; the pool never retries or re-shards, because the
// coordinator's local compute path is the universal fallback.
func (p *workerPool) compute(key string, wire harness.CellJobWire) (harness.CellResult, string, error) {
	worker := p.pick(key)
	env, err := postCompute(p.client, worker, key, wire, p.timeout)
	if err != nil {
		return harness.CellResult{}, worker, err
	}
	return harness.CellResult{Key: key, Run: env.Run, Cached: env.Cached}, worker, nil
}

// postCompute POSTs one job wire form to base's compute endpoint and
// decodes the envelope, validating it against the locally derived key —
// a worker built from different sources derives a different key, and that
// skew must surface as an error, not as a silently adopted result.
func postCompute(client *http.Client, base, key string, wire harness.CellJobWire, timeout time.Duration) (CellEnvelope, error) {
	body, err := json.Marshal(wire)
	if err != nil {
		return CellEnvelope{}, fmt.Errorf("farm: marshal job: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+CellsPath, bytes.NewReader(body))
	if err != nil {
		return CellEnvelope{}, fmt.Errorf("farm: build compute request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return CellEnvelope{}, fmt.Errorf("farm: compute %s: %w", key, err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return CellEnvelope{}, fmt.Errorf("farm: compute %s: %s", key, resp.Status)
	}
	return decodeEnvelope(resp.Body, key)
}
