package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/harness"
)

// The worker pool. A coordinator configured with worker URLs shards cold
// compute requests across the *healthy* subset by rendezvous (highest-
// random-weight) hashing: every key scores every worker and lands on the
// maximum. The placement is minimal-disruption by construction — removing
// a worker only remaps the keys that worker owned, so a death re-shards
// its slice evenly across the survivors while every other cell stays on
// the worker whose cache already holds it (and a revival reclaims exactly
// its old slice).
//
// Health is tracked two ways: a background prober GETs every worker's
// /v1/stats on a fixed cadence and flips workers dead or alive, and a
// failed forward marks its worker dead immediately (the probe revives it
// when it answers again). A failed forward re-shards onto the remaining
// healthy workers; only when none remain — or the failure indicts the job
// rather than the worker — does the caller fall back to coordinator-local
// simulation, the universal last resort. Workers are plain shadowbindingd
// processes without -workers of their own (one forward hop — a worker
// never re-forwards).

// worker is one tracked worker endpoint.
type worker struct {
	url     string
	healthy atomic.Bool
}

type workerPool struct {
	workers []*worker
	client  *http.Client
	timeout time.Duration
	log     *slog.Logger

	stop chan struct{} // closed by Close
	done chan struct{} // closed when the probe loop exits
}

// errNoWorkers reports an empty healthy set — the quiet path to
// coordinator-local simulation, costing a miss rather than a warning.
var errNoWorkers = errors.New("farm: no healthy workers")

// permanentError marks a worker response that indicts the job (scheme
// roster or version skew — a 4xx), not the worker: re-sharding cannot
// help and the worker stays healthy.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// probeTimeout bounds one health probe; a worker that cannot answer its
// stats endpoint this fast is not going to answer a compute request.
const probeTimeout = 2 * time.Second

// newWorkerPool tracks urls, forwarding with timeout per request and
// probing health every probeEvery (zero or negative: probing disabled —
// passive failure detection still applies, but a dead worker is only
// revived by a probe, so non-test callers want it on).
func newWorkerPool(urls []string, timeout, probeEvery time.Duration, log *slog.Logger) *workerPool {
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	p := &workerPool{
		client:  &http.Client{},
		timeout: timeout,
		log:     log,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, u := range urls {
		w := &worker{url: strings.TrimRight(u, "/")}
		w.healthy.Store(true)
		p.workers = append(p.workers, w)
	}
	if probeEvery > 0 {
		go p.probeLoop(probeEvery)
	} else {
		close(p.done)
	}
	return p
}

// Close stops the probe loop and waits for it to exit.
func (p *workerPool) Close() {
	close(p.stop)
	<-p.done
}

// probeLoop polls every worker's stats endpoint on a fixed cadence,
// flipping health on transitions.
func (p *workerPool) probeLoop(every time.Duration) {
	defer close(p.done)
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-tick.C:
			p.probeAll()
		}
	}
}

// probeAll probes every worker once.
func (p *workerPool) probeAll() {
	for _, w := range p.workers {
		healthy := p.probe(w.url)
		if w.healthy.Swap(healthy) != healthy {
			if healthy {
				p.log.Info("worker revived", "worker", w.url)
			} else {
				p.log.Warn("worker down (probe)", "worker", w.url)
			}
		}
	}
}

// probe reports whether one worker answers its stats endpoint.
func (p *workerPool) probe(url string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+StatsPath, nil)
	if err != nil {
		return false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return false
	}
	drainClose(resp.Body)
	return resp.StatusCode == http.StatusOK
}

// markDead flips one worker unhealthy after a failed forward — passive
// detection between probes, so one timeout is paid once, not per key.
func (p *workerPool) markDead(url string, err error) {
	for _, w := range p.workers {
		if w.url == url && w.healthy.Swap(false) {
			p.log.Warn("worker down (forward failed)", "worker", url, "err", err)
		}
	}
}

// statuses snapshots every worker's health for /v1/stats.
func (p *workerPool) statuses() []WorkerStatus {
	out := make([]WorkerStatus, len(p.workers))
	for i, w := range p.workers {
		out[i] = WorkerStatus{URL: w.url, Healthy: w.healthy.Load()}
	}
	return out
}

// rendezvousScore is the HRW weight of (worker, key): FNV-1a over the
// worker URL, a separator, and the key. Deterministic across processes —
// any coordinator shards a warm fleet identically.
func rendezvousScore(url, key string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, url) //nolint:errcheck // hash writes cannot fail
	h.Write([]byte{0})
	io.WriteString(h, key) //nolint:errcheck
	return h.Sum64()
}

// pick returns the healthy worker with the highest rendezvous score for
// key, skipping exclude (workers already tried this request); "" when no
// candidate remains. Ties break on URL order so pick stays deterministic.
func (p *workerPool) pick(key string, exclude map[string]bool) string {
	var best string
	var bestScore uint64
	for _, w := range p.workers {
		if !w.healthy.Load() || exclude[w.url] {
			continue
		}
		s := rendezvousScore(w.url, key)
		if best == "" || s > bestScore || (s == bestScore && w.url < best) {
			best, bestScore = w.url, s
		}
	}
	return best
}

// compute forwards one job to its rendezvous worker, re-sharding across
// the surviving healthy workers as failures mark workers dead. Returns
// the worker that answered. errNoWorkers (empty healthy set, nothing
// attempted) is the quiet miss that sends the caller to local
// simulation; a permanent rejection (the job, not the worker) or an
// exhausted healthy set after failures surfaces the last error for the
// caller to report before falling back.
func (p *workerPool) compute(key string, wire harness.CellJobWire) (harness.CellResult, string, error) {
	tried := make(map[string]bool)
	var lastErr error
	var lastWorker string
	for {
		url := p.pick(key, tried)
		if url == "" {
			if lastErr == nil {
				return harness.CellResult{}, "", errNoWorkers
			}
			return harness.CellResult{}, lastWorker, lastErr
		}
		env, err := postCompute(p.client, url, key, wire, p.timeout)
		if err == nil {
			return harness.CellResult{Key: key, Run: env.Run, Cached: env.Cached}, url, nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return harness.CellResult{}, url, err
		}
		tried[url] = true
		p.markDead(url, err)
		lastErr, lastWorker = err, url
	}
}

// postCompute POSTs one job wire form to base's compute endpoint and
// decodes the envelope, validating it against the locally derived key —
// a worker built from different sources derives a different key, and that
// skew must surface as an error, not as a silently adopted result.
func postCompute(client *http.Client, base, key string, wire harness.CellJobWire, timeout time.Duration) (CellEnvelope, error) {
	body, err := json.Marshal(wire)
	if err != nil {
		return CellEnvelope{}, fmt.Errorf("farm: marshal job: %w", err)
	}
	payload, encoding := maybeGzip(body)
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+CellsPath, bytes.NewReader(payload))
	if err != nil {
		return CellEnvelope{}, fmt.Errorf("farm: build compute request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if encoding != "" {
		req.Header.Set("Content-Encoding", encoding)
	}
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := client.Do(req)
	if err != nil {
		return CellEnvelope{}, fmt.Errorf("farm: compute %s: %w", key, err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("farm: compute %s: %s", key, resp.Status)
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return CellEnvelope{}, &permanentError{err: err}
		}
		return CellEnvelope{}, err
	}
	rd, err := maybeGunzip(resp)
	if err != nil {
		return CellEnvelope{}, err
	}
	return decodeEnvelope(rd, key)
}
