package farm

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/workloads"
)

// testOpts keeps farm-test cells cheap: one cell is ~2000 simulated
// cycles, so even the soak test's whole unique set costs milliseconds.
func testOpts() harness.Options {
	o := harness.DefaultOptions()
	o.WarmupCycles = 500
	o.MeasureCycles = 1500
	return o
}

func testJob(t *testing.T, bench string, kind core.SchemeKind) harness.CellJob {
	t.Helper()
	p, err := workloads.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	return harness.CellJob{Config: core.SmallConfig(), Scheme: kind, Bench: p}
}

// keyOf derives the client-side content-addressed key of a job.
func keyOf(job harness.CellJob, opts harness.Options) string {
	return harness.NewEngine(nil, "").Key(job, opts)
}

// refRun simulates a job locally — the ground truth farm-served results
// must match byte for byte.
func refRun(t *testing.T, job harness.CellJob, opts harness.Options) harness.Run {
	t.Helper()
	r, err := harness.RunOne(job.Config, job.Scheme, job.Bench, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func newTestFarm(t *testing.T, cfg ServerConfig) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts
}

// fastClient returns an HTTPCache tuned for tests: short backoff, no
// breaker (tests that exercise the breaker configure it explicitly).
func fastClient(url string, compute bool) *HTTPCache {
	return NewHTTPCache(url, HTTPCacheOptions{
		Compute:      compute,
		Retries:      1,
		Backoff:      time.Millisecond,
		BreakerTrips: -1,
	})
}

// TestFarmGetPutRoundTrip: the remote cache path — a PUT cell comes back
// byte-identical on GET, an unknown key is a clean miss, and the counters
// account for both.
func TestFarmGetPutRoundTrip(t *testing.T) {
	srv, ts := newTestFarm(t, ServerConfig{})
	opts := testOpts()
	job := testJob(t, "505.mcf", core.KindBaseline)
	key := keyOf(job, opts)
	ref := refRun(t, job, opts)

	c := fastClient(ts.URL, false)
	if _, ok, err := c.Get(key); ok || err != nil {
		t.Fatalf("empty farm: ok=%v err=%v", ok, err)
	}
	if err := c.Put(key, ref); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get(key)
	if err != nil || !ok {
		t.Fatalf("get after put: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("run changed across the wire:\ngot  %+v\nwant %+v", got, ref)
	}
	st := srv.Stats()
	if st.Gets != 2 || st.GetHits != 1 || st.Puts != 1 {
		t.Fatalf("counters: %+v", st)
	}
}

// TestFarmPutRejectsBadEnvelopes: the server's write path must validate —
// schema, key identity, scheme-name resolution — before storing anything.
func TestFarmPutRejectsBadEnvelopes(t *testing.T) {
	srv, ts := newTestFarm(t, ServerConfig{})
	opts := testOpts()
	job := testJob(t, "505.mcf", core.KindBaseline)
	key := keyOf(job, opts)
	ref := refRun(t, job, opts)

	put := func(t *testing.T, key string, env CellEnvelope) int {
		t.Helper()
		body, err := json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPut, ts.URL+CellsPath+"/"+key, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		drainClose(resp.Body)
		return resp.StatusCode
	}

	good := newEnvelope(key, ref, false)
	badSchema := good
	badSchema.Schema = "bogus/v9"
	badScheme := good
	badScheme.Scheme = "no-such-scheme"
	mismatched := newEnvelope("0000000000000000", ref, false)

	if code := put(t, key, badSchema); code != http.StatusBadRequest {
		t.Fatalf("bad schema accepted: %d", code)
	}
	if code := put(t, key, badScheme); code != http.StatusBadRequest {
		t.Fatalf("bad scheme accepted: %d", code)
	}
	if code := put(t, key, mismatched); code != http.StatusBadRequest {
		t.Fatalf("mismatched key accepted: %d", code)
	}
	if st := srv.Stats(); st.Puts != 0 {
		t.Fatalf("rejected writes counted: %+v", st)
	}
	if code := put(t, key, good); code != http.StatusNoContent {
		t.Fatalf("good envelope rejected: %d", code)
	}
}

// TestFarmComputeEndToEnd: a compute client's cold request simulates on
// the farm and returns byte-identical results; the repeat is served from
// the farm's cache without simulating again, and plain GETs hit too.
func TestFarmComputeEndToEnd(t *testing.T) {
	srv, ts := newTestFarm(t, ServerConfig{})
	opts := testOpts()
	job := testJob(t, "505.mcf", core.KindSTTRename)
	key := keyOf(job, opts)
	ref := refRun(t, job, opts)

	c := fastClient(ts.URL, true)
	got, ok, err := c.ResolveCell(key, job, opts)
	if err != nil || !ok {
		t.Fatalf("compute: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("farm-computed run diverges from local:\ngot  %+v\nwant %+v", got, ref)
	}
	if st := srv.Stats(); st.EngineSimulated != 1 {
		t.Fatalf("farm did not simulate exactly once: %+v", st)
	}
	if _, ok, err := c.ResolveCell(key, job, opts); !ok || err != nil {
		t.Fatalf("warm compute: ok=%v err=%v", ok, err)
	}
	if got2, ok, _ := c.Get(key); !ok || !reflect.DeepEqual(got2, ref) {
		t.Fatal("computed cell not readable via GET")
	}
	st := srv.Stats()
	if st.EngineSimulated != 1 || st.EngineHits != 1 {
		t.Fatalf("warm compute re-simulated: %+v", st)
	}
}

// TestFarmComputeRejectsBadJobs: garbage and incompatible jobs are 400s,
// never crashes or simulations.
func TestFarmComputeRejectsBadJobs(t *testing.T) {
	srv, ts := newTestFarm(t, ServerConfig{})

	post := func(body string) int {
		resp, err := http.Post(ts.URL+CellsPath, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		drainClose(resp.Body)
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Fatalf("garbage accepted: %d", code)
	}
	wire := harness.WireJob(testJob(t, "505.mcf", core.KindBaseline), testOpts())
	wire.Scheme = "no-such-scheme"
	body, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if code := post(string(body)); code != http.StatusBadRequest {
		t.Fatalf("unknown scheme accepted: %d", code)
	}
	if st := srv.Stats(); st.EngineSimulated != 0 {
		t.Fatalf("bad jobs reached the simulator: %+v", st)
	}
}

// TestFarmStatsEndpoint: the counters round-trip over HTTP.
func TestFarmStatsEndpoint(t *testing.T) {
	_, ts := newTestFarm(t, ServerConfig{})
	opts := testOpts()
	job := testJob(t, "505.mcf", core.KindBaseline)
	c := fastClient(ts.URL, true)
	if _, ok, err := c.ResolveCell(keyOf(job, opts), job, opts); !ok || err != nil {
		t.Fatalf("compute: ok=%v err=%v", ok, err)
	}

	resp, err := http.Get(ts.URL + StatsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Computes != 1 || st.EngineSimulated != 1 || st.SimCycles == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight not drained: %+v", st)
	}
}
