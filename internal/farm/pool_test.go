package farm

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
)

// TestWorkerFanOut: a coordinator with two workers must shard compute
// across both by key hash and never simulate locally itself, while the
// fleet as a whole still simulates each unique cell exactly once —
// including under concurrent duplicate requests.
func TestWorkerFanOut(t *testing.T) {
	w1, ts1 := newTestFarm(t, ServerConfig{})
	w2, ts2 := newTestFarm(t, ServerConfig{})
	coord, tsc := newTestFarm(t, ServerConfig{Workers: []string{ts1.URL, ts2.URL}})

	opts := testOpts()
	benches := []string{"505.mcf", "502.gcc", "520.omnetpp", "541.leela"}
	kinds := []core.SchemeKind{
		core.KindBaseline, core.KindSTTRename, core.KindSTTIssue, core.KindNDA,
	}
	var jobs []harness.CellJob
	var keys []string
	var refs []harness.Run
	for _, b := range benches {
		for _, k := range kinds {
			j := testJob(t, b, k)
			jobs = append(jobs, j)
			keys = append(keys, keyOf(j, opts))
			refs = append(refs, refRun(t, j, opts))
		}
	}
	unique := len(jobs) // 16

	const dup = 4 // concurrent duplicate clients per cell
	var wg sync.WaitGroup
	errs := make(chan error, unique*dup)
	for d := 0; d < dup; d++ {
		for i := range jobs {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := fastClient(tsc.URL, true)
				run, ok, err := c.ResolveCell(keys[i], jobs[i], opts)
				if err != nil || !ok {
					errs <- fmt.Errorf("cell %s: ok=%v err=%v", keys[i], ok, err)
					return
				}
				if !reflect.DeepEqual(run, refs[i]) {
					errs <- fmt.Errorf("cell %s: worker result diverges from local", keys[i])
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	cs, s1, s2 := coord.Stats(), w1.Stats(), w2.Stats()
	if cs.EngineSimulated != 0 {
		t.Fatalf("coordinator simulated locally despite healthy workers: %+v", cs)
	}
	if cs.Forwarded != int64(unique) {
		t.Fatalf("forwarded %d compute requests, want %d (one per unique cell): %+v",
			cs.Forwarded, unique, cs)
	}
	if s1.EngineSimulated+s2.EngineSimulated != int64(unique) {
		t.Fatalf("fleet simulated %d+%d cells, want %d total",
			s1.EngineSimulated, s2.EngineSimulated, unique)
	}
	// FNV sharding over 16 distinct keys must actually use both workers.
	if s1.EngineSimulated == 0 || s2.EngineSimulated == 0 {
		t.Fatalf("fan-out degenerate: worker split %d/%d",
			s1.EngineSimulated, s2.EngineSimulated)
	}
	if cs.WorkerErrors != 0 {
		t.Fatalf("unexpected worker errors: %+v", cs)
	}
}

// TestWorkerFailureFallsBackLocal: a dead worker must cost a warning and
// a local simulation on the coordinator — never a failed request.
func TestWorkerFailureFallsBackLocal(t *testing.T) {
	coord, tsc := newTestFarm(t, ServerConfig{
		Workers: []string{"http://127.0.0.1:1"}, // reserved port: dial always refused
	})
	opts := testOpts()
	job := testJob(t, "505.mcf", core.KindSTTIssue)
	key := keyOf(job, opts)
	ref := refRun(t, job, opts)

	c := fastClient(tsc.URL, true)
	run, ok, err := c.ResolveCell(key, job, opts)
	if err != nil || !ok {
		t.Fatalf("compute with dead worker: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(run, ref) {
		t.Fatalf("fallback run diverges:\ngot  %+v\nwant %+v", run, ref)
	}
	st := coord.Stats()
	if st.WorkerErrors != 1 || st.Forwarded != 0 {
		t.Fatalf("worker failure not accounted: %+v", st)
	}
	if st.EngineSimulated != 1 {
		t.Fatalf("coordinator did not fall back to local simulation: %+v", st)
	}
}

// TestPoolSharding: pick is deterministic and uses every worker across
// enough keys — the property the fan-out test observes end to end.
func TestPoolSharding(t *testing.T) {
	p := newWorkerPool([]string{"http://a/", "http://b", "http://c"}, 0)
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("%016x", i*2654435761)
		u := p.pick(key)
		if u != p.pick(key) {
			t.Fatalf("pick not deterministic for %s", key)
		}
		seen[u] = true
	}
	if len(seen) != 3 {
		t.Fatalf("64 keys landed on %d of 3 workers: %v", len(seen), seen)
	}
	for u := range seen {
		if u[len(u)-1] == '/' {
			t.Fatalf("worker URL kept trailing slash: %q", u)
		}
	}
}
