package farm

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
)

// TestWorkerFanOut: a coordinator with two workers must shard compute
// across both by key hash and never simulate locally itself, while the
// fleet as a whole still simulates each unique cell exactly once —
// including under concurrent duplicate requests.
func TestWorkerFanOut(t *testing.T) {
	w1, ts1 := newTestFarm(t, ServerConfig{})
	w2, ts2 := newTestFarm(t, ServerConfig{})
	coord, tsc := newTestFarm(t, ServerConfig{Workers: []string{ts1.URL, ts2.URL}})

	opts := testOpts()
	benches := []string{"505.mcf", "502.gcc", "520.omnetpp", "541.leela"}
	kinds := []core.SchemeKind{
		core.KindBaseline, core.KindSTTRename, core.KindSTTIssue, core.KindNDA,
	}
	var jobs []harness.CellJob
	var keys []string
	var refs []harness.Run
	for _, b := range benches {
		for _, k := range kinds {
			j := testJob(t, b, k)
			jobs = append(jobs, j)
			keys = append(keys, keyOf(j, opts))
			refs = append(refs, refRun(t, j, opts))
		}
	}
	unique := len(jobs) // 16

	const dup = 4 // concurrent duplicate clients per cell
	var wg sync.WaitGroup
	errs := make(chan error, unique*dup)
	for d := 0; d < dup; d++ {
		for i := range jobs {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := fastClient(tsc.URL, true)
				run, ok, err := c.ResolveCell(keys[i], jobs[i], opts)
				if err != nil || !ok {
					errs <- fmt.Errorf("cell %s: ok=%v err=%v", keys[i], ok, err)
					return
				}
				if !reflect.DeepEqual(run, refs[i]) {
					errs <- fmt.Errorf("cell %s: worker result diverges from local", keys[i])
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	cs, s1, s2 := coord.Stats(), w1.Stats(), w2.Stats()
	if cs.EngineSimulated != 0 {
		t.Fatalf("coordinator simulated locally despite healthy workers: %+v", cs)
	}
	if cs.Forwarded != int64(unique) {
		t.Fatalf("forwarded %d compute requests, want %d (one per unique cell): %+v",
			cs.Forwarded, unique, cs)
	}
	if s1.EngineSimulated+s2.EngineSimulated != int64(unique) {
		t.Fatalf("fleet simulated %d+%d cells, want %d total",
			s1.EngineSimulated, s2.EngineSimulated, unique)
	}
	// FNV sharding over 16 distinct keys must actually use both workers.
	if s1.EngineSimulated == 0 || s2.EngineSimulated == 0 {
		t.Fatalf("fan-out degenerate: worker split %d/%d",
			s1.EngineSimulated, s2.EngineSimulated)
	}
	if cs.WorkerErrors != 0 {
		t.Fatalf("unexpected worker errors: %+v", cs)
	}
}

// TestWorkerFailureFallsBackLocal: a dead worker must cost a warning and
// a local simulation on the coordinator — never a failed request.
func TestWorkerFailureFallsBackLocal(t *testing.T) {
	coord, tsc := newTestFarm(t, ServerConfig{
		Workers: []string{"http://127.0.0.1:1"}, // reserved port: dial always refused
	})
	opts := testOpts()
	job := testJob(t, "505.mcf", core.KindSTTIssue)
	key := keyOf(job, opts)
	ref := refRun(t, job, opts)

	c := fastClient(tsc.URL, true)
	run, ok, err := c.ResolveCell(key, job, opts)
	if err != nil || !ok {
		t.Fatalf("compute with dead worker: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(run, ref) {
		t.Fatalf("fallback run diverges:\ngot  %+v\nwant %+v", run, ref)
	}
	st := coord.Stats()
	if st.WorkerErrors != 1 || st.Forwarded != 0 {
		t.Fatalf("worker failure not accounted: %+v", st)
	}
	if st.EngineSimulated != 1 {
		t.Fatalf("coordinator did not fall back to local simulation: %+v", st)
	}
}

// TestPoolSharding: rendezvous pick is deterministic and uses every
// worker across enough keys — the property the fan-out test observes end
// to end.
func TestPoolSharding(t *testing.T) {
	p := newWorkerPool([]string{"http://a/", "http://b", "http://c"}, 0, -1, nil)
	defer p.Close()
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("%016x", i*2654435761)
		u := p.pick(key, nil)
		if u != p.pick(key, nil) {
			t.Fatalf("pick not deterministic for %s", key)
		}
		seen[u] = true
	}
	if len(seen) != 3 {
		t.Fatalf("64 keys landed on %d of 3 workers: %v", len(seen), seen)
	}
	for u := range seen {
		if u[len(u)-1] == '/' {
			t.Fatalf("worker URL kept trailing slash: %q", u)
		}
	}
}

// TestPoolRendezvousMinimalDisruption: the HRW property the re-shard
// design rests on — losing one worker remaps ONLY the keys that worker
// owned; every key on a survivor stays exactly where its cache is warm.
// (The static FNV shard this replaced remapped ~everything.)
func TestPoolRendezvousMinimalDisruption(t *testing.T) {
	p := newWorkerPool([]string{"http://a", "http://b", "http://c"}, 0, -1, nil)
	defer p.Close()

	const keys = 256
	before := make(map[string]string, keys)
	owned := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("%016x", i*2654435761)
		before[key] = p.pick(key, nil)
		if before[key] == "http://b" {
			owned++
		}
	}
	if owned == 0 || owned == keys {
		t.Fatalf("degenerate spread: b owns %d/%d keys", owned, keys)
	}

	p.markDead("http://b", fmt.Errorf("test"))
	moved := map[string]int{}
	for key, prev := range before {
		now := p.pick(key, nil)
		if now == "http://b" {
			t.Fatalf("dead worker still picked for %s", key)
		}
		if prev != "http://b" && now != prev {
			t.Fatalf("key %s moved %s -> %s though its worker survived", key, prev, now)
		}
		if prev == "http://b" {
			moved[now]++
		}
	}
	// The orphaned slice must re-shard across BOTH survivors, not pile up.
	if len(moved) != 2 {
		t.Fatalf("orphaned keys landed on %d survivors: %v", len(moved), moved)
	}
}

// TestWorkerDeathReshards: the end-to-end re-shard contract — with one of
// two workers dead, every cell (including the dead worker's slice) is
// computed by the survivor, and the coordinator never simulates locally.
func TestWorkerDeathReshards(t *testing.T) {
	w1, ts1 := newTestFarm(t, ServerConfig{})
	_, ts2 := newTestFarm(t, ServerConfig{})
	coord, tsc := newTestFarm(t, ServerConfig{Workers: []string{ts1.URL, ts2.URL}})

	// Kill worker 2 before any traffic: its slice must re-shard onto
	// worker 1 via passive failure detection, at the cost of exactly one
	// failed forward (the first key that picks it).
	ts2.Close()

	opts := testOpts()
	benches := []string{"505.mcf", "502.gcc", "520.omnetpp", "541.leela"}
	c := fastClient(tsc.URL, true)
	for _, b := range benches {
		for _, k := range []core.SchemeKind{core.KindBaseline, core.KindNDA} {
			job := testJob(t, b, k)
			key := keyOf(job, opts)
			run, ok, err := c.ResolveCell(key, job, opts)
			if err != nil || !ok {
				t.Fatalf("cell %s: ok=%v err=%v", key, ok, err)
			}
			if !reflect.DeepEqual(run, refRun(t, job, opts)) {
				t.Fatalf("cell %s diverges after re-shard", key)
			}
		}
	}

	cs, s1 := coord.Stats(), w1.Stats()
	if cs.EngineSimulated != 0 {
		t.Fatalf("coordinator simulated despite a healthy survivor: %+v", cs)
	}
	if s1.EngineSimulated != 8 {
		t.Fatalf("survivor simulated %d of 8 cells", s1.EngineSimulated)
	}
	if cs.Forwarded != 8 {
		t.Fatalf("forwarded %d of 8 cells: %+v", cs.Forwarded, cs)
	}
	// Passive detection pays the dead worker at most one failed forward
	// (zero if the first keys all rendezvous onto the survivor).
	if cs.WorkerErrors > 1 {
		t.Fatalf("dead worker charged per key, not once: %+v", cs)
	}
	var deadSeen bool
	for _, w := range cs.Workers {
		if w.URL == ts2.URL && !w.Healthy {
			deadSeen = true
		}
	}
	if cs.WorkerErrors == 1 && !deadSeen {
		t.Fatalf("failed worker not marked dead in stats: %+v", cs.Workers)
	}
}
