// Package farm is the networked cell-farm layer over the content-addressed
// cell engine: an HTTP service (Server, behind cmd/shadowbindingd) that
// stores and computes simulation cells, a CellCache client (HTTPCache) that
// gives any process remote caching — and optionally remote *computation* —
// through the existing harness.CellCache interface, and a worker pool that
// shards cold compute requests across processes.
//
// The protocol is deliberately small and cache-shaped:
//
//	GET  /v1/cells/{key}   remote cache read: 200 cell envelope | 404 miss
//	PUT  /v1/cells/{key}   remote cache write: 204 | 400 bad envelope
//	POST /v1/cells         compute-on-miss: body is a harness.CellJobWire;
//	                       the server resolves it through its own engine
//	                       (cache first, fleet-wide single-flight, then
//	                       simulation or worker forward) and returns the
//	                       cell envelope
//	GET  /v1/stats         farm counters as JSON (Stats)
//
// Keys are the engine's content-addressed cell fingerprints and are opaque
// to the server's store; a client and server built from the same source
// derive identical keys for identical jobs, because the wire form carries
// exactly the fingerprinted fields. Every failure on the client side
// degrades to a cache miss — the harness CellCache contract — so a flaky
// or absent farm never fails a run, it only costs local re-simulation.
package farm

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/harness"
)

const (
	// Schema identifies the wire envelope layout.
	Schema = "shadowbinding-farm/v1"
	// CellsPath is the cell collection: POST computes a cell, GET/PUT on
	// CellsPath/{key} read and write the store.
	CellsPath = "/v1/cells"
	// StatsPath serves the farm's counter snapshot.
	StatsPath = "/v1/stats"

	// maxBodyBytes bounds request and response bodies; cell envelopes and
	// job wire forms are a few KiB, so 1 MiB is generous headroom, not a
	// constraint.
	maxBodyBytes = 1 << 20
)

// CellEnvelope is one cell result on the wire — the farm counterpart of
// the disk cache's on-disk entry. The scheme's registered name rides along
// for the same reason: a receiver revalidates it against its own registry,
// so an entry from a binary with a renumbered or missing scheme is a miss
// (or a rejected write), never a silently mislabeled result.
type CellEnvelope struct {
	Schema string      `json:"schema"`
	Key    string      `json:"key"`
	Scheme string      `json:"scheme"`
	Run    harness.Run `json:"run"`
	// Cached reports, on compute responses, that the farm served the cell
	// without simulating (its cache hit, or the request coalesced onto an
	// in-flight resolution).
	Cached bool `json:"cached,omitempty"`
}

// newEnvelope wraps one run for the wire.
func newEnvelope(key string, r harness.Run, cached bool) CellEnvelope {
	return CellEnvelope{Schema: Schema, Key: key, Scheme: r.Scheme.String(), Run: r, Cached: cached}
}

// validate checks an envelope received for wantKey: schema, key identity,
// and scheme-name revalidation against this process's registry.
func (e CellEnvelope) validate(wantKey string) error {
	if e.Schema != Schema {
		return fmt.Errorf("farm: envelope schema %q, want %q", e.Schema, Schema)
	}
	if wantKey != "" && e.Key != wantKey {
		return fmt.Errorf("farm: envelope key %q does not match requested %q (version skew?)", e.Key, wantKey)
	}
	kind, ok := core.SchemeKindByName(e.Scheme)
	if !ok || kind != e.Run.Scheme {
		return fmt.Errorf("farm: envelope scheme %q does not resolve to the run's kind", e.Scheme)
	}
	return nil
}

// decodeEnvelope reads and validates one envelope from r.
func decodeEnvelope(r io.Reader, wantKey string) (CellEnvelope, error) {
	var env CellEnvelope
	if err := json.NewDecoder(io.LimitReader(r, maxBodyBytes)).Decode(&env); err != nil {
		return CellEnvelope{}, fmt.Errorf("farm: decode cell envelope: %w", err)
	}
	if err := env.validate(wantKey); err != nil {
		return CellEnvelope{}, err
	}
	return env, nil
}

// Stats is the farm server's counter snapshot, served on StatsPath. The
// Engine* fields are the embedded cell engine's accounting: local cache
// hits and simulations behind the compute endpoint (forwarded computes are
// counted by the worker that ran them).
type Stats struct {
	Gets            int64  `json:"gets"`              // GET requests
	GetHits         int64  `json:"get_hits"`          // GETs served from the store
	Puts            int64  `json:"puts"`              // accepted PUT writes
	Computes        int64  `json:"computes"`          // POST compute requests
	Coalesced       int64  `json:"coalesced"`         // computes that joined an in-flight resolution
	Forwarded       int64  `json:"forwarded"`         // computes served by a worker
	WorkerErrors    int64  `json:"worker_errors"`     // worker failures that fell back to local compute
	InFlight        int64  `json:"in_flight"`         // compute resolutions currently running
	EngineCells     int64  `json:"engine_cells"`      // cells resolved by the local engine
	EngineHits      int64  `json:"engine_hits"`       // ... served from the local cache
	EngineSimulated int64  `json:"engine_simulated"`  // ... simulated locally
	SimCycles       uint64 `json:"engine_sim_cycles"` // simulated cycles executed locally
}

// httpError writes status with a plain-text reason.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), status)
}
