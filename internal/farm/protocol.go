// Package farm is the networked cell-farm layer over the content-addressed
// cell engine: an HTTP service (Server, behind cmd/shadowbindingd) that
// stores and computes simulation cells, a CellCache client (HTTPCache) that
// gives any process remote caching — and optionally remote *computation* —
// through the existing harness.CellCache interface, a streaming client
// (StreamClient) that consumes whole experiments, and a worker pool that
// rendezvous-shards cold compute requests across healthy processes.
//
// The protocol is deliberately small and cache-shaped:
//
//	GET  /v1/cells/{key}   remote cache read: 200 cell envelope | 404 miss
//	PUT  /v1/cells/{key}   remote cache write: 204 | 400 bad envelope
//	POST /v1/cells         compute-on-miss: body is a harness.CellJobWire;
//	                       the server resolves it through its own engine
//	                       (cache first, fleet-wide single-flight, then
//	                       worker forward or simulation) and returns the
//	                       cell envelope
//	POST /v1/experiments   compute a whole experiment: body is a
//	                       harness.ExperimentJobWire; the response is an
//	                       NDJSON stream — one StreamHeader line, one cell
//	                       envelope per unique cell in completion order
//	                       (driven by the engine's Subscribe), and one
//	                       StreamTrailer line whose presence marks the
//	                       stream complete
//	GET  /v1/stats         farm counters as JSON (Stats, self-identified
//	                       by its schema field)
//
// Cell and stream bodies support gzip content negotiation in both
// directions (Content-Encoding on requests, Accept-Encoding/
// Content-Encoding on responses) — million-cycle traced cells compress
// well, and streams flush per line either way so the stream doubles as a
// progress feed.
//
// Keys are the engine's content-addressed cell fingerprints and are opaque
// to the server's store; a client and server built from the same source
// derive identical keys for identical jobs, because the wire forms carry
// exactly the fingerprinted fields. Every failure on the client side
// degrades to a cache miss — the harness CellCache contract — so a flaky
// or absent farm never fails a run, it only costs local re-simulation.
package farm

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/harness"
)

const (
	// Schema identifies the wire envelope layout.
	Schema = "shadowbinding-farm/v1"
	// CellsPath is the cell collection: POST computes a cell, GET/PUT on
	// CellsPath/{key} read and write the store.
	CellsPath = "/v1/cells"
	// ExperimentsPath computes a whole experiment: POST an
	// ExperimentJobWire, stream cell envelopes back as they complete.
	ExperimentsPath = "/v1/experiments"
	// StatsPath serves the farm's counter snapshot.
	StatsPath = "/v1/stats"

	// StatsSchema identifies the /v1/stats payload layout. v2 added the
	// schema field itself, per-endpoint latency percentiles, worker health,
	// and the experiment-stream counters.
	StatsSchema = "shadowbinding-farm-stats/v2"
	// StreamHeaderSchema marks the first line of an experiment stream.
	StreamHeaderSchema = "shadowbinding-stream-header/v1"
	// StreamTrailerSchema marks the last line of an experiment stream; a
	// reader that hits EOF without it has a truncated stream.
	StreamTrailerSchema = "shadowbinding-stream-end/v1"

	// maxBodyBytes bounds request bodies, single-envelope response bodies,
	// and individual stream lines; cell envelopes and job wire forms are a
	// few KiB, so 1 MiB is generous headroom, not a constraint. (A whole
	// experiment stream is unbounded — it is many lines, each bounded.)
	maxBodyBytes = 1 << 20

	// gzipMinBytes is the body size below which clients skip compression:
	// tiny bodies spend more on gzip framing than they save.
	gzipMinBytes = 1 << 10
)

// CellEnvelope is one cell result on the wire — the farm counterpart of
// the disk cache's on-disk entry. The scheme's registered name rides along
// for the same reason: a receiver revalidates it against its own registry,
// so an entry from a binary with a renumbered or missing scheme is a miss
// (or a rejected write), never a silently mislabeled result.
type CellEnvelope struct {
	Schema string      `json:"schema"`
	Key    string      `json:"key"`
	Scheme string      `json:"scheme"`
	Run    harness.Run `json:"run"`
	// Cached reports, on compute responses, that the farm served the cell
	// without simulating (its cache hit, or the request coalesced onto an
	// in-flight resolution).
	Cached bool `json:"cached,omitempty"`
}

// newEnvelope wraps one run for the wire.
func newEnvelope(key string, r harness.Run, cached bool) CellEnvelope {
	return CellEnvelope{Schema: Schema, Key: key, Scheme: r.Scheme.String(), Run: r, Cached: cached}
}

// validate checks an envelope received for wantKey: schema, key identity,
// and scheme-name revalidation against this process's registry.
func (e CellEnvelope) validate(wantKey string) error {
	if e.Schema != Schema {
		return fmt.Errorf("farm: envelope schema %q, want %q", e.Schema, Schema)
	}
	if wantKey != "" && e.Key != wantKey {
		return fmt.Errorf("farm: envelope key %q does not match requested %q (version skew?)", e.Key, wantKey)
	}
	kind, ok := core.SchemeKindByName(e.Scheme)
	if !ok || kind != e.Run.Scheme {
		return fmt.Errorf("farm: envelope scheme %q does not resolve to the run's kind", e.Scheme)
	}
	return nil
}

// decodeEnvelope reads and validates one envelope from r.
func decodeEnvelope(r io.Reader, wantKey string) (CellEnvelope, error) {
	var env CellEnvelope
	if err := json.NewDecoder(io.LimitReader(r, maxBodyBytes)).Decode(&env); err != nil {
		return CellEnvelope{}, fmt.Errorf("farm: decode cell envelope: %w", err)
	}
	if err := env.validate(wantKey); err != nil {
		return CellEnvelope{}, err
	}
	return env, nil
}

// StreamHeader is the first NDJSON line of an experiment stream: the
// number of unique cells the stream will carry, so a consumer can render
// progress before the first cell lands.
type StreamHeader struct {
	Schema string `json:"schema"`
	Cells  int    `json:"cells"`
}

// StreamTrailer is the last NDJSON line of an experiment stream — the
// completeness marker that distinguishes a finished stream from one cut
// off mid-body. Err carries a server-side failure (the cells already
// streamed remain valid).
type StreamTrailer struct {
	Schema string `json:"schema"`
	Done   int    `json:"done"`
	Err    string `json:"error,omitempty"`
}

// WorkerStatus is one worker's health as tracked by the coordinator's
// prober and passive failure detection.
type WorkerStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
}

// LatencyStats summarizes one endpoint's request latency, in
// milliseconds, from a fixed log-spaced histogram: each percentile is the
// upper bound of its bucket, exact to within one bucket ratio.
type LatencyStats struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Stats is the farm server's counter snapshot, served on StatsPath and
// self-identified by Schema (StatsSchema). The Engine* fields are the
// embedded cell engine's accounting: local cache hits and simulations
// behind the compute endpoints (forwarded computes are counted by the
// worker that ran them, and as Forwarded here).
type Stats struct {
	Schema          string                  `json:"schema"`
	Gets            int64                   `json:"gets"`              // GET requests
	GetHits         int64                   `json:"get_hits"`          // GETs served from the store
	Puts            int64                   `json:"puts"`              // accepted PUT writes
	Computes        int64                   `json:"computes"`          // POST compute requests
	Experiments     int64                   `json:"experiments"`       // POST experiment requests
	StreamedCells   int64                   `json:"streamed_cells"`    // cells streamed on experiment responses
	Coalesced       int64                   `json:"coalesced"`         // requests that joined an in-flight resolution
	Forwarded       int64                   `json:"forwarded"`         // cells served by a worker
	WorkerErrors    int64                   `json:"worker_errors"`     // forwards that failed (re-shard or local fallback)
	InFlight        int64                   `json:"in_flight"`         // compute resolutions currently running
	EngineCells     int64                   `json:"engine_cells"`      // cells resolved by the local engine
	EngineHits      int64                   `json:"engine_hits"`       // ... served from the local cache (or a worker)
	EngineSimulated int64                   `json:"engine_simulated"`  // ... simulated locally
	SimCycles       uint64                  `json:"engine_sim_cycles"` // simulated cycles executed locally
	Workers         []WorkerStatus          `json:"workers,omitempty"` // tracked worker health
	Latency         map[string]LatencyStats `json:"latency_ms,omitempty"`
}

// httpError writes status with a plain-text reason.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), status)
}

// ---------------------------------------------------------------------------
// gzip content negotiation.

// gzipAccepted reports whether a request advertises gzip response support.
func gzipAccepted(h http.Header) bool {
	return strings.Contains(h.Get("Accept-Encoding"), "gzip")
}

// requestBody returns r's body bounded to maxBodyBytes, transparently
// decompressing a gzip Content-Encoding. The bound applies to the
// *decompressed* bytes too, so a compression bomb cannot expand past the
// same limit a plain body has.
func requestBody(w http.ResponseWriter, r *http.Request) (io.Reader, error) {
	var rd io.Reader = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if r.Header.Get("Content-Encoding") == "gzip" {
		gz, err := gzip.NewReader(rd)
		if err != nil {
			return nil, fmt.Errorf("farm: gzip request body: %w", err)
		}
		rd = io.LimitReader(gz, maxBodyBytes)
	}
	return rd, nil
}

// maybeGunzip wraps a response body when the server negotiated gzip.
// Callers bound their own reads (decodeEnvelope's limit, the stream
// reader's per-line cap), so no total limit is imposed here — an
// experiment stream is legitimately larger than any single body.
func maybeGunzip(resp *http.Response) (io.Reader, error) {
	if resp.Header.Get("Content-Encoding") != "gzip" {
		return resp.Body, nil
	}
	gz, err := gzip.NewReader(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("farm: gzip response body: %w", err)
	}
	return gz, nil
}

// maybeGzip compresses a request body when it is worth it, returning the
// (possibly original) bytes and the Content-Encoding value to send (""
// for identity — tiny or incompressible bodies go as-is).
func maybeGzip(body []byte) ([]byte, string) {
	if len(body) < gzipMinBytes {
		return body, ""
	}
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	gz.Write(body) //nolint:errcheck // bytes.Buffer writes cannot fail
	if err := gz.Close(); err != nil || buf.Len() >= len(body) {
		return body, ""
	}
	return buf.Bytes(), "gzip"
}
