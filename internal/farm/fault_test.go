package farm

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
)

// flakyTransport fails every request one way: a transport error, a 5xx,
// a corrupt 200 body, or a hang past the client's attempt timeout. It
// never reaches a real farm — the point is that the client cannot tell a
// broken farm from no farm, and the engine must not care.
type flakyTransport struct{ mode string }

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Body != nil {
		req.Body.Close()
	}
	respond := func(code int, body string) *http.Response {
		return &http.Response{
			StatusCode: code,
			Status:     http.StatusText(code),
			Header:     make(http.Header),
			Body:       io.NopCloser(strings.NewReader(body)),
			Request:    req,
		}
	}
	switch f.mode {
	case "conn-error":
		return nil, errors.New("injected: connection refused")
	case "5xx":
		return respond(http.StatusInternalServerError, "injected farm failure\n"), nil
	case "corrupt":
		return respond(http.StatusOK, `{"schema":"shadowbinding-farm/v1","key":`), nil
	case "hang":
		<-req.Context().Done()
		return nil, req.Context().Err()
	}
	panic("unknown flaky mode " + f.mode)
}

// TestFarmFaultsDegradeToLocal: whatever the transport does — refuse,
// 5xx, emit garbage, or hang — a session over TieredCache(memory, farm)
// must complete every cell by local re-simulation with results
// byte-identical to a farm-less run. The remote layer may only ever cost
// warnings.
func TestFarmFaultsDegradeToLocal(t *testing.T) {
	opts := testOpts()
	jobs := []harness.CellJob{
		testJob(t, "505.mcf", core.KindBaseline),
		testJob(t, "505.mcf", core.KindSTTRename),
	}
	refs := make([]harness.Run, len(jobs))
	for i, j := range jobs {
		refs[i] = refRun(t, j, opts)
	}

	for _, mode := range []string{"conn-error", "5xx", "corrupt", "hang"} {
		t.Run(mode, func(t *testing.T) {
			remote := NewHTTPCache("http://farm.invalid", HTTPCacheOptions{
				Compute:      true,
				Timeout:      50 * time.Millisecond, // bounds the hang mode
				Retries:      -1,
				BreakerTrips: -1,
				Client:       &http.Client{Transport: &flakyTransport{mode: mode}},
			})
			sess := harness.NewSession(harness.SessionConfig{
				Options: opts,
				Cache:   harness.NewTieredCache(harness.NewMemoryCache(0), remote),
			})
			for i, j := range jobs {
				run, err := sess.Run(context.Background(), j.Config, j.Scheme, j.Bench)
				if err != nil {
					t.Fatalf("%s: run failed instead of degrading: %v", mode, err)
				}
				if !reflect.DeepEqual(run, refs[i]) {
					t.Fatalf("%s: degraded run diverges from farm-less reference:\ngot  %+v\nwant %+v",
						mode, run, refs[i])
				}
			}
			if st := sess.Stats(); st.Simulated != len(jobs) {
				t.Fatalf("%s: expected all-local simulation: %+v", mode, st)
			}
		})
	}
}

// TestFarmBreakerShortCircuits: after BreakerTrips consecutive transport
// failures the client must stop dialing a dead farm and report immediate
// misses for the cooldown window — errFarmDown, no network traffic.
func TestFarmBreakerShortCircuits(t *testing.T) {
	// A listener that is already closed: every dial is refused instantly.
	dead := httptest.NewServer(http.NotFoundHandler())
	url := dead.URL
	dead.Close()

	var dials int
	counting := &http.Client{Transport: roundTripFunc(func(req *http.Request) (*http.Response, error) {
		dials++
		return http.DefaultTransport.RoundTrip(req)
	})}
	c := NewHTTPCache(url, HTTPCacheOptions{
		Retries:         -1,
		Backoff:         time.Millisecond,
		BreakerTrips:    3,
		BreakerCooldown: time.Minute,
		Client:          counting,
	})

	for i := 0; i < 3; i++ {
		if _, ok, err := c.Get("cell"); ok || err == nil {
			t.Fatalf("dial %d against dead farm: ok=%v err=%v", i, ok, err)
		}
	}
	if dials != 3 {
		t.Fatalf("tripping calls dialed %d times, want 3", dials)
	}
	for i := 0; i < 10; i++ {
		_, ok, err := c.Get("cell")
		if ok || !errors.Is(err, errFarmDown) {
			t.Fatalf("breaker not open on call %d: ok=%v err=%v", i, ok, err)
		}
	}
	if dials != 3 {
		t.Fatalf("open breaker still dialed: %d dials", dials)
	}

	// And the engine shrugs it all off: a session over the dead farm
	// simulates locally with correct results.
	opts := testOpts()
	job := testJob(t, "505.mcf", core.KindNDA)
	ref := refRun(t, job, opts)
	sess := harness.NewSession(harness.SessionConfig{
		Options: opts,
		Cache:   harness.NewTieredCache(harness.NewMemoryCache(0), c),
	})
	run, err := sess.Run(context.Background(), job.Config, job.Scheme, job.Bench)
	if err != nil {
		t.Fatalf("session failed on open breaker: %v", err)
	}
	if !reflect.DeepEqual(run, ref) {
		t.Fatalf("open-breaker run diverges:\ngot  %+v\nwant %+v", run, ref)
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }
