package farm

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
)

// ServerConfig parameterizes NewServer. The zero value is usable: private
// in-memory store, no workers, local simulation bounded to all CPUs,
// discarded logs.
type ServerConfig struct {
	// Cache backs GET/PUT and the compute engine; nil gives the server a
	// private in-memory LRU (use harness.OpenCellCache(dir) to persist).
	Cache harness.CellCache
	// Workers lists worker base URLs ("http://host:port"); when non-empty,
	// cold compute requests are rendezvous-sharded across the healthy
	// subset, re-sharding around dead workers and falling back to local
	// simulation only when no healthy worker remains.
	Workers []string
	// Parallelism bounds concurrent local simulations (zero: all CPUs).
	// Cache hits, coalesced waiters, and worker forwards are never bounded
	// by it.
	Parallelism int
	// WorkerTimeout bounds one forwarded compute request (zero: 5m).
	WorkerTimeout time.Duration
	// ProbeInterval is the worker health-probe cadence (zero: 2s;
	// negative: probing disabled — passive failure detection only, so a
	// dead worker is never revived).
	ProbeInterval time.Duration
	// Version overrides the engine's fingerprint version stamp (tests).
	Version string
	// Logger receives structured request and lifecycle logs (nil: discard).
	Logger *slog.Logger
}

// Server is the farm's HTTP service: a remote CellCache on GET/PUT, a
// compute service on POST (single cells and streamed whole experiments),
// and a stats endpoint. Every compute resolves through one embedded cell
// engine whose cache stack is the local store over the worker pool — so
// duplicate in-flight requests coalesce fleet-wide onto one resolution
// (the engine's single-flight), forwarded results are adopted into the
// local store by the tier walk's backfill, and local simulation is the
// engine's miss path, bounded by its simulation gate.
type Server struct {
	cache  harness.CellCache // the local store (the GET/PUT face)
	engine *harness.Engine
	pool   *workerPool
	log    *slog.Logger
	lat    *latencySet

	gets, getHits, puts   atomic.Int64
	computes, experiments atomic.Int64
	streamed              atomic.Int64
	forwarded, workerErrs atomic.Int64
	inFlight              atomic.Int64
}

// NewServer builds a farm server over cfg. Callers that configured
// workers should Close the server to stop the health prober.
func NewServer(cfg ServerConfig) *Server {
	cache := cfg.Cache
	if cache == nil {
		cache = harness.NewMemoryCache(0)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	s := &Server{
		cache: cache,
		log:   logger,
		lat:   newLatencySet(),
	}
	engineCache := cache
	if len(cfg.Workers) > 0 {
		timeout := cfg.WorkerTimeout
		if timeout <= 0 {
			timeout = 5 * time.Minute
		}
		probe := cfg.ProbeInterval
		if probe == 0 {
			probe = 2 * time.Second
		}
		s.pool = newWorkerPool(cfg.Workers, timeout, probe, logger)
		// The pool joins the engine's cache stack as the slowest tier:
		// local store first, then the fleet; a forward hit backfills the
		// local store on the way back, and a total miss is the engine's
		// bounded local simulation.
		engineCache = harness.NewTieredCache(cache, &poolLayer{s: s})
	}
	s.engine = harness.NewEngine(engineCache, cfg.Version)
	s.engine.SetSimulationBound(workers)
	return s
}

// Close stops the background worker prober. The HTTP handler itself is
// stateless across requests and needs no shutdown.
func (s *Server) Close() {
	if s.pool != nil {
		s.pool.Close()
	}
}

// Stats snapshots the farm's counters.
func (s *Server) Stats() Stats {
	es := s.engine.Stats()
	st := Stats{
		Schema:          StatsSchema,
		Gets:            s.gets.Load(),
		GetHits:         s.getHits.Load(),
		Puts:            s.puts.Load(),
		Computes:        s.computes.Load(),
		Experiments:     s.experiments.Load(),
		StreamedCells:   s.streamed.Load(),
		Coalesced:       int64(es.Coalesced),
		Forwarded:       s.forwarded.Load(),
		WorkerErrors:    s.workerErrs.Load(),
		InFlight:        s.inFlight.Load(),
		EngineCells:     int64(es.Cells),
		EngineHits:      int64(es.Hits - es.Coalesced),
		EngineSimulated: int64(es.Simulated),
		SimCycles:       es.SimCycles,
		Latency:         s.lat.snapshot(),
	}
	if s.pool != nil {
		st.Workers = s.pool.statuses()
	}
	return st
}

// Handler returns the farm's routed handler with request logging and
// latency accounting attached.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+CellsPath+"/{key}", s.handleGet)
	mux.HandleFunc("PUT "+CellsPath+"/{key}", s.handlePut)
	mux.HandleFunc("POST "+CellsPath, s.handleCompute)
	mux.HandleFunc("POST "+ExperimentsPath, s.handleExperiment)
	mux.HandleFunc("GET "+StatsPath, s.handleStats)
	return s.logged(mux)
}

// logged wraps h with one structured log line and one latency-histogram
// observation per request.
func (s *Server) logged(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		lw := &loggingWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(lw, r)
		dur := time.Since(start)
		s.lat.observe(endpointOf(r), dur)
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", lw.status,
			"dur_ms", dur.Milliseconds(),
			"remote", r.RemoteAddr,
		)
	})
}

// loggingWriter captures the response status for the request log.
type loggingWriter struct {
	http.ResponseWriter
	status int
}

func (w *loggingWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// poolLayer adapts the worker pool into a CellResolver cache layer — the
// slowest tier of the coordinator engine's stack. A forward hit is a
// cache hit whose backfill adopts the worker's result into the local
// store; a forward failure is a miss plus an error, which the engine
// degrades to bounded local simulation, the universal fallback.
type poolLayer struct{ s *Server }

func (pl *poolLayer) Get(string) (harness.Run, bool, error) { return harness.Run{}, false, nil }
func (pl *poolLayer) Put(string, harness.Run) error         { return nil }

func (pl *poolLayer) ResolveCell(key string, job harness.CellJob, opts harness.Options) (harness.Run, bool, error) {
	res, worker, err := pl.s.pool.compute(key, harness.WireJob(job, opts))
	if err != nil {
		if errors.Is(err, errNoWorkers) {
			return harness.Run{}, false, nil // quiet miss: simulate locally
		}
		pl.s.workerErrs.Add(1)
		pl.s.log.Warn("worker compute failed; simulating locally", "key", key, "worker", worker, "err", err)
		return harness.Run{}, false, err
	}
	pl.s.forwarded.Add(1)
	pl.s.log.Info("forwarded", "key", key, "worker", worker, "cached", res.Cached)
	return res.Run, true, nil
}

// handleGet serves one cell from the store: the remote cache read.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.gets.Add(1)
	key := r.PathValue("key")
	run, ok, err := s.cache.Get(key)
	if err != nil {
		s.log.Warn("cache read failed", "key", key, "err", err)
		httpError(w, http.StatusInternalServerError, "cache read: %v", err)
		return
	}
	if !ok {
		httpError(w, http.StatusNotFound, "no cell %s", key)
		return
	}
	s.getHits.Add(1)
	s.encodeJSON(w, r, newEnvelope(key, run, true))
}

// handlePut stores one cell: the remote cache write. A store failure is a
// 500 — the client treats it like any other cache-write failure (warn and
// continue), but the error is never swallowed here.
func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	body, err := requestBody(w, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	env, err := decodeEnvelope(body, key)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.cache.Put(key, env.Run); err != nil {
		s.log.Warn("cache write failed", "key", key, "err", err)
		httpError(w, http.StatusInternalServerError, "cache write: %v", err)
		return
	}
	s.puts.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// handleCompute resolves a full job through the engine: local cache,
// fleet-wide single-flight, worker forward, bounded local simulation.
func (s *Server) handleCompute(w http.ResponseWriter, r *http.Request) {
	s.computes.Add(1)
	body, err := requestBody(w, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var wire harness.CellJobWire
	if err := json.NewDecoder(body).Decode(&wire); err != nil {
		httpError(w, http.StatusBadRequest, "farm: decode job: %v", err)
		return
	}
	job, opts, err := wire.Resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts.Progress = s.engineLog
	key := s.engine.Key(job, opts)

	s.inFlight.Add(1)
	res, err := s.engine.Cell(job, opts)
	s.inFlight.Add(-1)
	if err != nil {
		s.log.Warn("compute failed", "key", key, "cell", cellName(job), "err", err)
		httpError(w, http.StatusInternalServerError, "compute %s: %v", key, err)
		return
	}
	s.log.Info("compute",
		"key", key,
		"cell", cellName(job),
		"cached", res.Cached,
		"cycles", res.Run.TotalCycles,
	)
	s.encodeJSON(w, r, newEnvelope(key, res.Run, res.Cached))
}

// handleExperiment resolves a whole experiment, streaming cells back as
// NDJSON in completion order: one header line, one envelope per unique
// cell the moment the engine's subscription reports it, one trailer line.
// The response flushes per line — the stream doubles as a progress feed —
// and a client disconnect cancels the remaining work through the request
// context.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	s.experiments.Add(1)
	body, err := requestBody(w, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var wire harness.ExperimentJobWire
	if err := json.NewDecoder(body).Decode(&wire); err != nil {
		httpError(w, http.StatusBadRequest, "farm: decode experiment: %v", err)
		return
	}
	jobs, opts, err := wire.Resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts.Progress = s.engineLog
	opts.Parallelism = s.experimentParallelism()

	// Dedupe by key so the header's cell count and the one-line-per-key
	// contract hold even when a spec enumerates one cell twice.
	pending := make(map[string]bool, len(jobs))
	unique := make([]harness.CellJob, 0, len(jobs))
	for _, j := range jobs {
		k := s.engine.Key(j, opts)
		if pending[k] {
			continue
		}
		pending[k] = true
		unique = append(unique, j)
	}
	total := len(unique)
	s.log.Info("experiment", "name", wire.Name, "cells", total)

	sw := newStreamWriter(w, r)
	sw.enqueue(StreamHeader{Schema: StreamHeaderSchema, Cells: total})

	// The engine broadcasts every completed cell to every subscriber;
	// pending filters this request's keys, and deleting on emission keeps
	// each key to exactly one stream line even when a concurrent request
	// resolves (and re-emits) the same cell.
	var mu sync.Mutex
	cancel := s.engine.Subscribe(func(res harness.CellResult) {
		mu.Lock()
		defer mu.Unlock()
		if !pending[res.Key] {
			return
		}
		delete(pending, res.Key)
		s.streamed.Add(1)
		sw.enqueue(newEnvelope(res.Key, res.Run, res.Cached))
	})
	s.inFlight.Add(1)
	_, runErr := s.engine.RunCells(r.Context(), unique, opts)
	s.inFlight.Add(-1)
	cancel()

	mu.Lock()
	trailer := StreamTrailer{Schema: StreamTrailerSchema, Done: total - len(pending)}
	mu.Unlock()
	if runErr != nil {
		trailer.Err = runErr.Error()
		s.log.Warn("experiment failed", "name", wire.Name, "done", trailer.Done, "err", runErr)
	}
	sw.enqueue(trailer)
	if err := sw.close(); err != nil {
		s.log.Warn("experiment stream write failed", "name", wire.Name, "err", err)
	}
}

// experimentParallelism sizes RunCells for an experiment request: all
// CPUs locally, widened when forwarding so every worker stays busy (their
// own simulation gates bound the real load).
func (s *Server) experimentParallelism() int {
	n := runtime.NumCPU()
	if s.pool != nil {
		if m := 4 * len(s.pool.workers); m > n {
			n = m
		}
	}
	return n
}

// engineLog routes harness warnings (cache read/write failures, progress)
// into the structured log instead of dropping them.
func (s *Server) engineLog(format string, args ...any) {
	s.log.Debug("engine", "msg", fmt.Sprintf(format, args...))
}

// cellName renders a job as the bench@config@scheme form the cmds use.
func cellName(job harness.CellJob) string {
	return fmt.Sprintf("%s@%s@%s", job.Bench.Name, job.Config.Name, job.Scheme)
}

// handleStats serves the counter snapshot.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.encodeJSON(w, r, s.Stats())
}

// encodeJSON writes v as the response body, gzip-compressed when the
// client negotiated it.
func (s *Server) encodeJSON(w http.ResponseWriter, r *http.Request, v any) {
	w.Header().Set("Content-Type", "application/json")
	var out io.Writer = w
	if gzipAccepted(r.Header) {
		w.Header().Set("Content-Encoding", "gzip")
		gz := gzip.NewWriter(w)
		defer gz.Close()
		out = gz
	}
	if err := json.NewEncoder(out).Encode(v); err != nil {
		// The status line is already out; all we can do is log.
		s.log.Warn("write response failed", "err", err)
	}
}

// streamWriter serializes NDJSON lines onto a response through a
// dedicated drain goroutine, so the engine subscriber that enqueues lines
// never blocks on a slow consumer — it is called under the engine's
// emission lock, and stalling there would stall every in-flight request's
// progress. Lines are gzip-compressed when negotiated and flushed
// individually; after a write failure (client gone) the queue keeps
// draining without writing, and close reports the first failure.
type streamWriter struct {
	out io.Writer
	gz  *gzip.Writer // nil without negotiation
	fl  http.Flusher // nil when unavailable

	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte
	closed bool
	err    error
	done   chan struct{}
}

func newStreamWriter(w http.ResponseWriter, r *http.Request) *streamWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	sw := &streamWriter{done: make(chan struct{})}
	sw.cond = sync.NewCond(&sw.mu)
	if gzipAccepted(r.Header) {
		w.Header().Set("Content-Encoding", "gzip")
		sw.gz = gzip.NewWriter(w)
		sw.out = sw.gz
	} else {
		sw.out = w
	}
	sw.fl, _ = w.(http.Flusher)
	go sw.drain()
	return sw
}

// enqueue appends one line without ever blocking on the consumer.
func (sw *streamWriter) enqueue(v any) {
	line, err := json.Marshal(v)
	if err != nil {
		return // wire types always marshal
	}
	sw.mu.Lock()
	if !sw.closed {
		sw.queue = append(sw.queue, line)
		sw.cond.Signal()
	}
	sw.mu.Unlock()
}

func (sw *streamWriter) drain() {
	defer close(sw.done)
	for {
		sw.mu.Lock()
		for len(sw.queue) == 0 && !sw.closed {
			sw.cond.Wait()
		}
		if len(sw.queue) == 0 {
			sw.mu.Unlock()
			return // closed and fully drained
		}
		line := sw.queue[0]
		sw.queue = sw.queue[1:]
		failed := sw.err != nil
		sw.mu.Unlock()
		if failed {
			continue // client gone: keep draining, stop writing
		}
		if _, err := sw.out.Write(append(line, '\n')); err != nil {
			sw.mu.Lock()
			if sw.err == nil {
				sw.err = err
			}
			sw.mu.Unlock()
			continue
		}
		sw.flush()
	}
}

// flush pushes the line through the gzip framing and out to the client.
func (sw *streamWriter) flush() {
	if sw.gz != nil {
		sw.gz.Flush() //nolint:errcheck // a failed flush surfaces on the next write
	}
	if sw.fl != nil {
		sw.fl.Flush()
	}
}

// close drains the queue, finishes the gzip stream, and reports the first
// write failure.
func (sw *streamWriter) close() error {
	sw.mu.Lock()
	sw.closed = true
	sw.cond.Signal()
	sw.mu.Unlock()
	<-sw.done
	if sw.gz != nil {
		if err := sw.gz.Close(); err != nil {
			sw.mu.Lock()
			if sw.err == nil {
				sw.err = err
			}
			sw.mu.Unlock()
		}
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.err
}

// drainClose discards the remainder of a response body and closes it, so
// the transport can reuse the connection.
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, maxBodyBytes)) //nolint:errcheck
	body.Close()
}
