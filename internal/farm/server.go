package farm

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
)

// ServerConfig parameterizes NewServer. The zero value is usable: private
// in-memory store, no workers, local simulation bounded to all CPUs,
// discarded logs.
type ServerConfig struct {
	// Cache backs GET/PUT and the compute engine; nil gives the server a
	// private in-memory LRU (use harness.OpenCellCache(dir) to persist).
	Cache harness.CellCache
	// Workers lists worker base URLs ("http://host:port"); when non-empty,
	// cold compute requests are sharded across them by key hash, falling
	// back to local simulation when the picked worker fails.
	Workers []string
	// Parallelism bounds concurrent local simulations (zero: all CPUs).
	// Cache hits and coalesced waiters are never bounded by it.
	Parallelism int
	// WorkerTimeout bounds one forwarded compute request (zero: 5m).
	WorkerTimeout time.Duration
	// Version overrides the engine's fingerprint version stamp (tests).
	Version string
	// Logger receives structured request and lifecycle logs (nil: discard).
	Logger *slog.Logger
}

// Server is the farm's HTTP service: a remote CellCache on GET/PUT, a
// compute service on POST, and a stats endpoint. Duplicate in-flight
// compute requests coalesce fleet-wide onto one resolution — the server's
// flight map covers the forwarded path, the engine's single-flight covers
// the local one — so a thundering herd of identical requests costs exactly
// one simulation.
type Server struct {
	cache  harness.CellCache
	engine *harness.Engine
	pool   *workerPool
	log    *slog.Logger
	sem    chan struct{} // bounds concurrent local simulations

	mu      sync.Mutex
	flights map[string]*flight

	gets, getHits, puts   atomic.Int64
	computes, coalesced   atomic.Int64
	forwarded, workerErrs atomic.Int64
	inFlight              atomic.Int64
}

// flight is one in-progress compute resolution; concurrent requests for
// the same key wait on done and share res/err.
type flight struct {
	done chan struct{}
	res  harness.CellResult
	err  error
}

// NewServer builds a farm server over cfg.
func NewServer(cfg ServerConfig) *Server {
	cache := cfg.Cache
	if cache == nil {
		cache = harness.NewMemoryCache(0)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	s := &Server{
		cache:   cache,
		engine:  harness.NewEngine(cache, cfg.Version),
		log:     logger,
		sem:     make(chan struct{}, workers),
		flights: make(map[string]*flight),
	}
	if len(cfg.Workers) > 0 {
		timeout := cfg.WorkerTimeout
		if timeout <= 0 {
			timeout = 5 * time.Minute
		}
		s.pool = newWorkerPool(cfg.Workers, timeout)
	}
	return s
}

// Stats snapshots the farm's counters.
func (s *Server) Stats() Stats {
	es := s.engine.Stats()
	return Stats{
		Gets:            s.gets.Load(),
		GetHits:         s.getHits.Load(),
		Puts:            s.puts.Load(),
		Computes:        s.computes.Load(),
		Coalesced:       s.coalesced.Load(),
		Forwarded:       s.forwarded.Load(),
		WorkerErrors:    s.workerErrs.Load(),
		InFlight:        s.inFlight.Load(),
		EngineCells:     int64(es.Cells),
		EngineHits:      int64(es.Hits),
		EngineSimulated: int64(es.Simulated),
		SimCycles:       es.SimCycles,
	}
}

// Handler returns the farm's routed handler with request logging attached.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+CellsPath+"/{key}", s.handleGet)
	mux.HandleFunc("PUT "+CellsPath+"/{key}", s.handlePut)
	mux.HandleFunc("POST "+CellsPath, s.handleCompute)
	mux.HandleFunc("GET "+StatsPath, s.handleStats)
	return s.logged(mux)
}

// logged wraps h with one structured log line per request.
func (s *Server) logged(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		lw := &loggingWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(lw, r)
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", lw.status,
			"dur_ms", time.Since(start).Milliseconds(),
			"remote", r.RemoteAddr,
		)
	})
}

// loggingWriter captures the response status for the request log.
type loggingWriter struct {
	http.ResponseWriter
	status int
}

func (w *loggingWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// handleGet serves one cell from the store: the remote cache read.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.gets.Add(1)
	key := r.PathValue("key")
	run, ok, err := s.cache.Get(key)
	if err != nil {
		s.log.Warn("cache read failed", "key", key, "err", err)
		httpError(w, http.StatusInternalServerError, "cache read: %v", err)
		return
	}
	if !ok {
		httpError(w, http.StatusNotFound, "no cell %s", key)
		return
	}
	s.getHits.Add(1)
	s.writeEnvelope(w, newEnvelope(key, run, true))
}

// handlePut stores one cell: the remote cache write. A store failure is a
// 500 — the client treats it like any other cache-write failure (warn and
// continue), but the error is never swallowed here.
func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	env, err := decodeEnvelope(http.MaxBytesReader(w, r.Body, maxBodyBytes), key)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.cache.Put(key, env.Run); err != nil {
		s.log.Warn("cache write failed", "key", key, "err", err)
		httpError(w, http.StatusInternalServerError, "cache write: %v", err)
		return
	}
	s.puts.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// handleCompute resolves a full job: cache, then single-flight worker
// forward or local simulation.
func (s *Server) handleCompute(w http.ResponseWriter, r *http.Request) {
	s.computes.Add(1)
	var wire harness.CellJobWire
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&wire); err != nil {
		httpError(w, http.StatusBadRequest, "farm: decode job: %v", err)
		return
	}
	job, opts, err := wire.Resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Route harness warnings (cache read/write failures, progress) into
	// the structured log instead of dropping them.
	opts.Progress = func(format string, args ...any) {
		s.log.Debug("engine", "msg", fmt.Sprintf(format, args...))
	}
	key := s.engine.Key(job, opts)

	s.inFlight.Add(1)
	res, coalesced, err := s.resolveCompute(key, job, opts, wire)
	s.inFlight.Add(-1)
	if err != nil {
		s.log.Warn("compute failed", "key", key, "cell", cellName(job), "err", err)
		httpError(w, http.StatusInternalServerError, "compute %s: %v", key, err)
		return
	}
	if coalesced {
		s.coalesced.Add(1)
	}
	s.log.Info("compute",
		"key", key,
		"cell", cellName(job),
		"cached", res.Cached,
		"coalesced", coalesced,
		"cycles", res.Run.TotalCycles,
	)
	s.writeEnvelope(w, newEnvelope(key, res.Run, res.Cached))
}

// cellName renders a job as the bench@config@scheme form the cmds use.
func cellName(job harness.CellJob) string {
	return fmt.Sprintf("%s@%s@%s", job.Bench.Name, job.Config.Name, job.Scheme)
}

// resolveCompute coalesces duplicate in-flight requests for one key onto a
// single resolution (worker forward or local engine). If a holder fails,
// one waiter claims the key and retries — matching the engine's own
// single-flight semantics, so a transient failure never wedges a key.
func (s *Server) resolveCompute(key string, job harness.CellJob, opts harness.Options, wire harness.CellJobWire) (harness.CellResult, bool, error) {
	for {
		s.mu.Lock()
		if f, busy := s.flights[key]; busy {
			s.mu.Unlock()
			<-f.done
			if f.err != nil {
				continue // the holder failed; claim the key and retry
			}
			res := f.res
			res.Cached = true // coalesced onto the in-flight resolution
			return res, true, nil
		}
		f := &flight{done: make(chan struct{})}
		s.flights[key] = f
		s.mu.Unlock()

		f.res, f.err = s.computeCell(key, job, opts, wire)

		s.mu.Lock()
		delete(s.flights, key)
		s.mu.Unlock()
		close(f.done)
		return f.res, false, f.err
	}
}

// computeCell resolves one cell: local cache, then the sharded worker (if
// any), then bounded local simulation. A worker failure degrades to local
// compute — the farm's contract mirrors the CellCache one: failures cost
// time, never the run.
func (s *Server) computeCell(key string, job harness.CellJob, opts harness.Options, wire harness.CellJobWire) (harness.CellResult, error) {
	if s.pool == nil {
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		return s.engine.Cell(job, opts)
	}

	// With workers configured, consult the local store before forwarding so
	// a warm coordinator never costs a worker round-trip.
	if run, ok, err := s.cache.Get(key); ok {
		return harness.CellResult{Key: key, Run: run, Cached: true}, nil
	} else if err != nil {
		s.log.Warn("cache read failed", "key", key, "err", err)
	}
	res, worker, err := s.pool.compute(key, wire)
	if err == nil {
		s.forwarded.Add(1)
		// Adopt the worker's result so subsequent requests hit locally.
		if perr := s.cache.Put(key, res.Run); perr != nil {
			s.log.Warn("cache write failed", "key", key, "err", perr)
		}
		s.log.Info("forwarded", "key", key, "worker", worker, "cached", res.Cached)
		return res, nil
	}
	s.workerErrs.Add(1)
	s.log.Warn("worker compute failed; falling back to local", "key", key, "worker", worker, "err", err)
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	return s.engine.Cell(job, opts)
}

// handleStats serves the counter snapshot.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.Stats()); err != nil {
		s.log.Warn("encode stats failed", "err", err)
	}
}

// writeEnvelope serializes one envelope response.
func (s *Server) writeEnvelope(w http.ResponseWriter, env CellEnvelope) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(env); err != nil {
		// The status line is already out; all we can do is log.
		s.log.Warn("write envelope failed", "key", env.Key, "err", err)
	}
}

// drainClose discards the remainder of a response body and closes it, so
// the transport can reuse the connection.
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, maxBodyBytes)) //nolint:errcheck
	body.Close()
}
