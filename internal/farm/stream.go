package farm

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/harness"
)

// The experiment stream client. One POST /v1/experiments carries a whole
// ExperimentJobWire; the farm answers with an NDJSON stream — header,
// cell envelopes in completion order, trailer — which StreamClient decodes
// and validates line by line. The trailer is the completeness contract: a
// stream that ends without one is truncated, and truncation is a *typed*
// error (StreamError wrapping ErrStreamTruncated) so callers distinguish
// "the farm died mid-experiment" from "the farm rejected the request",
// while everything already delivered remains valid — the session falls
// back to per-cell resolution for exactly the remainder.

// ErrStreamTruncated marks a stream that ended before its trailer: the
// server died, the connection dropped, or a proxy cut the body short.
var ErrStreamTruncated = errors.New("farm: experiment stream truncated (no trailer)")

// StreamError is the typed failure of an experiment stream. Delivered
// counts the cells handed to the callback before the failure — those are
// validated and final; only the remainder needs per-cell resolution.
type StreamError struct {
	Reason    string // "transport", "server", "protocol", "truncated"
	Delivered int
	Err       error
}

func (e *StreamError) Error() string {
	return fmt.Sprintf("farm: experiment stream %s after %d cells: %v", e.Reason, e.Delivered, e.Err)
}

func (e *StreamError) Unwrap() error { return e.Err }

// StreamClient consumes the farm's experiment stream endpoint at one base
// URL.
type StreamClient struct {
	base string
	hc   *http.Client
}

// NewStreamClient returns a stream client for the daemon at baseURL
// (e.g. "http://127.0.0.1:8484"); a nil client gets a default one. The
// caller's context bounds the whole stream — there is no per-attempt
// timeout, because a healthy stream legitimately lasts as long as the
// experiment simulates.
func NewStreamClient(baseURL string, client *http.Client) *StreamClient {
	if client == nil {
		client = &http.Client{}
	}
	return &StreamClient{base: strings.TrimRight(baseURL, "/"), hc: client}
}

// Experiment posts wire and invokes fn for every streamed cell envelope,
// each already validated (schema and scheme roster; key membership is the
// caller's to check — it derives the expected key set from the same wire
// form). An fn error aborts the stream and is returned as-is. The int
// result counts cells delivered to fn, valid even alongside an error.
func (c *StreamClient) Experiment(ctx context.Context, wire harness.ExperimentJobWire, fn func(CellEnvelope) error) (int, error) {
	body, err := json.Marshal(wire)
	if err != nil {
		return 0, fmt.Errorf("farm: marshal experiment: %w", err)
	}
	payload, encoding := maybeGzip(body)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+ExperimentsPath, bytes.NewReader(payload))
	if err != nil {
		return 0, fmt.Errorf("farm: build experiment request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if encoding != "" {
		req.Header.Set("Content-Encoding", encoding)
	}
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, &StreamError{Reason: "transport", Err: err}
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, &StreamError{Reason: "server",
			Err: fmt.Errorf("farm: experiment: %s: %s", resp.Status, bytes.TrimSpace(msg))}
	}
	rd, err := maybeGunzip(resp)
	if err != nil {
		return 0, &StreamError{Reason: "protocol", Err: err}
	}
	return c.consume(rd, fn)
}

// consume decodes the NDJSON stream line by line.
func (c *StreamClient) consume(rd io.Reader, fn func(CellEnvelope) error) (int, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 64<<10), maxBodyBytes) // per-line bound, not whole-stream
	delivered := 0
	fail := func(reason string, err error) (int, error) {
		return delivered, &StreamError{Reason: reason, Delivered: delivered, Err: err}
	}
	sawHeader, sawTrailer := false, false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Schema string `json:"schema"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return fail("protocol", fmt.Errorf("farm: stream line: %w", err))
		}
		switch probe.Schema {
		case StreamHeaderSchema:
			sawHeader = true
		case StreamTrailerSchema:
			var tr StreamTrailer
			if err := json.Unmarshal(line, &tr); err != nil {
				return fail("protocol", fmt.Errorf("farm: stream trailer: %w", err))
			}
			if tr.Err != "" {
				return fail("server", fmt.Errorf("farm: experiment failed on the server: %s", tr.Err))
			}
			sawTrailer = true
		case Schema:
			var env CellEnvelope
			if err := json.Unmarshal(line, &env); err != nil {
				return fail("protocol", fmt.Errorf("farm: stream cell: %w", err))
			}
			if err := env.validate(""); err != nil {
				return fail("protocol", err)
			}
			if err := fn(env); err != nil {
				return delivered, err
			}
			delivered++
		default:
			return fail("protocol", fmt.Errorf("farm: stream line schema %q unknown", probe.Schema))
		}
	}
	if err := sc.Err(); err != nil {
		return fail("transport", err)
	}
	if !sawHeader || !sawTrailer {
		return fail("truncated", ErrStreamTruncated)
	}
	return delivered, nil
}
