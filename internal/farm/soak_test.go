package farm

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
)

// TestFarmConcurrencySoak is the fleet-wide single-flight pin: hundreds
// of concurrent compute clients hammer one farm over a handful of unique
// cells, and the farm must simulate each unique cell exactly once, serve
// every request a consistent result, and drain cleanly. CI runs this
// under -race.
func TestFarmConcurrencySoak(t *testing.T) {
	srv, ts := newTestFarm(t, ServerConfig{})
	opts := testOpts()

	kinds := []core.SchemeKind{
		core.KindBaseline, core.KindSTTRename, core.KindSTTIssue, core.KindNDA,
	}
	jobs := make([]harness.CellJob, len(kinds))
	keys := make([]string, len(kinds))
	refs := make([]harness.Run, len(kinds))
	for i, k := range kinds {
		jobs[i] = testJob(t, "505.mcf", k)
		keys[i] = keyOf(jobs[i], opts)
		refs[i] = refRun(t, jobs[i], opts)
	}

	const clients = 256
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Every client gets its own HTTPCache — separate connections,
			// no client-side sharing to hide server races behind.
			c := fastClient(ts.URL, true)
			j := i % len(jobs)
			run, ok, err := c.ResolveCell(keys[j], jobs[j], opts)
			if err != nil || !ok {
				errs <- fmt.Errorf("client %d: ok=%v err=%v", i, ok, err)
				return
			}
			if !reflect.DeepEqual(run, refs[j]) {
				errs <- fmt.Errorf("client %d: result diverges for %s", i, keys[j])
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := srv.Stats()
	if st.EngineSimulated != int64(len(jobs)) {
		t.Fatalf("single-flight breached: %d unique cells, %d simulations (%+v)",
			len(jobs), st.EngineSimulated, st)
	}
	if st.Computes != clients {
		t.Fatalf("compute requests lost: %d of %d (%+v)", st.Computes, clients, st)
	}
	// Every duplicate either coalesced onto an in-flight computation or hit
	// the cache warmed by an earlier one; none re-simulated.
	if st.Coalesced+st.EngineHits != clients-int64(len(jobs)) {
		t.Fatalf("duplicate accounting off: coalesced=%d hits=%d want sum %d (%+v)",
			st.Coalesced, st.EngineHits, clients-len(jobs), st)
	}
	if st.InFlight != 0 {
		t.Fatalf("requests still in flight after drain: %+v", st)
	}

	// Clean shutdown: Close blocks until active handlers return; nothing
	// should be left to wedge it. (t.Cleanup would do this anyway — doing
	// it explicitly makes the shutdown part of the assertion.)
	ts.Close()
}
