package farm

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/workloads"
)

// streamSpec is the test matrix behind the streaming tests: 1 config × 2
// schemes × 2 benches = 4 cells, cheap at testOpts windows.
func streamSpec(t *testing.T) harness.MatrixSpec {
	t.Helper()
	var benches []workloads.Profile
	for _, name := range []string{"505.mcf", "520.omnetpp"} {
		p, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		benches = append(benches, p)
	}
	return harness.MatrixSpec{
		Name:    "stream-test",
		Configs: []core.Config{core.SmallConfig()},
		Benches: benches,
		Schemes: []core.SchemeKind{core.KindBaseline, core.KindNDA},
	}
}

// remoteSession builds the production client stack against a farm URL: a
// memory layer over the compute-mode HTTP cache, under a Session — the
// same shape cliutil assembles for -remote-compute.
func remoteSession(t *testing.T, url string, spec harness.MatrixSpec) *harness.Session {
	t.Helper()
	return harness.NewSession(harness.SessionConfig{
		Options: testOpts(),
		Schemes: spec.Schemes,
		Cache:   harness.NewTieredCache(harness.NewMemoryCache(0), fastClient(url, true)),
	})
}

// localMatrix is the ground truth the streamed matrix must match exactly.
func localMatrix(t *testing.T, spec harness.MatrixSpec) *harness.Matrix {
	t.Helper()
	s := harness.NewSession(harness.SessionConfig{Options: testOpts(), Schemes: spec.Schemes})
	m, err := s.Matrix(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// matricesEqual compares every cell of two matrices structurally — Runs
// included, so it is byte-identical figures, not just matching means.
func matricesEqual(t *testing.T, got, want *harness.Matrix, spec harness.MatrixSpec) {
	t.Helper()
	for _, cfg := range spec.Configs {
		for _, kind := range spec.Schemes {
			g, ok1 := got.Cell(cfg.Name, kind)
			w, ok2 := want.Cell(cfg.Name, kind)
			if !ok1 || !ok2 {
				t.Fatalf("cell %s/%s missing: got=%v want=%v", cfg.Name, kind, ok1, ok2)
			}
			if !reflect.DeepEqual(g.Runs, w.Runs) || g.MeanIPC != w.MeanIPC {
				t.Fatalf("cell %s/%s diverges from local ground truth", cfg.Name, kind)
			}
		}
	}
}

// TestExperimentStreamEndToEnd: a cold remote matrix through the full
// production stack costs the farm exactly ONE request — the streaming
// experiment — and zero per-cell computes, streams every cell, and yields
// figures byte-identical to a local run. This is the tentpole contract:
// 1 POST /v1/experiments instead of cells-many POSTs.
func TestExperimentStreamEndToEnd(t *testing.T) {
	srv, ts := newTestFarm(t, ServerConfig{})
	spec := streamSpec(t)

	sess := remoteSession(t, ts.URL, spec)
	got, err := sess.Matrix(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	matricesEqual(t, got, localMatrix(t, spec), spec)

	st := srv.Stats()
	if st.Experiments != 1 {
		t.Fatalf("cold matrix cost %d experiment requests, want exactly 1: %+v", st.Experiments, st)
	}
	if st.Computes != 0 {
		t.Fatalf("cold matrix fell back to %d per-cell computes: %+v", st.Computes, st)
	}
	if st.StreamedCells != 4 {
		t.Fatalf("streamed %d of 4 cells: %+v", st.StreamedCells, st)
	}
	if st.EngineSimulated != 4 {
		t.Fatalf("farm simulated %d of 4 cells: %+v", st.EngineSimulated, st)
	}
	// The stream warmed the client's local layers: the per-cell walk that
	// assembled the matrix was all hits, no local simulation.
	cs := sess.Stats()
	if cs.Simulated != 0 || cs.Hits != cs.Cells {
		t.Fatalf("client walk was not all-hits after the stream: %+v", cs)
	}
	if st.Latency["experiments"].Count == 0 {
		t.Fatalf("experiment latency unobserved: %+v", st.Latency)
	}
}

// truncatingProxy forwards every route to inner, but replays only the
// first lines NDJSON lines of an experiment stream and drops the rest —
// the wire image of a farm that died mid-experiment.
func truncatingProxy(t *testing.T, inner http.Handler, keepLines int) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != ExperimentsPath {
			inner.ServeHTTP(w, r)
			return
		}
		r.Header.Del("Accept-Encoding") // keep the recorded stream plaintext
		rec := httptest.NewRecorder()
		inner.ServeHTTP(rec, r)
		sc := bufio.NewScanner(rec.Body)
		sc.Buffer(make([]byte, 64<<10), maxBodyBytes)
		for i := 0; i < keepLines && sc.Scan(); i++ {
			fmt.Fprintf(w, "%s\n", sc.Bytes())
		}
		// Returning without the trailer ends the chunked body cleanly:
		// the client sees EOF where the trailer should be.
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestStreamTruncatedTyped: a stream that dies before its trailer must
// surface as a *StreamError wrapping ErrStreamTruncated, with Delivered
// counting the cells that did arrive (and remain valid).
func TestStreamTruncatedTyped(t *testing.T) {
	srv, _ := newTestFarm(t, ServerConfig{})
	proxy := truncatingProxy(t, srv.Handler(), 2) // header + 1 cell, no trailer

	spec := streamSpec(t)
	wire := harness.WireExperiment(spec, testOpts())
	delivered := 0
	n, err := NewStreamClient(proxy.URL, nil).Experiment(context.Background(), wire, func(CellEnvelope) error {
		delivered++
		return nil
	})
	if !errors.Is(err, ErrStreamTruncated) {
		t.Fatalf("truncated stream error = %v, want ErrStreamTruncated", err)
	}
	var se *StreamError
	if !errors.As(err, &se) || se.Reason != "truncated" {
		t.Fatalf("truncated stream error not typed: %#v", err)
	}
	if n != 1 || delivered != 1 || se.Delivered != 1 {
		t.Fatalf("delivered accounting: n=%d cb=%d se=%d, want 1 each", n, delivered, se.Delivered)
	}
}

// TestStreamDeathFallsBackPerCell: when the experiment stream dies
// mid-flight, the session must still produce byte-identical figures — the
// partial stream's cells are kept, and the engine's per-cell walk resolves
// the remainder through the ordinary compute path.
func TestStreamDeathFallsBackPerCell(t *testing.T) {
	srv, _ := newTestFarm(t, ServerConfig{})
	proxy := truncatingProxy(t, srv.Handler(), 3) // header + 2 cells, no trailer

	spec := streamSpec(t)
	sess := remoteSession(t, proxy.URL, spec)
	got, err := sess.Matrix(context.Background(), spec)
	if err != nil {
		t.Fatalf("matrix failed instead of degrading per-cell: %v", err)
	}
	matricesEqual(t, got, localMatrix(t, spec), spec)

	st := srv.Stats()
	if st.Experiments != 1 {
		t.Fatalf("experiment requests: %+v", st)
	}
	// 2 cells arrived on the stream; the other 2 came per cell.
	if st.Computes != 2 {
		t.Fatalf("per-cell fallback resolved %d cells, want exactly the 2 the stream lost: %+v", st.Computes, st)
	}
	if cs := sess.Stats(); cs.Simulated != 0 {
		t.Fatalf("client simulated locally despite a live farm: %+v", cs)
	}
}

// TestStreamRejectsBadExperiments: invalid experiment requests are 400s
// surfaced as typed server errors, never simulations.
func TestStreamRejectsBadExperiments(t *testing.T) {
	srv, ts := newTestFarm(t, ServerConfig{})
	wire := harness.WireExperiment(streamSpec(t), testOpts())
	wire.Schemes = []string{"no-such-scheme"}
	_, err := NewStreamClient(ts.URL, nil).Experiment(context.Background(), wire, func(CellEnvelope) error {
		t.Fatal("cell delivered from a rejected experiment")
		return nil
	})
	var se *StreamError
	if !errors.As(err, &se) || se.Reason != "server" {
		t.Fatalf("rejection not a typed server error: %v", err)
	}
	if st := srv.Stats(); st.EngineSimulated != 0 {
		t.Fatalf("rejected experiment reached the simulator: %+v", st)
	}
}

// TestStreamSlowConsumer: a consumer that dawdles over every line must not
// stall the farm — the server's stream writer queues lines instead of
// blocking the engine's completion broadcast, the experiment still
// delivers every cell, and the server drains to idle.
func TestStreamSlowConsumer(t *testing.T) {
	srv, ts := newTestFarm(t, ServerConfig{})
	spec := streamSpec(t)
	wire := harness.WireExperiment(spec, testOpts())

	delivered := 0
	n, err := NewStreamClient(ts.URL, nil).Experiment(context.Background(), wire, func(CellEnvelope) error {
		time.Sleep(50 * time.Millisecond)
		delivered++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || delivered != 4 {
		t.Fatalf("slow consumer got %d/%d of 4 cells", delivered, n)
	}
	st := srv.Stats()
	if st.InFlight != 0 {
		t.Fatalf("server did not drain after slow consumer: %+v", st)
	}
	if st.StreamedCells != 4 {
		t.Fatalf("streamed cells: %+v", st)
	}
}

// TestStreamConsumerAbort: an fn error must abort the stream and come back
// exactly as returned, not wrapped into a protocol failure.
func TestStreamConsumerAbort(t *testing.T) {
	_, ts := newTestFarm(t, ServerConfig{})
	wire := harness.WireExperiment(streamSpec(t), testOpts())
	boom := errors.New("consumer says no")
	n, err := NewStreamClient(ts.URL, nil).Experiment(context.Background(), wire, func(CellEnvelope) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("fn error rewritten: %v", err)
	}
	if n != 0 {
		t.Fatalf("aborted cell counted as delivered: %d", n)
	}
}

// TestGzipNegotiation: both request and response bodies round-trip
// compressed when negotiated — and the server never compresses at a
// client that did not ask.
func TestGzipNegotiation(t *testing.T) {
	_, ts := newTestFarm(t, ServerConfig{})
	opts := testOpts()
	job := testJob(t, "505.mcf", core.KindBaseline)
	key := keyOf(job, opts)
	ref := refRun(t, job, opts)

	// Gzipped PUT: explicit Content-Encoding on a compressed envelope.
	body, err := json.Marshal(newEnvelope(key, ref, false))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := gz.Write(body); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+CellsPath+"/"+key, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	drainClose(resp.Body)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("gzipped put rejected: %d", resp.StatusCode)
	}

	// Negotiated GET: the response comes back gzip-encoded and decodes to
	// the identical run. DisableCompression keeps Go's transparent layer
	// out so the wire encoding is visible.
	hc := &http.Client{Transport: &http.Transport{DisableCompression: true}}
	greq, err := http.NewRequest(http.MethodGet, ts.URL+CellsPath+"/"+key, nil)
	if err != nil {
		t.Fatal(err)
	}
	greq.Header.Set("Accept-Encoding", "gzip")
	gresp, err := hc.Do(greq)
	if err != nil {
		t.Fatal(err)
	}
	defer drainClose(gresp.Body)
	if enc := gresp.Header.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("negotiated response not gzipped: %q", enc)
	}
	rd, err := maybeGunzip(gresp)
	if err != nil {
		t.Fatal(err)
	}
	env, err := decodeEnvelope(rd, key)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(env.Run, ref) {
		t.Fatal("gzip round trip changed the run")
	}

	// Unnegotiated GET: identity body.
	presp, err := hc.Get(ts.URL + CellsPath + "/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer drainClose(presp.Body)
	if enc := presp.Header.Get("Content-Encoding"); enc != "" {
		t.Fatalf("server compressed without negotiation: %q", enc)
	}

	// The production client paths negotiate end to end.
	c := fastClient(ts.URL, false)
	got, ok, err := c.Get(key)
	if err != nil || !ok || !reflect.DeepEqual(got, ref) {
		t.Fatalf("client gzip get: ok=%v err=%v", ok, err)
	}
}

// TestGzipStreamNegotiation: the experiment stream itself compresses when
// negotiated and still flushes per line — the first cells decode before
// the stream ends.
func TestGzipStreamNegotiation(t *testing.T) {
	_, ts := newTestFarm(t, ServerConfig{})
	wire := harness.WireExperiment(streamSpec(t), testOpts())
	body, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	hc := &http.Client{Transport: &http.Transport{DisableCompression: true}}
	req, err := http.NewRequest(http.MethodPost, ts.URL+ExperimentsPath, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer drainClose(resp.Body)
	if enc := resp.Header.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("negotiated stream not gzipped: %q", enc)
	}
	rd, err := maybeGunzip(resp)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewStreamClient(ts.URL, nil).consume(rd, func(CellEnvelope) error { return nil })
	if err != nil || n != 4 {
		t.Fatalf("gzipped stream: n=%d err=%v", n, err)
	}
}

// TestMaybeGzipThreshold: tiny bodies ship identity (compression overhead
// exceeds the win), big compressible bodies ship gzip.
func TestMaybeGzipThreshold(t *testing.T) {
	if _, enc := maybeGzip([]byte(`{"small":true}`)); enc != "" {
		t.Fatalf("small body compressed: %q", enc)
	}
	big := []byte(strings.Repeat(`{"cell":"repetitive json compresses"},`, 200))
	payload, enc := maybeGzip(big)
	if enc != "gzip" {
		t.Fatalf("large body not compressed: %q", enc)
	}
	if len(payload) >= len(big) {
		t.Fatalf("compression grew the body: %d -> %d", len(big), len(payload))
	}
	rd, err := gzip.NewReader(bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	round, err := io.ReadAll(rd)
	if err != nil || !bytes.Equal(round, big) {
		t.Fatalf("gzip round trip: err=%v", err)
	}
}

// TestStatsSchemaAndLatency: /v1/stats carries its schema stamp and
// ordered per-endpoint latency percentiles.
func TestStatsSchemaAndLatency(t *testing.T) {
	_, ts := newTestFarm(t, ServerConfig{})
	opts := testOpts()
	job := testJob(t, "505.mcf", core.KindBaseline)
	c := fastClient(ts.URL, true)
	if _, ok, err := c.ResolveCell(keyOf(job, opts), job, opts); !ok || err != nil {
		t.Fatalf("compute: ok=%v err=%v", ok, err)
	}
	if _, _, err := c.Get(keyOf(job, opts)); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + StatsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer drainClose(resp.Body)
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Schema != StatsSchema {
		t.Fatalf("stats schema = %q, want %q", st.Schema, StatsSchema)
	}
	for _, ep := range []string{"compute", "get_cell"} {
		l, ok := st.Latency[ep]
		if !ok || l.Count == 0 {
			t.Fatalf("endpoint %s unobserved: %+v", ep, st.Latency)
		}
		if l.P50 <= 0 || l.P50 > l.P95 || l.P95 > l.P99 {
			t.Fatalf("endpoint %s percentiles disordered: %+v", ep, l)
		}
	}
	if _, ok := st.Latency["experiments"]; ok {
		t.Fatalf("unobserved endpoint reported: %+v", st.Latency)
	}
}
