package cliutil

import (
	"fmt"

	sb "repro"
)

// The CI bench-regression gate's comparison logic (the go-run-able front
// end lives in internal/cliutil/benchcheck). The gate compares one labeled
// run between the committed baseline (BENCH_baseline.json, updated
// deliberately when a perf change lands) and the freshly emitted
// BENCH_core.json, and fails when sim_cycles_per_sec regressed past the
// allowed percentage. The threshold is generous (25% by default) because
// shared CI runners are noisy; the gate exists to catch the accidental
// 2x, not to litigate 3%.

// CheckBenchRegression compares the labeled run across the two files. It
// returns a one-line summary on success and an error when the label is
// missing from current, either file is structurally invalid, or the
// current throughput fell more than maxRegressPct percent below the
// baseline's. A label absent from the baseline passes with a note — that
// is how a new benchmark enters the trajectory before its first committed
// baseline.
func CheckBenchRegression(baseline, current sb.BenchFile, label string, maxRegressPct float64) (string, error) {
	if maxRegressPct <= 0 || maxRegressPct >= 100 {
		return "", fmt.Errorf("benchcheck: max regression %.1f%% out of range (0, 100)", maxRegressPct)
	}
	if err := current.Validate(); err != nil {
		return "", fmt.Errorf("benchcheck: current report invalid: %w", err)
	}
	cur, ok := findRun(current, label)
	if !ok {
		return "", fmt.Errorf("benchcheck: current report has no %q run (labels: %v)", label, labels(current))
	}
	// Validate the baseline BEFORE the missing-label fallback: a baseline
	// truncated or mangled by a bad merge must fail the gate loudly, not
	// read as "new benchmark entering the trajectory" and silently
	// disable the regression check.
	if err := baseline.Validate(); err != nil {
		return "", fmt.Errorf("benchcheck: baseline report invalid: %w", err)
	}
	base, ok := findRun(baseline, label)
	if !ok {
		return fmt.Sprintf("%s: no committed baseline yet (%.0f simCycles/s measured); commit BENCH_baseline.json to start the trajectory",
			label, cur.SimCyclesPerSec), nil
	}
	change := 100 * (cur.SimCyclesPerSec - base.SimCyclesPerSec) / base.SimCyclesPerSec
	if change < -maxRegressPct {
		return "", fmt.Errorf(
			"benchcheck: %s regressed %.1f%% (limit %.0f%%): %.0f simCycles/s, baseline %.0f; if the slowdown is intentional, update BENCH_baseline.json",
			label, -change, maxRegressPct, cur.SimCyclesPerSec, base.SimCyclesPerSec)
	}
	summary := fmt.Sprintf("%s: %.0f simCycles/s vs baseline %.0f (%+.1f%%, limit -%.0f%%)",
		label, cur.SimCyclesPerSec, base.SimCyclesPerSec, change, maxRegressPct)
	if base.AllocsPerCycle > 0 {
		// The allocation gate is one-sided and tight: steady-state
		// simulation allocates nothing, so allocs/simCycle measures
		// amortized per-cell setup — near-deterministic, unlike wall-clock
		// throughput — and ANY real increase means a hot-loop allocation
		// source came back. The slack below only absorbs runtime-internal
		// jitter (GC metadata, map growth), not a per-cycle allocation,
		// which would blow past it a hundredfold. A current run without
		// the metric reads as zero and passes: zero allocations can only
		// be an improvement.
		if cur.AllocsPerCycle > base.AllocsPerCycle*allocIncreaseSlack {
			return "", fmt.Errorf(
				"benchcheck: %s allocations regressed: %.4f allocs/simCycle, baseline %.4f (any increase fails); if the new allocations are intentional, update BENCH_baseline.json",
				label, cur.AllocsPerCycle, base.AllocsPerCycle)
		}
		summary += fmt.Sprintf(", %.4f allocs/simCycle (baseline %.4f)", cur.AllocsPerCycle, base.AllocsPerCycle)
	}
	return summary, nil
}

// allocIncreaseSlack is the multiplicative headroom on the allocs/simCycle
// gate — 5%, against a metric that jumps by orders of magnitude when a
// per-cycle allocation reappears.
const allocIncreaseSlack = 1.05

// CheckAllBenchRegressions applies the gate to every label in the
// baseline — a committed trajectory may never silently narrow, so a
// baseline label that vanished from the current report fails the gate —
// and then notes any current-only labels (new benchmarks entering the
// trajectory before their first committed baseline). One summary line per
// label, in baseline-then-current order.
func CheckAllBenchRegressions(baseline, current sb.BenchFile, maxRegressPct float64) ([]string, error) {
	if err := baseline.Validate(); err != nil {
		return nil, fmt.Errorf("benchcheck: baseline report invalid: %w", err)
	}
	if len(baseline.Runs) == 0 {
		return nil, fmt.Errorf("benchcheck: baseline report has no runs to gate")
	}
	var out []string
	for _, r := range baseline.Runs {
		summary, err := CheckBenchRegression(baseline, current, r.Label, maxRegressPct)
		if err != nil {
			return nil, err
		}
		out = append(out, summary)
	}
	for _, r := range current.Runs {
		if _, gated := findRun(baseline, r.Label); gated {
			continue
		}
		summary, err := CheckBenchRegression(baseline, current, r.Label, maxRegressPct)
		if err != nil {
			return nil, err
		}
		out = append(out, summary)
	}
	return out, nil
}

func findRun(f sb.BenchFile, label string) (sb.BenchReport, bool) {
	for _, r := range f.Runs {
		if r.Label == label {
			return r, true
		}
	}
	return sb.BenchReport{}, false
}

func labels(f sb.BenchFile) []string {
	out := make([]string, len(f.Runs))
	for i, r := range f.Runs {
		out[i] = r.Label
	}
	return out
}
