package cliutil

import (
	"strings"
	"testing"
	"time"

	sb "repro"
)

// run is one labeled measurement in a synthetic bench file.
type run struct {
	label string
	rate  float64 // simCycles/s
}

func benchFileOf(runs ...run) sb.BenchFile {
	// NewBenchReport derives the rate from cycles/wall; one second of wall
	// time makes the rate equal the cycle count.
	f := sb.BenchFile{Schema: "shadowbinding-bench/v1"}
	for _, r := range runs {
		rep := sb.NewBenchReport(r.label, 32, uint64(r.rate), time.Second, 1)
		f.Runs = append(f.Runs, rep)
		f.SimCycles += rep.SimCycles
		f.WallSeconds += rep.WallSeconds
	}
	f.SimCyclesPerSec = float64(f.SimCycles) / f.WallSeconds
	return f
}

func benchFile(label string, cyclesPerSec float64) sb.BenchFile {
	return benchFileOf(run{label, cyclesPerSec})
}

func TestBenchRegressionGate(t *testing.T) {
	base := benchFile("short-matrix-j1", 1_000_000)

	// Within the limit: noise-level dips and improvements both pass.
	for _, cur := range []float64{990_000, 760_000, 1_500_000} {
		summary, err := CheckBenchRegression(base, benchFile("short-matrix-j1", cur), "short-matrix-j1", 25)
		if err != nil {
			t.Errorf("current %.0f: unexpected failure: %v", cur, err)
		}
		if !strings.Contains(summary, "short-matrix-j1") {
			t.Errorf("summary %q missing the label", summary)
		}
	}

	// Past the limit: fail, with both numbers in the message.
	_, err := CheckBenchRegression(base, benchFile("short-matrix-j1", 700_000), "short-matrix-j1", 25)
	if err == nil {
		t.Fatal("30% regression passed a 25% gate")
	}
	for _, want := range []string{"regressed", "700000", "1000000"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestBenchRegressionGateEdges(t *testing.T) {
	base := benchFile("short-matrix-j1", 1_000_000)

	// The label must exist in the current report — a vanished measurement
	// is a broken gate, not a pass.
	if _, err := CheckBenchRegression(base, benchFile("other", 1), "short-matrix-j1", 25); err == nil {
		t.Error("missing current label passed")
	}

	// A label with no committed baseline passes with a start-the-trajectory
	// note (how a new benchmark enters the gate).
	summary, err := CheckBenchRegression(benchFile("other", 1_000_000), benchFile("short-matrix-j1", 500_000), "short-matrix-j1", 25)
	if err != nil {
		t.Errorf("label without baseline must pass: %v", err)
	}
	if !strings.Contains(summary, "no committed baseline") {
		t.Errorf("summary %q missing the no-baseline note", summary)
	}

	// Corrupt current report (bad schema): refused.
	bad := benchFile("short-matrix-j1", 1_000_000)
	bad.Schema = "bogus"
	if _, err := CheckBenchRegression(base, bad, "short-matrix-j1", 25); err == nil {
		t.Error("invalid current report passed")
	}

	// Corrupt baseline (e.g. truncated to {} by a bad merge): refused —
	// it must NOT read as "no committed baseline yet" and silently
	// disable the gate.
	if _, err := CheckBenchRegression(sb.BenchFile{}, benchFile("short-matrix-j1", 1_000_000), "short-matrix-j1", 25); err == nil {
		t.Error("corrupt baseline passed as start-of-trajectory")
	}

	// Nonsensical thresholds: refused.
	for _, pct := range []float64{0, -5, 100} {
		if _, err := CheckBenchRegression(base, base, "short-matrix-j1", pct); err == nil {
			t.Errorf("threshold %.0f accepted", pct)
		}
	}
}

// TestCheckAllBenchRegressions covers the whole-baseline gate: every
// committed label is compared, a vanished label fails, and a new label not
// yet in the baseline enters with a note instead of an error.
func TestCheckAllBenchRegressions(t *testing.T) {
	base := benchFileOf(
		run{"short-matrix-j1", 1_000_000},
		run{"long-miss-matrix-j1", 3_000_000},
	)

	cases := []struct {
		name        string
		current     sb.BenchFile
		wantErr     string   // substring of the error, "" = must pass
		wantLines   int      // summaries expected on pass
		wantMention []string // substrings that must appear across the summaries
	}{
		{
			name: "all labels within limit",
			current: benchFileOf(
				run{"short-matrix-j1", 1_100_000},
				run{"long-miss-matrix-j1", 2_900_000},
			),
			wantLines:   2,
			wantMention: []string{"short-matrix-j1", "long-miss-matrix-j1"},
		},
		{
			name: "one label regressed past the limit",
			current: benchFileOf(
				run{"short-matrix-j1", 1_000_000},
				run{"long-miss-matrix-j1", 1_000_000},
			),
			wantErr: "long-miss-matrix-j1 regressed",
		},
		{
			name:    "baseline label missing from current",
			current: benchFileOf(run{"short-matrix-j1", 1_000_000}),
			wantErr: `no "long-miss-matrix-j1" run`,
		},
		{
			name: "new label not in baseline enters with a note",
			current: benchFileOf(
				run{"short-matrix-j1", 1_000_000},
				run{"long-miss-matrix-j1", 3_000_000},
				run{"session-cache-hit", 9_999},
			),
			wantLines:   3,
			wantMention: []string{"no committed baseline", "session-cache-hit"},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			summaries, err := CheckAllBenchRegressions(base, tc.current, 25)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected failure: %v", err)
			}
			if len(summaries) != tc.wantLines {
				t.Fatalf("got %d summaries %v, want %d", len(summaries), summaries, tc.wantLines)
			}
			joined := strings.Join(summaries, "\n")
			for _, want := range tc.wantMention {
				if !strings.Contains(joined, want) {
					t.Errorf("summaries %q missing %q", joined, want)
				}
			}
		})
	}

	// An empty or invalid baseline must refuse loudly rather than gate
	// nothing.
	if _, err := CheckAllBenchRegressions(sb.BenchFile{}, base, 25); err == nil {
		t.Error("invalid baseline passed the all-labels gate")
	}
	empty := benchFileOf()
	empty.SimCyclesPerSec = 1 // structurally valid, but nothing to gate
	empty.WallSeconds = 1
	if _, err := CheckAllBenchRegressions(empty, base, 25); err == nil {
		t.Error("baseline with zero runs passed the all-labels gate")
	}
}
