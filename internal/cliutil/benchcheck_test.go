package cliutil

import (
	"strings"
	"testing"
	"time"

	sb "repro"
)

func benchFile(label string, cyclesPerSec float64) sb.BenchFile {
	// NewBenchReport derives the rate from cycles/wall; one second of wall
	// time makes the rate equal the cycle count.
	rep := sb.NewBenchReport(label, 32, uint64(cyclesPerSec), time.Second, 1)
	return sb.BenchFile{
		Schema:          "shadowbinding-bench/v1",
		Runs:            []sb.BenchReport{rep},
		SimCycles:       rep.SimCycles,
		WallSeconds:     rep.WallSeconds,
		SimCyclesPerSec: rep.SimCyclesPerSec,
	}
}

func TestBenchRegressionGate(t *testing.T) {
	base := benchFile("short-matrix-j1", 1_000_000)

	// Within the limit: noise-level dips and improvements both pass.
	for _, cur := range []float64{990_000, 760_000, 1_500_000} {
		summary, err := CheckBenchRegression(base, benchFile("short-matrix-j1", cur), "short-matrix-j1", 25)
		if err != nil {
			t.Errorf("current %.0f: unexpected failure: %v", cur, err)
		}
		if !strings.Contains(summary, "short-matrix-j1") {
			t.Errorf("summary %q missing the label", summary)
		}
	}

	// Past the limit: fail, with both numbers in the message.
	_, err := CheckBenchRegression(base, benchFile("short-matrix-j1", 700_000), "short-matrix-j1", 25)
	if err == nil {
		t.Fatal("30% regression passed a 25% gate")
	}
	for _, want := range []string{"regressed", "700000", "1000000"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestBenchRegressionGateEdges(t *testing.T) {
	base := benchFile("short-matrix-j1", 1_000_000)

	// The label must exist in the current report — a vanished measurement
	// is a broken gate, not a pass.
	if _, err := CheckBenchRegression(base, benchFile("other", 1), "short-matrix-j1", 25); err == nil {
		t.Error("missing current label passed")
	}

	// A label with no committed baseline passes with a start-the-trajectory
	// note (how a new benchmark enters the gate).
	summary, err := CheckBenchRegression(benchFile("other", 1_000_000), benchFile("short-matrix-j1", 500_000), "short-matrix-j1", 25)
	if err != nil {
		t.Errorf("label without baseline must pass: %v", err)
	}
	if !strings.Contains(summary, "no committed baseline") {
		t.Errorf("summary %q missing the no-baseline note", summary)
	}

	// Corrupt current report (bad schema): refused.
	bad := benchFile("short-matrix-j1", 1_000_000)
	bad.Schema = "bogus"
	if _, err := CheckBenchRegression(base, bad, "short-matrix-j1", 25); err == nil {
		t.Error("invalid current report passed")
	}

	// Corrupt baseline (e.g. truncated to {} by a bad merge): refused —
	// it must NOT read as "no committed baseline yet" and silently
	// disable the gate.
	if _, err := CheckBenchRegression(sb.BenchFile{}, benchFile("short-matrix-j1", 1_000_000), "short-matrix-j1", 25); err == nil {
		t.Error("corrupt baseline passed as start-of-trajectory")
	}

	// Nonsensical thresholds: refused.
	for _, pct := range []float64{0, -5, 100} {
		if _, err := CheckBenchRegression(base, base, "short-matrix-j1", pct); err == nil {
			t.Errorf("threshold %.0f accepted", pct)
		}
	}
}
