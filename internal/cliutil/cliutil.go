// Package cliutil centralizes the flag wiring and process plumbing shared
// by the four cmds (shadowbinding, specrun, spectre, shadowbindingd).
// Every cmd follows the same two-step shape: Register installs the common
// -j/-schemes/-bench-out/-cache/-remote/-remote-compute/-*profile flags,
// and Build finalizes the parsed values into the handles a run starts
// from — resolved scheme axis, assembled cell-cache stack, a lazy Session
// over both, profile collection, and the SIGINT-cancelled root context —
// with one Close undoing all of it.
package cliutil

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	sb "repro"
	"repro/internal/trace"
)

// Flags holds the values of the common flags after flag.Parse.
type Flags struct {
	Parallelism int
	SchemesCSV  string
	BenchOut    string
	CacheDir    string
	CPUProfile  string
	MemProfile  string
	// Remote is the -remote farm base URL; when set, OpenCache layers a
	// farm HTTPCache as the slowest tier of the cell cache stack.
	Remote string
	// RemoteCompute is -remote-compute: ask the farm to simulate missing
	// cells (compute-on-miss) instead of simulating them locally.
	RemoteCompute bool
	// TraceOut is the -trace-out path (registered by RegisterTrace on the
	// cmds that run individual cells).
	TraceOut string
}

// Register installs the common flags on fs (flag.CommandLine in the cmds)
// and returns the struct their values land in. cacheHelp lets a cmd
// qualify what -cache covers for it.
func Register(fs *flag.FlagSet, cacheHelp string) *Flags {
	f := &Flags{}
	fs.IntVar(&f.Parallelism, "j", 0, "worker pool size (0 = all CPUs)")
	fs.StringVar(&f.SchemesCSV, "schemes", "",
		"comma-separated scheme filter (default all: "+strings.Join(sb.SchemeNames(), ",")+")")
	fs.StringVar(&f.BenchOut, "bench-out", "", "write a BENCH_core.json throughput report to this path")
	if cacheHelp == "" {
		cacheHelp = "cell cache directory: simulation results are content-addressed and persisted here, so a warm re-run simulates nothing"
	}
	fs.StringVar(&f.CacheDir, "cache", "", cacheHelp)
	fs.StringVar(&f.Remote, "remote", "",
		"shadowbindingd base URL (e.g. http://127.0.0.1:8484): layer the farm's shared cell store under the local cache stack; any network failure degrades to local simulation")
	fs.BoolVar(&f.RemoteCompute, "remote-compute", false,
		"with -remote: delegate missing cells to the farm (compute-on-miss, fleet-wide single-flight, worker fan-out) instead of simulating locally")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this path (go tool pprof)")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write an end-of-run heap profile to this path (go tool pprof)")
	return f
}

// RegisterTrace installs the -trace-out flag. Only cmds that run a single
// identifiable cell register it (shadowbinding, specrun); the recorder is
// observational, so a traced run's printed results are identical to an
// untraced run's.
func (f *Flags) RegisterTrace(fs *flag.FlagSet) {
	fs.StringVar(&f.TraceOut, "trace-out", "",
		"write a per-cycle JSONL pipeline trace of the run to this path (view with shadowbinding -serve-trace PATH)")
}

// RunTraced runs one cell directly (bypassing the session cell cache — a
// cached result cannot replay its pipeline events) with a JSONL trace
// recorder attached, writing the trace to f.TraceOut. Recorders are
// observational: the returned Run matches an untraced run of the same
// cell exactly.
func (f *Flags) RunTraced(tool string, cfg sb.Config, kind sb.Scheme, bench string, opts sb.Options) sb.Run {
	out, err := os.Create(f.TraceOut)
	if err != nil {
		Fatal(tool, err)
	}
	run, err := sb.RunBenchmarkTraced(cfg, kind, bench, opts, out)
	if err != nil {
		out.Close()
		Fatal(tool, err)
	}
	if err := out.Close(); err != nil {
		Fatal(tool, err)
	}
	fmt.Fprintf(os.Stderr, "%s: wrote pipeline trace to %s\n", tool, f.TraceOut)
	return run
}

// TraceDeltaLines renders a sweep's per-scheme trace comparisons against
// the baseline cell of cfgName. When the baseline cell is missing or
// empty the sweep cannot be normalized: the result is one explanatory
// note, never silence. A missing scheme cell likewise gets a note.
func TraceDeltaLines(m *sb.Matrix, cfgName string, schemes []sb.Scheme) []string {
	baseCell, ok := m.Cell(cfgName, sb.Baseline)
	if !ok || len(baseCell.Runs) == 0 {
		return []string{`trace deltas unavailable: no baseline cell in this sweep (add "baseline" to -schemes)`}
	}
	base := sb.TraceOf(baseCell.Runs[0])
	var lines []string
	for _, k := range schemes {
		if k == sb.Baseline {
			continue
		}
		cell, ok := m.Cell(cfgName, k)
		if !ok || len(cell.Runs) == 0 {
			lines = append(lines, fmt.Sprintf("trace delta unavailable for %s: scheme cell missing from this sweep", k))
			continue
		}
		lines = append(lines, trace.Compare(base, sb.TraceOf(cell.Runs[0])).String())
	}
	return lines
}

// StartProfiles starts the -cpuprofile/-memprofile collection and returns
// the function that finalizes both; the caller defers it around the whole
// run. Either flag may be empty. The heap profile is written at stop time
// after a GC, so it reflects live steady-state memory — the
// allocation-free-hot-loop claim the zero-alloc test pins is directly
// inspectable from it.
func (f *Flags) StartProfiles(tool string) (stop func()) {
	var cpuOut *os.File
	if f.CPUProfile != "" {
		var err error
		cpuOut, err = os.Create(f.CPUProfile)
		if err != nil {
			Fatal(tool, err)
		}
		if err := pprof.StartCPUProfile(cpuOut); err != nil {
			Fatal(tool, err)
		}
	}
	return func() {
		if cpuOut != nil {
			pprof.StopCPUProfile()
			if err := cpuOut.Close(); err != nil {
				Fatal(tool, err)
			}
		}
		if f.MemProfile != "" {
			memOut, err := os.Create(f.MemProfile)
			if err != nil {
				Fatal(tool, err)
			}
			runtime.GC() // drop dead objects so the profile shows live state
			if err := pprof.WriteHeapProfile(memOut); err != nil {
				Fatal(tool, err)
			}
			if err := memOut.Close(); err != nil {
				Fatal(tool, err)
			}
		}
	}
}

// Schemes parses the -schemes filter; withBaseline prepends the baseline
// when absent (figures normalize against it).
func (f *Flags) Schemes(withBaseline bool) ([]sb.Scheme, error) {
	schemes, err := sb.ParseSchemes(f.SchemesCSV)
	if err != nil {
		return nil, err
	}
	if withBaseline {
		schemes = sb.WithBaseline(schemes)
	}
	return schemes, nil
}

// OpenCache opens the cell cache stack selected by -cache and -remote
// through the facade's one constructor: in-memory LRU, then the on-disk
// JSON store (-cache), then the farm client (-remote), fastest-first.
// Without either flag it returns nil and a Session uses its private
// in-memory LRU.
func (f *Flags) OpenCache() (sb.CellCache, error) {
	if f.RemoteCompute && f.Remote == "" {
		return nil, fmt.Errorf("cliutil: -remote-compute needs -remote")
	}
	if !f.CacheEnabled() {
		return nil, nil
	}
	return sb.OpenCache(sb.CacheOptions{
		Dir:           f.CacheDir,
		Remote:        f.Remote,
		RemoteCompute: f.RemoteCompute,
	})
}

// Handles is everything Build assembles from the parsed flags — the
// uniform starting state of all four cmds. Fields a cmd does not need
// (the daemon never touches Session) cost nothing: the session is lazy
// and the cache stack only dials out when used.
type Handles struct {
	// Ctx is the SIGINT-cancelled root context.
	Ctx context.Context
	// Options is the cmd's run bounds with -j applied.
	Options sb.Options
	// Schemes is the resolved -schemes axis (baseline prepended when the
	// cmd's figures normalize against it).
	Schemes []sb.Scheme
	// Cache is the -cache/-remote stack; nil when neither flag was given
	// (the Session then uses its private in-memory LRU).
	Cache sb.CellCache
	// Session is a lazy evaluation session over Options, Schemes, Cache.
	Session *sb.Session

	stops []func()
}

// Close releases everything Build acquired — profiles flushed, signal
// handling restored — in reverse order. Defer it right after Build.
func (h *Handles) Close() {
	for i := len(h.stops) - 1; i >= 0; i-- {
		h.stops[i]()
	}
}

// Build finalizes the parsed flags into run handles. Call once after
// flag.Parse, with the cmd's base options (warmup/measure/scale applied);
// withBaseline prepends the baseline to the scheme axis for cmds whose
// figures normalize against it. CPU profiling starts here — defer Close
// to finalize it.
func (f *Flags) Build(tool string, opts sb.Options, withBaseline bool) (*Handles, error) {
	schemes, err := f.Schemes(withBaseline)
	if err != nil {
		return nil, err
	}
	cache, err := f.OpenCache()
	if err != nil {
		return nil, err
	}
	opts.Parallelism = f.Parallelism
	h := &Handles{Options: opts, Schemes: schemes, Cache: cache}
	h.stops = append(h.stops, f.StartProfiles(tool))
	ctx, stop := SignalContext()
	h.Ctx = ctx
	h.stops = append(h.stops, stop)
	h.Session = sb.NewSession(sb.SessionConfig{Options: opts, Schemes: schemes, Cache: cache})
	return h, nil
}

// CacheEnabled reports whether any persistent or shared cache layer was
// selected — the condition under which the cmds print the cache summary
// line (the one the CI cache and farm smoke steps assert on).
func (f *Flags) CacheEnabled() bool {
	return f.CacheDir != "" || f.Remote != ""
}

// SignalContext returns a context cancelled by SIGINT, so Ctrl-C stops
// worker pools between cell runs instead of killing the process
// mid-write. Call stop to restore default signal handling.
func SignalContext() (ctx context.Context, stop context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt)
}

// EmitBench writes a one-run BENCH_core.json when -bench-out was given
// and echoes the report to stderr. A run that simulated nothing (a fully
// warm cache) is skipped: a zero-cycle report would fail the
// BenchFile.Validate guard and says nothing about simulator throughput.
func (f *Flags) EmitBench(tool, label string, cells int, simCycles uint64, wall time.Duration, workers int) {
	if f.BenchOut == "" {
		return
	}
	if simCycles == 0 {
		fmt.Fprintf(os.Stderr, "%s: -bench-out: nothing simulated (warm cache), no report written\n", tool)
		return
	}
	rep := sb.NewBenchReport(label, cells, simCycles, wall, workers)
	if err := sb.WriteBenchReport(f.BenchOut, rep); err != nil {
		Fatal(tool, err)
	}
	fmt.Fprintf(os.Stderr, "%s: %s\n", tool, rep)
}

// PrintCacheSummary reports a session's cell accounting to stderr — the
// line the CI cache smoke step asserts on ("0 simulated" on a warm run).
func PrintCacheSummary(tool string, st sb.SessionStats) {
	fmt.Fprintf(os.Stderr, "%s: cache: %d cells, %d hits (%.1f%%), %d simulated\n",
		tool, st.Cells, st.Hits, 100*st.HitRate(), st.Simulated)
}

// Fatal reports err prefixed with the tool name and exits non-zero.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(1)
}
