package cliutil

import (
	"context"
	"flag"
	"path/filepath"
	"strings"
	"testing"
	"time"

	sb "repro"
)

func TestRegisterAndSchemes(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs, "")
	if err := fs.Parse([]string{"-j", "4", "-schemes", "nda", "-cache", "/tmp/x", "-bench-out", "b.json"}); err != nil {
		t.Fatal(err)
	}
	if f.Parallelism != 4 || f.SchemesCSV != "nda" || f.CacheDir != "/tmp/x" || f.BenchOut != "b.json" {
		t.Errorf("parsed flags = %+v", f)
	}
	schemes, err := f.Schemes(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(schemes) != 2 || schemes[0] != sb.Baseline || schemes[1] != sb.NDA {
		t.Errorf("Schemes(true) = %v, want [baseline nda]", schemes)
	}
	schemes, err = f.Schemes(false)
	if err != nil || len(schemes) != 1 || schemes[0] != sb.NDA {
		t.Errorf("Schemes(false) = %v, %v, want [nda]", schemes, err)
	}
	f.SchemesCSV = "bogus"
	if _, err := f.Schemes(false); err == nil {
		t.Error("bogus scheme filter accepted")
	}
}

// sweepMatrix materializes a tiny one-bench sweep for the given schemes.
func sweepMatrix(t *testing.T, schemes []sb.Scheme) *sb.Matrix {
	t.Helper()
	prof, err := sb.BenchmarkByName("505.mcf")
	if err != nil {
		t.Fatal(err)
	}
	opts := sb.DefaultOptions()
	opts.WarmupCycles, opts.MeasureCycles = 500, 1500
	sess := sb.NewSession(sb.SessionConfig{Options: opts, Schemes: schemes})
	m, err := sess.Matrix(context.Background(), sb.MatrixSpec{
		Name:    "cliutil-test",
		Configs: []sb.Config{sb.MegaConfig()},
		Benches: []sb.Benchmark{prof},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestTraceDeltaLines pins the sweep trace-delta rendering: a comparison
// line per scheme when the baseline cell exists, and an explanatory note
// — never silence — when it does not.
func TestTraceDeltaLines(t *testing.T) {
	cfgName := sb.MegaConfig().Name
	schemes := []sb.Scheme{sb.Baseline, sb.NDA, sb.DoM}
	m := sweepMatrix(t, schemes)
	lines := TraceDeltaLines(m, cfgName, schemes)
	if len(lines) != 2 {
		t.Fatalf("got %d delta lines, want 2: %v", len(lines), lines)
	}
	if !strings.Contains(lines[0], "nda vs baseline") || !strings.Contains(lines[1], "dom vs baseline") {
		t.Errorf("unexpected delta lines: %v", lines)
	}

	// Baseline missing from the sweep: one explanatory note, not silence.
	noBase := []sb.Scheme{sb.NDA}
	lines = TraceDeltaLines(sweepMatrix(t, noBase), cfgName, noBase)
	if len(lines) != 1 || !strings.Contains(lines[0], "no baseline cell") {
		t.Errorf("missing-baseline sweep rendered %v, want one explanatory note", lines)
	}

	// A scheme cell missing from the matrix gets a note too.
	base := []sb.Scheme{sb.Baseline}
	lines = TraceDeltaLines(sweepMatrix(t, base), cfgName, []sb.Scheme{sb.Baseline, sb.DoM})
	if len(lines) != 1 || !strings.Contains(lines[0], "scheme cell missing") {
		t.Errorf("missing-scheme sweep rendered %v, want one explanatory note", lines)
	}
}

func TestOpenCache(t *testing.T) {
	f := &Flags{}
	c, err := f.OpenCache()
	if err != nil || c != nil {
		t.Errorf("no -cache: got %v, %v; want nil cache", c, err)
	}
	f.CacheDir = filepath.Join(t.TempDir(), "cells")
	c, err = f.OpenCache()
	if err != nil || c == nil {
		t.Errorf("-cache: got %v, %v; want a cache", c, err)
	}
}

func TestEmitBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_core.json")
	f := &Flags{BenchOut: path}
	f.EmitBench("test", "unit", 4, 1_000_000, 500*time.Millisecond, 2)
	got, err := sb.ReadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("emitted report invalid: %v", err)
	}
	if len(got.Runs) != 1 || got.Runs[0].Label != "unit" || got.Runs[0].Cells != 4 {
		t.Errorf("emitted runs = %+v", got.Runs)
	}
	// Without -bench-out the emit is a no-op.
	none := &Flags{}
	none.EmitBench("test", "unit", 1, 1, time.Second, 1)

	// A warm-cache run (zero simulated cycles) must not write a report:
	// it would fail the BenchFile.Validate guard.
	skip := filepath.Join(t.TempDir(), "warm.json")
	warm := &Flags{BenchOut: skip}
	warm.EmitBench("test", "unit", 0, 0, time.Second, 1)
	if _, err := sb.ReadBenchReport(skip); err == nil {
		t.Error("zero-simulation run wrote a bench report")
	}
}
