package cliutil

import (
	"flag"
	"path/filepath"
	"testing"
	"time"

	sb "repro"
)

func TestRegisterAndSchemes(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs, "")
	if err := fs.Parse([]string{"-j", "4", "-schemes", "nda", "-cache", "/tmp/x", "-bench-out", "b.json"}); err != nil {
		t.Fatal(err)
	}
	if f.Parallelism != 4 || f.SchemesCSV != "nda" || f.CacheDir != "/tmp/x" || f.BenchOut != "b.json" {
		t.Errorf("parsed flags = %+v", f)
	}
	schemes, err := f.Schemes(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(schemes) != 2 || schemes[0] != sb.Baseline || schemes[1] != sb.NDA {
		t.Errorf("Schemes(true) = %v, want [baseline nda]", schemes)
	}
	schemes, err = f.Schemes(false)
	if err != nil || len(schemes) != 1 || schemes[0] != sb.NDA {
		t.Errorf("Schemes(false) = %v, %v, want [nda]", schemes, err)
	}
	f.SchemesCSV = "bogus"
	if _, err := f.Schemes(false); err == nil {
		t.Error("bogus scheme filter accepted")
	}
}

func TestOpenCache(t *testing.T) {
	f := &Flags{}
	c, err := f.OpenCache()
	if err != nil || c != nil {
		t.Errorf("no -cache: got %v, %v; want nil cache", c, err)
	}
	f.CacheDir = filepath.Join(t.TempDir(), "cells")
	c, err = f.OpenCache()
	if err != nil || c == nil {
		t.Errorf("-cache: got %v, %v; want a cache", c, err)
	}
}

func TestEmitBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_core.json")
	f := &Flags{BenchOut: path}
	f.EmitBench("test", "unit", 4, 1_000_000, 500*time.Millisecond, 2)
	got, err := sb.ReadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("emitted report invalid: %v", err)
	}
	if len(got.Runs) != 1 || got.Runs[0].Label != "unit" || got.Runs[0].Cells != 4 {
		t.Errorf("emitted runs = %+v", got.Runs)
	}
	// Without -bench-out the emit is a no-op.
	none := &Flags{}
	none.EmitBench("test", "unit", 1, 1, time.Second, 1)

	// A warm-cache run (zero simulated cycles) must not write a report:
	// it would fail the BenchFile.Validate guard.
	skip := filepath.Join(t.TempDir(), "warm.json")
	warm := &Flags{BenchOut: skip}
	warm.EmitBench("test", "unit", 0, 0, time.Second, 1)
	if _, err := sb.ReadBenchReport(skip); err == nil {
		t.Error("zero-simulation run wrote a bench report")
	}
}
