// Command benchcheck is the CI bench-regression gate: it compares the
// freshly emitted BENCH_core.json against the committed baseline
// (BENCH_baseline.json) and exits non-zero when the labeled run's
// sim_cycles_per_sec regressed more than the allowed percentage.
//
// Usage (what the CI "Bench regression gate" step runs):
//
//	go test -bench='MatrixThroughput' -benchtime=1x -short -run '^$' .
//	go run ./internal/cliutil/benchcheck -all -max-regress 25
//
// -all gates every label in the committed baseline (and notes current-only
// labels entering the trajectory); -label gates exactly one.
//
// The comparison is absolute throughput, so the committed baseline must
// come from the same machine class that runs the gate. Updating the
// trajectory (after an intentional perf change, or to re-anchor on the
// CI runners) uses the BENCH_core artifact uploaded by a green CI run:
//
//	cp BENCH_core.json BENCH_baseline.json && git add BENCH_baseline.json
package main

import (
	"flag"
	"fmt"

	sb "repro"
	"repro/internal/cliutil"
)

const tool = "benchcheck"

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline report")
	current := flag.String("current", "BENCH_core.json", "freshly emitted report to check")
	label := flag.String("label", "short-matrix-j1", "run label to compare")
	all := flag.Bool("all", false, "gate every label in the baseline instead of -label")
	maxRegress := flag.Float64("max-regress", 25, "fail when sim_cycles_per_sec drops more than this percentage")
	flag.Parse()

	base, err := sb.ReadBenchReport(*baseline)
	if err != nil {
		cliutil.Fatal(tool, fmt.Errorf("baseline %s: %w", *baseline, err))
	}
	cur, err := sb.ReadBenchReport(*current)
	if err != nil {
		cliutil.Fatal(tool, fmt.Errorf("current %s: %w", *current, err))
	}
	if *all {
		summaries, err := cliutil.CheckAllBenchRegressions(base, cur, *maxRegress)
		if err != nil {
			cliutil.Fatal(tool, err)
		}
		for _, s := range summaries {
			fmt.Printf("%s: %s\n", tool, s)
		}
		return
	}
	summary, err := cliutil.CheckBenchRegression(base, cur, *label, *maxRegress)
	if err != nil {
		cliutil.Fatal(tool, err)
	}
	fmt.Printf("%s: %s\n", tool, summary)
}
