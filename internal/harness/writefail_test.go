package harness

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

var errTestUnwritable = errors.New("test: cache unwritable")

// makeUnwritable renders dir unwritable for this process. chmod 0555 is
// enough for normal users; root (CI containers) bypasses permission bits,
// so there the directory is replaced by a regular file — CreateTemp then
// fails with ENOTDIR, the same warn-and-continue path.
func makeUnwritable(t *testing.T, dir string) {
	t.Helper()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(dir, 0o755) })
	if probe, err := os.CreateTemp(dir, "probe*"); err == nil {
		// Running as root: permission bits did not bite.
		probe.Close()
		os.Chmod(dir, 0o755)
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReadOnlyCacheDirWarnsButCompletes: an unwritable cache directory
// must cost a warning per failed write — naming the cell key — and
// nothing else: the run completes with correct results and accurate
// simulation accounting.
func TestReadOnlyCacheDirWarnsButCompletes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cells")
	disk, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	makeUnwritable(t, dir)

	var warnings []string
	opts := sessionOptions()
	opts.Progress = func(format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		if strings.Contains(line, "cell cache write") {
			warnings = append(warnings, line)
		}
	}
	s := NewSession(SessionConfig{Options: opts, Cache: disk})
	run, err := s.Run(context.Background(), core.MegaConfig(), core.KindBaseline, sessionBenches(t, "505.mcf")[0])
	if err != nil {
		t.Fatalf("run failed on unwritable cache dir: %v", err)
	}
	if run.IPC <= 0 || run.Cycles == 0 {
		t.Fatalf("implausible run off unwritable cache: %+v", run)
	}
	if len(warnings) == 0 {
		t.Fatal("no cell cache write warning surfaced")
	}
	key := NewEngine(disk, "").Key(CellJob{Config: core.MegaConfig(), Scheme: core.KindBaseline, Bench: sessionBenches(t, "505.mcf")[0]}, opts)
	if !strings.Contains(warnings[0], key) {
		t.Fatalf("warning does not name the failed cell key %s: %q", key, warnings[0])
	}
	if st := s.Stats(); st.Simulated != 1 {
		t.Fatalf("accounting off on unwritable cache: %+v", st)
	}
}

// TestDiskCachePutWrapsErrors: every DiskCache.Put failure path must carry
// the cell key, so the engine's warning identifies the entry.
func TestDiskCachePutWrapsErrors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cells")
	disk, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	makeUnwritable(t, dir)
	err = disk.Put("deadbeef", Run{Scheme: core.KindBaseline})
	if err == nil {
		t.Fatal("Put on unwritable dir succeeded")
	}
	if !strings.Contains(err.Error(), "deadbeef") || !strings.Contains(err.Error(), "cell cache write") {
		t.Fatalf("Put error lacks key context: %v", err)
	}
}
