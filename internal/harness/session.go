package harness

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/workloads"
)

// The Session API. A Session is a long-lived evaluation context over the
// cell engine: it holds one Options set, one scheme set, and one CellCache,
// and answers matrix and experiment requests lazily — only the cells an
// answer actually needs are simulated, each at most once per
// content-addressed key, and a warm cache answers without simulating at
// all. NewEvaluation and RunMatrix (runner.go, the facade) are thin
// compatibility wrappers over a Session.

// MatrixSpec declares a cell set as a (configurations × benchmarks) cross
// product; the scheme axis comes from the Session (or the optional
// Schemes override). Experiments declare their needs as MatrixSpecs.
type MatrixSpec struct {
	Name    string
	Configs []core.Config
	Benches []workloads.Profile
	// Schemes overrides the session's scheme set when non-empty.
	Schemes []core.SchemeKind
}

// BoomSpec is the paper's main matrix: the four Table 1 BOOM
// configurations over the full 22-benchmark proxy suite.
func BoomSpec() MatrixSpec {
	return MatrixSpec{Name: "boom", Configs: core.Configs(), Benches: workloads.Suite()}
}

// ExtSpec is the Boom matrix with its scheme axis pinned to every
// registered scheme: the cell set behind the extended (6-scheme)
// comparison, complete regardless of the session's -schemes filter. It
// shares the "boom" name deliberately — the cells are the same
// content-addressed jobs, and the Evaluation compatibility path can
// satisfy it whenever its eagerly swept Boom matrix covers all schemes.
func ExtSpec() MatrixSpec {
	s := BoomSpec()
	s.Schemes = core.SchemeKinds()
	return s
}

// Gem5Spec is the Section 8.6 comparison matrix: the two gem5-style
// configurations over the 19-benchmark comparable suite.
func Gem5Spec() MatrixSpec {
	return MatrixSpec{
		Name:    "gem5",
		Configs: []core.Config{core.Gem5STTConfig(), core.Gem5NDAConfig()},
		Benches: workloads.Gem5Comparable(),
	}
}

// SessionConfig parameterizes NewSession.
type SessionConfig struct {
	// Options bounds every cell run; result-affecting fields participate
	// in cell fingerprints (Parallelism and Progress do not).
	Options Options
	// Schemes is the scheme axis of every matrix; empty means every
	// registered scheme. The set is used exactly as given — callers that
	// need baseline-normalized figures should include the baseline (see
	// the facade's WithBaseline).
	Schemes []core.SchemeKind
	// Cache persists cell results; nil gives the session a private
	// in-memory LRU (lazy and deduplicated, but nothing survives the
	// process). Use OpenCellCache(dir) for the standard memory+disk stack.
	Cache CellCache
	// Version overrides the fingerprint version stamp (tests); empty
	// means core.SimVersion.
	Version string
}

// SessionStats is the session's cell accounting (the engine's view):
// requests, cache hits, simulations, and simulated cycles.
type SessionStats = EngineStats

// Session is a lazy, cache-backed evaluation context.
type Session struct {
	opts    Options
	schemes []core.SchemeKind
	engine  *Engine

	mu       sync.Mutex
	matrices map[string]*Matrix
}

// NewSession opens a session. The zero SessionConfig is usable: default
// options semantics are the caller's (pass DefaultOptions() for the
// standard windows), every registered scheme, private in-memory cache.
func NewSession(cfg SessionConfig) *Session {
	schemes := cfg.Schemes
	if len(schemes) == 0 {
		schemes = core.SchemeKinds()
	}
	cache := cfg.Cache
	if cache == nil {
		cache = NewMemoryCache(0)
	}
	return &Session{
		opts:     cfg.Options,
		schemes:  append([]core.SchemeKind(nil), schemes...),
		engine:   NewEngine(cache, cfg.Version),
		matrices: make(map[string]*Matrix),
	}
}

// Schemes returns the session's scheme axis.
func (s *Session) Schemes() []core.SchemeKind {
	return append([]core.SchemeKind(nil), s.schemes...)
}

// Options returns the session's run bounds.
func (s *Session) Options() Options { return s.opts }

// Stats snapshots the session's cell accounting.
func (s *Session) Stats() SessionStats { return s.engine.Stats() }

// Subscribe streams every completed cell (simulated or cache-served) to fn
// until the returned cancel runs. Delivery is serialized but in completion
// order; cells already resolved before subscribing are not replayed.
func (s *Session) Subscribe(fn func(CellResult)) (cancel func()) {
	return s.engine.Subscribe(fn)
}

// specSchemes resolves a spec's scheme axis against the session's.
func (s *Session) specSchemes(spec MatrixSpec) []core.SchemeKind {
	if len(spec.Schemes) > 0 {
		return spec.Schemes
	}
	return s.schemes
}

// matrixKey content-addresses an assembled matrix, so repeated experiment
// requests reuse the aggregation (cells are deduplicated by the engine
// regardless; this only skips re-assembly and repeated summary logging).
func (s *Session) matrixKey(spec MatrixSpec) string {
	schemes := s.specSchemes(spec)
	var in struct {
		Configs []string            `json:"configs"`
		Schemes []string            `json:"schemes"`
		Benches []workloads.Profile `json:"benches"`
	}
	for _, cfg := range spec.Configs {
		in.Configs = append(in.Configs, cfg.Fingerprint())
	}
	for _, k := range schemes {
		in.Schemes = append(in.Schemes, k.String())
	}
	in.Benches = spec.Benches
	data, err := json.Marshal(in)
	if err != nil {
		panic(fmt.Sprintf("harness: matrix key %q: %v", spec.Name, err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:16])
}

// enumerateJobs expands the cross product in the canonical enumeration
// order (config-major, then scheme, then benchmark) shared with matrix
// assembly.
func enumerateJobs(configs []core.Config, schemes []core.SchemeKind, benches []workloads.Profile) []CellJob {
	jobs := make([]CellJob, 0, len(configs)*len(schemes)*len(benches))
	for _, cfg := range configs {
		for _, kind := range schemes {
			for _, prof := range benches {
				jobs = append(jobs, CellJob{Config: cfg, Scheme: kind, Bench: prof})
			}
		}
	}
	return jobs
}

// Matrix materializes one spec: the cells the spec needs are resolved
// through the engine (cache first, then at-most-once simulation on the
// bounded pool) and assembled in enumeration order, so matrix contents —
// and every figure rendered from them — are bit-for-bit identical at any
// Parallelism and any cache temperature.
func (s *Session) Matrix(ctx context.Context, spec MatrixSpec) (*Matrix, error) {
	key := s.matrixKey(spec)
	s.mu.Lock()
	if m, ok := s.matrices[key]; ok {
		s.mu.Unlock()
		return m, nil
	}
	s.mu.Unlock()

	schemes := s.specSchemes(spec)
	// With an experiment-capable cache (the farm client in compute mode),
	// one streaming request warms the local layers with the whole cell set
	// before the per-cell walk — the walk then resolves entirely from the
	// fast layers, so a cold remote matrix is one request, not one per cell.
	resolved := spec
	resolved.Schemes = schemes
	s.engine.PrefetchExperiment(ctx, resolved, s.opts)
	runs, err := s.engine.RunCells(ctx, enumerateJobs(spec.Configs, schemes, spec.Benches), s.opts)
	if err != nil {
		return nil, err
	}
	m := assembleMatrix(spec.Configs, schemes, spec.Benches, runs, s.opts)
	s.mu.Lock()
	s.matrices[key] = m
	s.mu.Unlock()
	return m, nil
}

// Run resolves a single cell through the session's engine and cache.
func (s *Session) Run(ctx context.Context, cfg core.Config, kind core.SchemeKind, prof workloads.Profile) (Run, error) {
	runs, err := s.engine.RunCells(ctx, []CellJob{{Config: cfg, Scheme: kind, Bench: prof}}, s.opts)
	if err != nil {
		return Run{}, err
	}
	return runs[0], nil
}

// Experiment renders one registered experiment by id, simulating only the
// cell sets the experiment declared (see RegisterExperiment) — Figure 6
// costs the Boom matrix, Table 4 costs nothing, and a warm cache costs
// zero simulation for any of them.
func (s *Session) Experiment(ctx context.Context, id string) (string, error) {
	spec, ok := experimentByID(id)
	if !ok {
		return "", unknownExperiment(id)
	}
	ms := make([]*Matrix, len(spec.Needs))
	for i, need := range spec.Needs {
		m, err := s.Matrix(ctx, need)
		if err != nil {
			return "", err
		}
		ms[i] = m
	}
	return spec.Render(ms)
}
