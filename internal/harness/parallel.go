package harness

import (
	"context"
	"runtime"
	"sync"
)

// ParallelDo runs total independent jobs, indexed 0..total-1, on a bounded
// worker pool of parallelism goroutines (zero or negative: all CPUs). It
// is the worker-pool core shared by the evaluation sweep (RunMatrix) and
// the differential fuzzing campaign (internal/diffsim).
//
// Semantics match the evaluation engine's: the first job error cancels the
// remaining work (fail-fast; in-flight jobs finish, queued jobs are
// abandoned). Among the jobs that actually ran, the failure with the
// lowest index is reported — a deterministic tie-break when several
// in-flight jobs fail together. It is not a global guarantee: cancellation
// can abandon a lower-index job before it ever runs, so which job fails
// first can still depend on scheduling. A cancelled ctx stops the pool
// promptly and its error is returned when no job failed. fn runs
// concurrently with itself and must be hermetic or do its own locking.
func ParallelDo(ctx context.Context, total, parallelism int, fn func(i int) error) error {
	if total <= 0 {
		return ctx.Err()
	}
	workers := parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > total {
		workers = total
	}

	// Errors land in job-index slots, never appended, so completion order
	// cannot leak into which error is reported.
	errs := make([]error, total)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if runCtx.Err() != nil {
					continue // drain: the pool is being torn down
				}
				if err := fn(i); err != nil {
					errs[i] = err
					cancel() // fail fast: stop scheduling new work
				}
			}
		}()
	}
feed:
	for i := 0; i < total; i++ {
		select {
		case jobs <- i:
		case <-runCtx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	// Error precedence: a job failure beats the cancellation it caused.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}
