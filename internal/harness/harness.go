// Package harness drives the paper's evaluation: it sweeps (configuration
// × scheme × benchmark), aggregates IPC the way the paper does, folds in
// the synthesis model's timing, and renders every table and figure of the
// evaluation section as text (see figures.go).
package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workloads"
)

// Options bounds individual simulation runs. The harness measures a fixed
// cycle window after a warmup period, mirroring the paper's methodology of
// running each benchmark for a fixed cycle budget on FireSim (Section 7):
// with equal cycle windows, the arithmetic-mean IPC aggregation weights
// benchmarks equally.
type Options struct {
	Scale         int    // workload iteration multiplier
	WarmupCycles  uint64 // cycles before measurement (caches/predictors warm)
	MeasureCycles uint64 // measured window

	// Parallelism bounds the RunMatrix worker pool; zero or negative
	// means runtime.NumCPU(). Matrix contents are identical at any
	// setting — only wall-clock time changes.
	Parallelism int

	// Progress, when set, receives progress lines. RunMatrix may invoke
	// it from multiple worker goroutines, but never concurrently: calls
	// are serialized by the harness.
	Progress func(format string, args ...any)
}

// DefaultOptions returns run bounds sized for the benchmark harness: large
// enough for stable steady-state IPC, small enough that the full 352-run
// matrix completes in seconds. Parallelism defaults to all cores.
func DefaultOptions() Options {
	return Options{Scale: 1, WarmupCycles: 8_000, MeasureCycles: 32_000}
}

func (o Options) logf(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

// Run is one (benchmark, configuration, scheme) measurement.
type Run struct {
	Bench  string
	Config string
	Scheme core.SchemeKind
	Cycles uint64
	Insts  uint64
	IPC    float64
	Stats  core.Stats

	// TotalCycles is the cell's full simulated cycle count, warmup
	// included (Cycles covers the measured window only); the throughput
	// reporter sums it for simulated-cycles-per-second accounting.
	TotalCycles uint64
}

// RunOne simulates one cell of the evaluation matrix: warmup, then a fixed
// measurement window. The proxies are sized to outlast both; an early halt
// is reported as an error because it would corrupt the equal-window
// aggregation.
func RunOne(cfg core.Config, kind core.SchemeKind, prof workloads.Profile, opts Options) (Run, error) {
	return RunOneRecorded(cfg, kind, prof, opts, nil)
}

// RunOneRecorded is RunOne with a trace recorder attached for the whole
// simulation (warmup included — trace cycle stamps are monotonic across
// both phases). Recorders are observational, so the returned Run is
// identical to an unrecorded one; callers flush the recorder themselves.
func RunOneRecorded(cfg core.Config, kind core.SchemeKind, prof workloads.Profile, opts Options, rec core.Recorder) (Run, error) {
	prog := prof.Build(max(opts.Scale, 1))
	c, err := core.New(cfg, kind, prog)
	if err != nil {
		return Run{}, err
	}
	c.Recorder = rec
	warm, err := c.Run(core.RunLimits{MaxCycles: opts.WarmupCycles})
	if err != nil {
		return Run{}, fmt.Errorf("harness: %s/%s/%s (warmup): %w", cfg.Name, kind, prof.Name, err)
	}
	res, err := c.Run(core.RunLimits{MaxCycles: opts.WarmupCycles + opts.MeasureCycles})
	if err != nil {
		return Run{}, fmt.Errorf("harness: %s/%s/%s: %w", cfg.Name, kind, prof.Name, err)
	}
	if res.Halted {
		return Run{}, fmt.Errorf("harness: %s/%s/%s: proxy halted inside the measurement window (cycle %d); increase Iters or Scale",
			cfg.Name, kind, prof.Name, res.Cycles)
	}
	cycles := res.Cycles - warm.Cycles
	insts := res.Insts - warm.Insts
	return Run{
		Bench:       prof.Name,
		Config:      cfg.Name,
		Scheme:      kind,
		Cycles:      cycles,
		Insts:       insts,
		IPC:         float64(insts) / float64(cycles),
		Stats:       res.Stats,
		TotalCycles: res.Cycles,
	}, nil
}

// Cell aggregates one (configuration, scheme) across a benchmark suite.
type Cell struct {
	Config  core.Config
	Scheme  core.SchemeKind
	Runs    []Run
	MeanIPC float64 // paper's arithmetic-mean-of-means IPC (Section 8.1)
}

func (c *Cell) run(bench string) (Run, bool) {
	for _, r := range c.Runs {
		if r.Bench == bench {
			return r, true
		}
	}
	return Run{}, false
}

// Matrix is the full evaluation cross product.
type Matrix struct {
	Configs []core.Config
	Schemes []core.SchemeKind
	Benches []workloads.Profile
	cells   map[string]map[core.SchemeKind]*Cell
}

// Cell returns the aggregate for one (configuration, scheme).
func (m *Matrix) Cell(cfgName string, kind core.SchemeKind) (*Cell, bool) {
	row, ok := m.cells[cfgName]
	if !ok {
		return nil, false
	}
	c, ok := row[kind]
	return c, ok
}

// MeanIPC returns the suite-mean IPC for a (configuration, scheme).
func (m *Matrix) MeanIPC(cfgName string, kind core.SchemeKind) float64 {
	c, ok := m.Cell(cfgName, kind)
	if !ok {
		return 0
	}
	return c.MeanIPC
}

// NormIPC returns the scheme's suite-mean IPC normalized to baseline.
func (m *Matrix) NormIPC(cfgName string, kind core.SchemeKind) float64 {
	base := m.MeanIPC(cfgName, core.KindBaseline)
	if base == 0 {
		return 0
	}
	return m.MeanIPC(cfgName, kind) / base
}

// BenchNormIPC returns one benchmark's IPC normalized to baseline.
func (m *Matrix) BenchNormIPC(cfgName string, kind core.SchemeKind, bench string) float64 {
	c, ok := m.Cell(cfgName, kind)
	if !ok {
		return 0
	}
	b, ok := m.Cell(cfgName, core.KindBaseline)
	if !ok {
		return 0
	}
	rs, ok1 := c.run(bench)
	rb, ok2 := b.run(bench)
	if !ok1 || !ok2 || rb.IPC == 0 {
		return 0
	}
	return rs.IPC / rb.IPC
}

// SecureSchemes returns every registered secure scheme in presentation
// order — for the built-in set, the paper's order (STT-Rename, STT-Issue,
// NDA). Drop-in schemes registered with core.RegisterScheme appear here
// automatically.
func SecureSchemes() []core.SchemeKind {
	return core.SecureSchemeKinds()
}
