package harness

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
)

// CellCache persists content-addressed cell results. Implementations must
// be safe for concurrent use: the engine calls them from every worker
// goroutine. Get returns ok=false for a miss; a read error is reported but
// should be treated as a miss by callers (a corrupt or unreadable entry
// must degrade to re-simulation, never fail the run).
type CellCache interface {
	Get(key string) (Run, bool, error)
	Put(key string, r Run) error
}

// CellResolver is an optional CellCache extension for caches that can
// resolve a *job*, not just look up a key — e.g. the farm HTTPCache in
// compute mode, which asks a remote shadowbindingd to simulate the cell
// when its store misses. The engine prefers ResolveCell over Get whenever
// a cache implements it; the contract matches Get exactly (ok=false is a
// miss, an error degrades to local re-simulation, never fails the run),
// and a resolver must NOT fall back to simulating locally itself — the
// engine owns that path.
type CellResolver interface {
	ResolveCell(key string, job CellJob, opts Options) (Run, bool, error)
}

// ExperimentResolver is an optional CellCache extension one level above
// CellResolver: a cache that can resolve a whole experiment spec in one
// round trip — the farm HTTPCache in compute mode, whose single streaming
// request replaces one POST per cell. Each cell is handed to deliver as
// it arrives (already validated by the implementation); (0, nil) means
// the cache has no experiment path and the caller loses nothing by
// resolving per cell. The failure contract matches the rest of the cache
// surface: deliver what arrived, return the error, and the engine
// resolves the remainder per cell — a broken stream costs time, never
// the run.
type ExperimentResolver interface {
	ResolveExperiment(ctx context.Context, spec MatrixSpec, opts Options, deliver func(key string, r Run)) (int, error)
}

// cacheLookup reads one key from a cache, routing through ResolveCell for
// caches that can resolve the full job (see CellResolver).
func cacheLookup(c CellCache, key string, job CellJob, opts Options) (Run, bool, error) {
	if r, ok := c.(CellResolver); ok {
		return r.ResolveCell(key, job, opts)
	}
	return c.Get(key)
}

// ---------------------------------------------------------------------------
// In-memory LRU.

// MemoryCache is a bounded in-memory LRU cell store — the fast layer of
// OpenCellCache and the default cache of a Session created without one.
type MemoryCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent
	byKey map[string]*list.Element
}

type memEntry struct {
	key string
	run Run
}

// DefaultMemoryCacheSize holds every cell of the full evaluation (504)
// with generous headroom for option sweeps and drop-in schemes.
const DefaultMemoryCacheSize = 8192

// NewMemoryCache returns an LRU cache bounded to capacity entries (zero or
// negative: DefaultMemoryCacheSize).
func NewMemoryCache(capacity int) *MemoryCache {
	if capacity <= 0 {
		capacity = DefaultMemoryCacheSize
	}
	return &MemoryCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[string]*list.Element),
	}
}

// Get returns the cached run and bumps its recency.
func (c *MemoryCache) Get(key string) (Run, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return Run{}, false, nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*memEntry).run, true, nil
}

// Put inserts or refreshes an entry, evicting the least recently used one
// beyond capacity.
func (c *MemoryCache) Put(key string, r Run) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*memEntry).run = r
		c.order.MoveToFront(el)
		return nil
	}
	c.byKey[key] = c.order.PushFront(&memEntry{key: key, run: r})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*memEntry).key)
	}
	return nil
}

// Len returns the number of cached entries.
func (c *MemoryCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// ---------------------------------------------------------------------------
// On-disk JSON store.

// CellSchema identifies the on-disk cell entry layout.
const CellSchema = "shadowbinding-cell/v1"

// cellFile is one persisted cell result. The scheme's registered *name*
// rides along so a loaded entry can be revalidated: if the name no longer
// resolves to the run's kind (a drop-in scheme was renumbered or removed),
// the entry is a miss, not a silently mislabeled result.
type cellFile struct {
	Schema string `json:"schema"`
	Key    string `json:"key"`
	Scheme string `json:"scheme"`
	Run    Run    `json:"run"`
}

// DiskCache stores one JSON file per cell under a directory — the
// persistent layer behind the cmds' -cache flag. Writes are atomic
// (temp file + rename), so concurrent processes sharing a directory see
// whole entries or none.
type DiskCache struct {
	dir string
}

// NewDiskCache opens (creating if needed) an on-disk cell store.
func NewDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("harness: cell cache dir: %w", err)
	}
	return &DiskCache{dir: dir}, nil
}

func (c *DiskCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get loads one entry; corrupt, mismatched, or stale-scheme entries are
// misses (with the parse error reported for corrupt ones).
func (c *DiskCache) Get(key string) (Run, bool, error) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return Run{}, false, nil
		}
		return Run{}, false, err
	}
	var f cellFile
	if err := json.Unmarshal(data, &f); err != nil {
		return Run{}, false, fmt.Errorf("harness: cell cache %s: %w", c.path(key), err)
	}
	if f.Schema != CellSchema || f.Key != key {
		return Run{}, false, nil
	}
	if kind, ok := core.SchemeKindByName(f.Scheme); !ok || kind != f.Run.Scheme {
		return Run{}, false, nil
	}
	return f.Run, true, nil
}

// Put writes one entry atomically. Every failure path is wrapped with the
// cell key so the engine's "cell cache write" warning names the entry that
// failed, not just the syscall — an unwritable directory (read-only mount,
// quota, permissions) degrades the whole run to warn-and-continue, never
// to an error.
func (c *DiskCache) Put(key string, r Run) error {
	data, err := json.MarshalIndent(cellFile{
		Schema: CellSchema,
		Key:    key,
		Scheme: r.Scheme.String(),
		Run:    r,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: marshal cell %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("harness: cell cache write %s: %w", key, err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: cell cache write %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: cell cache write %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: cell cache write %s: %w", key, err)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Tiering.

// TieredCache layers caches fastest-first: Get walks the layers in order
// and backfills every faster layer on a hit; Put writes through to all.
type TieredCache struct {
	layers []CellCache
}

// NewTieredCache composes caches fastest-first.
func NewTieredCache(layers ...CellCache) *TieredCache {
	return &TieredCache{layers: layers}
}

// Get returns the first hit, promoting it into the missed faster layers.
func (c *TieredCache) Get(key string) (Run, bool, error) {
	return c.lookup(key, func(layer CellCache) (Run, bool, error) {
		return layer.Get(key)
	})
}

// ResolveCell is Get with the full job threaded through to layers that can
// resolve it (CellResolver — e.g. a farm HTTPCache in compute mode as the
// slowest layer): the walk is still fastest-first with backfill promotion,
// so a remote-computed cell lands in the local memory and disk layers on
// the way back.
func (c *TieredCache) ResolveCell(key string, job CellJob, opts Options) (Run, bool, error) {
	return c.lookup(key, func(layer CellCache) (Run, bool, error) {
		return cacheLookup(layer, key, job, opts)
	})
}

// ResolveExperiment forwards a whole spec to the first layer that can
// resolve experiments (ExperimentResolver — the farm client as the slowest
// layer of the canonical stack), backfilling every faster layer with each
// streamed cell on the way through. With no such layer it is a clean no-op:
// the engine resolves per cell as before.
func (c *TieredCache) ResolveExperiment(ctx context.Context, spec MatrixSpec, opts Options, deliver func(key string, r Run)) (int, error) {
	for i, layer := range c.layers {
		er, ok := layer.(ExperimentResolver)
		if !ok {
			continue
		}
		return er.ResolveExperiment(ctx, spec, opts, func(key string, r Run) {
			for _, upper := range c.layers[:i] {
				_ = upper.Put(key, r) // best-effort backfill, like the tier walk
			}
			if deliver != nil {
				deliver(key, r)
			}
		})
	}
	return 0, nil
}

// lookup walks the layers fastest-first with read, backfilling every faster
// layer on a hit.
func (c *TieredCache) lookup(key string, read func(CellCache) (Run, bool, error)) (Run, bool, error) {
	var firstErr error
	for i, layer := range c.layers {
		r, ok, err := read(layer)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if ok {
			for _, upper := range c.layers[:i] {
				if err := upper.Put(key, r); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			return r, true, firstErr
		}
	}
	return Run{}, false, firstErr
}

// Put writes through every layer, returning the first error.
func (c *TieredCache) Put(key string, r Run) error {
	var firstErr error
	for _, layer := range c.layers {
		if err := layer.Put(key, r); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// OpenCellCache builds the standard cache stack behind the cmds' -cache
// flag: an in-memory LRU alone when dir is empty, or the LRU over an
// on-disk JSON store so results persist across processes.
func OpenCellCache(dir string) (CellCache, error) {
	mem := NewMemoryCache(0)
	if dir == "" {
		return mem, nil
	}
	disk, err := NewDiskCache(dir)
	if err != nil {
		return nil, err
	}
	return NewTieredCache(mem, disk), nil
}
