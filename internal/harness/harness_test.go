package harness

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// probeSuite is a representative 6-benchmark slice (one per behavioural
// class) so shape tests run in seconds; the full 22-benchmark matrix runs
// in the benchmark harness and cmd/shadowbinding.
func probeSuite(t *testing.T) []workloads.Profile {
	t.Helper()
	var out []workloads.Profile
	for _, name := range []string{
		"503.bwaves",    // streams well, no shadows
		"531.deepsjeng", // indirect gates + random branches
		"538.imagick",   // compute chains, NDA-sensitive
		"548.exchange2", // forwarding-error anomaly
		"505.mcf",       // memory-bound pointer code
		"525.x264",      // high ILP
	} {
		p, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

func probeOptions() Options {
	o := DefaultOptions()
	o.WarmupCycles = 5_000
	o.MeasureCycles = 20_000
	return o
}

func probeMatrix(t *testing.T, configs []core.Config) *Matrix {
	t.Helper()
	m, err := RunMatrix(configs, core.SchemeKinds(), probeSuite(t), probeOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMatrixShapeMega(t *testing.T) {
	m := probeMatrix(t, []core.Config{core.MegaConfig()})
	base := m.MeanIPC("mega", core.KindBaseline)
	if base < 0.8 || base > 2.0 {
		t.Errorf("mega baseline IPC %.3f implausible", base)
	}
	for _, kind := range SecureSchemes() {
		rel := m.NormIPC("mega", kind)
		if rel <= 0 || rel > 1.001 {
			t.Errorf("%s: relative IPC %.3f out of range", kind, rel)
		}
	}
	// The paper's ordering on the Mega configuration: NDA loses the most
	// IPC; STT-Issue is at least as good as STT-Rename.
	if m.NormIPC("mega", core.KindNDA) >= m.NormIPC("mega", core.KindSTTIssue) {
		t.Errorf("NDA (%.3f) must lose more IPC than STT-Issue (%.3f)",
			m.NormIPC("mega", core.KindNDA), m.NormIPC("mega", core.KindSTTIssue))
	}
	if m.NormIPC("mega", core.KindSTTIssue)+0.01 < m.NormIPC("mega", core.KindSTTRename) {
		t.Errorf("STT-Issue (%.3f) must not be clearly worse than STT-Rename (%.3f)",
			m.NormIPC("mega", core.KindSTTIssue), m.NormIPC("mega", core.KindSTTRename))
	}
}

func TestMatrixWidthTrend(t *testing.T) {
	m := probeMatrix(t, []core.Config{core.SmallConfig(), core.MegaConfig()})
	// Baseline IPC grows with width.
	if m.MeanIPC("mega", core.KindBaseline) <= m.MeanIPC("small", core.KindBaseline) {
		t.Errorf("mega baseline IPC (%.3f) must exceed small (%.3f)",
			m.MeanIPC("mega", core.KindBaseline), m.MeanIPC("small", core.KindBaseline))
	}
	// Section 8.2: relative IPC of STT worsens on the wider core.
	for _, kind := range []core.SchemeKind{core.KindSTTRename, core.KindSTTIssue} {
		if m.NormIPC("mega", kind) > m.NormIPC("small", kind)+0.02 {
			t.Errorf("%s: relative IPC improved with width (small %.3f, mega %.3f)",
				kind, m.NormIPC("small", kind), m.NormIPC("mega", kind))
		}
	}
}

func TestPerformanceFoldsTiming(t *testing.T) {
	m := probeMatrix(t, []core.Config{core.MegaConfig()})
	// STT-Rename's performance on Mega must be dragged below its IPC by
	// the ~80% timing factor.
	perf := m.Performance("mega", core.KindSTTRename)
	ipc := m.NormIPC("mega", core.KindSTTRename)
	if perf >= ipc {
		t.Errorf("performance (%.3f) must be below relative IPC (%.3f) for STT-Rename", perf, ipc)
	}
	// NDA's timing is ~1.0, so performance ≈ relative IPC.
	dn := m.Performance("mega", core.KindNDA) - m.NormIPC("mega", core.KindNDA)
	if dn < -0.02 || dn > 0.02 {
		t.Errorf("NDA performance (%.3f) should track its relative IPC (%.3f)",
			m.Performance("mega", core.KindNDA), m.NormIPC("mega", core.KindNDA))
	}
}

func TestFigureEmitters(t *testing.T) {
	m := probeMatrix(t, []core.Config{core.SmallConfig(), core.MegaConfig()})
	for name, s := range map[string]string{
		"Table1":   Table1(m),
		"Figure6":  Figure6(m),
		"Figure7":  Figure7(m),
		"Figure8":  Figure8(m),
		"Figure9":  Figure9(m.Configs),
		"Figure10": Figure10(m),
		"Table3":   Table3(m),
		"Table4":   Table4(),
	} {
		if len(s) < 100 {
			t.Errorf("%s: suspiciously short output", name)
		}
		if strings.Contains(s, "NaN") || strings.Contains(s, "%!") {
			t.Errorf("%s: formatting artifact in output:\n%s", name, s)
		}
	}
}

func TestTable5Emitter(t *testing.T) {
	boom := probeMatrix(t, []core.Config{core.MediumConfig(), core.MegaConfig()})
	gem5, err := RunMatrix([]core.Config{core.Gem5STTConfig(), core.Gem5NDAConfig()},
		core.SchemeKinds(), probeSuite(t), probeOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := Table5(boom, gem5)
	if !strings.Contains(s, "gem5-stt") || !strings.Contains(s, "gem5-nda") {
		t.Errorf("Table5 missing gem5 rows:\n%s", s)
	}
	if strings.Contains(s, "NaN") {
		t.Errorf("Table5 contains NaN:\n%s", s)
	}
}

func TestRunOneRejectsEarlyHalt(t *testing.T) {
	p, err := workloads.ByName("503.bwaves")
	if err != nil {
		t.Fatal(err)
	}
	p.Iters = 8 // far too short for the window
	if _, err := RunOne(core.MegaConfig(), core.KindBaseline, p, probeOptions()); err == nil {
		t.Error("expected error for a proxy that halts inside the window")
	}
}

func TestCellLookup(t *testing.T) {
	m := probeMatrix(t, []core.Config{core.MegaConfig()})
	if _, ok := m.Cell("mega", core.KindBaseline); !ok {
		t.Error("mega/baseline cell missing")
	}
	if _, ok := m.Cell("giga", core.KindBaseline); ok {
		t.Error("unknown config should miss")
	}
	if m.BenchNormIPC("mega", core.KindNDA, "503.bwaves") <= 0 {
		t.Error("per-benchmark normalized IPC missing")
	}
	if m.BenchNormIPC("mega", core.KindNDA, "999.none") != 0 {
		t.Error("unknown benchmark should return 0")
	}
}
