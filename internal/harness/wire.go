package harness

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/workloads"
)

// The cell wire form. A CellJobWire is the serializable face of one
// (CellJob, Options) pair: everything that participates in the cell
// fingerprint — the full configuration, the scheme's registered name
// (stable across kind renumbering, exactly like the fingerprint and the
// on-disk cache entries), the full workload profile, and the
// result-affecting option fields. Parallelism and Progress never cross the
// wire: they change wall-clock behaviour on whichever process simulates,
// never results. The farm protocol (internal/farm) posts this form to the
// compute endpoint; a server that resolves it through its own Engine
// arrives at the same content-addressed key as the client, because the
// fingerprint hashes exactly the fields carried here.

// CellJobWire is the serializable form of one cell request.
type CellJobWire struct {
	Config  core.Config       `json:"config"`
	Scheme  string            `json:"scheme"`
	Profile workloads.Profile `json:"profile"`
	Scale   int               `json:"scale"`
	Warmup  uint64            `json:"warmup"`
	Measure uint64            `json:"measure"`
}

// WireJob flattens a job and its run bounds into the wire form.
func WireJob(job CellJob, opts Options) CellJobWire {
	return CellJobWire{
		Config:  job.Config,
		Scheme:  job.Scheme.String(),
		Profile: job.Bench,
		Scale:   max(opts.Scale, 1), // CellFingerprint and RunOne clamp the same way
		Warmup:  opts.WarmupCycles,
		Measure: opts.MeasureCycles,
	}
}

// Resolve validates the wire form and rebuilds the engine's native job and
// options. The scheme name must resolve in this process's registry and the
// configuration must pass structural validation — a request from a binary
// with a different scheme roster or a corrupted body is an error here, not
// a crash inside the simulator.
func (w CellJobWire) Resolve() (CellJob, Options, error) {
	kind, ok := core.SchemeKindByName(w.Scheme)
	if !ok {
		return CellJob{}, Options{}, fmt.Errorf("harness: wire job: unknown scheme %q (known: %s)",
			w.Scheme, strings.Join(core.SchemeNames(), ", "))
	}
	if err := w.Config.Validate(); err != nil {
		return CellJob{}, Options{}, fmt.Errorf("harness: wire job: %w", err)
	}
	if w.Profile.Name == "" {
		return CellJob{}, Options{}, fmt.Errorf("harness: wire job: empty workload profile")
	}
	if w.Measure == 0 {
		return CellJob{}, Options{}, fmt.Errorf("harness: wire job: zero measurement window")
	}
	job := CellJob{Config: w.Config, Scheme: kind, Bench: w.Profile}
	opts := Options{Scale: max(w.Scale, 1), WarmupCycles: w.Warmup, MeasureCycles: w.Measure}
	return job, opts, nil
}
