package harness

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/workloads"
)

// The cell wire form. A CellJobWire is the serializable face of one
// (CellJob, Options) pair: everything that participates in the cell
// fingerprint — the full configuration, the scheme's registered name
// (stable across kind renumbering, exactly like the fingerprint and the
// on-disk cache entries), the full workload profile, and the
// result-affecting option fields. Parallelism and Progress never cross the
// wire: they change wall-clock behaviour on whichever process simulates,
// never results. The farm protocol (internal/farm) posts this form to the
// compute endpoint; a server that resolves it through its own Engine
// arrives at the same content-addressed key as the client, because the
// fingerprint hashes exactly the fields carried here. ExperimentJobWire is
// the same idea one level up: a whole MatrixSpec on the wire, enumerated
// to per-cell jobs — and per-cell keys — identically on both ends.

// CellJobWire is the serializable form of one cell request.
type CellJobWire struct {
	Config  core.Config       `json:"config"`
	Scheme  string            `json:"scheme"`
	Profile workloads.Profile `json:"profile"`
	Scale   int               `json:"scale"`
	Warmup  uint64            `json:"warmup"`
	Measure uint64            `json:"measure"`
}

// WireJob flattens a job and its run bounds into the wire form.
func WireJob(job CellJob, opts Options) CellJobWire {
	return CellJobWire{
		Config:  job.Config,
		Scheme:  job.Scheme.String(),
		Profile: job.Bench,
		Scale:   max(opts.Scale, 1), // CellFingerprint and RunOne clamp the same way
		Warmup:  opts.WarmupCycles,
		Measure: opts.MeasureCycles,
	}
}

// Resolve validates the wire form and rebuilds the engine's native job and
// options. The scheme name must resolve in this process's registry and the
// configuration must pass structural validation — a request from a binary
// with a different scheme roster or a corrupted body is an error here, not
// a crash inside the simulator.
func (w CellJobWire) Resolve() (CellJob, Options, error) {
	kind, ok := core.SchemeKindByName(w.Scheme)
	if !ok {
		return CellJob{}, Options{}, fmt.Errorf("harness: wire job: unknown scheme %q (known: %s)",
			w.Scheme, strings.Join(core.SchemeNames(), ", "))
	}
	if err := w.Config.Validate(); err != nil {
		return CellJob{}, Options{}, fmt.Errorf("harness: wire job: %w", err)
	}
	if w.Profile.Name == "" {
		return CellJob{}, Options{}, fmt.Errorf("harness: wire job: empty workload profile")
	}
	if w.Measure == 0 {
		return CellJob{}, Options{}, fmt.Errorf("harness: wire job: zero measurement window")
	}
	job := CellJob{Config: w.Config, Scheme: kind, Bench: w.Profile}
	opts := Options{Scale: max(w.Scale, 1), WarmupCycles: w.Warmup, MeasureCycles: w.Measure}
	return job, opts, nil
}

// CellKey returns the content-addressed key of one (job, options) cell
// under the default simulator version stamp — the identity every farm
// process derives for the job, and the one streamed experiment cells are
// validated against on the way back.
func CellKey(job CellJob, opts Options) string {
	return CellFingerprint(core.SimVersion, job.Config, job.Scheme, job.Bench, opts)
}

// ExperimentJobWire is the serializable form of one whole experiment
// request: a MatrixSpec flattened the same way CellJobWire flattens one
// cell — configurations in full, schemes by registered name, workload
// profiles in full, plus the result-affecting option fields. The receiver
// enumerates the cross product in the canonical order (config-major, then
// scheme, then benchmark) and arrives at exactly the per-cell keys the
// sender derives, because every enumerated cell carries exactly the
// fingerprinted fields.
type ExperimentJobWire struct {
	Name    string              `json:"name"`
	Configs []core.Config       `json:"configs"`
	Schemes []string            `json:"schemes"`
	Benches []workloads.Profile `json:"benches"`
	Scale   int                 `json:"scale"`
	Warmup  uint64              `json:"warmup"`
	Measure uint64              `json:"measure"`
}

// maxWireCells bounds the cross product one experiment request may ask a
// server to enumerate — the full paper evaluation is 504 cells, so 8192
// is generous headroom, not a constraint.
const maxWireCells = 8192

// WireExperiment flattens a resolved spec (Schemes filled — the session
// resolves its scheme axis before wiring) and its run bounds.
func WireExperiment(spec MatrixSpec, opts Options) ExperimentJobWire {
	names := make([]string, len(spec.Schemes))
	for i, k := range spec.Schemes {
		names[i] = k.String()
	}
	return ExperimentJobWire{
		Name:    spec.Name,
		Configs: append([]core.Config(nil), spec.Configs...),
		Schemes: names,
		Benches: append([]workloads.Profile(nil), spec.Benches...),
		Scale:   max(opts.Scale, 1), // CellFingerprint and RunOne clamp the same way
		Warmup:  opts.WarmupCycles,
		Measure: opts.MeasureCycles,
	}
}

// Resolve validates the wire form and enumerates its cell jobs in the
// canonical order, with the same contract as CellJobWire.Resolve: scheme
// names must resolve in this process's registry, configurations must pass
// structural validation, and a degenerate or oversized cross product is an
// error here, never a crash or a runaway enumeration inside the server.
func (w ExperimentJobWire) Resolve() ([]CellJob, Options, error) {
	if len(w.Configs) == 0 || len(w.Schemes) == 0 || len(w.Benches) == 0 {
		return nil, Options{}, fmt.Errorf(
			"harness: wire experiment %q: empty axis (%d configs × %d schemes × %d benches)",
			w.Name, len(w.Configs), len(w.Schemes), len(w.Benches))
	}
	if n := len(w.Configs) * len(w.Schemes) * len(w.Benches); n > maxWireCells {
		return nil, Options{}, fmt.Errorf("harness: wire experiment %q: %d cells exceeds the %d-cell limit",
			w.Name, n, maxWireCells)
	}
	schemes := make([]core.SchemeKind, len(w.Schemes))
	for i, name := range w.Schemes {
		kind, ok := core.SchemeKindByName(name)
		if !ok {
			return nil, Options{}, fmt.Errorf("harness: wire experiment %q: unknown scheme %q (known: %s)",
				w.Name, name, strings.Join(core.SchemeNames(), ", "))
		}
		schemes[i] = kind
	}
	for i := range w.Configs {
		if err := w.Configs[i].Validate(); err != nil {
			return nil, Options{}, fmt.Errorf("harness: wire experiment %q: %w", w.Name, err)
		}
	}
	for _, p := range w.Benches {
		if p.Name == "" {
			return nil, Options{}, fmt.Errorf("harness: wire experiment %q: empty workload profile", w.Name)
		}
	}
	if w.Measure == 0 {
		return nil, Options{}, fmt.Errorf("harness: wire experiment %q: zero measurement window", w.Name)
	}
	opts := Options{Scale: max(w.Scale, 1), WarmupCycles: w.Warmup, MeasureCycles: w.Measure}
	return enumerateJobs(w.Configs, schemes, w.Benches), opts, nil
}
