package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

func fingerprintProfile(t *testing.T) workloads.Profile {
	t.Helper()
	p, err := workloads.ByName("505.mcf")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCellFingerprintStability pins the key derivation: fingerprints must
// be reproducible across processes (they address on-disk cache entries),
// insensitive to the Options fields that cannot change results, and
// sensitive to everything that can.
func TestCellFingerprintStability(t *testing.T) {
	prof := fingerprintProfile(t)
	opts := DefaultOptions()
	key := CellFingerprint("test/v1", core.MegaConfig(), core.KindBaseline, prof, opts)

	// Pinned literal: a silent change to the derivation (field order,
	// hash truncation, canonicalization) would orphan every persisted
	// cache entry; this test makes that loud. Regenerate the literal when
	// the derivation changes intentionally.
	const want = "6f4c41e6a63148e4a7989268cbb661b7"
	if key != want {
		t.Errorf("fingerprint drifted: got %s, want %s (intentional changes must update this literal)", key, want)
	}

	// Result-neutral knobs must not change the key.
	neutral := opts
	neutral.Parallelism = 7
	neutral.Progress = func(string, ...any) {}
	if got := CellFingerprint("test/v1", core.MegaConfig(), core.KindBaseline, prof, neutral); got != key {
		t.Error("Parallelism/Progress changed the fingerprint")
	}
	scale0, scale1 := opts, opts
	scale0.Scale, scale1.Scale = 0, 1
	if CellFingerprint("test/v1", core.MegaConfig(), core.KindBaseline, prof, scale0) !=
		CellFingerprint("test/v1", core.MegaConfig(), core.KindBaseline, prof, scale1) {
		t.Error("Scale 0 and 1 must fingerprint identically (RunOne clamps)")
	}

	// Result-affecting inputs must each change the key.
	variants := map[string]string{}
	add := func(name, k string) {
		if k == key {
			t.Errorf("%s: variant kept the base fingerprint", name)
		}
		if prev, ok := variants[k]; ok {
			t.Errorf("%s and %s collide", name, prev)
		}
		variants[k] = name
	}
	add("version", CellFingerprint("test/v2", core.MegaConfig(), core.KindBaseline, prof, opts))
	add("config", CellFingerprint("test/v1", core.SmallConfig(), core.KindBaseline, prof, opts))
	add("scheme", CellFingerprint("test/v1", core.MegaConfig(), core.KindNDA, prof, opts))
	warm := opts
	warm.WarmupCycles++
	add("warmup", CellFingerprint("test/v1", core.MegaConfig(), core.KindBaseline, prof, warm))
	meas := opts
	meas.MeasureCycles++
	add("measure", CellFingerprint("test/v1", core.MegaConfig(), core.KindBaseline, prof, meas))
	sc := opts
	sc.Scale = 2
	add("scale", CellFingerprint("test/v1", core.MegaConfig(), core.KindBaseline, prof, sc))
	other := prof
	other.Iters++
	add("profile", CellFingerprint("test/v1", core.MegaConfig(), core.KindBaseline, other, opts))
}

func fakeRun(bench string, kind core.SchemeKind, cycles uint64) Run {
	return Run{
		Bench: bench, Config: "mega", Scheme: kind,
		Cycles: cycles, Insts: 2 * cycles, IPC: 2,
		TotalCycles: cycles + 1000,
	}
}

func TestMemoryCacheLRU(t *testing.T) {
	c := NewMemoryCache(2)
	mustPut := func(key string, r Run) {
		t.Helper()
		if err := c.Put(key, r); err != nil {
			t.Fatal(err)
		}
	}
	mustPut("a", fakeRun("a", core.KindBaseline, 1))
	mustPut("b", fakeRun("b", core.KindBaseline, 2))
	if _, ok, _ := c.Get("a"); !ok { // bumps a over b
		t.Fatal("a missing")
	}
	mustPut("c", fakeRun("c", core.KindBaseline, 3)) // evicts b (LRU)
	if _, ok, _ := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, key := range []string{"a", "c"} {
		if _, ok, _ := c.Get(key); !ok {
			t.Errorf("%s should have survived", key)
		}
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	// Refreshing an existing key must not grow the cache.
	mustPut("a", fakeRun("a", core.KindBaseline, 9))
	if c.Len() != 2 {
		t.Errorf("Len after refresh = %d, want 2", c.Len())
	}
	if r, ok, _ := c.Get("a"); !ok || r.Cycles != 9 {
		t.Errorf("refreshed entry = %+v, %v", r, ok)
	}
}

// TestDiskCacheRoundTrip: entries must survive a new DiskCache instance
// (the cross-process path behind -cache), and corrupt, mislabeled, or
// stale-scheme entries must read as misses, never as wrong results.
func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := fakeRun("505.mcf", core.KindNDA, 8000)
	if err := c1.Put("key1", want); err != nil {
		t.Fatal(err)
	}

	c2, err := NewDiskCache(dir) // fresh instance = fresh process
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := c2.Get("key1")
	if err != nil || !ok {
		t.Fatalf("Get = ok %v, err %v", ok, err)
	}
	if got != want {
		t.Errorf("round trip diverged:\ngot  %+v\nwant %+v", got, want)
	}
	if _, ok, err := c2.Get("missing"); ok || err != nil {
		t.Errorf("missing key: ok %v, err %v", ok, err)
	}

	// Corrupt entry: miss with a reported error.
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c2.Get("bad"); ok || err == nil {
		t.Errorf("corrupt entry: ok %v, err %v; want miss with error", ok, err)
	}

	// An entry renamed to the wrong key must miss (content-addressing).
	if err := os.Rename(filepath.Join(dir, "key1.json"), filepath.Join(dir, "key2.json")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c2.Get("key2"); ok {
		t.Error("entry under a foreign key must miss")
	}

	// A stale scheme label (name no longer resolving to the run's kind)
	// must miss instead of mislabeling the result.
	stale := fakeRun("505.mcf", core.KindSTTIssue, 8000)
	if err := c1.Put("key3", stale); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "key3.json"))
	if err != nil {
		t.Fatal(err)
	}
	mangled := strings.Replace(string(data), `"scheme": "stt-issue"`, `"scheme": "nda"`, 1)
	if mangled == string(data) {
		t.Fatal("test setup: scheme label not found in entry")
	}
	if err := os.WriteFile(filepath.Join(dir, "key3.json"), []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c2.Get("key3"); ok {
		t.Error("entry with a mismatched scheme label must miss")
	}
}

// TestTieredCacheBackfill: a hit in a slower layer must be promoted into
// the faster ones.
func TestTieredCacheBackfill(t *testing.T) {
	mem := NewMemoryCache(8)
	disk, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTieredCache(mem, disk)

	want := fakeRun("525.x264", core.KindBaseline, 4000)
	if err := disk.Put("k", want); err != nil { // disk only: simulates a cold process
		t.Fatal(err)
	}
	if got, ok, err := tiered.Get("k"); !ok || err != nil || got != want {
		t.Fatalf("tiered Get = %+v, %v, %v", got, ok, err)
	}
	if got, ok, _ := mem.Get("k"); !ok || got != want {
		t.Error("hit was not promoted into the memory layer")
	}

	// Put writes through all layers.
	w2 := fakeRun("505.mcf", core.KindNDA, 5000)
	if err := tiered.Put("k2", w2); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := mem.Get("k2"); !ok {
		t.Error("write-through missed the memory layer")
	}
	if _, ok, _ := disk.Get("k2"); !ok {
		t.Error("write-through missed the disk layer")
	}
}

func TestOpenCellCache(t *testing.T) {
	c, err := OpenCellCache("")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(*MemoryCache); !ok {
		t.Errorf("empty dir: got %T, want *MemoryCache", c)
	}
	c, err = OpenCellCache(filepath.Join(t.TempDir(), "cells"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(*TieredCache); !ok {
		t.Errorf("with dir: got %T, want *TieredCache", c)
	}
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCellCache(filepath.Join(file, "sub")); err == nil {
		t.Error("unusable cache dir must error")
	}
}
