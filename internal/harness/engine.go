package harness

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/workloads"
)

// The cell engine. Every (config, scheme, benchmark, options) cell is an
// independent, content-addressed job: its key is CellFingerprint of the
// inputs plus a simulator version stamp. The engine executes each key at
// most once — concurrent requests for the same key coalesce onto one
// simulation (single-flight), repeated requests are served from the
// CellCache — schedules misses on the shared bounded pool (ParallelDo),
// and streams every completed cell to its subscribers. Sessions
// (session.go) assemble matrices and experiments on top of it.

// CellJob names one cell to execute.
type CellJob struct {
	Config core.Config
	Scheme core.SchemeKind
	Bench  workloads.Profile
}

// CellResult is one completed cell, streamed to subscribers the moment it
// resolves (from cache or simulation) — completion order, not enumeration
// order.
type CellResult struct {
	Key    string
	Job    CellJob
	Run    Run
	Cached bool // served from the CellCache without simulating
}

// EngineStats is the engine's cell accounting. Cells = Hits + Simulated:
// every request either hit the cache or ran the simulator (single-flight
// waiters count as hits — the work ran once). Coalesced splits the hits:
// it counts the waiters that joined an in-flight execution rather than
// reading a finished cache entry.
type EngineStats struct {
	Cells     int    // cell requests resolved
	Hits      int    // served from the cache (or a coalesced in-flight run)
	Coalesced int    // subset of Hits: waiters that joined an in-flight run
	Simulated int    // actually simulated by this engine
	SimCycles uint64 // simulated cycles executed (warmup included), misses only
}

// HitRate returns the fraction of requests served without simulation.
func (s EngineStats) HitRate() float64 {
	if s.Cells == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Cells)
}

// flight is one in-progress cell resolution; concurrent requests for the
// same key wait on done and share res/err instead of re-simulating.
type flight struct {
	done chan struct{}
	res  CellResult
	err  error
}

// Engine executes content-addressed cells at most once per key.
type Engine struct {
	version string
	cache   CellCache     // may be nil: single-flight dedup only
	gate    chan struct{} // bounds concurrent simulations (nil: unbounded)

	mu       sync.Mutex
	inflight map[string]*flight
	stats    EngineStats

	emitMu  sync.Mutex // serializes progress lines and subscriber calls
	subsMu  sync.Mutex
	subs    map[int]func(CellResult)
	nextSub int
}

// NewEngine returns an engine persisting through cache under a
// fingerprint version stamp (empty: core.SimVersion). With a nil cache
// only concurrent requests coalesce — at-most-once execution across
// sequential requests needs the cache, which is why NewSession always
// supplies one.
func NewEngine(cache CellCache, version string) *Engine {
	if version == "" {
		version = core.SimVersion
	}
	return &Engine{
		version:  version,
		cache:    cache,
		inflight: make(map[string]*flight),
		subs:     make(map[int]func(CellResult)),
	}
}

// Stats returns a snapshot of the engine's cell accounting.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// SetSimulationBound caps concurrent simulations at n (zero or negative:
// unbounded). Only the simulator run itself queues on the bound — cache
// hits, coalesced waiters, and resolver forwards are never held up — so a
// server can bound its local compute load to the CPU count without
// serializing its I/O. Set before the engine is shared; the bound is not
// safe to change mid-run.
func (e *Engine) SetSimulationBound(n int) {
	if n > 0 {
		e.gate = make(chan struct{}, n)
	} else {
		e.gate = nil
	}
}

// Subscribe registers fn to receive every completed cell until the
// returned cancel function runs. Calls are serialized by the engine but
// arrive in completion order; fn must not block long (it stalls the
// completing worker) and must not call back into the engine.
func (e *Engine) Subscribe(fn func(CellResult)) (cancel func()) {
	e.subsMu.Lock()
	id := e.nextSub
	e.nextSub++
	e.subs[id] = fn
	e.subsMu.Unlock()
	return func() {
		e.subsMu.Lock()
		delete(e.subs, id)
		e.subsMu.Unlock()
	}
}

// emit reports one completed cell. The done counter is advanced inside
// the emission critical section so progress lines and subscriber calls
// carry strictly monotone [done/total] numbering.
func (e *Engine) emit(r CellResult, opts Options, done *int, total int) {
	e.emitMu.Lock()
	defer e.emitMu.Unlock()
	*done++
	suffix := ""
	if r.Cached {
		suffix = " (cached)"
	}
	opts.logf("harness: [%d/%d] %s/%s/%s IPC %.4f%s",
		*done, total, r.Run.Config, r.Run.Scheme, r.Run.Bench, r.Run.IPC, suffix)
	e.subsMu.Lock()
	fns := make([]func(CellResult), 0, len(e.subs))
	for _, fn := range e.subs {
		fns = append(fns, fn)
	}
	e.subsMu.Unlock()
	for _, fn := range fns {
		fn(r)
	}
}

// Key returns the content-addressed key of a job under this engine's
// version stamp and the result-affecting fields of opts.
func (e *Engine) Key(job CellJob, opts Options) string {
	return CellFingerprint(e.version, job.Config, job.Scheme, job.Bench, opts)
}

// Cell resolves one job — cache first, then at-most-once simulation —
// and returns the full CellResult, key and cache provenance included.
// This is the hook the farm server (internal/farm) resolves compute
// requests through: its single-flight map is what coalesces duplicate
// in-flight requests fleet-wide onto one simulation.
func (e *Engine) Cell(job CellJob, opts Options) (CellResult, error) {
	return e.cell(job, opts)
}

// cell resolves one key: cache lookup, then single-flight simulation.
// Errors are never cached — a failed cell is retried by the next request.
func (e *Engine) cell(job CellJob, opts Options) (CellResult, error) {
	key := e.Key(job, opts)
	for {
		e.mu.Lock()
		if f, busy := e.inflight[key]; busy {
			e.mu.Unlock()
			<-f.done
			if f.err != nil {
				continue // the holder failed; claim the key and retry
			}
			res := f.res
			res.Cached = true // coalesced onto the in-flight execution
			e.mu.Lock()
			e.stats.Cells++
			e.stats.Hits++
			e.stats.Coalesced++
			e.mu.Unlock()
			return res, nil
		}
		f := &flight{done: make(chan struct{})}
		e.inflight[key] = f
		e.mu.Unlock()

		f.res, f.err = e.resolve(key, job, opts)

		e.mu.Lock()
		delete(e.inflight, key)
		if f.err == nil {
			e.stats.Cells++
			if f.res.Cached {
				e.stats.Hits++
			} else {
				e.stats.Simulated++
				e.stats.SimCycles += f.res.Run.TotalCycles
			}
		}
		e.mu.Unlock()
		close(f.done)
		return f.res, f.err
	}
}

// resolve serves key from the cache or simulates it.
func (e *Engine) resolve(key string, job CellJob, opts Options) (CellResult, error) {
	if e.cache != nil {
		if r, ok, err := cacheLookup(e.cache, key, job, opts); ok {
			return CellResult{Key: key, Job: job, Run: r, Cached: true}, nil
		} else if err != nil {
			opts.logf("harness: cell cache read %s: %v (re-simulating)", key, err)
		}
	}
	if e.gate != nil {
		e.gate <- struct{}{}
	}
	r, err := RunOne(job.Config, job.Scheme, job.Bench, opts)
	if e.gate != nil {
		<-e.gate
	}
	if err != nil {
		return CellResult{}, err
	}
	if e.cache != nil {
		if err := e.cache.Put(key, r); err != nil {
			opts.logf("harness: cell cache write %s: %v", key, err)
		}
	}
	return CellResult{Key: key, Job: job, Run: r}, nil
}

// PrefetchExperiment resolves a whole spec through the cache's experiment
// path when it has one (ExperimentResolver — the farm client in compute
// mode as the slowest tier): one streaming request warms the faster cache
// layers with every cell, so the per-cell resolution that follows is all
// local hits and a cold remote experiment costs one request, not one per
// cell. Returns the number of cells delivered. Failures follow the cache
// contract — report through opts.Progress and fall back to per-cell
// resolution, never fail the run.
func (e *Engine) PrefetchExperiment(ctx context.Context, spec MatrixSpec, opts Options) int {
	er, ok := e.cache.(ExperimentResolver)
	if !ok || len(spec.Schemes) == 0 {
		return 0
	}
	n, err := er.ResolveExperiment(ctx, spec, opts, nil)
	if err != nil {
		opts.logf("harness: experiment %q stream: %v (%d cells delivered; resolving per cell)",
			spec.Name, err, n)
	}
	return n
}

// RunCells resolves jobs on a bounded pool of opts.Parallelism workers
// (zero: all CPUs) and returns their runs in job order. Semantics match
// the evaluation engine's: fail-fast on the first error, prompt
// cancellation through ctx, results independent of scheduling order.
// Progress lines and subscriber streams fire per cell in completion order.
func (e *Engine) RunCells(ctx context.Context, jobs []CellJob, opts Options) ([]Run, error) {
	runs := make([]Run, len(jobs))
	var done int
	err := ParallelDo(ctx, len(jobs), opts.Parallelism, func(i int) error {
		res, err := e.cell(jobs[i], opts)
		if err != nil {
			return err
		}
		runs[i] = res.Run
		e.emit(res, opts, &done, len(jobs))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return runs, nil
}
