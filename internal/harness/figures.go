package harness

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/synth"
)

// RedwoodCoveIPC is the paper's reference point for a leading-edge core:
// Intel Redwood Cove's SPEC2017 IPC (Table 1).
const RedwoodCoveIPC = 2.03

// Table1 renders the configuration table: key characteristics and the
// measured baseline IPC of each configuration (paper Table 1).
func Table1(m *Matrix) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: BOOM configurations and measured baseline IPC\n")
	fmt.Fprintf(&b, "%-14s %8s %8s %8s %8s %8s\n", "", "Small", "Medium", "Large", "Mega", "Intel")
	row := func(label string, f func(c core.Config) string, intel string) {
		fmt.Fprintf(&b, "%-14s", label)
		for _, cfg := range m.Configs {
			fmt.Fprintf(&b, " %8s", f(cfg))
		}
		fmt.Fprintf(&b, " %8s\n", intel)
	}
	row("Core Width", func(c core.Config) string { return fmt.Sprint(c.Width) }, "6")
	row("Memory Ports", func(c core.Config) string { return fmt.Sprint(c.MemPorts) }, "3+2")
	row("ROB Entries", func(c core.Config) string { return fmt.Sprint(c.ROBSize) }, "512")
	row("SPEC2017 IPC", func(c core.Config) string {
		return fmt.Sprintf("%.3f", m.MeanIPC(c.Name, core.KindBaseline))
	}, fmt.Sprintf("%.2f", RedwoodCoveIPC))
	fmt.Fprintf(&b, "(paper baseline IPC: 0.46 / 0.60 / 0.943 / 1.27)\n")
	return b.String()
}

// Figure6 renders per-benchmark IPC normalized to baseline on the Mega
// configuration (paper Figure 6), plus the suite means.
func Figure6(m *Matrix) string {
	return perBenchNormIPC(m, "mega",
		"Figure 6: IPC normalized to baseline, Mega configuration",
		"(paper means: STT-Rename 0.819, STT-Issue 0.845, NDA 0.736)")
}

// SecureSchemes returns the secure schemes actually swept into this
// matrix, in sweep order. Figures iterate these — not the global registry
// — so a filtered sweep renders only real cells (no fabricated zeros) and
// a drop-in scheme gets a column as soon as it is swept.
func (m *Matrix) SecureSchemes() []core.SchemeKind {
	secure := make(map[core.SchemeKind]bool)
	for _, k := range core.SecureSchemeKinds() {
		secure[k] = true
	}
	var out []core.SchemeKind
	for _, k := range m.Schemes {
		if secure[k] {
			out = append(out, k)
		}
	}
	return out
}

// paperRoster is the scheme set of the paper's own evaluation. The
// paper-reproduction figures (6, 7, 8, 10, Table 3) render exactly these
// columns — their captions cite the paper's numbers — while extension
// schemes (DoM, InvisiSpec, and future drop-ins) appear in FigureExt.
var paperRoster = map[core.SchemeKind]bool{
	core.KindSTTRename: true,
	core.KindSTTIssue:  true,
	core.KindNDA:       true,
}

// PaperSecureSchemes returns the paper's secure schemes actually swept
// into this matrix, in sweep order: the intersection keeps filtered
// sweeps rendering only real cells while pinning the paper figures to
// the paper's column layout regardless of how many drop-in schemes the
// registry holds.
func (m *Matrix) PaperSecureSchemes() []core.SchemeKind {
	var out []core.SchemeKind
	for _, k := range m.Schemes {
		if paperRoster[k] {
			out = append(out, k)
		}
	}
	return out
}

func perBenchNormIPC(m *Matrix, cfgName, title, footer string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-18s", "benchmark")
	for _, kind := range m.PaperSecureSchemes() {
		fmt.Fprintf(&b, " %11s", kind)
	}
	fmt.Fprintf(&b, "\n")
	for _, prof := range m.Benches {
		fmt.Fprintf(&b, "%-18s", prof.Name)
		for _, kind := range m.PaperSecureSchemes() {
			fmt.Fprintf(&b, " %11.3f", m.BenchNormIPC(cfgName, kind, prof.Name))
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "%-18s", "arithmetic-mean")
	for _, kind := range m.PaperSecureSchemes() {
		fmt.Fprintf(&b, " %11.3f", m.NormIPC(cfgName, kind))
	}
	fmt.Fprintf(&b, "\n%s\n", footer)
	return b.String()
}

// Figure7 renders normalized IPC for every configuration, one block per
// scheme (paper Figure 7a-c).
func Figure7(m *Matrix) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: normalized IPC by configuration\n")
	for _, kind := range m.PaperSecureSchemes() {
		fmt.Fprintf(&b, "\n(%s)\n%-18s", kind, "benchmark")
		for _, cfg := range m.Configs {
			fmt.Fprintf(&b, " %8s", cfg.Name)
		}
		fmt.Fprintf(&b, "\n")
		for _, prof := range m.Benches {
			fmt.Fprintf(&b, "%-18s", prof.Name)
			for _, cfg := range m.Configs {
				fmt.Fprintf(&b, " %8.3f", m.BenchNormIPC(cfg.Name, kind, prof.Name))
			}
			fmt.Fprintf(&b, "\n")
		}
		fmt.Fprintf(&b, "%-18s", "arithmetic-mean")
		for _, cfg := range m.Configs {
			fmt.Fprintf(&b, " %8.3f", m.NormIPC(cfg.Name, kind))
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// trend fits relMetric (per config) against the baseline absolute IPC and
// returns the fitted points plus full and halved-slope Redwood Cove
// extrapolations.
func (m *Matrix) trend(rel func(cfgName string) float64) (xs, ys []float64, atRWC, atRWCHalved float64, err error) {
	for _, cfg := range m.Configs {
		xs = append(xs, m.MeanIPC(cfg.Name, core.KindBaseline))
		ys = append(ys, rel(cfg.Name))
	}
	slope, intercept, err := stats.LinReg(xs, ys)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	lastX := xs[len(xs)-1]
	return xs, ys, stats.Extrapolate(slope, intercept, RedwoodCoveIPC),
		stats.HalvedSlopeExtrapolate(slope, intercept, lastX, RedwoodCoveIPC), nil
}

// Figure8 renders relative IPC against absolute baseline IPC with the
// linear trend's Redwood Cove estimate (paper Figure 8).
func Figure8(m *Matrix) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: relative IPC vs absolute baseline IPC (trend to Redwood Cove, IPC %.2f)\n", RedwoodCoveIPC)
	fmt.Fprintf(&b, "%-12s", "abs IPC")
	for _, cfg := range m.Configs {
		fmt.Fprintf(&b, " %8.3f", m.MeanIPC(cfg.Name, core.KindBaseline))
	}
	fmt.Fprintf(&b, " %10s\n", "RWC est.")
	for _, kind := range m.PaperSecureSchemes() {
		_, ys, atRWC, _, err := m.trend(func(n string) float64 { return m.NormIPC(n, kind) })
		if err != nil {
			fmt.Fprintf(&b, "%-12s trend error: %v\n", kind, err)
			continue
		}
		fmt.Fprintf(&b, "%-12s", kind)
		for _, y := range ys {
			fmt.Fprintf(&b, " %8.3f", y)
		}
		fmt.Fprintf(&b, " %10.3f\n", atRWC)
	}
	fmt.Fprintf(&b, "(paper: relative IPC worsens with width; ~20%%+ loss projected for leading cores)\n")
	return b.String()
}

// Figure9 renders achieved frequency per configuration and scheme from the
// synthesis model (paper Figure 9).
func Figure9(configs []core.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: achieved frequency (MHz) from the synthesis model\n")
	fmt.Fprintf(&b, "%-12s", "scheme")
	for _, cfg := range configs {
		fmt.Fprintf(&b, " %8s", cfg.Name)
	}
	fmt.Fprintf(&b, "\n")
	for _, kind := range core.SchemeKinds() {
		fmt.Fprintf(&b, "%-12s", kind)
		for _, cfg := range configs {
			fmt.Fprintf(&b, " %8.1f", synth.FrequencyMHz(cfg, kind))
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "(paper Mega: STT-Rename ≈80%% of baseline frequency; NDA ≈ baseline)\n")
	return b.String()
}

// Figure10 renders relative timing against absolute baseline IPC (paper
// Figure 10).
func Figure10(m *Matrix) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: relative timing vs absolute baseline IPC\n")
	fmt.Fprintf(&b, "%-12s", "abs IPC")
	for _, cfg := range m.Configs {
		fmt.Fprintf(&b, " %8.3f", m.MeanIPC(cfg.Name, core.KindBaseline))
	}
	fmt.Fprintf(&b, "\n")
	for _, kind := range m.PaperSecureSchemes() {
		fmt.Fprintf(&b, "%-12s", kind)
		for _, cfg := range m.Configs {
			fmt.Fprintf(&b, " %8.3f", synth.RelativeTiming(cfg, kind))
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// FigureExt renders the extended scheme comparison: every registered
// secure scheme — the paper's three plus the drop-ins (DoM, InvisiSpec,
// and anything registered after them) — side by side on every
// configuration, as normalized IPC and as the paper's performance metric
// (IPC × relative timing). It is the 6-scheme head-to-head the
// secure-speculation literature usually tabulates; the registered
// `fig_ext` experiment pins its matrix to ALL registered schemes, so the
// comparison is complete even under a -schemes filter.
func FigureExt(m *Matrix) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extended comparison: %d schemes across all configurations\n", len(m.Schemes))
	fmt.Fprintf(&b, "\nnormalized IPC (scheme / baseline)\n%-12s", "scheme")
	for _, cfg := range m.Configs {
		fmt.Fprintf(&b, " %8s", cfg.Name)
	}
	fmt.Fprintf(&b, "\n")
	for _, kind := range m.SecureSchemes() {
		fmt.Fprintf(&b, "%-12s", kind)
		for _, cfg := range m.Configs {
			fmt.Fprintf(&b, " %8.3f", m.NormIPC(cfg.Name, kind))
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "\nnormalized performance (IPC x relative timing)\n%-12s", "scheme")
	for _, cfg := range m.Configs {
		fmt.Fprintf(&b, " %8s", cfg.Name)
	}
	fmt.Fprintf(&b, "\n")
	for _, kind := range m.SecureSchemes() {
		fmt.Fprintf(&b, "%-12s", kind)
		for _, cfg := range m.Configs {
			fmt.Fprintf(&b, " %8.3f", m.Performance(cfg.Name, kind))
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "(mechanisms: STT blocks tainted transmitters, NDA delays broadcasts,\n")
	fmt.Fprintf(&b, " DoM delays speculative L1 misses, InvisiSpec buffers + re-exposes loads)\n")
	return b.String()
}

// Performance returns IPC×timing relative to baseline for one cell (the
// paper's performance metric, Section 8.4).
func (m *Matrix) Performance(cfgName string, kind core.SchemeKind) float64 {
	cfg, ok := m.configByName(cfgName)
	if !ok {
		return 0
	}
	return m.NormIPC(cfgName, kind) * synth.RelativeTiming(cfg, kind)
}

func (m *Matrix) configByName(name string) (core.Config, bool) {
	for _, cfg := range m.Configs {
		if cfg.Name == name {
			return cfg, true
		}
	}
	return core.Config{}, false
}

// Table3 renders normalized performance per configuration with the
// halved-slope Redwood Cove estimate (paper Figure 1 / Table 3).
func Table3(m *Matrix) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 / Figure 1: normalized performance (IPC x timing)\n")
	fmt.Fprintf(&b, "%-12s", "scheme")
	for _, cfg := range m.Configs {
		fmt.Fprintf(&b, " %8s", cfg.Name)
	}
	fmt.Fprintf(&b, " %8s\n", "Intel")
	paper := map[core.SchemeKind][5]float64{
		core.KindSTTRename: {0.98, 0.93, 0.84, 0.65, 0.53},
		core.KindSTTIssue:  {0.98, 0.86, 0.81, 0.73, 0.62},
		core.KindNDA:       {1.01, 0.88, 0.80, 0.78, 0.66},
	}
	for _, kind := range m.PaperSecureSchemes() {
		_, _, _, atRWCHalved, err := m.trend(func(n string) float64 { return m.Performance(n, kind) })
		fmt.Fprintf(&b, "%-12s", kind)
		for _, cfg := range m.Configs {
			fmt.Fprintf(&b, " %8.3f", m.Performance(cfg.Name, kind))
		}
		if err == nil {
			fmt.Fprintf(&b, " %8.3f\n", atRWCHalved)
		} else {
			fmt.Fprintf(&b, " %8s\n", "n/a")
		}
		if p, ok := paper[kind]; ok {
			fmt.Fprintf(&b, "%-12s %8.2f %8.2f %8.2f %8.2f %8.2f\n", "  (paper)", p[0], p[1], p[2], p[3], p[4])
		}
	}
	return b.String()
}

// Table4 renders area and power ratios at the Mega configuration (paper
// Table 4).
func Table4() string {
	mega := core.MegaConfig()
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: area and power normalized to baseline (Mega, 50 MHz point)\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %8s\n", "scheme", "LUTs", "FFs", "Power")
	paper := map[core.SchemeKind][3]float64{
		core.KindSTTRename: {1.060, 1.094, 1.008},
		core.KindSTTIssue:  {1.059, 1.039, 1.026},
		core.KindNDA:       {0.980, 1.027, 0.936},
	}
	for _, kind := range SecureSchemes() {
		lut, ff := synth.RelativeArea(mega, kind)
		fmt.Fprintf(&b, "%-12s %8.3f %8.3f %8.3f\n", kind, lut, ff, synth.RelativePower(mega, kind))
		if p, ok := paper[kind]; ok {
			fmt.Fprintf(&b, "%-12s %8.3f %8.3f %8.3f\n", "  (paper)", p[0], p[1], p[2])
		}
	}
	return b.String()
}

// Table5 renders IPC loss per configuration plus the gem5-configuration
// comparison (paper Table 5). gem5 is a second Matrix run on the
// gem5-style configurations over the 19 comparable benchmarks.
func Table5(boom, gem5 *Matrix) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: IPC loss (%%) per configuration (19-benchmark gem5-comparable suite)\n")
	fmt.Fprintf(&b, "%-12s %9s %11s %10s %8s\n", "config", "base IPC", "STT-Rename", "STT-Issue", "NDA")
	// loss renders "n/a" for schemes absent from a filtered sweep rather
	// than a fabricated 100% loss.
	loss := func(m *Matrix, cfgName string, kind core.SchemeKind) string {
		if _, ok := m.Cell(cfgName, kind); !ok {
			return "n/a"
		}
		return fmt.Sprintf("%.1f%%", 100*(1-m.NormIPC(cfgName, kind)))
	}
	for _, cfg := range boom.Configs {
		if cfg.Name == "small" {
			continue // the paper reports Medium/Large/Mega
		}
		fmt.Fprintf(&b, "%-12s %9.3f %11s %10s %8s\n", "boom "+cfg.Name,
			boom.MeanIPC(cfg.Name, core.KindBaseline),
			loss(boom, cfg.Name, core.KindSTTRename),
			loss(boom, cfg.Name, core.KindSTTIssue),
			loss(boom, cfg.Name, core.KindNDA))
	}
	for _, cfg := range gem5.Configs {
		switch cfg.Name {
		case "gem5-stt":
			fmt.Fprintf(&b, "%-12s %9.3f %11s %10s %8s\n", cfg.Name,
				gem5.MeanIPC(cfg.Name, core.KindBaseline),
				loss(gem5, cfg.Name, core.KindSTTRename), "n/a", "n/a")
		case "gem5-nda":
			fmt.Fprintf(&b, "%-12s %9.3f %11s %10s %8s\n", cfg.Name,
				gem5.MeanIPC(cfg.Name, core.KindBaseline), "n/a", "n/a",
				loss(gem5, cfg.Name, core.KindNDA))
		}
	}
	fmt.Fprintf(&b, "(paper: Medium 7.3/6.4/10.7, Large 11.3/10.0/18.6, Mega 17.6/15.8/22.4;\n")
	fmt.Fprintf(&b, " gem5 STT 17.2%% at IPC 1.12, gem5 NDA 13.0%% at IPC 0.79)\n")
	return b.String()
}
