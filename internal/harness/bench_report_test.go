package harness

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// TestBenchReportRoundTrip pins the BENCH_core.json schema: a written file
// must read back equal — marshal → unmarshal → identical runs and
// aggregates — and validate clean. A field rename or type change breaks
// this before it breaks the CI artifact consumers.
func TestBenchReportRoundTrip(t *testing.T) {
	runs := []BenchReport{
		NewBenchReport("evaluation-sweep", 352, 14_000_000, 8*time.Second, 1),
		NewBenchReport("matrix-slice", 16, 480_000, 250*time.Millisecond, 4),
	}
	path := filepath.Join(t.TempDir(), "BENCH_core.json")
	if err := WriteBenchReport(path, runs...); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != BenchSchema {
		t.Errorf("schema %q, want %q", got.Schema, BenchSchema)
	}
	if !reflect.DeepEqual(got.Runs, runs) {
		t.Errorf("runs did not round-trip:\ngot  %+v\nwant %+v", got.Runs, runs)
	}
	wantCycles := runs[0].SimCycles + runs[1].SimCycles
	if got.SimCycles != wantCycles {
		t.Errorf("aggregate sim_cycles = %d, want %d", got.SimCycles, wantCycles)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("round-tripped file failed validation: %v", err)
	}
}

// TestBenchReportThroughputGuard: every constructor path must yield a
// finite, positive sim_cycles_per_sec for a real measurement.
func TestBenchReportThroughputGuard(t *testing.T) {
	r := NewBenchReport("guard", 1, 1_000_000, 500*time.Millisecond, 1)
	if v := r.SimCyclesPerSec; math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		t.Errorf("sim_cycles_per_sec = %v, want finite and positive", v)
	}
	if want := 2_000_000.0; math.Abs(r.SimCyclesPerSec-want) > 1 {
		t.Errorf("sim_cycles_per_sec = %v, want ~%v", r.SimCyclesPerSec, want)
	}
}

// TestBenchFileValidateRejectsCorrupt: the validator must reject the
// corruption modes it exists for.
func TestBenchFileValidateRejectsCorrupt(t *testing.T) {
	good := BenchFile{
		Schema:          BenchSchema,
		Runs:            []BenchReport{NewBenchReport("ok", 1, 1000, time.Second, 1)},
		SimCycles:       1000,
		WallSeconds:     1,
		SimCyclesPerSec: 1000,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*BenchFile)
	}{
		{"wrong schema", func(f *BenchFile) { f.Schema = "other/v9" }},
		{"zero aggregate", func(f *BenchFile) { f.SimCyclesPerSec = 0 }},
		{"NaN aggregate", func(f *BenchFile) { f.SimCyclesPerSec = math.NaN() }},
		{"Inf aggregate", func(f *BenchFile) { f.SimCyclesPerSec = math.Inf(1) }},
		{"negative run", func(f *BenchFile) { f.Runs[0].SimCyclesPerSec = -5 }},
	}
	for _, tc := range cases {
		f := good
		f.Runs = append([]BenchReport{}, good.Runs...)
		tc.mutate(&f)
		if err := f.Validate(); err == nil {
			t.Errorf("%s: corrupt file passed validation", tc.name)
		}
	}
}
