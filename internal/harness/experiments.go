package harness

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
)

// The experiment registry, mirroring core.RegisterScheme: each experiment
// declares its id, title, presentation order, and the exact cell sets it
// needs as MatrixSpecs, plus a render function over the materialized
// matrices. The paper's ten tables and figures self-register below; a
// drop-in experiment file calls RegisterExperiment from its own init and
// shows up in Session.Experiment, ExperimentIDs, every cmd's -experiment
// flag, and the examples without touching the facade.

// RenderFunc renders an experiment from its needed matrices, in the order
// the spec's Needs declared them.
type RenderFunc func(ms []*Matrix) (string, error)

// ExperimentSpec describes one experiment to the registry.
type ExperimentSpec struct {
	ID    string // unique CLI/display id, e.g. "fig6"
	Title string // one-line description
	Order int    // presentation order in ExperimentIDs
	// Needs lists the cell sets the experiment requires — and nothing
	// more: Session.Experiment simulates exactly these. An experiment
	// rendered purely from analytical models declares none.
	Needs  []MatrixSpec
	Render RenderFunc
}

var experiments = struct {
	sync.RWMutex
	specs map[string]ExperimentSpec
}{specs: make(map[string]ExperimentSpec)}

// RegisterExperiment adds an experiment. It panics on a nil render
// function, an empty id, or a duplicate id: registration happens at init
// time, where a broken drop-in should fail loudly, not at run time.
func RegisterExperiment(spec ExperimentSpec) {
	if spec.Render == nil {
		panic(fmt.Sprintf("harness: RegisterExperiment(%q): nil render function", spec.ID))
	}
	if spec.ID == "" {
		panic("harness: RegisterExperiment: empty id")
	}
	experiments.Lock()
	defer experiments.Unlock()
	if _, ok := experiments.specs[spec.ID]; ok {
		panic(fmt.Sprintf("harness: experiment %q registered twice", spec.ID))
	}
	experiments.specs[spec.ID] = spec
}

// deregisterExperiment removes a registration; tests use it to unwind
// drop-ins.
func deregisterExperiment(id string) {
	experiments.Lock()
	defer experiments.Unlock()
	delete(experiments.specs, id)
}

// Experiments returns every registered experiment in presentation order.
func Experiments() []ExperimentSpec {
	experiments.RLock()
	specs := make([]ExperimentSpec, 0, len(experiments.specs))
	for _, s := range experiments.specs {
		specs = append(specs, s)
	}
	experiments.RUnlock()
	sort.Slice(specs, func(i, j int) bool {
		if specs[i].Order != specs[j].Order {
			return specs[i].Order < specs[j].Order
		}
		return specs[i].ID < specs[j].ID
	})
	return specs
}

// ExperimentIDs lists every registered experiment id in presentation
// order.
func ExperimentIDs() []string {
	specs := Experiments()
	ids := make([]string, len(specs))
	for i, s := range specs {
		ids[i] = s.ID
	}
	return ids
}

// experimentByID looks up one registration.
func experimentByID(id string) (ExperimentSpec, bool) {
	experiments.RLock()
	defer experiments.RUnlock()
	s, ok := experiments.specs[id]
	return s, ok
}

func unknownExperiment(id string) error {
	return fmt.Errorf("harness: unknown experiment %q (known: %s)", id, strings.Join(ExperimentIDs(), ", "))
}

// RenderExperiment renders an experiment from already-materialized
// matrices keyed by MatrixSpec name ("boom", "gem5", ...) — the
// compatibility path behind (*shadowbinding.Evaluation).Experiment, where
// the matrices were swept eagerly. A held matrix must actually cover the
// declared cell set (same configurations and benchmarks — the name alone
// is just a label); experiments whose needs the caller does not hold are
// an error; evaluate those through a Session.
func RenderExperiment(id string, avail map[string]*Matrix) (string, error) {
	spec, ok := experimentByID(id)
	if !ok {
		return "", unknownExperiment(id)
	}
	ms := make([]*Matrix, len(spec.Needs))
	for i, need := range spec.Needs {
		m := avail[need.Name]
		if m == nil {
			return "", fmt.Errorf("harness: experiment %q needs matrix %q, which the caller has not evaluated (use Session.Experiment)", id, need.Name)
		}
		if !specCovered(need, m) {
			return "", fmt.Errorf("harness: experiment %q needs matrix %q with a different cell set than the caller holds (use Session.Experiment)", id, need.Name)
		}
		ms[i] = m
	}
	return spec.Render(ms)
}

// specCovered reports whether m holds exactly the cell axes need
// declares: equal configurations (by fingerprint) and benchmark profiles,
// and — when the spec pins a scheme axis — equal schemes. A spec without
// a scheme override accepts any swept scheme set (an Evaluation may be
// legitimately scheme-filtered).
func specCovered(need MatrixSpec, m *Matrix) bool {
	if len(need.Configs) != len(m.Configs) || len(need.Benches) != len(m.Benches) {
		return false
	}
	for i := range need.Configs {
		if need.Configs[i].Fingerprint() != m.Configs[i].Fingerprint() {
			return false
		}
	}
	for i := range need.Benches {
		if need.Benches[i] != m.Benches[i] {
			return false
		}
	}
	if len(need.Schemes) > 0 {
		if len(need.Schemes) != len(m.Schemes) {
			return false
		}
		for i := range need.Schemes {
			if need.Schemes[i] != m.Schemes[i] {
				return false
			}
		}
	}
	return true
}

// renderFirst adapts a single-matrix emitter to a RenderFunc.
func renderFirst(f func(*Matrix) string) RenderFunc {
	return func(ms []*Matrix) (string, error) { return f(ms[0]), nil }
}

// The paper's experiments. Orders pin the historical ExperimentIDs
// sequence (table1, fig1, fig6..fig10, table3..table5); "fig1" is an
// alias for the Table 3 performance data it plots.
func init() {
	boom := []MatrixSpec{BoomSpec()}
	RegisterExperiment(ExperimentSpec{
		ID: "table1", Title: "Table 1: BOOM configurations and measured baseline IPC",
		Order: 0, Needs: boom, Render: renderFirst(Table1),
	})
	RegisterExperiment(ExperimentSpec{
		ID: "fig1", Title: "Figure 1: normalized performance (alias of Table 3)",
		Order: 1, Needs: boom, Render: renderFirst(Table3),
	})
	RegisterExperiment(ExperimentSpec{
		ID: "fig6", Title: "Figure 6: per-benchmark IPC normalized to baseline (Mega)",
		Order: 2, Needs: boom, Render: renderFirst(Figure6),
	})
	RegisterExperiment(ExperimentSpec{
		ID: "fig7", Title: "Figure 7: normalized IPC by configuration",
		Order: 3, Needs: boom, Render: renderFirst(Figure7),
	})
	RegisterExperiment(ExperimentSpec{
		ID: "fig8", Title: "Figure 8: relative IPC vs absolute baseline IPC",
		Order: 4, Needs: boom, Render: renderFirst(Figure8),
	})
	RegisterExperiment(ExperimentSpec{
		// Figure 9 is pure synthesis model: it needs no simulated cells.
		ID: "fig9", Title: "Figure 9: achieved frequency from the synthesis model",
		Order: 5, Render: func([]*Matrix) (string, error) { return Figure9(core.Configs()), nil },
	})
	RegisterExperiment(ExperimentSpec{
		ID: "fig10", Title: "Figure 10: relative timing vs absolute baseline IPC",
		Order: 6, Needs: boom, Render: renderFirst(Figure10),
	})
	RegisterExperiment(ExperimentSpec{
		ID: "table3", Title: "Table 3: normalized performance (IPC x timing)",
		Order: 7, Needs: boom, Render: renderFirst(Table3),
	})
	RegisterExperiment(ExperimentSpec{
		// Table 4 is pure synthesis model: no simulated cells either.
		ID: "table4", Title: "Table 4: area and power normalized to baseline (Mega)",
		Order: 8, Render: func([]*Matrix) (string, error) { return Table4(), nil },
	})
	RegisterExperiment(ExperimentSpec{
		ID: "table5", Title: "Table 5: IPC loss per configuration + gem5 comparison",
		Order: 9, Needs: []MatrixSpec{BoomSpec(), Gem5Spec()},
		Render: func(ms []*Matrix) (string, error) { return Table5(ms[0], ms[1]), nil },
	})
	RegisterExperiment(ExperimentSpec{
		// The extension comparison pins its scheme axis to every
		// registered scheme (ExtSpec), so `-schemes dom,invisispec
		// -experiment fig_ext` still renders the full head-to-head. Its
		// cells are content-identical to the Boom matrix's, so alongside
		// `-experiment all` it costs no extra simulation.
		ID: "fig_ext", Title: "Extended comparison: all registered schemes (IPC and performance)",
		Order: 10, Needs: []MatrixSpec{ExtSpec()}, Render: renderFirst(FigureExt),
	})
}
