package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/workloads"
)

// Cell fingerprinting. Every (config, scheme, benchmark, options) cell is
// content-addressed: its key is a stable hash of everything that can
// change the simulated result, plus a simulator version stamp
// (core.SimVersion by default). Equal keys mean equal results, so the
// engine executes each key at most once and the CellCache can persist
// results across processes; a model change bumps the stamp and orphans
// every stale entry instead of serving it.

// cellInputs is the canonical serialization the fingerprint hashes.
// encoding/json writes fields in declaration order, so the encoding is
// stable for a given source tree — and the version stamp ties persisted
// keys to the modeled behaviour, not the source tree.
type cellInputs struct {
	Version string            `json:"version"`
	Config  string            `json:"config"` // core.Config.Fingerprint()
	Scheme  string            `json:"scheme"` // registered name: stable across kind renumbering
	Profile workloads.Profile `json:"profile"`
	Scale   int               `json:"scale"`
	Warmup  uint64            `json:"warmup"`
	Measure uint64            `json:"measure"`
}

// CellFingerprint returns the content-addressed key of one cell under a
// version stamp. Only result-affecting Options fields participate:
// Parallelism and Progress change wall-clock behaviour, never results, so
// they are excluded and a sweep at any -j re-hits the same entries.
func CellFingerprint(version string, cfg core.Config, kind core.SchemeKind, prof workloads.Profile, opts Options) string {
	in := cellInputs{
		Version: version,
		Config:  cfg.Fingerprint(),
		Scheme:  kind.String(),
		Profile: prof,
		Scale:   max(opts.Scale, 1), // RunOne clamps the same way
		Warmup:  opts.WarmupCycles,
		Measure: opts.MeasureCycles,
	}
	data, err := json.Marshal(in)
	if err != nil {
		panic(fmt.Sprintf("harness: cell fingerprint %s/%s/%s: %v", cfg.Name, kind, prof.Name, err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:16])
}
