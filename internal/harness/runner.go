package harness

import (
	"context"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// The eager sweep entry points, kept as thin compatibility wrappers over
// the Session/cell-engine path (session.go, engine.go). Every simulation
// is hermetic (each cell builds its own program and core; workloads use a
// seeded PRNG, not global state) and aggregation happens in enumeration
// order, so Matrix contents — and therefore every figure rendered from
// them — are bit-for-bit identical at any Parallelism setting and at any
// cache temperature.

// RunMatrix sweeps every (configuration, scheme, benchmark) triple on a
// worker pool of Options.Parallelism goroutines (default: all CPUs).
func RunMatrix(configs []core.Config, schemes []core.SchemeKind, benches []workloads.Profile, opts Options) (*Matrix, error) {
	return RunMatrixContext(context.Background(), configs, schemes, benches, opts)
}

// RunMatrixContext is RunMatrix with cancellation. A cancelled context
// stops the sweep promptly (pending cells are abandoned between runs) and
// returns ctx's error; the first cell error cancels the remaining work and
// is propagated (fail-fast). On error the partial matrix is discarded.
func RunMatrixContext(ctx context.Context, configs []core.Config, schemes []core.SchemeKind, benches []workloads.Profile, opts Options) (*Matrix, error) {
	if len(schemes) == 0 {
		// Preserved corner: an explicitly empty scheme set sweeps nothing
		// (a Session would substitute every registered scheme).
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return assembleMatrix(configs, nil, benches, nil, opts), nil
	}
	s := NewSession(SessionConfig{Options: opts, Schemes: schemes})
	return s.Matrix(ctx, MatrixSpec{Name: "sweep", Configs: configs, Benches: benches})
}

// assembleMatrix aggregates per-cell runs (in enumeration order: config-
// major, then scheme, then benchmark — the order enumerateJobs produces)
// into a Matrix, exactly as the sequential sweep did, so cell contents and
// summary output are schedule-independent.
func assembleMatrix(configs []core.Config, schemes []core.SchemeKind, benches []workloads.Profile, runs []Run, opts Options) *Matrix {
	nb, ns := len(benches), len(schemes)
	m := &Matrix{
		Configs: configs,
		Schemes: schemes,
		Benches: benches,
		cells:   make(map[string]map[core.SchemeKind]*Cell),
	}
	for ci, cfg := range configs {
		m.cells[cfg.Name] = make(map[core.SchemeKind]*Cell)
		for si, kind := range schemes {
			cell := &Cell{Config: cfg, Scheme: kind}
			var cycles, insts []uint64
			for bi := range benches {
				r := runs[(ci*ns+si)*nb+bi]
				cell.Runs = append(cell.Runs, r)
				cycles = append(cycles, r.Cycles)
				insts = append(insts, r.Insts)
			}
			cell.MeanIPC = stats.MeanIPC(cycles, insts)
			m.cells[cfg.Name][kind] = cell
			opts.logf("harness: %-8s %-11s mean IPC %.4f", cfg.Name, kind, cell.MeanIPC)
		}
	}
	return m
}
