package harness

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// The parallel evaluation engine. RunMatrix enumerates the full
// (configuration × scheme × benchmark) cross product as independent jobs
// up front, executes them on the shared worker pool (ParallelDo in
// parallel.go), and aggregates the results in enumeration order. Every
// simulation is hermetic (each job builds its own program and core;
// workloads use a seeded PRNG, not global state), so Matrix contents — and
// therefore every figure rendered from them — are bit-for-bit identical at
// any Parallelism setting.

// RunMatrix sweeps every (configuration, scheme, benchmark) triple on a
// worker pool of Options.Parallelism goroutines (default: all CPUs).
func RunMatrix(configs []core.Config, schemes []core.SchemeKind, benches []workloads.Profile, opts Options) (*Matrix, error) {
	return RunMatrixContext(context.Background(), configs, schemes, benches, opts)
}

// RunMatrixContext is RunMatrix with cancellation. A cancelled context
// stops the sweep promptly (pending jobs are abandoned between runs) and
// returns ctx's error; the first job error cancels the remaining work and
// is propagated (fail-fast). On error the partial matrix is discarded.
func RunMatrixContext(ctx context.Context, configs []core.Config, schemes []core.SchemeKind, benches []workloads.Profile, opts Options) (*Matrix, error) {
	nc, ns, nb := len(configs), len(schemes), len(benches)
	total := nc * ns * nb

	// Results land in job-index slots, never appended, so completion
	// order cannot leak into aggregation order.
	runs := make([]Run, total)

	var (
		logMu sync.Mutex
		done  int
	)
	jobDone := func(r Run) {
		logMu.Lock()
		done++
		opts.logf("harness: [%d/%d] %s/%s/%s IPC %.4f", done, total, r.Config, r.Scheme, r.Bench, r.IPC)
		logMu.Unlock()
	}

	err := ParallelDo(ctx, total, opts.Parallelism, func(idx int) error {
		ci := idx / (ns * nb)
		si := idx / nb % ns
		bi := idx % nb
		r, err := RunOne(configs[ci], schemes[si], benches[bi], opts)
		if err != nil {
			return err
		}
		runs[idx] = r
		jobDone(r)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Aggregate in enumeration order, exactly as the sequential sweep
	// did, so cell contents and progress output are schedule-independent.
	m := &Matrix{
		Configs: configs,
		Schemes: schemes,
		Benches: benches,
		cells:   make(map[string]map[core.SchemeKind]*Cell),
	}
	for ci, cfg := range configs {
		m.cells[cfg.Name] = make(map[core.SchemeKind]*Cell)
		for si, kind := range schemes {
			cell := &Cell{Config: cfg, Scheme: kind}
			var cycles, insts []uint64
			for bi := range benches {
				r := runs[(ci*ns+si)*nb+bi]
				cell.Runs = append(cell.Runs, r)
				cycles = append(cycles, r.Cycles)
				insts = append(insts, r.Insts)
			}
			cell.MeanIPC = stats.MeanIPC(cycles, insts)
			m.cells[cfg.Name][kind] = cell
			opts.logf("harness: %-8s %-11s mean IPC %.4f", cfg.Name, kind, cell.MeanIPC)
		}
	}
	return m, nil
}
