package harness

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// The parallel evaluation engine. RunMatrix enumerates the full
// (configuration × scheme × benchmark) cross product as independent jobs
// up front, executes them on a bounded worker pool, and aggregates the
// results in enumeration order. Every simulation is hermetic (each job
// builds its own program and core; workloads use a seeded PRNG, not global
// state), so Matrix contents — and therefore every figure rendered from
// them — are bit-for-bit identical at any Parallelism setting.

// job names one cell run by flat index into the cross product.
type job struct{ ci, si, bi int }

// RunMatrix sweeps every (configuration, scheme, benchmark) triple on a
// worker pool of Options.Parallelism goroutines (default: all CPUs).
func RunMatrix(configs []core.Config, schemes []core.SchemeKind, benches []workloads.Profile, opts Options) (*Matrix, error) {
	return RunMatrixContext(context.Background(), configs, schemes, benches, opts)
}

// RunMatrixContext is RunMatrix with cancellation. A cancelled context
// stops the sweep promptly (pending jobs are abandoned between runs) and
// returns ctx's error; the first job error cancels the remaining work and
// is propagated (fail-fast). On error the partial matrix is discarded.
func RunMatrixContext(ctx context.Context, configs []core.Config, schemes []core.SchemeKind, benches []workloads.Profile, opts Options) (*Matrix, error) {
	nc, ns, nb := len(configs), len(schemes), len(benches)
	total := nc * ns * nb

	// Results land in job-index slots, never appended, so completion
	// order cannot leak into aggregation order.
	runs := make([]Run, total)
	errs := make([]error, total)

	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > total {
		workers = total
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		logMu sync.Mutex
		done  int
	)
	jobDone := func(r Run) {
		logMu.Lock()
		done++
		opts.logf("harness: [%d/%d] %s/%s/%s IPC %.4f", done, total, r.Config, r.Scheme, r.Bench, r.IPC)
		logMu.Unlock()
	}

	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if runCtx.Err() != nil {
					continue // drain: the sweep is being torn down
				}
				idx := (j.ci*ns+j.si)*nb + j.bi
				r, err := RunOne(configs[j.ci], schemes[j.si], benches[j.bi], opts)
				if err != nil {
					errs[idx] = err
					cancel() // fail fast: stop scheduling new work
					continue
				}
				runs[idx] = r
				jobDone(r)
			}
		}()
	}
feed:
	for ci := 0; ci < nc; ci++ {
		for si := 0; si < ns; si++ {
			for bi := 0; bi < nb; bi++ {
				select {
				case jobs <- job{ci, si, bi}:
				case <-runCtx.Done():
					break feed
				}
			}
		}
	}
	close(jobs)
	wg.Wait()

	// Error precedence: a job failure beats the cancellation it caused;
	// the scan is in job order, so the reported error is deterministic
	// even if several jobs failed in the same sweep.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Aggregate in enumeration order, exactly as the sequential sweep
	// did, so cell contents and progress output are schedule-independent.
	m := &Matrix{
		Configs: configs,
		Schemes: schemes,
		Benches: benches,
		cells:   make(map[string]map[core.SchemeKind]*Cell),
	}
	for ci, cfg := range configs {
		m.cells[cfg.Name] = make(map[core.SchemeKind]*Cell)
		for si, kind := range schemes {
			cell := &Cell{Config: cfg, Scheme: kind}
			var cycles, insts []uint64
			for bi := range benches {
				r := runs[(ci*ns+si)*nb+bi]
				cell.Runs = append(cell.Runs, r)
				cycles = append(cycles, r.Cycles)
				insts = append(insts, r.Insts)
			}
			cell.MeanIPC = stats.MeanIPC(cycles, insts)
			m.cells[cfg.Name][kind] = cell
			opts.logf("harness: %-8s %-11s mean IPC %.4f", cfg.Name, kind, cell.MeanIPC)
		}
	}
	return m, nil
}
