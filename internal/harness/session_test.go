package harness

import (
	"context"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

func sessionOptions() Options {
	o := DefaultOptions()
	o.WarmupCycles = 1_000
	o.MeasureCycles = 3_000
	return o
}

func sessionBenches(t *testing.T, names ...string) []workloads.Profile {
	t.Helper()
	var out []workloads.Profile
	for _, name := range names {
		p, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

// TestSessionCellAccounting: overlapping matrix requests within one
// session must be served from the cache, with hits and simulations
// accounted cell by cell.
func TestSessionCellAccounting(t *testing.T) {
	ctx := context.Background()
	s := NewSession(SessionConfig{Options: sessionOptions()})
	ns := len(core.SchemeKinds())

	mega := []core.Config{core.MegaConfig()}
	if _, err := s.Matrix(ctx, MatrixSpec{Name: "a", Configs: mega,
		Benches: sessionBenches(t, "505.mcf")}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Cells != ns || st.Simulated != ns || st.Hits != 0 {
		t.Fatalf("after first matrix: %+v, want %d simulated cells", st, ns)
	}
	if st.SimCycles == 0 {
		t.Error("simulated cycles not accounted")
	}

	// A superset spec re-hits the shared cells and simulates only the new
	// benchmark column.
	if _, err := s.Matrix(ctx, MatrixSpec{Name: "b", Configs: mega,
		Benches: sessionBenches(t, "505.mcf", "525.x264")}); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Cells != 3*ns || st.Simulated != 2*ns || st.Hits != ns {
		t.Errorf("after superset matrix: %+v, want %d hits / %d simulated", st, ns, 2*ns)
	}

	// An identical spec under a different name is memoized at the matrix
	// layer: no new cell requests at all.
	if _, err := s.Matrix(ctx, MatrixSpec{Name: "b2", Configs: mega,
		Benches: sessionBenches(t, "505.mcf", "525.x264")}); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats(); got != st {
		t.Errorf("re-requesting an assembled matrix changed cell stats: %+v -> %+v", st, got)
	}
}

// TestSessionWarmDiskCacheZeroSimulation: a second session over the same
// disk cache — a fresh process, in effect — must answer without running
// the simulator at all, with byte-identical figure text.
func TestSessionWarmDiskCacheZeroSimulation(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	spec := MatrixSpec{Name: "warm", Configs: []core.Config{core.SmallConfig(), core.MegaConfig()},
		Benches: sessionBenches(t, "505.mcf", "525.x264")}

	open := func() *Session {
		cache, err := OpenCellCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		return NewSession(SessionConfig{Options: sessionOptions(), Cache: cache})
	}

	cold := open()
	m1, err := cold.Matrix(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.Simulated != st.Cells || st.Hits != 0 {
		t.Fatalf("cold session: %+v, want all simulated", st)
	}

	warm := open()
	m2, err := warm.Matrix(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	st := warm.Stats()
	if st.Simulated != 0 || st.SimCycles != 0 {
		t.Errorf("warm session simulated %d cells / %d cycles, want zero", st.Simulated, st.SimCycles)
	}
	if st.Hits != st.Cells || st.Cells == 0 {
		t.Errorf("warm session: %+v, want all hits", st)
	}
	for _, fig := range []struct{ name, a, b string }{
		{"Figure6", Figure6(m1), Figure6(m2)},
		{"Figure7", Figure7(m1), Figure7(m2)},
		{"Table1", Table1(m1), Table1(m2)},
	} {
		if fig.a != fig.b {
			t.Errorf("%s differs between cold and warm sessions:\n--- cold ---\n%s\n--- warm ---\n%s",
				fig.name, fig.a, fig.b)
		}
	}
}

// TestSessionInvalidation: a version-stamp bump or an Options change must
// orphan persisted entries — stale results are re-simulated, never
// served.
func TestSessionInvalidation(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	spec := MatrixSpec{Name: "inv", Configs: []core.Config{core.MegaConfig()},
		Benches: sessionBenches(t, "505.mcf")}

	run := func(version string, opts Options) SessionStats {
		cache, err := OpenCellCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		s := NewSession(SessionConfig{Options: opts, Cache: cache, Version: version})
		if _, err := s.Matrix(ctx, spec); err != nil {
			t.Fatal(err)
		}
		return s.Stats()
	}

	if st := run("v1", sessionOptions()); st.Simulated != st.Cells {
		t.Fatalf("first run: %+v, want all simulated", st)
	}
	if st := run("v1", sessionOptions()); st.Hits != st.Cells {
		t.Errorf("same version+options: %+v, want all hits", st)
	}
	if st := run("v2", sessionOptions()); st.Simulated != st.Cells {
		t.Errorf("bumped version served stale cells: %+v", st)
	}
	longer := sessionOptions()
	longer.MeasureCycles += 1_000
	if st := run("v1", longer); st.Simulated != st.Cells {
		t.Errorf("changed options served stale cells: %+v", st)
	}
	// And the original keys are still intact afterwards.
	if st := run("v1", sessionOptions()); st.Hits != st.Cells {
		t.Errorf("original version+options lost its entries: %+v", st)
	}
}

// TestSessionStreamDeterminism: the subscriber stream delivers every cell
// exactly once, and the cell set — like the assembled matrices — is
// identical at any parallelism.
func TestSessionStreamDeterminism(t *testing.T) {
	ctx := context.Background()
	spec := MatrixSpec{Name: "stream", Configs: []core.Config{core.SmallConfig(), core.MegaConfig()},
		Benches: sessionBenches(t, "503.bwaves", "505.mcf", "525.x264")}

	type delivery struct {
		key string
		ipc float64
		sim bool
	}
	collect := func(parallelism int) ([]delivery, *Matrix) {
		opts := sessionOptions()
		opts.Parallelism = parallelism
		s := NewSession(SessionConfig{Options: opts})
		var mu sync.Mutex
		var got []delivery
		cancel := s.Subscribe(func(r CellResult) {
			mu.Lock()
			got = append(got, delivery{key: r.Key, ipc: r.Run.IPC, sim: !r.Cached})
			mu.Unlock()
		})
		defer cancel()
		m, err := s.Matrix(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(got, func(i, j int) bool { return got[i].key < got[j].key })
		return got, m
	}

	seq, mseq := collect(1)
	par, mpar := collect(8)
	if len(seq) != 2*len(core.SchemeKinds())*3 {
		t.Fatalf("stream delivered %d cells, want %d", len(seq), 2*len(core.SchemeKinds())*3)
	}
	for i := range seq {
		if i > 0 && seq[i].key == seq[i-1].key {
			t.Errorf("cell %s delivered twice", seq[i].key)
		}
		if seq[i] != par[i] {
			t.Errorf("stream diverged at %d: seq %+v, par %+v", i, seq[i], par[i])
		}
	}
	if Figure6(mseq) != Figure6(mpar) {
		t.Error("figures differ between sequential and parallel sessions")
	}
}

// TestSessionExperimentCellAccounting is the laziness acceptance check:
// fig6 simulates exactly the Boom matrix cells (4 configs × schemes × 22
// benchmarks) and nothing else; table5 adds only the gem5 cells; the
// analytical experiments add none.
func TestSessionExperimentCellAccounting(t *testing.T) {
	ctx := context.Background()
	s := NewSession(SessionConfig{Options: sessionOptions()})
	ns := len(core.SchemeKinds())
	boomCells := 4 * ns * len(workloads.Suite())
	gem5Cells := 2 * ns * len(workloads.Gem5Comparable())

	if _, err := s.Experiment(ctx, "fig6"); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Simulated != boomCells {
		t.Errorf("fig6 simulated %d cells, want exactly the %d Boom cells", st.Simulated, boomCells)
	}

	// The other Boom-only experiments re-use the same matrix: no new cells.
	for _, id := range []string{"table1", "fig1", "fig7", "fig8", "fig10", "table3"} {
		if _, err := s.Experiment(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Simulated != boomCells {
		t.Errorf("Boom-only experiments re-simulated: %d cells, want %d", st.Simulated, boomCells)
	}

	// Analytical experiments cost nothing.
	for _, id := range []string{"fig9", "table4"} {
		if _, err := s.Experiment(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Cells != boomCells {
		t.Errorf("analytical experiments requested cells: %+v", st)
	}

	// table5 adds exactly the gem5 matrix.
	if _, err := s.Experiment(ctx, "table5"); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Simulated != boomCells+gem5Cells {
		t.Errorf("table5 simulated %d cells total, want %d", st.Simulated, boomCells+gem5Cells)
	}

	if _, err := s.Experiment(ctx, "fig99"); err == nil ||
		!strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("unknown experiment: err = %v", err)
	}
}

// TestExperimentRegistryDropIn: a registered experiment joins the id
// enumeration and renders through Session.Experiment with exactly its
// declared cells — the scheme-registry recipe, applied to experiments.
func TestExperimentRegistryDropIn(t *testing.T) {
	ctx := context.Background()
	spec := ExperimentSpec{
		ID: "zz-custom", Title: "custom: mcf on mega", Order: 99,
		Needs: []MatrixSpec{{Name: "zz", Configs: []core.Config{core.MegaConfig()},
			Benches: sessionBenches(t, "505.mcf")}},
		Render: func(ms []*Matrix) (string, error) {
			return "custom mcf IPC", nil
		},
	}
	RegisterExperiment(spec)
	defer deregisterExperiment(spec.ID)

	ids := ExperimentIDs()
	if ids[len(ids)-1] != "zz-custom" {
		t.Fatalf("drop-in id missing from enumeration: %v", ids)
	}
	s := NewSession(SessionConfig{Options: sessionOptions()})
	out, err := s.Experiment(ctx, "zz-custom")
	if err != nil || out != "custom mcf IPC" {
		t.Fatalf("drop-in render = %q, %v", out, err)
	}
	if st := s.Stats(); st.Cells != len(core.SchemeKinds()) {
		t.Errorf("drop-in requested %d cells, want %d", st.Cells, len(core.SchemeKinds()))
	}

	// The compatibility path refuses needs it cannot satisfy instead of
	// fabricating them — both a missing matrix and one whose name matches
	// but whose cell set does not.
	if _, err := RenderExperiment("zz-custom", map[string]*Matrix{}); err == nil {
		t.Error("RenderExperiment without the needed matrix must error")
	}
	wrong, err := RunMatrix([]core.Config{core.SmallConfig()}, core.SchemeKinds(),
		sessionBenches(t, "525.x264"), sessionOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RenderExperiment("table1", map[string]*Matrix{"boom": wrong}); err == nil {
		t.Error("RenderExperiment must reject a matrix that only shares the needed name")
	}

	// Registration mistakes fail loudly at init time.
	for name, bad := range map[string]ExperimentSpec{
		"duplicate":  spec,
		"empty id":   {Render: spec.Render},
		"nil render": {ID: "zz-nil"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s registration must panic", name)
				}
			}()
			RegisterExperiment(bad)
		}()
	}
}

// TestEngineSingleFlight: requests for one key — concurrent (coalesced
// in flight) or sequential (cache-served) — run the simulator exactly
// once.
func TestEngineSingleFlight(t *testing.T) {
	e := NewEngine(NewMemoryCache(0), "test/v1")
	job := CellJob{Config: core.MegaConfig(), Scheme: core.KindBaseline,
		Bench: sessionBenches(t, "505.mcf")[0]}
	opts := sessionOptions()

	const callers = 8
	var wg sync.WaitGroup
	runs := make([]Run, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs, err := e.RunCells(context.Background(), []CellJob{job}, opts)
			if err != nil {
				t.Error(err)
				return
			}
			runs[i] = rs[0]
		}()
	}
	wg.Wait()
	st := e.Stats()
	if st.Simulated != 1 || st.Hits != callers-1 || st.Cells != callers {
		t.Errorf("single-flight stats %+v, want 1 simulated / %d hits", st, callers-1)
	}
	for i := 1; i < callers; i++ {
		if runs[i] != runs[0] {
			t.Errorf("caller %d got a different run", i)
		}
	}
}

// TestRunMatrixEmptySchemes pins the preserved wrapper corner: an
// explicitly empty scheme set sweeps nothing and errors nowhere.
func TestRunMatrixEmptySchemes(t *testing.T) {
	m, err := RunMatrix([]core.Config{core.MegaConfig()}, nil,
		sessionBenches(t, "505.mcf"), sessionOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRuns() != 0 {
		t.Errorf("empty scheme set ran %d cells", m.NumRuns())
	}
	if _, ok := m.Cell("mega", core.KindBaseline); ok {
		t.Error("empty sweep must have no cells")
	}
}
