package harness

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

func wireTestJob(t *testing.T) (CellJob, Options) {
	t.Helper()
	prof, err := workloads.ByName("505.mcf")
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.WarmupCycles = 500
	opts.MeasureCycles = 1500
	return CellJob{Config: core.MegaConfig(), Scheme: core.KindSTTIssue, Bench: prof}, opts
}

// TestWireJobKeyIdentity: a job that crosses the wire as JSON must resolve
// to the same content-addressed key on the other side — this identity is
// what lets a farm server and its clients agree on cell keys without ever
// exchanging them for the compute path.
func TestWireJobKeyIdentity(t *testing.T) {
	job, opts := wireTestJob(t)
	e := NewEngine(nil, "")
	want := e.Key(job, opts)

	data, err := json.Marshal(WireJob(job, opts))
	if err != nil {
		t.Fatal(err)
	}
	var w CellJobWire
	if err := json.Unmarshal(data, &w); err != nil {
		t.Fatal(err)
	}
	gotJob, gotOpts, err := w.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Key(gotJob, gotOpts); got != want {
		t.Fatalf("wire round trip changed the cell key: %s -> %s", want, got)
	}
	if gotJob.Scheme != job.Scheme || gotJob.Bench.Name != job.Bench.Name {
		t.Fatalf("wire round trip changed the job: %+v", gotJob)
	}
	if gotOpts.WarmupCycles != opts.WarmupCycles || gotOpts.MeasureCycles != opts.MeasureCycles {
		t.Fatalf("wire round trip changed the options: %+v", gotOpts)
	}
}

// TestWireJobValidation: corrupted or incompatible wire jobs must be
// rejected at Resolve, not crash inside the simulator.
func TestWireJobValidation(t *testing.T) {
	job, opts := wireTestJob(t)
	good := WireJob(job, opts)

	cases := []struct {
		name   string
		mutate func(*CellJobWire)
	}{
		{"unknown scheme", func(w *CellJobWire) { w.Scheme = "no-such-scheme" }},
		{"invalid config", func(w *CellJobWire) { w.Config.Width = 99 }},
		{"empty profile", func(w *CellJobWire) { w.Profile = workloads.Profile{} }},
		{"zero window", func(w *CellJobWire) { w.Measure = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := good
			tc.mutate(&w)
			if _, _, err := w.Resolve(); err == nil {
				t.Fatalf("%s: Resolve accepted a bad wire job", tc.name)
			}
		})
	}
	if _, _, err := good.Resolve(); err != nil {
		t.Fatalf("unmutated wire job rejected: %v", err)
	}
}

// resolverCache wraps a CellCache and records ResolveCell traffic — a
// stand-in for the farm HTTPCache in compute mode.
type resolverCache struct {
	inner    CellCache
	resolves int
	serve    func(key string, job CellJob, opts Options) (Run, bool, error)
}

func (c *resolverCache) Get(key string) (Run, bool, error) { return c.inner.Get(key) }
func (c *resolverCache) Put(key string, r Run) error       { return c.inner.Put(key, r) }
func (c *resolverCache) ResolveCell(key string, job CellJob, opts Options) (Run, bool, error) {
	c.resolves++
	return c.serve(key, job, opts)
}

// TestEngineUsesCellResolver: the engine must route lookups through
// ResolveCell when the cache implements it, count a successful resolution
// as a cache hit, and degrade a resolver error to local simulation.
func TestEngineUsesCellResolver(t *testing.T) {
	job, opts := wireTestJob(t)

	// First: a resolver that serves the cell (as a remote farm would).
	ref, err := RunOne(job.Config, job.Scheme, job.Bench, opts)
	if err != nil {
		t.Fatal(err)
	}
	served := &resolverCache{
		inner: NewMemoryCache(0),
		serve: func(string, CellJob, Options) (Run, bool, error) { return ref, true, nil },
	}
	e := NewEngine(served, "")
	res, err := e.Cell(job, opts)
	if err != nil {
		t.Fatal(err)
	}
	if served.resolves != 1 || !res.Cached {
		t.Fatalf("resolver not used: resolves=%d cached=%v", served.resolves, res.Cached)
	}
	if st := e.Stats(); st.Hits != 1 || st.Simulated != 0 {
		t.Fatalf("resolved cell not counted as a hit: %+v", st)
	}

	// Second: a failing resolver must degrade to local simulation.
	failing := &resolverCache{
		inner: NewMemoryCache(0),
		serve: func(string, CellJob, Options) (Run, bool, error) {
			return Run{}, false, errTestUnwritable
		},
	}
	e2 := NewEngine(failing, "")
	res2, err := e2.Cell(job, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cached {
		t.Fatal("failed resolution reported as cached")
	}
	if st := e2.Stats(); st.Simulated != 1 {
		t.Fatalf("failed resolution did not simulate locally: %+v", st)
	}
	if res2.Run.IPC != ref.IPC || res2.Run.Cycles != ref.Cycles {
		t.Fatalf("local re-simulation diverged: %+v vs %+v", res2.Run, ref)
	}
}

// TestTieredCacheResolveCellBackfill: a tiered stack must thread the job
// through to resolver layers and backfill faster layers with the result —
// the path a remote-computed cell takes into the local memory layer.
func TestTieredCacheResolveCellBackfill(t *testing.T) {
	job, opts := wireTestJob(t)
	ref, err := RunOne(job.Config, job.Scheme, job.Bench, opts)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemoryCache(0)
	remote := &resolverCache{
		inner: NewMemoryCache(0),
		serve: func(string, CellJob, Options) (Run, bool, error) { return ref, true, nil },
	}
	tiered := NewTieredCache(mem, remote)

	r, ok, err := tiered.ResolveCell("k1", job, opts)
	if err != nil || !ok {
		t.Fatalf("ResolveCell: ok=%v err=%v", ok, err)
	}
	if r.IPC != ref.IPC {
		t.Fatalf("ResolveCell returned wrong run: %+v", r)
	}
	if remote.resolves != 1 {
		t.Fatalf("remote layer resolves = %d, want 1", remote.resolves)
	}
	// The hit must have been promoted into the memory layer: a second
	// lookup never reaches the resolver.
	if _, ok, _ := mem.Get("k1"); !ok {
		t.Fatal("hit not backfilled into the faster layer")
	}
	if _, ok, _ := tiered.ResolveCell("k1", job, opts); !ok {
		t.Fatal("second lookup missed")
	}
	if remote.resolves != 1 {
		t.Fatalf("second lookup reached the resolver (resolves=%d)", remote.resolves)
	}
}

// TestWireExperimentKeyIdentity: a whole experiment that crosses the wire
// must enumerate to exactly the per-cell key set the sender derives — the
// identity that lets streamed cells be validated against locally computed
// keys without ever sending keys in the request.
func TestWireExperimentKeyIdentity(t *testing.T) {
	_, opts := wireTestJob(t)
	spec := MatrixSpec{
		Name:    "wire-identity",
		Configs: []core.Config{core.SmallConfig(), core.MegaConfig()},
		Schemes: []core.SchemeKind{core.KindBaseline, core.KindSTTIssue, core.KindNDA},
	}
	for _, name := range []string{"505.mcf", "520.omnetpp"} {
		p, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		spec.Benches = append(spec.Benches, p)
	}
	want := map[string]bool{}
	for _, j := range enumerateJobs(spec.Configs, spec.Schemes, spec.Benches) {
		want[CellKey(j, opts)] = true
	}

	data, err := json.Marshal(WireExperiment(spec, opts))
	if err != nil {
		t.Fatal(err)
	}
	var w ExperimentJobWire
	if err := json.Unmarshal(data, &w); err != nil {
		t.Fatal(err)
	}
	jobs, wopts, err := w.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(want) {
		t.Fatalf("wire round trip enumerated %d cells, want %d", len(jobs), len(want))
	}
	for _, j := range jobs {
		if !want[CellKey(j, wopts)] {
			t.Fatalf("wire round trip invented cell key for %s/%s/%s", j.Config.Name, j.Scheme, j.Bench.Name)
		}
	}
}

// TestWireExperimentValidation: corrupted or oversized experiment requests
// are rejected at Resolve, never enumerated or simulated.
func TestWireExperimentValidation(t *testing.T) {
	_, opts := wireTestJob(t)
	prof, err := workloads.ByName("505.mcf")
	if err != nil {
		t.Fatal(err)
	}
	good := WireExperiment(MatrixSpec{
		Name:    "validate",
		Configs: []core.Config{core.SmallConfig()},
		Schemes: []core.SchemeKind{core.KindBaseline},
		Benches: []workloads.Profile{prof},
	}, opts)

	cases := []struct {
		name   string
		mutate func(*ExperimentJobWire)
	}{
		{"empty configs", func(w *ExperimentJobWire) { w.Configs = nil }},
		{"empty schemes", func(w *ExperimentJobWire) { w.Schemes = nil }},
		{"empty benches", func(w *ExperimentJobWire) { w.Benches = nil }},
		{"unknown scheme", func(w *ExperimentJobWire) { w.Schemes = []string{"no-such-scheme"} }},
		{"invalid config", func(w *ExperimentJobWire) { w.Configs[0].Width = 99 }},
		{"empty profile", func(w *ExperimentJobWire) { w.Benches = []workloads.Profile{{}} }},
		{"zero window", func(w *ExperimentJobWire) { w.Measure = 0 }},
		{"oversized product", func(w *ExperimentJobWire) {
			w.Benches = make([]workloads.Profile, maxWireCells+1)
			for i := range w.Benches {
				w.Benches[i] = prof
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := good
			w.Configs = append([]core.Config(nil), good.Configs...)
			tc.mutate(&w)
			if _, _, err := w.Resolve(); err == nil {
				t.Fatalf("%s: Resolve accepted a bad wire experiment", tc.name)
			}
		})
	}
	if jobs, _, err := good.Resolve(); err != nil || len(jobs) != 1 {
		t.Fatalf("unmutated wire experiment rejected: jobs=%d err=%v", len(jobs), err)
	}
}
