package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// runnerSuite is a 3-benchmark slice: enough jobs (cfgs × 4 schemes × 3)
// to exercise real interleaving without slowing the race-detector runs.
func runnerSuite(t *testing.T) []workloads.Profile {
	t.Helper()
	var out []workloads.Profile
	for _, name := range []string{"503.bwaves", "531.deepsjeng", "505.mcf"} {
		p, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

func runnerOptions(parallelism int) Options {
	o := DefaultOptions()
	o.WarmupCycles = 2_000
	o.MeasureCycles = 8_000
	o.Parallelism = parallelism
	return o
}

// TestRunMatrixParallelDeterministic is the engine's core guarantee: a
// parallel sweep produces byte-identical figures and identical matrix
// contents to a sequential one.
func TestRunMatrixParallelDeterministic(t *testing.T) {
	configs := []core.Config{core.SmallConfig(), core.MegaConfig()}
	suite := runnerSuite(t)

	seq, err := RunMatrix(configs, core.SchemeKinds(), suite, runnerOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunMatrix(configs, core.SchemeKinds(), suite, runnerOptions(8))
	if err != nil {
		t.Fatal(err)
	}

	for _, fig := range []struct{ name, a, b string }{
		{"Figure6", Figure6(seq), Figure6(par)},
		{"Figure7", Figure7(seq), Figure7(par)},
		{"Table1", Table1(seq), Table1(par)},
		{"Table3", Table3(seq), Table3(par)},
	} {
		if fig.a != fig.b {
			t.Errorf("%s differs between sequential and parallel runs:\n--- seq ---\n%s\n--- par ---\n%s",
				fig.name, fig.a, fig.b)
		}
	}
	for _, cfg := range configs {
		for _, kind := range core.SchemeKinds() {
			cs, ok1 := seq.Cell(cfg.Name, kind)
			cp, ok2 := par.Cell(cfg.Name, kind)
			if !ok1 || !ok2 {
				t.Fatalf("%s/%s: missing cell (seq %v, par %v)", cfg.Name, kind, ok1, ok2)
			}
			if cs.MeanIPC != cp.MeanIPC {
				t.Errorf("%s/%s: MeanIPC %v (seq) != %v (par)", cfg.Name, kind, cs.MeanIPC, cp.MeanIPC)
			}
			if len(cs.Runs) != len(cp.Runs) {
				t.Fatalf("%s/%s: run counts differ", cfg.Name, kind)
			}
			for i := range cs.Runs {
				if cs.Runs[i] != cp.Runs[i] {
					t.Errorf("%s/%s run %d differs:\nseq %+v\npar %+v", cfg.Name, kind, i, cs.Runs[i], cp.Runs[i])
				}
			}
		}
	}
}

// TestRunMatrixProgressIsOrderedAndComplete: per-cell summary lines are
// emitted in enumeration order regardless of scheduling, and the per-job
// lines cover every cell exactly once.
func TestRunMatrixProgressIsOrderedAndComplete(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	opts := runnerOptions(8)
	opts.Progress = func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	suite := runnerSuite(t)
	if _, err := RunMatrix([]core.Config{core.MegaConfig()}, core.SchemeKinds(), suite, opts); err != nil {
		t.Fatal(err)
	}
	var jobLines, cellLines []string
	for _, l := range lines {
		if strings.Contains(l, "mean IPC") {
			cellLines = append(cellLines, l)
		} else {
			jobLines = append(jobLines, l)
		}
	}
	ns := len(core.SchemeKinds())
	if want := ns * len(suite); len(jobLines) != want {
		t.Errorf("job progress lines = %d, want %d", len(jobLines), want)
	}
	if len(cellLines) != ns {
		t.Fatalf("cell summary lines = %d, want %d", len(cellLines), ns)
	}
	for i, kind := range core.SchemeKinds() {
		if !strings.Contains(cellLines[i], kind.String()) {
			t.Errorf("cell summary %d = %q, want scheme %s (enumeration order)", i, cellLines[i], kind)
		}
	}
}

// TestRunMatrixCancellation: a cancelled context aborts the sweep and
// reports the context's error, not a partial matrix.
func TestRunMatrixCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the sweep starts
	m, err := RunMatrixContext(ctx, []core.Config{core.MegaConfig()},
		core.SchemeKinds(), runnerSuite(t), runnerOptions(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m != nil {
		t.Error("cancelled sweep must not return a matrix")
	}
}

// TestRunMatrixMidSweepCancellation cancels from a progress callback once
// the first job completes; the sweep must stop early and report the
// cancellation.
func TestRunMatrixMidSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := runnerOptions(2)
	opts.Progress = func(string, ...any) { cancel() }
	m, err := RunMatrixContext(ctx, []core.Config{core.SmallConfig(), core.MegaConfig()},
		core.SchemeKinds(), runnerSuite(t), opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m != nil {
		t.Error("cancelled sweep must not return a matrix")
	}
}

// TestFilteredSweepRendersOnlySweptSchemes: figures built from a filtered
// matrix must omit unswept schemes instead of fabricating 0.000 columns.
func TestFilteredSweepRendersOnlySweptSchemes(t *testing.T) {
	m, err := RunMatrix([]core.Config{core.MegaConfig()},
		[]core.SchemeKind{core.KindBaseline, core.KindNDA}, runnerSuite(t), runnerOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	got := m.SecureSchemes()
	if len(got) != 1 || got[0] != core.KindNDA {
		t.Fatalf("Matrix.SecureSchemes() = %v, want [nda]", got)
	}
	fig := Figure6(m)
	if strings.Contains(fig, "stt-rename") || strings.Contains(fig, "stt-issue") {
		t.Errorf("filtered Figure6 renders unswept schemes:\n%s", fig)
	}
	if !strings.Contains(fig, "nda") || strings.Contains(fig, "0.000") {
		t.Errorf("filtered Figure6 missing real nda data:\n%s", fig)
	}
}

// TestRunMatrixFailFast: one impossible job (a proxy that halts inside the
// measurement window) fails the whole sweep with that job's error.
func TestRunMatrixFailFast(t *testing.T) {
	suite := runnerSuite(t)
	bad, err := workloads.ByName("503.bwaves")
	if err != nil {
		t.Fatal(err)
	}
	bad.Name = "000.bad"
	bad.Iters = 8 // halts long before the window closes
	suite = append(suite, bad)
	m, err := RunMatrix([]core.Config{core.MegaConfig()}, core.SchemeKinds(), suite, runnerOptions(8))
	if err == nil {
		t.Fatal("sweep with an impossible job must fail")
	}
	if !strings.Contains(err.Error(), "000.bad") {
		t.Errorf("error %q does not name the failing benchmark", err)
	}
	if m != nil {
		t.Error("failed sweep must not return a matrix")
	}
}
