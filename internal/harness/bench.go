package harness

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"
)

// The throughput reporter. Simulator speed — simulated cycles delivered
// per wall-clock second — is the practical budget behind every experiment:
// the paper's fixed-cycle-window methodology multiplies any per-cycle cost
// by ~14M simulated cycles per full matrix. BENCH_core.json records each
// measurement so the gain (or regression) of a core change lands in the
// repository's performance trajectory; CI uploads it as an artifact.

// BenchSchema identifies the BENCH_core.json layout.
const BenchSchema = "shadowbinding-bench/v1"

// BenchReport is one throughput measurement.
type BenchReport struct {
	// Label names the workload measured, e.g. "default-matrix-j1".
	Label string `json:"label"`
	// Cells is the number of (config, scheme, benchmark) runs covered.
	Cells int `json:"cells"`
	// SimCycles is the total simulated cycles executed (warmup included).
	SimCycles uint64 `json:"sim_cycles"`
	// WallSeconds is the wall-clock time the measurement took.
	WallSeconds float64 `json:"wall_seconds"`
	// SimCyclesPerSec is the headline throughput metric.
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
	// Parallelism is the worker-pool size used (1 isolates core speed).
	Parallelism int `json:"parallelism"`
	// AllocsPerCycle, when present, is heap allocations per simulated
	// cycle across the measurement — the cycle loop's allocation budget.
	// Steady-state simulation allocates nothing, so the figure is
	// dominated by per-cell setup (core construction, program build) and
	// stays far below one; a hot-loop allocation source reappearing shows
	// up as a multiple. Zero means the benchmark did not record it.
	AllocsPerCycle float64 `json:"allocs_per_cycle,omitempty"`
}

// WithAllocs attaches the allocation metric: mallocs heap allocations
// observed across the measurement, amortized over the simulated cycles.
func (r BenchReport) WithAllocs(mallocs uint64) BenchReport {
	if r.SimCycles > 0 {
		r.AllocsPerCycle = float64(mallocs) / float64(r.SimCycles)
	}
	return r
}

// NewBenchReport assembles a report from raw counters. parallelism is
// normalized the way the worker pool resolves it — zero or negative means
// all CPUs, and a pool never runs wider than it has cells — so the
// recorded j-field reflects the workers actually used.
func NewBenchReport(label string, cells int, simCycles uint64, wall time.Duration, parallelism int) BenchReport {
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	if cells > 0 && parallelism > cells {
		parallelism = cells
	}
	r := BenchReport{
		Label:       label,
		Cells:       cells,
		SimCycles:   simCycles,
		WallSeconds: wall.Seconds(),
		Parallelism: parallelism,
	}
	if r.WallSeconds > 0 {
		r.SimCyclesPerSec = float64(simCycles) / r.WallSeconds
	}
	return r
}

// String renders the report as a one-line human summary.
func (r BenchReport) String() string {
	s := fmt.Sprintf("%s: %d cells, %d simulated cycles in %.2fs = %.0f simCycles/s (j=%d)",
		r.Label, r.Cells, r.SimCycles, r.WallSeconds, r.SimCyclesPerSec, r.Parallelism)
	if r.AllocsPerCycle > 0 {
		s += fmt.Sprintf(", %.4f allocs/simCycle", r.AllocsPerCycle)
	}
	return s
}

// BenchFile is the on-disk layout of BENCH_core.json: the individual runs
// plus their aggregate throughput.
type BenchFile struct {
	Schema          string        `json:"schema"`
	Runs            []BenchReport `json:"runs"`
	SimCycles       uint64        `json:"sim_cycles"`
	WallSeconds     float64       `json:"wall_seconds"`
	SimCyclesPerSec float64       `json:"sim_cycles_per_sec"`
}

// WriteBenchReport writes one or more reports to path as BENCH_core.json.
func WriteBenchReport(path string, runs ...BenchReport) error {
	f := BenchFile{Schema: BenchSchema, Runs: runs}
	for _, r := range runs {
		f.SimCycles += r.SimCycles
		f.WallSeconds += r.WallSeconds
	}
	if f.WallSeconds > 0 {
		f.SimCyclesPerSec = float64(f.SimCycles) / f.WallSeconds
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: marshal bench report: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// finitePositive reports whether v is a usable throughput number.
func finitePositive(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}

// Validate checks a bench file's structural sanity: the schema tag must
// match and every throughput figure — the aggregate and each run's — must
// be finite and positive. A NaN, Inf, or non-positive sim_cycles_per_sec
// means the measurement was corrupt (zero wall time, overflowed counter),
// and must not land in the performance trajectory.
func (f BenchFile) Validate() error {
	if f.Schema != BenchSchema {
		return fmt.Errorf("harness: bench schema %q, want %q", f.Schema, BenchSchema)
	}
	if !finitePositive(f.SimCyclesPerSec) {
		return fmt.Errorf("harness: aggregate sim_cycles_per_sec %v is not finite and positive", f.SimCyclesPerSec)
	}
	for i, r := range f.Runs {
		if !finitePositive(r.SimCyclesPerSec) {
			return fmt.Errorf("harness: run %d (%q): sim_cycles_per_sec %v is not finite and positive", i, r.Label, r.SimCyclesPerSec)
		}
	}
	return nil
}

// ReadBenchReport loads a BENCH_core.json file.
func ReadBenchReport(path string) (BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchFile{}, err
	}
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return BenchFile{}, fmt.Errorf("harness: parse %s: %w", path, err)
	}
	return f, nil
}

// TotalSimCycles sums the simulated cycles (warmup + measurement) behind
// every run in the matrix.
func (m *Matrix) TotalSimCycles() uint64 {
	var total uint64
	for _, row := range m.cells {
		for _, cell := range row {
			for _, r := range cell.Runs {
				total += r.TotalCycles
			}
		}
	}
	return total
}

// NumRuns returns the number of (config, scheme, benchmark) cells.
func (m *Matrix) NumRuns() int {
	return len(m.Configs) * len(m.Schemes) * len(m.Benches)
}
