package harness

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenMatrix is the tiny 2-benchmark matrix behind the figure-emitter
// golden tests: all four Table 1 configurations, every registered scheme,
// one memory-bound and one high-ILP proxy, short fixed windows. Small
// enough to run in under a second, rich enough that every emitter path
// (normalization, trends, per-scheme columns) renders real numbers.
//
// These goldens double as the byte-identical oracle for scheduler and
// pipeline refactors: a perf-only change to internal/core must leave every
// golden untouched.
var (
	goldenOnce sync.Once
	goldenM    *Matrix
	goldenErr  error
)

func goldenMatrix(t *testing.T) *Matrix {
	t.Helper()
	goldenOnce.Do(func() {
		var benches []workloads.Profile
		for _, name := range []string{"505.mcf", "525.x264"} {
			p, err := workloads.ByName(name)
			if err != nil {
				goldenErr = err
				return
			}
			benches = append(benches, p)
		}
		opts := DefaultOptions()
		opts.WarmupCycles = 2_000
		opts.MeasureCycles = 8_000
		goldenM, goldenErr = RunMatrix(core.Configs(), core.SchemeKinds(), benches, opts)
	})
	if goldenErr != nil {
		t.Fatal(goldenErr)
	}
	return goldenM
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to generate): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s output diverged from golden; if the model change is intentional, regenerate with -update\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestTable1Golden(t *testing.T) {
	checkGolden(t, "table1", Table1(goldenMatrix(t)))
}

func TestFigure6Golden(t *testing.T) {
	checkGolden(t, "figure6", Figure6(goldenMatrix(t)))
}

func TestFigure7Golden(t *testing.T) {
	checkGolden(t, "figure7", Figure7(goldenMatrix(t)))
}

// TestFigureExtGolden pins the extended 6-scheme comparison — the one
// figure whose columns include the extension schemes (DoM, InvisiSpec) —
// so the CI goldens-drift step catches silent changes to it just like
// the paper figures.
func TestFigureExtGolden(t *testing.T) {
	checkGolden(t, "figure_ext", FigureExt(goldenMatrix(t)))
}

// TestPaperFiguresPinPaperRoster: the paper-reproduction figures render
// exactly the paper's scheme columns even though the matrix sweeps every
// registered scheme; the extension schemes appear only in FigureExt.
func TestPaperFiguresPinPaperRoster(t *testing.T) {
	m := goldenMatrix(t)
	for name, out := range map[string]string{
		"fig6":   Figure6(m),
		"fig7":   Figure7(m),
		"fig8":   Figure8(m),
		"fig10":  Figure10(m),
		"table3": Table3(m),
	} {
		for _, ext := range []string{"dom", "invisispec"} {
			if strings.Contains(out, ext) {
				t.Errorf("%s renders extension scheme %q; paper figures are pinned to the paper roster (use fig_ext)", name, ext)
			}
		}
	}
	ext := FigureExt(m)
	for _, want := range []string{"stt-rename", "stt-issue", "nda", "dom", "invisispec"} {
		if !strings.Contains(ext, want) {
			t.Errorf("fig_ext missing scheme %q", want)
		}
	}

	// The synthesis-model artifacts are deliberately all-scheme: the
	// analytical timing/area/power model covers every registered scheme
	// (FigureExt's performance column depends on it), so Figure 9 and
	// Table 4 grow a row per drop-in rather than pinning to the paper
	// roster.
	for name, out := range map[string]string{
		"fig9":   Figure9(core.Configs()),
		"table4": Table4(),
	} {
		for _, want := range []string{"dom", "invisispec"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s missing extension scheme %q; synthesis artifacts cover every registered scheme", name, want)
			}
		}
	}
}
