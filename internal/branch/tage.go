package branch

// TAGELite is a small TAGE predictor: a bimodal base plus tagged tables
// indexed with geometrically increasing history lengths. It stands in for
// the MultiperspectivePerceptronTAGE64KB configuration the paper uses on
// gem5 (Table 2): the structure (tagged geometric history matching with a
// bimodal fallback) is TAGE's; the sizing is scaled to the simulator.
type TAGELite struct {
	base   *Bimodal
	tables []tageTable

	// Statistics.
	ProviderHits uint64
	BaseHits     uint64
}

type tageTable struct {
	entries  []tageEntry
	mask     uint64
	histLen  uint
	tagShift uint
}

type tageEntry struct {
	tag    uint16
	ctr    counter
	useful uint8
	valid  bool
}

// NewTAGELite builds a TAGE predictor with the given per-table entry count
// (power of two) and history lengths such as {8, 16, 32, 64}.
func NewTAGELite(tableSize int, histLens []uint) *TAGELite {
	if tableSize <= 0 || tableSize&(tableSize-1) != 0 {
		panic("branch: TAGE table size must be a power of two")
	}
	t := &TAGELite{base: NewBimodal(tableSize * 2)}
	for i, hl := range histLens {
		tbl := tageTable{
			entries:  make([]tageEntry, tableSize),
			mask:     uint64(tableSize - 1),
			histLen:  hl,
			tagShift: uint(i + 3),
		}
		t.tables = append(t.tables, tbl)
	}
	return t
}

// NewDefaultTAGE returns the predictor used by the simulator's default core
// configurations.
func NewDefaultTAGE() *TAGELite {
	return NewTAGELite(1024, []uint{8, 16, 32, 64})
}

// foldHistory compresses hist's low n bits into width chunks XORed together.
func foldHistory(hist uint64, n, width uint) uint64 {
	h := hist
	if n < 64 {
		h &= (1 << n) - 1
	}
	var folded uint64
	for h != 0 {
		folded ^= h & ((1 << width) - 1)
		h >>= width
	}
	return folded
}

func (t *tageTable) index(pc, hist uint64) uint64 {
	return (pc ^ foldHistory(hist, t.histLen, 10) ^ (pc >> 5)) & t.mask
}

func (t *tageTable) tag(pc, hist uint64) uint16 {
	return uint16((pc>>2 ^ foldHistory(hist, t.histLen, 8) ^ pc<<t.tagShift) & 0xff)
}

// lookup returns the matching entry, or nil.
func (t *tageTable) lookup(pc, hist uint64) *tageEntry {
	e := &t.entries[t.index(pc, hist)]
	if e.valid && e.tag == t.tag(pc, hist) {
		return e
	}
	return nil
}

// provider finds the longest-history matching table, or -1 for the base.
func (t *TAGELite) provider(pc, hist uint64) (int, *tageEntry) {
	for i := len(t.tables) - 1; i >= 0; i-- {
		if e := t.tables[i].lookup(pc, hist); e != nil {
			return i, e
		}
	}
	return -1, nil
}

// Predict implements DirPredictor.
func (t *TAGELite) Predict(pc, hist uint64) bool {
	if i, e := t.provider(pc, hist); i >= 0 {
		t.ProviderHits++
		return e.ctr.taken()
	}
	t.BaseHits++
	return t.base.Predict(pc, hist)
}

// Update implements DirPredictor. On a mispredict by the provider it
// allocates an entry in a longer-history table, stealing a non-useful slot.
func (t *TAGELite) Update(pc, hist uint64, taken bool) {
	pi, pe := t.provider(pc, hist)
	var predicted bool
	if pi >= 0 {
		predicted = pe.ctr.taken()
		pe.ctr = pe.ctr.update(taken)
		if predicted == taken {
			if pe.useful < 3 {
				pe.useful++
			}
		} else if pe.useful > 0 {
			pe.useful--
		}
	} else {
		predicted = t.base.Predict(pc, hist)
		t.base.Update(pc, hist, taken)
	}
	if predicted == taken {
		return
	}
	// Mispredicted: allocate in the next longer table with a free or
	// non-useful entry.
	for i := pi + 1; i < len(t.tables); i++ {
		tbl := &t.tables[i]
		e := &tbl.entries[tbl.index(pc, hist)]
		if !e.valid || e.useful == 0 {
			*e = tageEntry{tag: tbl.tag(pc, hist), ctr: initCounter(taken), valid: true}
			return
		}
		e.useful--
	}
}

func initCounter(taken bool) counter {
	if taken {
		return 2
	}
	return 1
}
