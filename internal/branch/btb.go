package branch

// BTB is a direct-mapped branch target buffer. It remembers the target of
// taken control instructions so fetch can redirect without decoding.
type BTB struct {
	entries []btbEntry
	mask    uint64

	Hits   uint64
	Misses uint64
}

type btbEntry struct {
	pc     uint64
	target uint64
	valid  bool
	isRet  bool
	isCall bool
}

// NewBTB builds a BTB with a power-of-two entry count.
func NewBTB(size int) *BTB {
	if size <= 0 || size&(size-1) != 0 {
		panic("branch: BTB size must be a power of two")
	}
	return &BTB{entries: make([]btbEntry, size), mask: uint64(size - 1)}
}

// Lookup returns the predicted target for the control instruction at pc,
// whether the entry is a call or a return, and whether the BTB hit.
func (b *BTB) Lookup(pc uint64) (target uint64, isCall, isRet, hit bool) {
	e := &b.entries[pc&b.mask]
	if e.valid && e.pc == pc {
		b.Hits++
		return e.target, e.isCall, e.isRet, true
	}
	b.Misses++
	return 0, false, false, false
}

// Update installs or refreshes the entry for pc.
func (b *BTB) Update(pc, target uint64, isCall, isRet bool) {
	b.entries[pc&b.mask] = btbEntry{pc: pc, target: target, valid: true, isCall: isCall, isRet: isRet}
}

// Invalidate drops pc's entry if it is the one resident in pc's slot. A
// branch that commits not-taken calls this so its stale taken-target entry
// cannot keep forcing predicted-taken redirects; a slot holding a different
// instruction's entry is left alone.
func (b *BTB) Invalidate(pc uint64) {
	e := &b.entries[pc&b.mask]
	if e.valid && e.pc == pc {
		*e = btbEntry{}
	}
}

// RAS is a circular return-address stack. Checkpoints save only the top
// index (the conventional low-cost design); deeper corruption after a
// misspeculated call/return sequence is possible and tolerated, exactly as
// in hardware.
type RAS struct {
	stack []uint64
	top   int

	Pushes uint64
	Pops   uint64
}

// NewRAS builds a return-address stack with the given depth.
func NewRAS(depth int) *RAS {
	if depth <= 0 {
		panic("branch: RAS depth must be positive")
	}
	return &RAS{stack: make([]uint64, depth), top: -1}
}

// Push records a return address (on a call).
func (r *RAS) Push(addr uint64) {
	r.Pushes++
	r.top = (r.top + 1) % len(r.stack)
	r.stack[r.top] = addr
}

// Pop predicts a return target. ok is false when the stack is logically
// empty (top has wrapped to -1 territory is not tracked; an empty RAS
// returns its last garbage, flagged via ok only before any push).
func (r *RAS) Pop() (addr uint64, ok bool) {
	if r.top < 0 {
		return 0, false
	}
	r.Pops++
	addr = r.stack[r.top]
	r.top--
	if r.top < -1 {
		r.top = -1
	}
	return addr, true
}

// Top returns the current top index for checkpointing.
func (r *RAS) Top() int { return r.top }

// Restore resets the top index from a checkpoint.
func (r *RAS) Restore(top int) { r.top = top }
