// Package branch implements the front-end prediction structures: direction
// predictors (bimodal, gshare, and a TAGE-lite standing in for the paper's
// MultiperspectivePerceptronTAGE configuration), a branch target buffer,
// and a return-address stack.
//
// Global history is owned by the core's fetch stage: the fetch unit passes
// its current (speculative) history to Predict, records that history in the
// branch's micro-op, and passes the same history back to Update at
// resolution so indices match. On a squash the core restores the history
// from the branch checkpoint.
package branch

// DirPredictor predicts conditional branch directions.
type DirPredictor interface {
	// Predict returns the predicted direction for the branch at pc given
	// the global history at prediction time.
	Predict(pc, hist uint64) bool
	// Update trains the predictor with the resolved outcome, using the
	// history that was live when the branch was predicted.
	Update(pc, hist uint64, taken bool)
}

// counter is a 2-bit saturating counter; values 2 and 3 predict taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is a PC-indexed table of 2-bit counters.
type Bimodal struct {
	table []counter
	mask  uint64
}

// NewBimodal builds a bimodal predictor with a power-of-two table size.
func NewBimodal(size int) *Bimodal {
	if size <= 0 || size&(size-1) != 0 {
		panic("branch: bimodal size must be a power of two")
	}
	t := make([]counter, size)
	for i := range t {
		t[i] = 1 // weakly not-taken
	}
	return &Bimodal{table: t, mask: uint64(size - 1)}
}

// Predict implements DirPredictor.
func (b *Bimodal) Predict(pc, _ uint64) bool { return b.table[pc&b.mask].taken() }

// Update implements DirPredictor.
func (b *Bimodal) Update(pc, _ uint64, taken bool) {
	i := pc & b.mask
	b.table[i] = b.table[i].update(taken)
}

// Gshare XORs the PC with global history to index its counter table.
type Gshare struct {
	table    []counter
	mask     uint64
	histBits uint
}

// NewGshare builds a gshare predictor with a power-of-two table size and
// the given number of history bits folded into the index.
func NewGshare(size int, histBits uint) *Gshare {
	if size <= 0 || size&(size-1) != 0 {
		panic("branch: gshare size must be a power of two")
	}
	t := make([]counter, size)
	for i := range t {
		t[i] = 1
	}
	return &Gshare{table: t, mask: uint64(size - 1), histBits: histBits}
}

func (g *Gshare) index(pc, hist uint64) uint64 {
	h := hist & ((1 << g.histBits) - 1)
	return (pc ^ h) & g.mask
}

// Predict implements DirPredictor.
func (g *Gshare) Predict(pc, hist uint64) bool { return g.table[g.index(pc, hist)].taken() }

// Update implements DirPredictor.
func (g *Gshare) Update(pc, hist uint64, taken bool) {
	i := g.index(pc, hist)
	g.table[i] = g.table[i].update(taken)
}
