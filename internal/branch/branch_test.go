package branch

import (
	"testing"
	"testing/quick"
)

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Errorf("counter = %d, want saturated 3", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Errorf("counter = %d, want saturated 0", c)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(256)
	pc := uint64(0x40)
	for i := 0; i < 4; i++ {
		b.Update(pc, 0, true)
	}
	if !b.Predict(pc, 0) {
		t.Error("bimodal failed to learn always-taken")
	}
	other := uint64(0x41)
	if b.Predict(other, 0) {
		t.Error("untrained PC should default weakly not-taken")
	}
}

func TestGshareLearnsHistoryPattern(t *testing.T) {
	g := NewGshare(1024, 10)
	pc := uint64(0x100)
	// Alternating branch: taken iff last outcome was not-taken. Bimodal
	// cannot learn this; gshare with 1 bit of history can.
	hist := uint64(0)
	correct := 0
	for i := 0; i < 200; i++ {
		taken := i%2 == 0
		pred := g.Predict(pc, hist)
		if pred == taken && i >= 100 {
			correct++
		}
		g.Update(pc, hist, taken)
		hist = hist<<1 | b2u(taken)
	}
	if correct < 95 {
		t.Errorf("gshare learned alternating pattern on %d/100 late predictions", correct)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func TestTAGELearnsLongHistory(t *testing.T) {
	tg := NewDefaultTAGE()
	pc := uint64(0x200)
	// Pattern with period 7 over history: needs >2 history bits.
	pattern := []bool{true, true, false, true, false, false, true}
	hist := uint64(0)
	correct, total := 0, 0
	for i := 0; i < 2000; i++ {
		taken := pattern[i%len(pattern)]
		pred := tg.Predict(pc, hist)
		if i >= 1000 {
			total++
			if pred == taken {
				correct++
			}
		}
		tg.Update(pc, hist, taken)
		hist = hist<<1 | b2u(taken)
	}
	if correct*100/total < 90 {
		t.Errorf("TAGE accuracy %d/%d on period-7 pattern", correct, total)
	}
}

func TestTAGEAllocatesOnMispredict(t *testing.T) {
	tg := NewDefaultTAGE()
	pc := uint64(0x300)
	hist := uint64(0xABCD)
	// Force a mispredict against the (not-taken-default) base.
	tg.Update(pc, hist, true)
	found := false
	for i := range tg.tables {
		if tg.tables[i].lookup(pc, hist) != nil {
			found = true
		}
	}
	if !found {
		t.Error("no tagged entry allocated after mispredict")
	}
}

func TestFoldHistory(t *testing.T) {
	if foldHistory(0, 64, 10) != 0 {
		t.Error("fold of zero must be zero")
	}
	if foldHistory(0xFFFF, 8, 8) != 0xFF {
		t.Errorf("fold must mask to n bits first")
	}
	// Folding is deterministic.
	a := foldHistory(0x123456789ABCDEF0, 64, 10)
	b := foldHistory(0x123456789ABCDEF0, 64, 10)
	if a != b {
		t.Error("fold not deterministic")
	}
}

func TestBTBLookupUpdate(t *testing.T) {
	btb := NewBTB(64)
	if _, _, _, hit := btb.Lookup(0x10); hit {
		t.Error("cold BTB must miss")
	}
	btb.Update(0x10, 0x99, false, false)
	target, isCall, isRet, hit := btb.Lookup(0x10)
	if !hit || target != 0x99 || isCall || isRet {
		t.Errorf("lookup = (%#x,%v,%v,%v)", target, isCall, isRet, hit)
	}
	// Aliasing PC (same index, different tag) must miss.
	if _, _, _, hit := btb.Lookup(0x10 + 64); hit {
		t.Error("aliased PC must miss on tag")
	}
	btb.Update(0x10+64, 0x77, true, false)
	if _, _, _, hit := btb.Lookup(0x10); hit {
		t.Error("direct-mapped entry must be replaced")
	}
}

func TestBTBInvalidate(t *testing.T) {
	btb := NewBTB(64)
	btb.Update(0x10, 0x99, false, false)
	btb.Invalidate(0x10)
	if _, _, _, hit := btb.Lookup(0x10); hit {
		t.Error("invalidated entry must miss")
	}
	// Invalidating a PC whose slot holds a different instruction's entry
	// must leave that entry alone.
	btb.Update(0x20, 0x55, false, false)
	btb.Invalidate(0x20 + 64)
	if _, _, _, hit := btb.Lookup(0x20); !hit {
		t.Error("invalidate of an aliasing PC evicted an unrelated entry")
	}
	// Invalidating a cold slot is a no-op.
	btb.Invalidate(0x3000)
}

func TestRASPushPop(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS must not pop")
	}
	r.Push(10)
	r.Push(20)
	if a, ok := r.Pop(); !ok || a != 20 {
		t.Errorf("pop = %d, want 20", a)
	}
	if a, ok := r.Pop(); !ok || a != 10 {
		t.Errorf("pop = %d, want 10", a)
	}
}

func TestRASCheckpointRestore(t *testing.T) {
	r := NewRAS(8)
	r.Push(1)
	saved := r.Top()
	r.Push(2)
	r.Push(3)
	r.Restore(saved)
	if a, ok := r.Pop(); !ok || a != 1 {
		t.Errorf("after restore pop = %d, want 1", a)
	}
}

func TestRASWrapAround(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites slot of 1
	if a, _ := r.Pop(); a != 3 {
		t.Errorf("pop = %d, want 3", a)
	}
}

// Property: predictors are deterministic — same (pc,hist) sequence gives
// the same predictions.
func TestPredictorDeterminism(t *testing.T) {
	run := func(seed uint64) []bool {
		tg := NewDefaultTAGE()
		var out []bool
		hist := uint64(0)
		for i := 0; i < 100; i++ {
			pc := (seed*1103515245 + uint64(i)) % 512
			taken := (seed>>uint(i%13))&1 == 1
			out = append(out, tg.Predict(pc, hist))
			tg.Update(pc, hist, taken)
			hist = hist<<1 | b2u(taken)
		}
		return out
	}
	f := func(seed uint64) bool {
		a, b := run(seed), run(seed)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
