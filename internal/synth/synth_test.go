package synth

import (
	"math"
	"testing"

	"repro/internal/core"
)

func within(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

// TestBaselineFrequencies checks the calibrated baseline clock against the
// paper's Figure 9 axis values.
func TestBaselineFrequencies(t *testing.T) {
	want := map[string]float64{"small": 160, "medium": 127, "large": 98, "mega": 81}
	for _, cfg := range core.Configs() {
		f := FrequencyMHz(cfg, core.KindBaseline)
		if !within(f, want[cfg.Name], 1.0) {
			t.Errorf("%s baseline = %.1f MHz, want %.0f", cfg.Name, f, want[cfg.Name])
		}
	}
}

// TestRelativeTimingMega checks the headline Figure 9/10 numbers: on the
// Mega BOOM, STT-Rename reaches only ~80% of baseline frequency, STT-Issue
// ~87%, and NDA matches or slightly beats baseline.
func TestRelativeTimingMega(t *testing.T) {
	mega := core.MegaConfig()
	cases := []struct {
		kind core.SchemeKind
		want float64
		tol  float64
	}{
		{core.KindSTTRename, 0.79, 0.02},
		{core.KindSTTIssue, 0.87, 0.02},
		{core.KindNDA, 1.00, 0.01},
	}
	for _, c := range cases {
		got := RelativeTiming(mega, c.kind)
		if !within(got, c.want, c.tol) {
			t.Errorf("mega %s relative timing = %.3f, want %.2f±%.2f", c.kind, got, c.want, c.tol)
		}
	}
}

// TestTimingScalingShapes checks the paper's scaling claims across widths
// (Section 8.3): STT-Rename's relative timing degrades monotonically and
// steeply with width; STT-Issue pays a higher flat cost on small cores but
// scales more gracefully; NDA is width-independent.
func TestTimingScalingShapes(t *testing.T) {
	cfgs := core.Configs()
	var relRename, relIssue, relNDA []float64
	for _, cfg := range cfgs {
		relRename = append(relRename, RelativeTiming(cfg, core.KindSTTRename))
		relIssue = append(relIssue, RelativeTiming(cfg, core.KindSTTIssue))
		relNDA = append(relNDA, RelativeTiming(cfg, core.KindNDA))
	}
	for i := 1; i < len(relRename); i++ {
		if relRename[i] > relRename[i-1]+1e-9 {
			t.Errorf("STT-Rename relative timing must not improve with width: %v", relRename)
		}
	}
	// Small cores: STT-Issue is worse than STT-Rename (flat cost).
	if relIssue[0] >= relRename[0] {
		t.Errorf("on Small, STT-Issue (%.3f) must be worse than STT-Rename (%.3f)", relIssue[0], relRename[0])
	}
	// Wide cores: the ordering flips (Section 4.4).
	if relIssue[3] <= relRename[3] {
		t.Errorf("on Mega, STT-Issue (%.3f) must beat STT-Rename (%.3f)", relIssue[3], relRename[3])
	}
	for _, r := range relNDA {
		if !within(r, 1.0, 0.01) {
			t.Errorf("NDA relative timing must stay ≈1.0, got %v", relNDA)
		}
	}
}

// TestAreaRatiosMega checks Table 4 (LUTs and FFs at Mega).
func TestAreaRatiosMega(t *testing.T) {
	mega := core.MegaConfig()
	cases := []struct {
		kind            core.SchemeKind
		wantLUT, wantFF float64
		tolLUT, tolFF   float64
	}{
		{core.KindSTTRename, 1.060, 1.094, 0.01, 0.012},
		{core.KindSTTIssue, 1.059, 1.039, 0.01, 0.012},
		{core.KindNDA, 0.980, 1.027, 0.01, 0.012},
	}
	for _, c := range cases {
		lut, ff := RelativeArea(mega, c.kind)
		if !within(lut, c.wantLUT, c.tolLUT) {
			t.Errorf("%s LUT ratio = %.3f, want %.3f", c.kind, lut, c.wantLUT)
		}
		if !within(ff, c.wantFF, c.tolFF) {
			t.Errorf("%s FF ratio = %.3f, want %.3f", c.kind, ff, c.wantFF)
		}
	}
}

// TestAreaStructure checks structural facts: STT-Rename's FF overhead
// exceeds STT-Issue's (checkpoints, Section 8.5), and NDA saves LUTs.
func TestAreaStructure(t *testing.T) {
	for _, cfg := range core.Configs() {
		_, ffRen := RelativeArea(cfg, core.KindSTTRename)
		_, ffIss := RelativeArea(cfg, core.KindSTTIssue)
		lutNDA, _ := RelativeArea(cfg, core.KindNDA)
		if ffRen <= ffIss {
			t.Errorf("%s: STT-Rename FF ratio (%.3f) must exceed STT-Issue's (%.3f)", cfg.Name, ffRen, ffIss)
		}
		if lutNDA >= 1.0 {
			t.Errorf("%s: NDA must reduce LUTs, got %.3f", cfg.Name, lutNDA)
		}
		if BaselineArea(cfg).LUTs <= 0 || BaselineArea(cfg).FFs <= 0 {
			t.Errorf("%s: non-positive baseline area", cfg.Name)
		}
	}
	// Baseline area grows with width.
	a := BaselineArea(core.SmallConfig())
	b := BaselineArea(core.MegaConfig())
	if b.LUTs <= a.LUTs || b.FFs <= a.FFs {
		t.Error("baseline area must grow with configuration size")
	}
}

// TestPowerRatios checks Table 4's power column.
func TestPowerRatios(t *testing.T) {
	mega := core.MegaConfig()
	cases := []struct {
		kind core.SchemeKind
		want float64
	}{
		{core.KindBaseline, 1.0},
		{core.KindSTTRename, 1.008},
		{core.KindSTTIssue, 1.026},
		{core.KindNDA, 0.936},
	}
	for _, c := range cases {
		got := RelativePower(mega, c.kind)
		if !within(got, c.want, 0.012) {
			t.Errorf("%s power ratio = %.3f, want %.3f", c.kind, got, c.want)
		}
	}
}

func TestPowerWithActivityBlends(t *testing.T) {
	mega := core.MegaConfig()
	base := core.Stats{Committed: 1000, IssuedUops: 1100}
	// A scheme run with heavy nop waste must draw more power than the
	// structural estimate alone.
	wasteful := core.Stats{Committed: 1000, IssuedUops: 1100, TaintNopSlots: 400}
	p := RelativePowerWithActivity(mega, core.KindSTTIssue, wasteful, base)
	if p <= RelativePower(mega, core.KindSTTIssue) {
		t.Errorf("activity blend must raise power for nop-heavy runs: %.3f", p)
	}
	// Zero stats fall back to the structural estimate.
	p0 := RelativePowerWithActivity(mega, core.KindNDA, core.Stats{}, core.Stats{})
	if !within(p0, RelativePower(mega, core.KindNDA), 1e-9) {
		t.Errorf("zero-stats blend must equal structural estimate")
	}
}

func TestChainDepthGrowsWithWidth(t *testing.T) {
	prev := 0
	for _, cfg := range core.Configs() {
		d := ChainDepth(cfg)
		if d <= prev && cfg.Width > 1 {
			t.Errorf("%s: chain depth %d did not grow", cfg.Name, d)
		}
		prev = d
	}
}

// TestFrequencyPeriodConsistency: frequency and period must be inverses,
// and unnamed configs fall back to the width model sanely.
func TestFrequencyPeriodConsistency(t *testing.T) {
	cfg := core.MegaConfig()
	cfg.Name = "custom-4wide"
	p := PeriodPs(cfg, core.KindBaseline)
	f := FrequencyMHz(cfg, core.KindBaseline)
	if !within(p*f, 1e6, 1) {
		t.Errorf("period × frequency = %.1f, want 1e6", p*f)
	}
	if p < BaselinePeriodPs(core.SmallConfig()) {
		t.Error("4-wide custom config cannot be faster than Small")
	}
}
