// Package synth is the repository's stand-in for the paper's FPGA
// synthesis flow (AMD Vitis targeting an Alveo U250): an analytical model
// of timing (achievable frequency), area (LUTs/FFs), and power for each
// (configuration, scheme) pair.
//
// The model is structural, not a per-point curve fit: each scheme's cost
// is computed from the logic it adds, with technology constants calibrated
// once against the paper's synthesis results (Figure 9 for baseline
// frequency and the Mega-relative timing; Table 4 for area and power at
// the Mega configuration). The paper's scaling arguments then emerge from
// the structure:
//
//   - STT-Rename adds a same-cycle YRoT comparator chain to rename whose
//     depth grows with rename width and whose per-stage fan-in grows with
//     the group size, i.e. delay ∝ W·(W−1) (Section 4.1, Figure 3). Narrow
//     cores hide it in rename-stage slack; wide cores cannot.
//   - STT-Issue adds a flat taint-unit lookup plus a YRoT broadcast network
//     whose fan-out grows with issue width, placed in the timing-critical
//     issue stage where there is no slack (Section 4.4).
//   - NDA only splits the load writeback/broadcast buses and removes the
//     speculative L1-hit wakeup logic, a slight simplification — it meets
//     or beats baseline timing (Section 5, Figure 9).
package synth

import "repro/internal/core"

// Technology constants (picoseconds), calibrated against Figure 9.
const (
	// Baseline clock period model: period ≈ basePeriodConst + basePeriodPerW·W.
	// Reproduces the paper's achieved baseline frequencies: Small ≈160 MHz,
	// Medium ≈127 MHz, Large ≈98 MHz, Mega ≈81 MHz.
	basePeriodConst = 4000.0
	basePeriodPerW  = 2050.0

	// STT-Rename: per-unit delay of the rename-group YRoT chain, W·(W−1)
	// units deep-with-fanin, and the rename-stage slack that absorbs it on
	// narrow cores.
	sttRenameChainPs = 450.0
	renameSlackPs    = 2130.0

	// STT-Issue: flat taint-unit lookup plus broadcast fan-out per issue
	// slot beyond the first; the issue stage has no slack.
	sttIssueFlatPs    = 260.0
	sttIssuePerSlotPs = 550.0

	// NDA: removing speculative-hit wakeup slightly shortens the select
	// loop; the split broadcast bus costs less than is saved.
	ndaDeltaPs = -50.0

	// DoM: an L1 tag-probe qualifier on load select (hit/miss
	// disambiguation before the access may proceed) — flat, width-
	// independent, mostly hidden behind the existing select logic.
	domProbePs = 140.0

	// InvisiSpec: the per-load speculative-buffer CAM on the load path
	// plus exposure arbitration per additional memory port.
	invisiFlatPs    = 210.0
	invisiPerPortPs = 90.0
)

// BaselinePeriodPs returns the modeled baseline critical path for a
// configuration. Named Table 1 configurations use calibrated values; other
// configurations fall back to the width model.
func BaselinePeriodPs(cfg core.Config) float64 {
	switch cfg.Name {
	case "small":
		return 6250 // 160 MHz
	case "medium":
		return 7874 // 127 MHz
	case "large":
		return 10204 // 98 MHz
	case "mega":
		return 12346 // 81 MHz
	}
	return basePeriodConst + basePeriodPerW*float64(cfg.Width)
}

// AddedDelayPs returns the critical-path delay a scheme adds to the
// configuration's pipeline, after slack absorption. Negative values model
// removed logic (NDA).
func AddedDelayPs(cfg core.Config, kind core.SchemeKind) float64 {
	w := float64(cfg.Width)
	switch kind {
	case core.KindBaseline:
		return 0
	case core.KindSTTRename:
		chain := sttRenameChainPs * w * (w - 1)
		if chain <= renameSlackPs {
			return 0
		}
		return chain - renameSlackPs
	case core.KindSTTIssue:
		// The broadcast fan-out scales with the ALU issue slots beyond the
		// first (IssueWidth = width + 2 includes the two memory slots).
		slots := float64(cfg.IssueWidth)
		return sttIssueFlatPs + sttIssuePerSlotPs*(slots-3)
	case core.KindNDA:
		return ndaDeltaPs
	case core.KindDoM:
		return domProbePs
	case core.KindInvisiSpec:
		return invisiFlatPs + invisiPerPortPs*float64(cfg.MemPorts-1)
	}
	return 0
}

// PeriodPs returns the modeled critical path with the scheme integrated.
func PeriodPs(cfg core.Config, kind core.SchemeKind) float64 {
	return BaselinePeriodPs(cfg) + AddedDelayPs(cfg, kind)
}

// FrequencyMHz returns the modeled achieved frequency (Figure 9).
func FrequencyMHz(cfg core.Config, kind core.SchemeKind) float64 {
	return 1e6 / PeriodPs(cfg, kind)
}

// RelativeTiming returns the scheme's frequency normalized to the
// baseline's for the same configuration (Figure 10).
func RelativeTiming(cfg core.Config, kind core.SchemeKind) float64 {
	return BaselinePeriodPs(cfg) / PeriodPs(cfg, kind)
}

// ChainDepth returns the worst-case same-cycle YRoT comparison chain
// length for a rename group of the configuration's width — the structure
// highlighted in Figure 3. It exists for the rename-chain ablation bench.
func ChainDepth(cfg core.Config) int {
	return cfg.Width*(cfg.Width-1)/2 + 1
}
