package synth

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// SummaryTable renders the synthesis model's headline numbers for every
// Table 1 configuration and registered scheme in one place: absolute
// frequency, relative timing (Figures 9/10), and relative LUTs, FFs, and
// power (Table 4). It is the Table-1-style companion the harness figures
// draw their synthesis inputs from, pinned as a golden file so any
// coefficient change is a reviewed diff.
func SummaryTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Synthesis model summary (per Table 1 configuration and scheme)\n")
	fmt.Fprintf(&b, "%-8s %-12s %9s %8s %8s %8s %8s\n",
		"config", "scheme", "freq-MHz", "timing", "LUTs", "FFs", "power")
	for _, cfg := range core.Configs() {
		for _, kind := range core.SchemeKinds() {
			luts, ffs := RelativeArea(cfg, kind)
			fmt.Fprintf(&b, "%-8s %-12s %9.1f %8.3f %8.3f %8.3f %8.3f\n",
				cfg.Name, kind,
				FrequencyMHz(cfg, kind), RelativeTiming(cfg, kind),
				luts, ffs, RelativePower(cfg, kind))
		}
	}
	b.WriteString("\ntiming/LUTs/FFs/power are relative to the same configuration's baseline\n")
	return b.String()
}
