package synth

import "repro/internal/core"

// Area is an FPGA resource estimate.
type Area struct {
	LUTs float64
	FFs  float64
}

// yrotBits is the stored width of a YRoT tag (enough to disambiguate
// in-flight loads: log2 of the load-queue depth plus generation bits).
const yrotBits = 9.0

// Per-structure resource coefficients. These are model constants chosen so
// the baseline Mega core lands in a plausible FPGA budget and the scheme
// deltas reproduce Table 4's ratios; the *composition* (which structures a
// scheme adds) is taken directly from the microarchitectures in Sections
// 4 and 5.
const (
	lutPerWidth    = 7200.0 // decode/rename/bypass per pipeline lane
	lutPerIQEntry  = 60.0   // wakeup/select CAM per entry
	lutPerROBEntry = 85.0
	lutPerPhysReg  = 42.0
	lutPerLSQEntry = 105.0 // address match CAMs
	lutPerMemPort  = 900.0
	lutFixed       = 9000.0 // front end, caches control, misc

	ffPerWidth    = 3000.0
	ffPerIQEntry  = 70.0
	ffPerROBEntry = 110.0
	ffPerPhysReg  = 80.0 // 64-bit data plus status
	ffPerLSQEntry = 120.0
	ffFixed       = 8000.0
)

// BaselineArea estimates the unmodified core's resources.
func BaselineArea(cfg core.Config) Area {
	w := float64(cfg.Width)
	return Area{
		LUTs: lutFixed + lutPerWidth*w + lutPerIQEntry*float64(cfg.IQSize) +
			lutPerROBEntry*float64(cfg.ROBSize) + lutPerPhysReg*float64(cfg.PhysRegs) +
			lutPerLSQEntry*float64(cfg.LQSize+cfg.SQSize) + lutPerMemPort*float64(cfg.MemPorts),
		FFs: ffFixed + ffPerWidth*w + ffPerIQEntry*float64(cfg.IQSize) +
			ffPerROBEntry*float64(cfg.ROBSize) + ffPerPhysReg*float64(cfg.PhysRegs) +
			ffPerLSQEntry*float64(cfg.LQSize+cfg.SQSize),
	}
}

// SchemeDelta returns the resources a scheme adds (or removes) on top of
// the baseline core.
func SchemeDelta(cfg core.Config, kind core.SchemeKind) Area {
	w := float64(cfg.Width)
	iq := float64(cfg.IQSize)
	switch kind {
	case core.KindSTTRename:
		// Taint RAT (32 × yrotBits), one taint-RAT checkpoint per branch
		// tag (the FF-heavy part the paper attributes STT-Rename's FF
		// overhead to, Section 8.5), the W·(W−1) comparator/mux chain, and
		// the YRoT broadcast into rename and every issue slot.
		ckptFFs := float64(cfg.MaxBranches) * 32 * yrotBits
		return Area{
			LUTs: 115*w*(w-1) + 32*iq + 32*yrotBits + 890,
			FFs:  32*yrotBits + ckptFFs + 150*w,
		}
	case core.KindSTTIssue:
		// Physical-register taint table, YRoT field per issue-queue entry,
		// per-slot taint-unit comparators, and the same broadcast network.
		physFFs := float64(cfg.PhysRegs) * yrotBits
		return Area{
			LUTs: 270*float64(cfg.IssueWidth) + 40*iq + 395,
			FFs:  physFFs + iq*yrotBits + 60*float64(cfg.IssueWidth),
		}
	case core.KindNDA:
		// Removed speculative L1-hit wakeup logic minus the split
		// writeback/broadcast bus and per-load pending-broadcast state.
		return Area{
			LUTs: -42*iq + 347*float64(cfg.MemPorts),
			FFs:  30*iq + 60*float64(cfg.MemPorts) + 1*float64(cfg.LQSize),
		}
	case core.KindDoM:
		// Delay-on-Miss is nearly pure control: the tag-probe qualifier
		// per memory port and a delayed/parked bit per load-queue entry.
		return Area{
			LUTs: 120*float64(cfg.MemPorts) + 6*float64(cfg.LQSize),
			FFs:  2 * float64(cfg.LQSize),
		}
	case core.KindInvisiSpec:
		// The per-load speculative buffer: 64-bit data plus an address
		// tag per load-queue entry (the FF-heavy part), its CAM, and the
		// exposure state machine per memory port.
		return Area{
			LUTs: 30*float64(cfg.LQSize) + 250*float64(cfg.MemPorts),
			FFs:  110 * float64(cfg.LQSize),
		}
	}
	return Area{}
}

// TotalArea returns the core's resources with the scheme integrated.
func TotalArea(cfg core.Config, kind core.SchemeKind) Area {
	b := BaselineArea(cfg)
	d := SchemeDelta(cfg, kind)
	return Area{LUTs: b.LUTs + d.LUTs, FFs: b.FFs + d.FFs}
}

// RelativeArea returns LUT and FF counts normalized to baseline (Table 4).
func RelativeArea(cfg core.Config, kind core.SchemeKind) (luts, ffs float64) {
	b := BaselineArea(cfg)
	t := TotalArea(cfg, kind)
	return t.LUTs / b.LUTs, t.FFs / b.FFs
}
