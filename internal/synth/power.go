package synth

import "repro/internal/core"

// Power model: total power at the paper's fixed 50 MHz synthesis point
// splits into a static/clock-tree share proportional to area and a dynamic
// share proportional to switching activity. The activity factors encode
// each scheme's behavioural signature, measurable in the core's counters:
//
//   - STT-Rename blocks tainted transmitters before selection (less
//     datapath switching) but continuously writes taint-RAT checkpoints;
//     the effects nearly cancel.
//   - STT-Issue issues nops for tainted transmitters and replays them,
//     wasting datapath switching: activity slightly above baseline.
//   - NDA removes speculative wakeup/replay traffic and batches load
//     broadcasts, a clear activity reduction.
//
// Calibrated against Table 4: power ratios 1.008 / 1.026 / 0.936.
const (
	staticShare  = 0.35
	dynamicShare = 0.65
)

// activityFactor is the modeled switching activity relative to baseline.
func activityFactor(kind core.SchemeKind) float64 {
	switch kind {
	case core.KindSTTRename:
		return 0.980
	case core.KindSTTIssue:
		return 1.008
	case core.KindNDA:
		return 0.912
	case core.KindDoM:
		// Delayed misses suppress wrong-path memory traffic outright;
		// the replayed issue slots cost less than the traffic saved.
		return 0.940
	case core.KindInvisiSpec:
		// Every speculative miss is accessed twice (invisible fetch,
		// then exposure): dynamic activity above baseline.
		return 1.060
	}
	return 1.0
}

// RelativePower returns the scheme's power normalized to baseline at the
// fixed 50 MHz synthesis point (Table 4).
func RelativePower(cfg core.Config, kind core.SchemeKind) float64 {
	luts, _ := RelativeArea(cfg, kind)
	return staticShare*luts + dynamicShare*activityFactor(kind)
}

// RelativePowerWithActivity refines the dynamic share using measured
// counters from a run: the ratio of issued micro-ops (including wasted
// nop slots) per committed instruction against the baseline run's. This
// ties the power model to simulated behaviour for the ablation benches.
func RelativePowerWithActivity(cfg core.Config, kind core.SchemeKind, scheme, base core.Stats) float64 {
	luts, _ := RelativeArea(cfg, kind)
	act := activityFactor(kind)
	if base.Committed > 0 && scheme.Committed > 0 && base.IssuedUops > 0 {
		baseWork := float64(base.IssuedUops) / float64(base.Committed)
		schemeWork := float64(scheme.IssuedUops+scheme.TaintNopSlots) / float64(scheme.Committed)
		// Blend the structural factor with the measured issue activity.
		act = 0.5*act + 0.5*(act*schemeWork/baseWork)
	}
	return staticShare*luts + dynamicShare*act
}
