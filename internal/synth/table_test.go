package synth

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/summary.golden")

// TestSummaryTableGolden pins the full area/power/frequency table, in the
// same -update regeneration convention as the harness figure goldens: a
// coefficient or composition change in the synthesis model must show up
// as a reviewed golden diff, not drift silently.
func TestSummaryTableGolden(t *testing.T) {
	got := SummaryTable()
	path := filepath.Join("testdata", "summary.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to generate): %v", err)
	}
	if got != string(want) {
		t.Errorf("summary table diverged from golden; if the model change is intentional, regenerate with -update\ngot:\n%s\nwant:\n%s", got, want)
	}
}
