// Package trace derives TraceDoctor-style key performance indicators from
// the core's raw counters (the paper, Section 7, extracts committed
// instructions, latencies, stalls and their causes with TraceDoctor; this
// package plays that role for the simulator) and renders per-run reports
// and baseline-vs-scheme comparisons such as the Section 9.2 exchange2
// forwarding-error analysis.
package trace

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
)

// Report is a digested view of one run's counters.
type Report struct {
	Scheme core.SchemeKind
	IPC    float64

	// Per-kilo-instruction rates.
	MispredictsPKI  float64
	FwdErrorsPKI    float64 // memory-ordering violations
	FlushesPKI      float64
	SquashedPKI     float64
	DelayedBcastPKI float64
	TaintBlocksPKI  float64 // STT-Rename masked selections
	NopSlotsPKI     float64 // STT-Issue wasted slots

	// Stall shares (fraction of rename-stall events by cause).
	StallShare map[string]float64

	Raw core.Stats
}

func pki(n, insts uint64) float64 {
	if insts == 0 {
		return 0
	}
	return 1000 * float64(n) / float64(insts)
}

// New digests raw counters into a Report.
func New(kind core.SchemeKind, s core.Stats) Report {
	r := Report{
		Scheme:          kind,
		IPC:             s.IPC(),
		MispredictsPKI:  pki(s.Mispredicts, s.Committed),
		FwdErrorsPKI:    pki(s.MemOrderViolations, s.Committed),
		FlushesPKI:      pki(s.MemOrderFlushes, s.Committed),
		SquashedPKI:     pki(s.SquashedUops, s.Committed),
		DelayedBcastPKI: pki(s.DelayedBroadcasts, s.Committed),
		TaintBlocksPKI:  pki(s.TaintBlockedSelects, s.Committed),
		NopSlotsPKI:     pki(s.TaintNopSlots, s.Committed),
		Raw:             s,
	}
	stalls := map[string]uint64{
		"rob":        s.RenameStallROB,
		"issueq":     s.RenameStallIQ,
		"loadq":      s.RenameStallLQ,
		"storeq":     s.RenameStallSQ,
		"physregs":   s.RenameStallPhys,
		"checkpoint": s.RenameStallCkpt,
		"frontend":   s.RenameStallEmpty,
	}
	var total uint64
	for _, v := range stalls {
		total += v
	}
	r.StallShare = make(map[string]float64, len(stalls))
	for k, v := range stalls {
		if total > 0 {
			r.StallShare[k] = float64(v) / float64(total)
		} else {
			r.StallShare[k] = 0
		}
	}
	return r
}

// stallOrder fixes the rendering order for determinism.
var stallOrder = []string{"rob", "issueq", "loadq", "storeq", "physregs", "checkpoint", "frontend"}

// String renders the report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scheme %-11s IPC %.4f\n", r.Scheme, r.IPC)
	fmt.Fprintf(&b, "  mispredicts/ki %8.2f   fwd errors/ki %8.3f   flushes/ki %8.3f\n",
		r.MispredictsPKI, r.FwdErrorsPKI, r.FlushesPKI)
	fmt.Fprintf(&b, "  squashed/ki    %8.2f   delayed-bcast/ki %5.2f\n", r.SquashedPKI, r.DelayedBcastPKI)
	fmt.Fprintf(&b, "  taint-blocks/ki %7.2f   nop-slots/ki  %8.2f\n", r.TaintBlocksPKI, r.NopSlotsPKI)
	if r.renameStallTotal() == 0 {
		fmt.Fprintf(&b, "  rename stalls: none\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  rename stalls:")
	for _, k := range stallOrder {
		fmt.Fprintf(&b, " %s %.0f%%", k, 100*r.StallShare[k])
	}
	fmt.Fprintf(&b, "\n")
	return b.String()
}

// renameStallTotal sums the raw rename-stall counters — zero means the
// stall-share row would be a meaningless line of 0% entries.
func (r Report) renameStallTotal() uint64 {
	s := r.Raw
	return s.RenameStallROB + s.RenameStallIQ + s.RenameStallLQ + s.RenameStallSQ +
		s.RenameStallPhys + s.RenameStallCkpt + s.RenameStallEmpty
}

// Comparison relates a scheme run to its baseline — the tool behind the
// paper's exchange2 observation that STT-Rename suffered ~1350× the
// store-to-load forwarding errors of NDA (Section 9.2).
type Comparison struct {
	Base, Scheme Report

	IPCRatio       float64
	FwdErrorFactor float64 // scheme forwarding errors / baseline's
}

// Compare builds a Comparison.
func Compare(base, scheme Report) Comparison {
	c := Comparison{Base: base, Scheme: scheme}
	if base.IPC > 0 {
		c.IPCRatio = scheme.IPC / base.IPC
	}
	switch {
	case base.FwdErrorsPKI > 0:
		c.FwdErrorFactor = scheme.FwdErrorsPKI / base.FwdErrorsPKI
	case scheme.FwdErrorsPKI > 0:
		// Baseline saw zero forwarding errors but the scheme saw some: no
		// finite factor exists. Report +Inf (rendered "n/a (base 0)"), not
		// the raw violation count masquerading as a ratio.
		c.FwdErrorFactor = math.Inf(1)
	default:
		c.FwdErrorFactor = 1
	}
	return c
}

// String renders the comparison.
func (c Comparison) String() string {
	factor := fmt.Sprintf("%.1fx", c.FwdErrorFactor)
	if math.IsInf(c.FwdErrorFactor, 1) {
		factor = "∞ — n/a (base 0)"
	}
	return fmt.Sprintf("%s vs baseline: IPC ratio %.3f, forwarding-error factor %s, taint-blocks/ki %.1f, delayed-bcast/ki %.1f",
		c.Scheme.Scheme, c.IPCRatio, factor, c.Scheme.TaintBlocksPKI, c.Scheme.DelayedBcastPKI)
}
