package trace

import (
	"bytes"
	"fmt"
	"html/template"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
)

// The trace viewer: renders an Analysis as one self-contained HTML page
// (inline SVG, no external assets) with three panes — pipeline occupancy
// over time, per-stage-transition latency histograms, and the timeline of
// scheme-inserted delays — plus stat tiles and data tables. Geometry is
// computed here; the template only lays out precomputed markup.

// chart geometry shared by the line charts.
const (
	lineW, lineH                          = 920.0, 240.0
	histW, histH                          = 440.0, 190.0
	padLeft, padTop, padRight, padBot     = 52.0, 14.0, 14.0, 30.0
	histPadLeft, histPadTop, histPadRight = 42.0, 12.0, 8.0
	histPadBot                            = 40.0
	maxBarW                               = 24.0
)

// seriesVM is one plotted series.
type seriesVM struct {
	Name  string
	Slot  int // categorical slot 1..4 → CSS var --series-N
	Line  template.HTML
	Area  template.HTML
	Total uint64
}

// tickVM is one axis tick (position in px, label).
type tickVM struct {
	Pos   float64
	Label string
}

// lineChartVM is a line/area chart with hover crosshair data.
type lineChartVM struct {
	ID     string
	W, H   float64
	PlotX0 float64
	PlotX1 float64
	PlotY0 float64
	PlotY1 float64
	Series []seriesVM
	YTicks []tickVM
	XTicks []tickVM
	// Data is the JSON the crosshair reads: {cycles:[...], series:[{name, values:[...]}]}.
	Data template.JS
}

// histVM is one latency histogram small-multiple.
type histVM struct {
	Name    string
	Count   uint64
	Mean    float64
	Max     uint64
	Bars    template.HTML
	YTicks  []tickVM
	XLabels []tickVM
}

// tileVM is one stat tile.
type tileVM struct {
	Label string
	Value string
}

// tableVM is a generic two-column data table.
type tableVM struct {
	Title string
	Cols  []string
	Rows  [][]string
}

type viewModel struct {
	Meta      Meta
	Tiles     []tileVM
	Occupancy *lineChartVM
	Hists     []histVM
	Delays    *lineChartVM
	DelayNote string
	Tables    []tableVM
	LineW     float64
	LineH     float64
	HistW     float64
	HistH     float64
}

// RenderHTML renders the analysis as a self-contained HTML page.
func RenderHTML(a Analysis) ([]byte, error) {
	vm := buildViewModel(a)
	var buf bytes.Buffer
	if err := viewerTmpl.Execute(&buf, vm); err != nil {
		return nil, fmt.Errorf("trace: render viewer: %w", err)
	}
	return buf.Bytes(), nil
}

// RenderTraceFile decodes a JSONL trace file and renders the viewer page.
func RenderTraceFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	meta, recs, err := DecodeAll(f)
	if err != nil {
		return nil, err
	}
	return RenderHTML(Analyze(meta, recs))
}

// ServeTrace serves the viewer for path on addr, re-rendering the file on
// every request so a refreshed browser picks up a rewritten trace.
func ServeTrace(addr, path string) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		page, err := RenderTraceFile(path)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write(page)
	})
	return http.ListenAndServe(addr, mux)
}

func buildViewModel(a Analysis) viewModel {
	vm := viewModel{
		Meta:  a.Meta,
		LineW: lineW, LineH: lineH, HistW: histW, HistH: histH,
	}
	vm.Tiles = []tileVM{
		{"cycles", fmt.Sprintf("%d – %d", a.MinCycle, a.MaxCycle)},
		{"uops traced", itoa(uint64(a.Uops))},
		{"commits", itoa(a.Commits)},
		{"squashes", itoa(a.Squashes)},
		{"peak in-flight", itoa(uint64(a.PeakInFlight))},
		{"events", itoa(uint64(a.Records))},
	}

	if len(a.Occupancy) > 0 {
		occ := buildLineChart("occ", []DelaySeries{{
			Name: "in-flight uops", Bins: a.Occupancy,
		}}, true)
		vm.Occupancy = &occ
	}

	for i, h := range a.Hists {
		vm.Hists = append(vm.Hists, buildHist(h, i))
	}

	if len(a.Delays) > 0 {
		d := buildLineChart("delays", a.Delays, false)
		vm.Delays = &d
	} else {
		vm.DelayNote = "No scheme delay events in this trace (the baseline inserts none)."
	}

	// Data tables — the accessibility channel for every chart.
	if len(a.StageCounts) > 0 {
		t := tableVM{Title: "Stage events", Cols: []string{"stage", "events"}}
		for _, s := range a.StageCounts {
			t.Rows = append(t.Rows, []string{s.Stage, itoa(s.Count)})
		}
		vm.Tables = append(vm.Tables, t)
	}
	if len(a.AnnotCounts) > 0 {
		t := tableVM{Title: "Annotations", Cols: []string{"annotation", "events"}}
		for _, s := range a.AnnotCounts {
			t.Rows = append(t.Rows, []string{s.Annot, itoa(s.Count)})
		}
		vm.Tables = append(vm.Tables, t)
	}
	if len(a.Hists) > 0 {
		t := tableVM{Title: "Stage latencies", Cols: []string{"transition", "uops", "mean cycles", "max cycles"}}
		for _, h := range a.Hists {
			t.Rows = append(t.Rows, []string{h.Name, itoa(h.Count), fmt.Sprintf("%.2f", h.Mean), itoa(h.Max)})
		}
		vm.Tables = append(vm.Tables, t)
	}
	return vm
}

// buildLineChart lays out one or more series as 2px lines (plus a 10%
// area wash when single-series) over hairline gridlines.
func buildLineChart(id string, series []DelaySeries, area bool) lineChartVM {
	ch := lineChartVM{
		ID: id, W: lineW, H: lineH,
		PlotX0: padLeft, PlotX1: lineW - padRight,
		PlotY0: padTop, PlotY1: lineH - padBot,
	}
	if len(series) == 0 || len(series[0].Bins) == 0 {
		return ch
	}
	bins := series[0].Bins
	minC, maxC := bins[0].Cycle, bins[len(bins)-1].Cycle
	var yMax float64
	for _, s := range series {
		for _, p := range s.Bins {
			if p.Value > yMax {
				yMax = p.Value
			}
		}
	}
	yMax = niceCeil(yMax)
	if yMax == 0 {
		yMax = 1
	}
	plotW, plotH := ch.PlotX1-ch.PlotX0, ch.PlotY1-ch.PlotY0
	xOf := func(c uint64) float64 {
		if maxC == minC {
			return ch.PlotX0
		}
		return ch.PlotX0 + plotW*float64(c-minC)/float64(maxC-minC)
	}
	yOf := func(v float64) float64 { return ch.PlotY1 - plotH*v/yMax }

	for si, s := range series {
		var line strings.Builder
		for i, p := range s.Bins {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&line, "%s%.1f %.1f", cmd, xOf(p.Cycle), yOf(p.Value))
		}
		sv := seriesVM{Name: s.Name, Slot: si + 1, Line: template.HTML(line.String()), Total: s.Total}
		if area && len(series) == 1 {
			ar := line.String() + fmt.Sprintf("L%.1f %.1fL%.1f %.1fZ",
				xOf(s.Bins[len(s.Bins)-1].Cycle), ch.PlotY1, xOf(s.Bins[0].Cycle), ch.PlotY1)
			sv.Area = template.HTML(ar)
		}
		ch.Series = append(ch.Series, sv)
	}

	for i := 0; i <= 4; i++ {
		v := yMax * float64(i) / 4
		ch.YTicks = append(ch.YTicks, tickVM{Pos: yOf(v), Label: fmtNum(v)})
	}
	for i := 0; i <= 5; i++ {
		c := minC + uint64(float64(maxC-minC)*float64(i)/5)
		ch.XTicks = append(ch.XTicks, tickVM{Pos: xOf(c), Label: itoa(c)})
	}

	// Crosshair data: bin cycles plus each series' values.
	var data strings.Builder
	data.WriteString(`{"x0":` + fmtF(ch.PlotX0) + `,"x1":` + fmtF(ch.PlotX1) + `,"cycles":[`)
	for i, p := range bins {
		if i > 0 {
			data.WriteByte(',')
		}
		data.WriteString(strconv.FormatUint(p.Cycle, 10))
	}
	data.WriteString(`],"series":[`)
	for si, s := range series {
		if si > 0 {
			data.WriteByte(',')
		}
		data.WriteString(`{"name":` + strconv.Quote(s.Name) + `,"values":[`)
		for i, p := range s.Bins {
			if i > 0 {
				data.WriteByte(',')
			}
			data.WriteString(strconv.FormatFloat(p.Value, 'f', 1, 64))
		}
		data.WriteString(`]}`)
	}
	data.WriteString(`]}`)
	ch.Data = template.JS(data.String())
	return ch
}

// buildHist lays out one histogram: ≤24px bars with 4px rounded tops
// anchored to the baseline, 2px surface gaps between bars.
func buildHist(h LatencyHist, idx int) histVM {
	vm := histVM{Name: h.Name, Count: h.Count, Mean: h.Mean, Max: h.Max}
	n := len(h.Buckets)
	if n == 0 {
		return vm
	}
	var yMaxU uint64
	for _, c := range h.Buckets {
		if c > yMaxU {
			yMaxU = c
		}
	}
	yMax := niceCeil(float64(yMaxU))
	if yMax == 0 {
		yMax = 1
	}
	plotX0, plotX1 := histPadLeft, histW-histPadRight
	plotY0, plotY1 := histPadTop, histH-histPadBot
	plotW, plotH := plotX1-plotX0, plotY1-plotY0
	slot := plotW / float64(n)
	barW := slot - 2 // 2px surface gap between adjacent bars
	if barW > maxBarW {
		barW = maxBarW
	}
	if barW < 1 {
		barW = 1
	}
	var bars strings.Builder
	for i, c := range h.Buckets {
		x := plotX0 + slot*float64(i) + (slot-barW)/2
		bh := plotH * float64(c) / yMax
		if c > 0 && bh < 1 {
			bh = 1
		}
		if c == 0 {
			continue
		}
		fmt.Fprintf(&bars, `<path class="bar s1f" d="%s" data-tip="%s cycles: %d uops"/>`,
			barPath(x, plotY1-bh, barW, bh, 4), template.HTMLEscapeString(BucketLabel(i)), c)
	}
	vm.Bars = template.HTML(bars.String())
	for i := 0; i <= 2; i++ {
		v := yMax * float64(i) / 2
		vm.YTicks = append(vm.YTicks, tickVM{Pos: plotY1 - plotH*v/yMax, Label: fmtNum(v)})
	}
	for i := 0; i < n; i += 3 {
		vm.XLabels = append(vm.XLabels, tickVM{Pos: plotX0 + slot*float64(i) + slot/2, Label: BucketLabel(i)})
	}
	return vm
}

// barPath draws a baseline-anchored bar with rounded top corners.
func barPath(x, y, w, h, r float64) string {
	if r > h {
		r = h
	}
	if r > w/2 {
		r = w / 2
	}
	return fmt.Sprintf("M%.1f %.1fV%.1fQ%.1f %.1f %.1f %.1fH%.1fQ%.1f %.1f %.1f %.1fV%.1fZ",
		x, y+h, y+r, x, y, x+r, y, x+w-r, x+w, y, x+w, y+r, y+h)
}

// niceCeil rounds up to a 1/2/5 × 10^k step.
func niceCeil(v float64) float64 {
	if v <= 0 {
		return 0
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 2, 5, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

func fmtNum(v float64) string {
	if v == math.Trunc(v) {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'f', 1, 64)
}

// toF widens template numeric literals (ints) and model floats alike.
func toF(v interface{}) float64 {
	switch n := v.(type) {
	case float64:
		return n
	case int:
		return float64(n)
	case uint64:
		return float64(n)
	default:
		return 0
	}
}

var viewerTmpl = template.Must(template.New("viewer").Funcs(template.FuncMap{
	"add": func(a, b interface{}) float64 { return toF(a) + toF(b) },
	"sub": func(a, b interface{}) float64 { return toF(a) - toF(b) },
	"div": func(a, b interface{}) float64 { return toF(a) / toF(b) },
}).Parse(viewerHTML))
