package trace

// viewerHTML is the embedded single-file viewer template. Colors follow
// the repo's chart conventions: CSS custom properties define every role
// once per mode (OS preference via prefers-color-scheme, explicit choice
// via data-theme, toggle wins both ways); series colors are the fixed
// categorical order blue/orange/aqua/yellow; text always wears text
// tokens, never a series color.
const viewerHTML = `<!doctype html>
<!-- shadowbinding-trace-viewer -->
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{{.Meta.Bench}} · {{.Meta.Scheme}} — pipeline trace</title>
<style>
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --series-3: #1baf7a;
  --series-4: #eda100;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --axis: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
    --series-4: #c98500;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --muted: #898781;
  --grid: #2c2c2a;
  --axis: #383835;
  --border: rgba(255,255,255,0.10);
  --series-1: #3987e5;
  --series-2: #d95926;
  --series-3: #199e70;
  --series-4: #c98500;
}
* { box-sizing: border-box; }
body.viz-root {
  margin: 0; padding: 24px;
  background: var(--page); color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 980px; margin: 0 auto; }
header { display: flex; align-items: baseline; gap: 12px; flex-wrap: wrap; margin-bottom: 16px; }
h1 { font-size: 20px; margin: 0; }
h2 { font-size: 15px; margin: 0 0 8px; }
.meta { color: var(--text-secondary); }
.spacer { flex: 1; }
button.theme {
  border: 1px solid var(--border); background: var(--surface-1); color: var(--text-secondary);
  border-radius: 6px; padding: 4px 10px; cursor: pointer; font: inherit; font-size: 12px;
}
.tiles { display: grid; grid-template-columns: repeat(auto-fit, minmax(130px, 1fr)); gap: 10px; margin-bottom: 18px; }
.tile { background: var(--surface-1); border: 1px solid var(--border); border-radius: 8px; padding: 10px 12px; }
.tile .v { font-size: 18px; font-weight: 600; }
.tile .l { color: var(--muted); font-size: 12px; }
section.card { background: var(--surface-1); border: 1px solid var(--border); border-radius: 8px; padding: 14px 16px; margin-bottom: 18px; }
.sub { color: var(--text-secondary); font-size: 12px; margin: 0 0 10px; }
svg { display: block; max-width: 100%; height: auto; }
svg text { fill: var(--muted); font: 11px system-ui, -apple-system, "Segoe UI", sans-serif; }
svg .ticklabel { font-variant-numeric: tabular-nums; }
.gridline { stroke: var(--grid); stroke-width: 1; }
.axisline { stroke: var(--axis); stroke-width: 1; }
.line { fill: none; stroke-width: 2; stroke-linejoin: round; stroke-linecap: round; }
.s1 { stroke: var(--series-1); } .s2 { stroke: var(--series-2); }
.s3 { stroke: var(--series-3); } .s4 { stroke: var(--series-4); }
.s1f { fill: var(--series-1); } .s2f { fill: var(--series-2); }
.s3f { fill: var(--series-3); } .s4f { fill: var(--series-4); }
.area { opacity: 0.10; stroke: none; }
.bar:hover { opacity: 0.8; }
.crosshair { stroke: var(--axis); stroke-width: 1; stroke-dasharray: 3 3; visibility: hidden; }
.hitlayer { fill: transparent; }
.legend { display: flex; gap: 16px; flex-wrap: wrap; margin: 8px 0 0; padding: 0; list-style: none; font-size: 12px; color: var(--text-secondary); }
.legend .swatch { display: inline-block; width: 10px; height: 10px; border-radius: 3px; margin-right: 6px; vertical-align: -1px; }
.histgrid { display: grid; grid-template-columns: repeat(auto-fit, minmax(420px, 1fr)); gap: 14px; }
.hist h3 { font-size: 13px; margin: 0 0 2px; font-weight: 600; }
.hist .stats { color: var(--muted); font-size: 11px; margin: 0 0 4px; font-variant-numeric: tabular-nums; }
details { margin-top: 10px; }
summary { cursor: pointer; color: var(--text-secondary); font-size: 12px; }
table { border-collapse: collapse; margin-top: 8px; font-size: 13px; }
th, td { text-align: left; padding: 4px 14px 4px 0; border-bottom: 1px solid var(--grid); }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
th { color: var(--text-secondary); font-weight: 600; }
#tooltip {
  position: fixed; pointer-events: none; visibility: hidden; z-index: 10;
  background: var(--surface-1); border: 1px solid var(--border); border-radius: 6px;
  padding: 6px 9px; font-size: 12px; color: var(--text-primary);
  box-shadow: 0 2px 8px rgba(0,0,0,0.15); white-space: nowrap;
}
#tooltip .tl { color: var(--muted); }
#tooltip .row { font-variant-numeric: tabular-nums; }
</style>
</head>
<body class="viz-root" id="trace-viewer">
<main>
<header>
  <h1>Pipeline trace</h1>
  <span class="meta">{{.Meta.Bench}} · {{.Meta.Config}} · {{.Meta.Scheme}}</span>
  <span class="spacer"></span>
  <button class="theme" id="themebtn" type="button">theme: auto</button>
</header>

<div class="tiles">
{{range .Tiles}}  <div class="tile"><div class="v">{{.Value}}</div><div class="l">{{.Label}}</div></div>
{{end}}</div>

{{if .Occupancy}}
<section class="card">
  <h2>Pipeline occupancy</h2>
  <p class="sub">Mean in-flight micro-ops (renamed, not yet committed or squashed) per time bin.</p>
  {{template "linechart" .Occupancy}}
  <details><summary>Data table</summary>
    <table><thead><tr><th>cycle bin</th>{{range .Occupancy.Series}}<th class="num">{{.Name}}</th>{{end}}</tr></thead>
    <tbody id="tbl-occ"></tbody></table>
  </details>
</section>
{{end}}

{{if .Hists}}
<section class="card">
  <h2>Stage-to-stage latency</h2>
  <p class="sub">Cycles between pipeline stages, per micro-op (bucketed; scheme-inserted delays stretch the issue and writeback transitions).</p>
  <div class="histgrid">
  {{range .Hists}}
    <div class="hist">
      <h3>{{.Name}}</h3>
      <p class="stats">{{.Count}} uops · mean {{printf "%.2f" .Mean}} · max {{.Max}}</p>
      <svg viewBox="0 0 {{$.HistW}} {{$.HistH}}" role="img" aria-label="latency histogram {{.Name}}">
        {{range .YTicks}}<line class="gridline" x1="42" x2="{{sub $.HistW 8}}" y1="{{.Pos}}" y2="{{.Pos}}"/><text class="ticklabel" x="36" y="{{add .Pos 4}}" text-anchor="end">{{.Label}}</text>
        {{end}}
        {{.Bars}}
        {{range .XLabels}}<text class="ticklabel" x="{{.Pos}}" y="{{sub $.HistH 26}}" text-anchor="end" transform="rotate(-38 {{.Pos}} {{sub $.HistH 26}})">{{.Label}}</text>
        {{end}}
        <text x="{{div $.HistW 2}}" y="{{sub $.HistH 4}}" text-anchor="middle">latency (cycles)</text>
      </svg>
    </div>
  {{end}}
  </div>
</section>
{{end}}

<section class="card">
  <h2>Scheme-inserted delays</h2>
  <p class="sub">Where the active scheme inserted its delays: Delay-on-Miss parks, InvisiSpec exposures, NDA withheld broadcasts, STT nop slots — events per time bin.</p>
  {{if .Delays}}
  {{template "linechart" .Delays}}
  {{if gt (len .Delays.Series) 1}}
  <ul class="legend">
  {{range .Delays.Series}}<li><span class="swatch" style="background: var(--series-{{.Slot}})"></span>{{.Name}} ({{.Total}})</li>
  {{end}}</ul>
  {{end}}
  <details><summary>Data table</summary>
    <table><thead><tr><th>cycle bin</th>{{range .Delays.Series}}<th class="num">{{.Name}}</th>{{end}}</tr></thead>
    <tbody id="tbl-delays"></tbody></table>
  </details>
  {{else}}
  <p class="sub">{{.DelayNote}}</p>
  {{end}}
</section>

{{if .Tables}}
<section class="card">
  <h2>Totals</h2>
  {{range .Tables}}
  <details open><summary>{{.Title}}</summary>
    <table><thead><tr>{{range $i, $c := .Cols}}<th {{if $i}}class="num"{{end}}>{{$c}}</th>{{end}}</tr></thead>
    <tbody>{{range .Rows}}<tr>{{range $i, $v := .}}<td {{if $i}}class="num"{{end}}>{{$v}}</td>{{end}}</tr>{{end}}</tbody></table>
  </details>
  {{end}}
</section>
{{end}}

</main>
<div id="tooltip"></div>
<script>
(function () {
  var btn = document.getElementById('themebtn');
  var modes = ['auto', 'dark', 'light'], mi = 0;
  btn.addEventListener('click', function () {
    mi = (mi + 1) % modes.length;
    var m = modes[mi];
    if (m === 'auto') document.documentElement.removeAttribute('data-theme');
    else document.documentElement.setAttribute('data-theme', m);
    btn.textContent = 'theme: ' + m;
  });

  var tip = document.getElementById('tooltip');
  function showTip(html, ev) {
    tip.innerHTML = html;
    tip.style.visibility = 'visible';
    var x = ev.clientX + 14, y = ev.clientY + 14;
    var r = tip.getBoundingClientRect();
    if (x + r.width > window.innerWidth - 8) x = ev.clientX - r.width - 10;
    if (y + r.height > window.innerHeight - 8) y = ev.clientY - r.height - 10;
    tip.style.left = x + 'px'; tip.style.top = y + 'px';
  }
  function hideTip() { tip.style.visibility = 'hidden'; }

  // Per-mark tooltips (histogram bars).
  document.addEventListener('mousemove', function (ev) {
    var t = ev.target;
    if (t && t.getAttribute && t.getAttribute('data-tip')) {
      showTip(t.getAttribute('data-tip'), ev);
    } else if (!t.closest || !t.closest('svg[data-chart]')) {
      hideTip();
    }
  });

  // Crosshair + tooltip on line charts; also fills their data tables.
  document.querySelectorAll('svg[data-chart]').forEach(function (svg) {
    var id = svg.getAttribute('data-chart');
    var data = JSON.parse(document.getElementById('data-' + id).textContent);
    var cross = svg.querySelector('.crosshair');
    var tbody = document.getElementById('tbl-' + id);
    if (tbody) {
      var html = '';
      for (var i = 0; i < data.cycles.length; i++) {
        html += '<tr><td>' + data.cycles[i] + '</td>';
        data.series.forEach(function (s) { html += '<td class="num">' + s.values[i] + '</td>'; });
        html += '</tr>';
      }
      tbody.innerHTML = html;
    }
    svg.addEventListener('mousemove', function (ev) {
      var pt = svg.createSVGPoint();
      pt.x = ev.clientX; pt.y = ev.clientY;
      var p = pt.matrixTransform(svg.getScreenCTM().inverse());
      var n = data.cycles.length;
      if (n < 2 || p.x < data.x0 || p.x > data.x1) { cross.style.visibility = 'hidden'; hideTip(); return; }
      var f = (p.x - data.x0) / (data.x1 - data.x0);
      var i = Math.min(n - 1, Math.max(0, Math.round(f * (n - 1))));
      var cx = data.x0 + (data.x1 - data.x0) * i / (n - 1);
      cross.setAttribute('x1', cx); cross.setAttribute('x2', cx);
      cross.style.visibility = 'visible';
      var html = '<span class="tl">cycle ' + data.cycles[i] + '</span>';
      data.series.forEach(function (s) { html += '<div class="row">' + s.name + ': ' + s.values[i] + '</div>'; });
      showTip(html, ev);
    });
    svg.addEventListener('mouseleave', function () { cross.style.visibility = 'hidden'; hideTip(); });
  });
})();
</script>
</body>
</html>
{{define "linechart"}}
<svg viewBox="0 0 {{.W}} {{.H}}" role="img" data-chart="{{.ID}}">
  {{range .YTicks}}<line class="gridline" x1="{{$.PlotX0}}" x2="{{$.PlotX1}}" y1="{{.Pos}}" y2="{{.Pos}}"/><text class="ticklabel" x="{{sub $.PlotX0 6}}" y="{{add .Pos 4}}" text-anchor="end">{{.Label}}</text>
  {{end}}
  <line class="axisline" x1="{{.PlotX0}}" x2="{{.PlotX1}}" y1="{{.PlotY1}}" y2="{{.PlotY1}}"/>
  {{range .XTicks}}<text class="ticklabel" x="{{.Pos}}" y="{{add $.PlotY1 16}}" text-anchor="middle">{{.Label}}</text>
  {{end}}
  {{range .Series}}{{if .Area}}<path class="area s{{.Slot}}f" d="{{.Area}}"/>{{end}}<path class="line s{{.Slot}}" d="{{.Line}}"/>
  {{end}}
  <line class="crosshair" x1="0" x2="0" y1="{{.PlotY0}}" y2="{{.PlotY1}}"/>
  <rect class="hitlayer" x="{{.PlotX0}}" y="{{.PlotY0}}" width="{{sub .PlotX1 .PlotX0}}" height="{{sub .PlotY1 .PlotY0}}"/>
</svg>
<script type="application/json" id="data-{{.ID}}">{{.Data}}</script>
{{end}}`
