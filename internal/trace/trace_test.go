package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func sampleStats() core.Stats {
	return core.Stats{
		Cycles:              10_000,
		Committed:           20_000,
		Mispredicts:         40,
		MemOrderViolations:  10,
		MemOrderFlushes:     8,
		SquashedUops:        900,
		DelayedBroadcasts:   300,
		TaintBlockedSelects: 5_000,
		TaintNopSlots:       120,
		RenameStallROB:      600,
		RenameStallIQ:       400,
	}
}

func TestReportRates(t *testing.T) {
	r := New(core.KindSTTIssue, sampleStats())
	if r.IPC != 2.0 {
		t.Errorf("IPC = %v", r.IPC)
	}
	if r.MispredictsPKI != 2.0 {
		t.Errorf("mispredicts/ki = %v, want 2", r.MispredictsPKI)
	}
	if r.FwdErrorsPKI != 0.5 {
		t.Errorf("fwd errors/ki = %v, want 0.5", r.FwdErrorsPKI)
	}
	if r.NopSlotsPKI != 6.0 {
		t.Errorf("nop slots/ki = %v, want 6", r.NopSlotsPKI)
	}
}

func TestStallSharesSumToOne(t *testing.T) {
	r := New(core.KindBaseline, sampleStats())
	sum := 0.0
	for _, v := range r.StallShare {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("stall shares sum to %v", sum)
	}
	if r.StallShare["rob"] != 0.6 {
		t.Errorf("rob share = %v, want 0.6", r.StallShare["rob"])
	}
}

func TestZeroStats(t *testing.T) {
	r := New(core.KindNDA, core.Stats{})
	if r.IPC != 0 || r.MispredictsPKI != 0 {
		t.Error("zero stats must produce zero rates")
	}
	if !strings.Contains(r.String(), "nda") {
		t.Error("report must name the scheme")
	}
}

func TestCompareForwardingFactor(t *testing.T) {
	base := New(core.KindBaseline, core.Stats{Cycles: 1000, Committed: 1000, MemOrderViolations: 2})
	stt := New(core.KindSTTRename, core.Stats{Cycles: 2000, Committed: 1000, MemOrderViolations: 500})
	c := Compare(base, stt)
	if c.FwdErrorFactor != 250 {
		t.Errorf("forwarding factor = %v, want 250", c.FwdErrorFactor)
	}
	if c.IPCRatio != 0.5 {
		t.Errorf("IPC ratio = %v, want 0.5", c.IPCRatio)
	}
	if !strings.Contains(c.String(), "250.0x") {
		t.Errorf("comparison string: %s", c)
	}
}

func TestCompareZeroBaselineErrors(t *testing.T) {
	base := New(core.KindBaseline, core.Stats{Cycles: 1000, Committed: 1000})
	stt := New(core.KindSTTRename, core.Stats{Cycles: 1000, Committed: 1000, MemOrderViolations: 7})
	if f := Compare(base, stt).FwdErrorFactor; f != 7 {
		t.Errorf("zero-baseline factor = %v, want raw count 7", f)
	}
	none := New(core.KindNDA, core.Stats{Cycles: 1000, Committed: 1000})
	if f := Compare(base, none).FwdErrorFactor; f != 1 {
		t.Errorf("no-errors factor = %v, want 1", f)
	}
}

func TestReportStringDeterministic(t *testing.T) {
	a := New(core.KindSTTRename, sampleStats()).String()
	b := New(core.KindSTTRename, sampleStats()).String()
	if a != b {
		t.Error("report rendering not deterministic")
	}
}
