package trace

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

func sampleStats() core.Stats {
	return core.Stats{
		Cycles:              10_000,
		Committed:           20_000,
		Mispredicts:         40,
		MemOrderViolations:  10,
		MemOrderFlushes:     8,
		SquashedUops:        900,
		DelayedBroadcasts:   300,
		TaintBlockedSelects: 5_000,
		TaintNopSlots:       120,
		RenameStallROB:      600,
		RenameStallIQ:       400,
	}
}

func TestReportRates(t *testing.T) {
	r := New(core.KindSTTIssue, sampleStats())
	if r.IPC != 2.0 {
		t.Errorf("IPC = %v", r.IPC)
	}
	if r.MispredictsPKI != 2.0 {
		t.Errorf("mispredicts/ki = %v, want 2", r.MispredictsPKI)
	}
	if r.FwdErrorsPKI != 0.5 {
		t.Errorf("fwd errors/ki = %v, want 0.5", r.FwdErrorsPKI)
	}
	if r.NopSlotsPKI != 6.0 {
		t.Errorf("nop slots/ki = %v, want 6", r.NopSlotsPKI)
	}
}

func TestStallSharesSumToOne(t *testing.T) {
	r := New(core.KindBaseline, sampleStats())
	sum := 0.0
	for _, v := range r.StallShare {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("stall shares sum to %v", sum)
	}
	if r.StallShare["rob"] != 0.6 {
		t.Errorf("rob share = %v, want 0.6", r.StallShare["rob"])
	}
}

func TestZeroStats(t *testing.T) {
	r := New(core.KindNDA, core.Stats{})
	if r.IPC != 0 || r.MispredictsPKI != 0 {
		t.Error("zero stats must produce zero rates")
	}
	if !strings.Contains(r.String(), "nda") {
		t.Error("report must name the scheme")
	}
}

func TestCompareForwardingFactor(t *testing.T) {
	base := New(core.KindBaseline, core.Stats{Cycles: 1000, Committed: 1000, MemOrderViolations: 2})
	stt := New(core.KindSTTRename, core.Stats{Cycles: 2000, Committed: 1000, MemOrderViolations: 500})
	c := Compare(base, stt)
	if c.FwdErrorFactor != 250 {
		t.Errorf("forwarding factor = %v, want 250", c.FwdErrorFactor)
	}
	if c.IPCRatio != 0.5 {
		t.Errorf("IPC ratio = %v, want 0.5", c.IPCRatio)
	}
	if !strings.Contains(c.String(), "250.0x") {
		t.Errorf("comparison string: %s", c)
	}
}

// TestCompareZeroBaselineErrors covers all three FwdErrorFactor branches:
// a finite ratio, the undefined zero-baseline case (must be +Inf, never
// the raw violation count masquerading as a factor), and no errors on
// either side.
func TestCompareZeroBaselineErrors(t *testing.T) {
	base := New(core.KindBaseline, core.Stats{Cycles: 1000, Committed: 1000})
	baseErrs := New(core.KindBaseline, core.Stats{Cycles: 1000, Committed: 1000, MemOrderViolations: 2})
	stt := New(core.KindSTTRename, core.Stats{Cycles: 1000, Committed: 1000, MemOrderViolations: 7})

	if f := Compare(baseErrs, stt).FwdErrorFactor; f != 3.5 {
		t.Errorf("finite factor = %v, want 3.5", f)
	}
	cmp := Compare(base, stt)
	if !math.IsInf(cmp.FwdErrorFactor, 1) {
		t.Errorf("zero-baseline factor = %v, want +Inf", cmp.FwdErrorFactor)
	}
	if s := cmp.String(); !strings.Contains(s, "∞") || !strings.Contains(s, "n/a (base 0)") {
		t.Errorf("infinite factor must render as ∞ / n/a (base 0), got: %s", s)
	}
	none := New(core.KindNDA, core.Stats{Cycles: 1000, Committed: 1000})
	if f := Compare(base, none).FwdErrorFactor; f != 1 {
		t.Errorf("no-errors factor = %v, want 1", f)
	}
}

// TestReportStringStallRenderings pins both stall-row renderings: the
// share breakdown when stalls occurred, and the explicit "none" line
// (not a misleading row of 0% entries) when none did.
func TestReportStringStallRenderings(t *testing.T) {
	withStalls := New(core.KindSTTRename, sampleStats()).String()
	if !strings.Contains(withStalls, "rename stalls: rob 60% issueq 40%") {
		t.Errorf("stall shares missing from:\n%s", withStalls)
	}
	s := sampleStats()
	s.RenameStallROB, s.RenameStallIQ = 0, 0
	noStalls := New(core.KindSTTRename, s).String()
	if !strings.Contains(noStalls, "rename stalls: none") {
		t.Errorf(`want "rename stalls: none" in:\n%s`, noStalls)
	}
	if strings.Contains(noStalls, "0%") {
		t.Errorf("zero-stall report still renders a 0%% share row:\n%s", noStalls)
	}
}

func TestReportStringDeterministic(t *testing.T) {
	a := New(core.KindSTTRename, sampleStats()).String()
	b := New(core.KindSTTRename, sampleStats()).String()
	if a != b {
		t.Error("report rendering not deterministic")
	}
}
