package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/workloads"
)

// traceCell runs one small traced cell and returns the decoded trace.
func traceCell(t *testing.T, kind core.SchemeKind, bench string) (Meta, []Record, *Recorder) {
	t.Helper()
	prof, err := workloads.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, Meta{
		Bench: bench, Config: "mega", Scheme: kind.String(), Warmup: 1000, Budget: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := harness.Options{Scale: 1, WarmupCycles: 1000, MeasureCycles: 3000}
	if _, err := harness.RunOneRecorded(core.MegaConfig(), kind, prof, opts, rec); err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	meta, recs, err := DecodeAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return meta, recs, rec
}

// TestJSONLRoundTrip pins the encode/decode pair: every event the
// recorder buffered comes back out of DecodeAll, with the meta line
// first and every field intact.
func TestJSONLRoundTrip(t *testing.T) {
	meta, recs, rec := traceCell(t, core.KindDoM, "505.mcf")
	if meta.Bench != "505.mcf" || meta.Config != "mega" || meta.Scheme != "dom" {
		t.Errorf("meta round-trip: %+v", meta)
	}
	if meta.Warmup != 1000 || meta.Budget != 3000 {
		t.Errorf("meta budgets round-trip: %+v", meta)
	}
	if uint64(len(recs)) != rec.Records() {
		t.Errorf("decoded %d records, recorder buffered %d", len(recs), rec.Records())
	}
	if len(recs) == 0 {
		t.Fatal("no records decoded")
	}
	validStages := map[string]bool{
		"fetch": true, "rename": true, "issue": true, "writeback": true,
		"vp": true, "commit": true, "squash": true,
	}
	sawAnnot, sawSpec := false, false
	for i, r := range recs {
		if !validStages[r.Stage] {
			t.Fatalf("record %d: invalid stage %q", i, r.Stage)
		}
		if r.Op == "" {
			t.Fatalf("record %d: empty op", i)
		}
		if r.Seq == 0 {
			t.Fatalf("record %d: zero seq", i)
		}
		if r.Annot != "" {
			sawAnnot = true
		}
		if r.Spec {
			sawSpec = true
		}
	}
	if !sawAnnot || !sawSpec {
		t.Errorf("trace missing field coverage: annot=%v spec=%v", sawAnnot, sawSpec)
	}
	// A DoM run on a memory-bound proxy must show its parks in the trace.
	parks := 0
	for _, r := range recs {
		if strings.Contains(r.Annot, "dom-park") {
			parks++
		}
	}
	if parks == 0 {
		t.Error("dom trace carries no dom-park annotations")
	}
}

// TestStorePartsRoundTrip asserts store halves carry their part tag
// through the encoder (505.mcf's pointer-chasing proxy has no stores, so
// this uses the store-heavy exchange2 proxy).
func TestStorePartsRoundTrip(t *testing.T) {
	_, recs, _ := traceCell(t, core.KindBaseline, "548.exchange2")
	addrs, datas := 0, 0
	for _, r := range recs {
		switch r.Part {
		case "addr":
			addrs++
		case "data":
			datas++
		case "":
		default:
			t.Fatalf("invalid part %q", r.Part)
		}
	}
	if addrs == 0 || datas == 0 {
		t.Errorf("no store-part records: addr=%d data=%d", addrs, datas)
	}
}

// TestDecodeAllErrors covers the malformed-input paths.
func TestDecodeAllErrors(t *testing.T) {
	if _, _, err := DecodeAll(strings.NewReader("")); err == nil {
		t.Error("empty input must fail")
	}
	if _, _, err := DecodeAll(strings.NewReader(`{"cycle":1}`)); err == nil {
		t.Error("missing meta line must fail")
	}
	bad := `{"meta":{"bench":"x"}}` + "\n" + `not json` + "\n"
	if _, _, err := DecodeAll(strings.NewReader(bad)); err == nil {
		t.Error("malformed record line must fail")
	}
}

// TestRecorderSteadyStateZeroAlloc pins the ring-buffered encoder's
// zero-allocation steady state: once warm, simulating with a recorder
// attached allocates nothing per cycle (the TestSteadyStateZeroAlloc
// guarantee must survive tracing).
func TestRecorderSteadyStateZeroAlloc(t *testing.T) {
	prof, err := workloads.ByName("505.mcf")
	if err != nil {
		t.Fatal(err)
	}
	c := core.MustNew(core.MegaConfig(), core.KindSTTRename, prof.Build(1))
	rec, err := NewRecorder(io.Discard, Meta{Bench: "505.mcf"})
	if err != nil {
		t.Fatal(err)
	}
	c.Recorder = rec
	limit := uint64(20_000)
	if _, err := c.Run(core.RunLimits{MaxCycles: limit}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		limit += 500
		if _, err := c.Run(core.RunLimits{MaxCycles: limit}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state cycle with recorder allocates (%v allocs/run), want 0", allocs)
	}
}
