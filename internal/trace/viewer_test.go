package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// syntheticRecords builds a tiny hand-written trace: two committed uops,
// one squashed, with a DoM park on the load.
func syntheticRecords() (Meta, []Record) {
	meta := Meta{Bench: "unit", Config: "mega", Scheme: "dom"}
	return meta, []Record{
		{Cycle: 1, Seq: 1, PC: 0, Op: "addi", Stage: "fetch", Spec: true},
		{Cycle: 5, Seq: 1, PC: 0, Op: "addi", Stage: "rename", Spec: true},
		{Cycle: 1, Seq: 2, PC: 1, Op: "lw", Stage: "fetch", Spec: true},
		{Cycle: 5, Seq: 2, PC: 1, Op: "lw", Stage: "rename", Spec: true},
		{Cycle: 6, Seq: 1, PC: 0, Op: "addi", Stage: "issue", Spec: true},
		{Cycle: 7, Seq: 2, PC: 1, Op: "lw", Stage: "issue", Spec: true, Annot: "dom-park"},
		{Cycle: 7, Seq: 1, PC: 0, Op: "addi", Stage: "writeback", Spec: true},
		{Cycle: 8, Seq: 1, PC: 0, Op: "addi", Stage: "commit"},
		{Cycle: 9, Seq: 2, PC: 1, Op: "lw", Stage: "issue", Spec: true, Annot: "l1-hit"},
		{Cycle: 12, Seq: 2, PC: 1, Op: "lw", Stage: "writeback", Spec: true, Annot: "l1-hit"},
		{Cycle: 13, Seq: 2, PC: 1, Op: "lw", Stage: "commit"},
		{Cycle: 13, Seq: 3, PC: 2, Op: "beq", Stage: "rename", Spec: true},
		{Cycle: 14, Seq: 3, PC: 2, Op: "beq", Stage: "squash", Spec: true},
	}
}

func TestAnalyzeSynthetic(t *testing.T) {
	meta, recs := syntheticRecords()
	a := Analyze(meta, recs)
	if a.Commits != 2 || a.Squashes != 1 {
		t.Errorf("commits/squashes = %d/%d, want 2/1", a.Commits, a.Squashes)
	}
	if a.Uops != 3 {
		t.Errorf("uops = %d, want 3", a.Uops)
	}
	if a.MinCycle != 1 || a.MaxCycle != 14 {
		t.Errorf("cycle span = %d..%d, want 1..14", a.MinCycle, a.MaxCycle)
	}
	if a.PeakInFlight != 2 {
		t.Errorf("peak in-flight = %d, want 2", a.PeakInFlight)
	}
	// The lw parked at cycle 7 and issued for real at 9: the rename→issue
	// latency must use the real issue (9-5=4), not the park attempt. The
	// squashed beq never issued, so only two uops contribute.
	ri := a.Hists[1]
	if ri.Count != 2 || ri.Max != 4 {
		t.Errorf("rename→issue hist: count %d max %d, want 2/4", ri.Count, ri.Max)
	}
	if len(a.Delays) != 1 || a.Delays[0].Name != "dom-park" || a.Delays[0].Total != 1 {
		t.Errorf("delay series = %+v, want one dom-park event", a.Delays)
	}
	var annots []string
	for _, ac := range a.AnnotCounts {
		annots = append(annots, ac.Annot)
	}
	if strings.Join(annots, ",") != "dom-park,l1-hit" {
		t.Errorf("annot counts = %v", annots)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(Meta{}, nil)
	if a.Records != 0 || a.Uops != 0 || len(a.Occupancy) != 0 {
		t.Errorf("empty analysis not empty: %+v", a)
	}
	if _, err := RenderHTML(a); err != nil {
		t.Errorf("rendering an empty analysis: %v", err)
	}
}

// TestRenderHTML renders the viewer for a real traced cell and asserts
// the page structure: the viewer marker, all three panes, the data
// tables, and no leaked NaN geometry.
func TestRenderHTML(t *testing.T) {
	meta, recs, _ := traceCell(t, core.KindDoM, "505.mcf")
	page, err := RenderHTML(Analyze(meta, recs))
	if err != nil {
		t.Fatal(err)
	}
	html := string(page)
	for _, want := range []string{
		`id="trace-viewer"`,
		`data-chart="occ"`,
		`data-chart="delays"`,
		"Stage-to-stage latency",
		"Scheme-inserted delays",
		"dom-park",
		"Data table",
		"505.mcf",
		"prefers-color-scheme: dark",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("viewer page missing %q", want)
		}
	}
	for _, bad := range []string{"NaN", "Infinity", "<no value>"} {
		if strings.Contains(html, bad) {
			t.Errorf("viewer page contains %q", bad)
		}
	}
}

func TestBucketLabels(t *testing.T) {
	if got := BucketLabel(0); got != "1" {
		t.Errorf("bucket 0 = %q", got)
	}
	if got := BucketLabel(4); got != "5–6" {
		t.Errorf("bucket 4 = %q", got)
	}
	if got := BucketLabel(len(latencyBucketEdges)); got != "> 512" {
		t.Errorf("tail bucket = %q", got)
	}
	if b := bucketOf(1); b != 0 {
		t.Errorf("bucketOf(1) = %d", b)
	}
	if b := bucketOf(513); b != len(latencyBucketEdges) {
		t.Errorf("bucketOf(513) = %d", b)
	}
}
