package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
)

// The JSONL trace encoder — the file-format half of the per-cycle trace
// subsystem. A Recorder implements core.Recorder, buffering StageEvents
// through a preallocated ring and encoding them with a hand-rolled append
// encoder so that a steady-state simulation cycle performs zero heap
// allocations with a recorder attached (TestRecorderSteadyStateZeroAlloc).
//
// File format: one JSON object per line. The first line is the meta
// record {"meta":{...}}; every following line is a Record.

// Meta identifies the traced cell. It is the first line of a trace file.
type Meta struct {
	Bench  string `json:"bench"`
	Config string `json:"config"`
	Scheme string `json:"scheme"`
	// Warmup is the warmup cycle budget preceding the measured window
	// (trace cycle stamps are monotonic across both phases).
	Warmup uint64 `json:"warmup,omitempty"`
	// Budget is the measured cycle budget.
	Budget uint64 `json:"budget,omitempty"`
}

// Record is the decoded form of one per-uop stage event line.
type Record struct {
	Cycle uint64 `json:"cycle"`
	Seq   uint64 `json:"seq"`
	PC    uint64 `json:"pc"`
	Op    string `json:"op"`
	Stage string `json:"stage"`
	// Part is "addr" or "data" for store halves, absent otherwise.
	Part string `json:"part,omitempty"`
	// Spec reports the uop was still speculative when the event fired.
	Spec bool `json:"spec,omitempty"`
	// Annot is the '|'-joined annotation set (core.TraceAnnot names).
	Annot string `json:"annot,omitempty"`
}

// ringSize is the event buffer depth between encode flushes. Events are
// buffered so the encode loop runs in batches, not per pipeline hook.
const ringSize = 4096

// Recorder is a core.Recorder that encodes stage events to JSONL.
type Recorder struct {
	w       *bufio.Writer
	ring    []core.StageEvent
	buf     []byte
	records uint64
	err     error
}

// NewRecorder writes the meta line to w and returns a recorder ready to
// attach as Core.Recorder. Call Flush before reading the output.
func NewRecorder(w io.Writer, meta Meta) (*Recorder, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	line, err := json.Marshal(struct {
		Meta Meta `json:"meta"`
	}{meta})
	if err != nil {
		return nil, fmt.Errorf("trace: encode meta: %w", err)
	}
	line = append(line, '\n')
	if _, err := bw.Write(line); err != nil {
		return nil, fmt.Errorf("trace: write meta: %w", err)
	}
	return &Recorder{
		w:    bw,
		ring: make([]core.StageEvent, 0, ringSize),
		buf:  make([]byte, 0, 1<<10),
	}, nil
}

// OnStage implements core.Recorder. It appends into the preallocated
// ring and drains it through the encoder when full — no allocation in
// the steady state.
func (r *Recorder) OnStage(ev core.StageEvent) {
	if len(r.ring) == cap(r.ring) {
		r.drain()
	}
	r.ring = append(r.ring, ev)
	r.records++
}

// drain encodes and writes the buffered events.
func (r *Recorder) drain() {
	for i := range r.ring {
		r.buf = appendRecord(r.buf[:0], &r.ring[i])
		if _, err := r.w.Write(r.buf); err != nil && r.err == nil {
			r.err = err
		}
	}
	r.ring = r.ring[:0]
}

// Records reports how many stage events have been recorded.
func (r *Recorder) Records() uint64 { return r.records }

// Flush drains the ring and flushes the writer, returning the first
// error seen on the output path.
func (r *Recorder) Flush() error {
	r.drain()
	if err := r.w.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	return r.err
}

// appendRecord encodes one event as a JSON line, allocation-free against
// a reused buffer. The shape matches Record exactly.
func appendRecord(dst []byte, ev *core.StageEvent) []byte {
	dst = append(dst, `{"cycle":`...)
	dst = strconv.AppendUint(dst, ev.Cycle, 10)
	dst = append(dst, `,"seq":`...)
	dst = strconv.AppendUint(dst, ev.Seq, 10)
	dst = append(dst, `,"pc":`...)
	dst = strconv.AppendUint(dst, ev.PC, 10)
	dst = append(dst, `,"op":"`...)
	dst = append(dst, ev.Op.String()...)
	dst = append(dst, `","stage":"`...)
	dst = append(dst, ev.Stage.String()...)
	dst = append(dst, '"')
	switch ev.Part {
	case core.PartStoreAddr:
		dst = append(dst, `,"part":"addr"`...)
	case core.PartStoreData:
		dst = append(dst, `,"part":"data"`...)
	}
	if ev.Speculative {
		dst = append(dst, `,"spec":true`...)
	}
	if ev.Annot != 0 {
		dst = append(dst, `,"annot":"`...)
		dst = ev.Annot.AppendNames(dst)
		dst = append(dst, '"')
	}
	dst = append(dst, '}', '\n')
	return dst
}

// DecodeAll reads a whole JSONL trace: the meta first line, then every
// stage record in file order.
func DecodeAll(r io.Reader) (Meta, []Record, error) {
	var meta Meta
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	sawMeta := false
	var recs []Record
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if !sawMeta {
			var ml struct {
				Meta *Meta `json:"meta"`
			}
			if err := json.Unmarshal(line, &ml); err != nil || ml.Meta == nil {
				return meta, nil, fmt.Errorf("trace: line %d: expected meta record", lineNo)
			}
			meta = *ml.Meta
			sawMeta = true
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return meta, recs, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return meta, recs, fmt.Errorf("trace: read: %w", err)
	}
	if !sawMeta {
		return meta, nil, fmt.Errorf("trace: empty trace (no meta line)")
	}
	return meta, recs, nil
}
