package trace

import "sort"

// Trace analysis: digests a decoded JSONL trace into the aggregates the
// viewer renders — pipeline occupancy over time, per-stage-transition
// latency histograms, and the per-scheme delay-insertion timeline.

// occupancyBins is the number of time bins for the occupancy and delay
// timelines — enough for a dense curve, few enough to stay readable.
const occupancyBins = 240

// latencyBucketEdges are the inclusive upper edges of the latency
// histogram buckets (cycles); a final open bucket catches the tail.
var latencyBucketEdges = []uint64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512}

// transitions are the stage-to-stage latencies the histograms measure.
var transitions = []string{
	"fetch → rename",
	"rename → issue",
	"issue → writeback",
	"writeback → commit",
}

// delayCategories are the scheme delay-insertion annotations shown on the
// event timeline (at most four categorical series — the palette cap).
var delayCategories = []string{"dom-park", "exposure", "nda-withheld", "stt-nop"}

// BinPoint is one time bin of a per-cycle aggregate.
type BinPoint struct {
	Cycle uint64  // bin start cycle
	Value float64 // mean (occupancy) or count (delay events)
}

// LatencyHist is one stage-transition latency histogram.
type LatencyHist struct {
	Name    string   // e.g. "rename → issue"
	Buckets []uint64 // counts; Buckets[i] covers (edge[i-1], edge[i]], last is open
	Count   uint64
	Mean    float64
	Max     uint64
}

// DelaySeries is one scheme-delay category's binned event counts.
type DelaySeries struct {
	Name  string
	Total uint64
	Bins  []BinPoint
}

// Analysis is everything the viewer needs, precomputed.
type Analysis struct {
	Meta     Meta
	Records  int
	Uops     int
	MinCycle uint64
	MaxCycle uint64
	BinWidth uint64

	Commits  uint64
	Squashes uint64

	StageCounts []StageCount
	AnnotCounts []AnnotCount

	Occupancy    []BinPoint
	PeakInFlight int
	Hists        []LatencyHist
	Delays       []DelaySeries
}

// StageCount is one stage's event total (ordered fetch→squash).
type StageCount struct {
	Stage string
	Count uint64
}

// AnnotCount is one annotation's total across the trace.
type AnnotCount struct {
	Annot string
	Count uint64
}

// uopTimes tracks the first cycle each transition saw a given uop.
type uopTimes struct {
	fetch, rename, issue, writeback, commit uint64
	hasFetch, hasRename, hasIssue, hasWB    bool
	hasCommit                               bool
}

// Analyze digests decoded trace records into an Analysis.
func Analyze(meta Meta, recs []Record) Analysis {
	a := Analysis{Meta: meta, Records: len(recs)}
	if len(recs) == 0 {
		return a
	}

	a.MinCycle, a.MaxCycle = recs[0].Cycle, recs[0].Cycle
	for i := range recs {
		c := recs[i].Cycle
		if c < a.MinCycle {
			a.MinCycle = c
		}
		if c > a.MaxCycle {
			a.MaxCycle = c
		}
	}
	span := a.MaxCycle - a.MinCycle + 1
	a.BinWidth = (span + occupancyBins - 1) / occupancyBins
	if a.BinWidth == 0 {
		a.BinWidth = 1
	}
	nBins := int((span + a.BinWidth - 1) / a.BinWidth)
	binOf := func(cycle uint64) int {
		b := int((cycle - a.MinCycle) / a.BinWidth)
		if b >= nBins {
			b = nBins - 1
		}
		return b
	}

	stageCounts := map[string]uint64{}
	annotCounts := map[string]uint64{}
	delayBins := map[string][]uint64{}
	for _, cat := range delayCategories {
		delayBins[cat] = make([]uint64, nBins)
	}

	// Occupancy: rename enters a uop into the backend; commit or squash
	// removes it. Rename/commit/squash records appear in non-decreasing
	// cycle order in the file, so a single pass tracks the live count.
	occSum := make([]float64, nBins)
	occN := make([]uint64, nBins)
	inFlight := 0

	times := map[uint64]*uopTimes{}
	for i := range recs {
		r := &recs[i]
		stageCounts[r.Stage]++
		if r.Annot != "" {
			for _, name := range splitAnnots(r.Annot) {
				annotCounts[name]++
				if bins, ok := delayBins[name]; ok {
					bins[binOf(r.Cycle)]++
				}
			}
		}

		ut := times[r.Seq]
		if ut == nil {
			ut = &uopTimes{}
			times[r.Seq] = ut
		}
		switch r.Stage {
		case "fetch":
			if !ut.hasFetch {
				ut.fetch, ut.hasFetch = r.Cycle, true
			}
		case "rename":
			if !ut.hasRename {
				ut.rename, ut.hasRename = r.Cycle, true
			}
			inFlight++
			if inFlight > a.PeakInFlight {
				a.PeakInFlight = inFlight
			}
			b := binOf(r.Cycle)
			occSum[b] += float64(inFlight)
			occN[b]++
		case "issue":
			// A park or nop record is a failed attempt, not an issue.
			if r.Annot == "" || !hasDelayAnnot(r.Annot) {
				if !ut.hasIssue {
					ut.issue, ut.hasIssue = r.Cycle, true
				}
			}
		case "writeback":
			if r.Part == "" && !ut.hasWB {
				ut.writeback, ut.hasWB = r.Cycle, true
			}
		case "commit":
			a.Commits++
			ut.commit, ut.hasCommit = r.Cycle, true
			fallthrough
		case "squash":
			if r.Stage == "squash" {
				a.Squashes++
			}
			if inFlight > 0 {
				inFlight--
			}
			b := binOf(r.Cycle)
			occSum[b] += float64(inFlight)
			occN[b]++
		}
	}
	a.Uops = len(times)

	a.Occupancy = make([]BinPoint, nBins)
	last := 0.0
	for b := 0; b < nBins; b++ {
		v := last
		if occN[b] > 0 {
			v = occSum[b] / float64(occN[b])
			last = v
		}
		a.Occupancy[b] = BinPoint{Cycle: a.MinCycle + uint64(b)*a.BinWidth, Value: v}
	}

	// Latency histograms over the four canonical transitions.
	a.Hists = make([]LatencyHist, len(transitions))
	for i, name := range transitions {
		a.Hists[i] = LatencyHist{Name: name, Buckets: make([]uint64, len(latencyBucketEdges)+1)}
	}
	addLat := func(h *LatencyHist, from, to uint64) {
		if to < from {
			return
		}
		d := to - from
		h.Count++
		h.Mean += (float64(d) - h.Mean) / float64(h.Count)
		if d > h.Max {
			h.Max = d
		}
		h.Buckets[bucketOf(d)]++
	}
	for _, ut := range times {
		if ut.hasFetch && ut.hasRename {
			addLat(&a.Hists[0], ut.fetch, ut.rename)
		}
		if ut.hasRename && ut.hasIssue {
			addLat(&a.Hists[1], ut.rename, ut.issue)
		}
		if ut.hasIssue && ut.hasWB {
			addLat(&a.Hists[2], ut.issue, ut.writeback)
		}
		if ut.hasWB && ut.hasCommit {
			addLat(&a.Hists[3], ut.writeback, ut.commit)
		}
	}

	for _, cat := range delayCategories {
		s := DelaySeries{Name: cat, Bins: make([]BinPoint, nBins)}
		for b, n := range delayBins[cat] {
			s.Total += n
			s.Bins[b] = BinPoint{Cycle: a.MinCycle + uint64(b)*a.BinWidth, Value: float64(n)}
		}
		if s.Total > 0 {
			a.Delays = append(a.Delays, s)
		}
	}

	a.StageCounts = orderedCounts(stageCounts, []string{"fetch", "rename", "issue", "writeback", "vp", "commit", "squash"})
	names := make([]string, 0, len(annotCounts))
	for k := range annotCounts {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		a.AnnotCounts = append(a.AnnotCounts, AnnotCount{Annot: k, Count: annotCounts[k]})
	}
	return a
}

// bucketOf maps a latency to its histogram bucket index.
func bucketOf(d uint64) int {
	for i, edge := range latencyBucketEdges {
		if d <= edge {
			return i
		}
	}
	return len(latencyBucketEdges)
}

// BucketLabel renders bucket i's range for axis labels.
func BucketLabel(i int) string {
	if i >= len(latencyBucketEdges) {
		return "> 512"
	}
	lo := uint64(0)
	if i > 0 {
		lo = latencyBucketEdges[i-1]
	}
	hi := latencyBucketEdges[i]
	if hi == lo+1 {
		return itoa(hi)
	}
	return itoa(lo+1) + "–" + itoa(hi)
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// splitAnnots splits a '|'-joined annotation set without regexp.
func splitAnnots(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '|' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

// hasDelayAnnot reports whether the annotation set contains a failed-issue
// marker (a DoM park or an STT nop — the uop did not actually issue).
func hasDelayAnnot(annot string) bool {
	for _, name := range splitAnnots(annot) {
		if name == "dom-park" || name == "stt-nop" {
			return true
		}
	}
	return false
}

// orderedCounts renders a count map in a fixed key order, skipping zeros.
func orderedCounts(m map[string]uint64, order []string) []StageCount {
	var out []StageCount
	for _, k := range order {
		if m[k] > 0 {
			out = append(out, StageCount{Stage: k, Count: m[k]})
		}
	}
	return out
}
