package diffsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
)

// FuzzDifferential is the native fuzz entry point for long campaigns
// (nightly CI runs `go test -fuzz=FuzzDifferential -fuzztime=10m`): the
// fuzzer mutates the (seed, mask) pair, and every input is a full
// differential-oracle check of all registered schemes.
func FuzzDifferential(f *testing.F) {
	f.Add(uint64(1), uint16(FeatAll))
	f.Add(uint64(7), uint16(FeatPointerChase|FeatStoreAlias))
	f.Add(uint64(1000), uint16(FeatIndirectLoad|FeatDataDepBranch|FeatCallReturn))
	f.Add(uint64(31337), uint16(FeatMulDiv|FeatIndirectCall))
	f.Fuzz(func(t *testing.T, seed uint64, mask uint16) {
		c := Case{Seed: seed, Mask: FeatureMask(mask) & FeatAll}
		if c.Mask == 0 {
			c.Mask = FeatAll
		}
		if err := CheckCase(ConfigForCase(c), core.SchemeKinds(), c); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzGenerator checks the generator's own contract fast (no core runs):
// every (seed, mask) yields a structurally valid program that terminates
// on the in-order reference.
func FuzzGenerator(f *testing.F) {
	f.Add(uint64(1), uint16(FeatAll))
	f.Add(uint64(424242), uint16(FeatStoreAlias))
	f.Fuzz(func(t *testing.T, seed uint64, mask uint16) {
		c := Case{Seed: seed, Mask: FeatureMask(mask) & FeatAll}
		if c.Mask == 0 {
			c.Mask = FeatAll
		}
		p := Generate(c)
		if err := p.Validate(); err != nil {
			t.Fatalf("case %v: %v", c, err)
		}
		if _, err := isa.NewArchSim(p).Run(maxRefInsts); err != nil {
			t.Fatalf("case %v: %v", c, err)
		}
	})
}
