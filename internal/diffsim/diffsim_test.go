package diffsim

import (
	"context"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
)

// TestGenerateDeterministic: a case must regenerate byte-identically —
// reproducibility from a printed (seed, mask) pair is the whole contract.
func TestGenerateDeterministic(t *testing.T) {
	for i := 0; i < 20; i++ {
		c := CaseForIndex(1, i)
		a, b := Generate(c), Generate(c)
		if !reflect.DeepEqual(a.Insts, b.Insts) || !reflect.DeepEqual(a.Data, b.Data) {
			t.Fatalf("case %v: two generations differ", c)
		}
	}
}

// TestGenerateSeedsDiffer: distinct seeds must not collapse to the same
// program.
func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(Case{Seed: 100, Mask: FeatAll})
	b := Generate(Case{Seed: 101, Mask: FeatAll})
	if reflect.DeepEqual(a.Insts, b.Insts) {
		t.Fatal("seeds 100 and 101 generated identical instruction streams")
	}
}

// TestGeneratedProgramsHalt: every generated program must validate and
// terminate on the in-order reference — the generator's termination-by-
// construction argument, checked over a seed spread.
func TestGeneratedProgramsHalt(t *testing.T) {
	for i := 0; i < 50; i++ {
		c := CaseForIndex(500, i)
		p := Generate(c)
		if err := p.Validate(); err != nil {
			t.Fatalf("case %v: %v", c, err)
		}
		sim := isa.NewArchSim(p)
		if _, err := sim.Run(maxRefInsts); err != nil {
			t.Fatalf("case %v: %v", c, err)
		}
	}
}

// TestFeatureMasksEmitTheirClasses: a single-feature mask must emit the
// instruction classes its feature promises.
func TestFeatureMasksEmitTheirClasses(t *testing.T) {
	cases := []struct {
		mask FeatureMask
		want []isa.Class
	}{
		{FeatALU, []isa.Class{isa.ClassALU}},
		{FeatMulDiv, []isa.Class{isa.ClassMul}},
		{FeatPointerChase, []isa.Class{isa.ClassLoad}},
		{FeatIndirectLoad, []isa.Class{isa.ClassLoad}},
		{FeatDataDepBranch, []isa.Class{isa.ClassBranch, isa.ClassLoad}},
		{FeatStoreAlias, []isa.Class{isa.ClassStore, isa.ClassLoad}},
		{FeatCallReturn, []isa.Class{isa.ClassJump}},
		{FeatIndirectCall, []isa.Class{isa.ClassJump, isa.ClassLoad}},
	}
	for _, tc := range cases {
		counts := Generate(Case{Seed: 42, Mask: tc.mask}).ClassCounts()
		for _, cls := range tc.want {
			if counts[cls] == 0 {
				t.Errorf("mask %v: no %v instructions emitted (%v)", tc.mask, cls, counts)
			}
		}
	}
}

// TestCaseForIndexCoversFeatures: the campaign schedule must isolate each
// feature before mixing them.
func TestCaseForIndexCoversFeatures(t *testing.T) {
	for i := 0; i < numFeatures; i++ {
		if got := CaseForIndex(1, i).Mask; got != 1<<i {
			t.Errorf("case %d mask = %#x, want %#x", i, got, 1<<i)
		}
	}
	if got := CaseForIndex(1, numFeatures).Mask; got != FeatAll {
		t.Errorf("case %d mask = %#x, want FeatAll", numFeatures, got)
	}
}

// TestReplayCommand: the failure-message replay invocation must carry the
// exact seed and mask.
func TestReplayCommand(t *testing.T) {
	c := Case{Seed: 123, Mask: 0x2f}
	cmd := c.ReplayCommand()
	for _, want := range []string{"-fuzz-seed 123", "-fuzz-mask 0x2f"} {
		if !strings.Contains(cmd, want) {
			t.Errorf("replay command %q missing %q", cmd, want)
		}
	}
}

// TestConfigForCaseStable: a replayed case must land on the same core
// configuration its campaign run used.
func TestConfigForCaseStable(t *testing.T) {
	c := CaseForIndex(1, 17)
	if a, b := ConfigForCase(c).Name, ConfigForCase(c).Name; a != b {
		t.Fatalf("config selection unstable: %s vs %s", a, b)
	}
}

// corpusSize returns the TestDifferentialCorpus case count. The default
// 208-case corpus — every single-feature mask, the full mask, and 199
// random mixes — is the PR-smoke budget: it stays in the low seconds even
// as the scheme registry grows (each case checks EVERY registered scheme,
// so the corpus got 6/4 wider when DoM and InvisiSpec landed). The nightly
// CI job scales the same deterministic schedule up via DIFFSIM_CORPUS=N
// without touching the smoke cost.
func corpusSize(t *testing.T) int {
	t.Helper()
	const def = 208
	s := os.Getenv("DIFFSIM_CORPUS")
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		t.Fatalf("DIFFSIM_CORPUS=%q: want a positive case count", s)
	}
	return n
}

// TestDifferentialCorpus is the standing correctness gate: a deterministic
// corpus of generated programs (corpusSize; 208 by default) must pass the
// differential oracle for every registered scheme. Any failure prints the
// (seed, mask) pair and the shadowbinding invocation that replays it.
func TestDifferentialCorpus(t *testing.T) {
	n := corpusSize(t)
	if err := Campaign(context.Background(), 1, n, 0, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCheckCaseSchemesExplicit runs one rich case against each scheme
// individually, so a scheme regression is attributed even if the corpus
// is skipped.
func TestCheckCaseSchemesExplicit(t *testing.T) {
	c := Case{Seed: 99, Mask: FeatAll}
	for _, kind := range core.SchemeKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			if err := CheckCase(core.MegaConfig(), []core.SchemeKind{kind}, c); err != nil {
				t.Fatal(err)
			}
		})
	}
}
