package diffsim

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/isa"
)

// maxRefInsts bounds the in-order reference run; a generated program is
// counted-loop bounded and executes far fewer instructions.
const maxRefInsts = 1_000_000

// Case identifies one fuzz case: everything needed to regenerate its
// program and rerun its oracle checks.
type Case struct {
	Seed uint64
	Mask FeatureMask
}

func (c Case) String() string {
	return fmt.Sprintf("seed=%d mask=%#x (%v)", c.Seed, uint16(c.Mask), c.Mask)
}

// ReplayCommand returns the cmd/shadowbinding invocation that replays
// this case, configuration selection included.
func (c Case) ReplayCommand() string {
	return fmt.Sprintf("shadowbinding -fuzz-seed %d -fuzz-mask %#x", c.Seed, uint16(c.Mask))
}

// CaseForIndex derives the i'th case of a campaign with the given base
// seed. The schedule front-loads coverage — each single feature first,
// then the full mask — before switching to random feature mixes, so even
// a short campaign isolates every feature at least once.
func CaseForIndex(base uint64, i int) Case {
	seed := base + uint64(i)
	var mask FeatureMask
	switch {
	case i < numFeatures:
		mask = 1 << i
	case i == numFeatures:
		mask = FeatAll
	default:
		rng := rand.New(rand.NewSource(int64(seed)*0x9E3779B9 + 1))
		mask = FeatureMask(1 + rng.Intn(int(FeatAll)))
	}
	return Case{Seed: seed, Mask: mask}
}

// ConfigForCase picks the Table 1 configuration a case runs on. Derived
// from the seed alone so a replay from a printed (seed, mask) pair
// selects the same core.
func ConfigForCase(c Case) core.Config {
	cfgs := core.Configs()
	return cfgs[c.Seed%uint64(len(cfgs))]
}

// caseErr wraps a check failure with everything needed to replay it.
func caseErr(c Case, cfg core.Config, kind core.SchemeKind, format string, args ...any) error {
	return fmt.Errorf("diffsim: case %v on %s/%s: %s; replay: %s",
		c, cfg.Name, kind, fmt.Sprintf(format, args...), c.ReplayCommand())
}

// invariantProbe collects security-invariant violations through the
// core's observational Probe hooks.
type invariantProbe struct {
	taintTracking bool // STT: a tainted transmitter must never issue
	delayedNDA    bool // NDA: a speculative load broadcast must never release
	noSpecMSHR    bool // DoM/InvisiSpec: no speculative load occupies an MSHR
	invisibleOnly bool // InvisiSpec: speculative accesses must be invisible
	violations    []string
}

// newInvariantProbe maps a scheme to the invariants the oracle asserts on
// it — each scheme's one-line security argument, stated over Probe events.
func newInvariantProbe(kind core.SchemeKind) *invariantProbe {
	return &invariantProbe{
		taintTracking: kind == core.KindSTTRename || kind == core.KindSTTIssue,
		delayedNDA:    kind == core.KindNDA,
		noSpecMSHR:    kind == core.KindDoM || kind == core.KindInvisiSpec,
		invisibleOnly: kind == core.KindInvisiSpec,
	}
}

func (p *invariantProbe) violatef(format string, args ...any) {
	if len(p.violations) < 8 {
		p.violations = append(p.violations, fmt.Sprintf(format, args...))
	}
}

func (p *invariantProbe) OnIssue(ev core.IssueEvent) {
	if p.taintTracking && ev.Transmitter && ev.Tainted {
		p.violatef("cycle %d: tainted transmitter issued (pc %d, %v, seq %d, part %d)",
			ev.Cycle, ev.PC, ev.Op, ev.Seq, ev.Part)
	}
}

func (p *invariantProbe) OnLoadBroadcast(ev core.BroadcastEvent) {
	if p.delayedNDA && ev.Speculative {
		p.violatef("cycle %d: speculative load broadcast released (pc %d, seq %d, delayed=%v)",
			ev.Cycle, ev.PC, ev.Seq, ev.Delayed)
	}
}

func (p *invariantProbe) OnCacheAccess(ev core.CacheAccessEvent) {
	// The invisible-only invariant is the stricter of the two (it fires on
	// speculative hits too), so it is checked first: an InvisiSpec failure
	// reports its own argument, not the weaker MSHR consequence.
	if p.invisibleOnly && ev.Speculative && ev.Kind != core.CacheAccessInvisible {
		p.violatef("cycle %d: speculative load reached the cache side-effect path before exposure (pc %d, seq %d, addr %#x, kind %d)",
			ev.Cycle, ev.PC, ev.Seq, ev.Addr, ev.Kind)
		return
	}
	if p.noSpecMSHR && ev.Speculative && ev.MSHR {
		p.violatef("cycle %d: speculative load occupied an MSHR past the L1 (pc %d, seq %d, addr %#x)",
			ev.Cycle, ev.PC, ev.Seq, ev.Addr)
	}
}

// reference runs the in-order architectural simulator to completion,
// returning its commit stream and the final machine.
func reference(c Case, prog *isa.Program) ([]isa.Commit, *isa.ArchSim, error) {
	sim := isa.NewArchSim(prog)
	var stream []isa.Commit
	for len(stream) < maxRefInsts {
		rec := sim.Step()
		if sim.Halted() {
			return stream, sim, nil
		}
		stream = append(stream, rec)
	}
	return nil, nil, fmt.Errorf("diffsim: case %v: reference did not halt within %d instructions; replay: %s",
		c, maxRefInsts, c.ReplayCommand())
}

// CheckCase generates the case's program and checks every given scheme
// against the in-order reference on cfg: committed-instruction-stream
// equality, final architectural register and memory equality, liveness
// within a cycle bound, and the schemes' security invariants via the
// probe hooks. The first failure is returned, tagged with the case's
// replay command.
func CheckCase(cfg core.Config, kinds []core.SchemeKind, c Case) error {
	prog := Generate(c)
	if err := prog.Validate(); err != nil {
		return fmt.Errorf("diffsim: case %v: generated program invalid: %w; replay: %s",
			c, err, c.ReplayCommand())
	}
	want, sim, err := reference(c, prog)
	if err != nil {
		return err
	}
	for _, kind := range kinds {
		if err := checkScheme(cfg, kind, c, prog, want, sim); err != nil {
			return err
		}
	}
	return nil
}

// cycleBound returns the liveness bound for a program with n committed
// instructions: generous enough for the slowest scheme on the narrowest
// core (DRAM-bound worst case), tight enough that a livelock fails fast.
func cycleBound(n int) uint64 {
	return 50_000 + uint64(n)*200
}

func checkScheme(cfg core.Config, kind core.SchemeKind, cs Case, prog *isa.Program, want []isa.Commit, sim *isa.ArchSim) error {
	c, err := core.New(cfg, kind, prog)
	if err != nil {
		return caseErr(cs, cfg, kind, "core.New: %v", err)
	}
	probe := newInvariantProbe(kind)
	c.Probe = probe

	var got []isa.Commit
	divergence := -1
	c.CommitHook = func(rec isa.Commit) {
		if divergence < 0 && (len(got) >= len(want) || rec != want[len(got)]) {
			divergence = len(got)
		}
		got = append(got, rec)
	}

	res, err := c.Run(core.RunLimits{MaxCycles: cycleBound(len(want))})
	if err != nil {
		return caseErr(cs, cfg, kind, "deadlock: %v", err)
	}
	if !res.Halted {
		return caseErr(cs, cfg, kind,
			"liveness: no halt within %d cycles (%d/%d instructions committed)",
			cycleBound(len(want)), len(got), len(want))
	}

	// Committed-instruction-stream equality against the reference.
	switch {
	case divergence >= 0 && divergence < len(want):
		return caseErr(cs, cfg, kind, "commit stream diverged at instruction %d:\n  got  %+v\n  want %+v",
			divergence, got[divergence], want[divergence])
	case divergence >= 0:
		return caseErr(cs, cfg, kind, "commit stream too long: %d committed, reference executed %d (first extra: %+v)",
			len(got), len(want), got[divergence])
	case len(got) < len(want):
		return caseErr(cs, cfg, kind, "commit stream too short: %d committed, reference executed %d (next expected: %+v)",
			len(got), len(want), want[len(got)])
	}

	// Final architectural register state.
	regs := sim.Registers()
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		if got, want := c.ArchReg(r), regs[r]; got != want {
			return caseErr(cs, cfg, kind, "final %v = %#x, reference has %#x", r, got, want)
		}
	}

	// Final memory image, compared over every word the reference image
	// holds (initial data plus all stores); addresses are scanned in
	// sorted order so a failure is deterministic.
	image := sim.MemorySnapshot()
	addrs := make([]uint64, 0, len(image))
	for a := range image {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		if got, want := c.Memory().Read(a), image[a]; got != want {
			return caseErr(cs, cfg, kind, "final M[%#x] = %#x, reference has %#x", a, got, want)
		}
	}

	// Security invariants observed by the probe.
	if len(probe.violations) > 0 {
		return caseErr(cs, cfg, kind, "security invariant violated:\n  %s",
			probe.violations[0])
	}
	return nil
}

// Campaign runs n cases derived from the base seed — CaseForIndex(base, i)
// for i in [0, n) — on the harness's shared worker pool, checking every
// registered scheme for each case. The first failure cancels the rest and
// is returned (lowest index among the cases that ran; every failure's
// message carries its own replay command either way). progress, when
// non-nil, receives one line per completed case; calls are serialized.
func Campaign(ctx context.Context, base uint64, n, parallelism int, progress func(format string, args ...any)) error {
	var mu sync.Mutex
	done := 0
	return harness.ParallelDo(ctx, n, parallelism, func(i int) error {
		cs := CaseForIndex(base, i)
		if err := CheckCase(ConfigForCase(cs), core.SchemeKinds(), cs); err != nil {
			return err
		}
		if progress != nil {
			mu.Lock()
			done++
			progress("diffsim: [%d/%d] ok %v on %s", done, n, cs, ConfigForCase(cs).Name)
			mu.Unlock()
		}
		return nil
	})
}
