// Package diffsim is the differential fuzzing subsystem: a seeded
// random-program generator plus an oracle that cross-checks the
// out-of-order core under every registered secure-speculation scheme
// against the in-order architectural reference simulator (internal/isa's
// ArchSim).
//
// The paper's claims rest on the secure schemes changing *timing only*:
// committed architectural state must be identical to the unsafe baseline
// and to an in-order reference. The oracle machine-checks that claim over
// generated programs — committed-instruction-stream equality, final
// register and memory equality, liveness within a cycle bound — and,
// through the core's observational Probe hooks, the security invariants
// themselves: STT never issues a tainted transmitter while its taint root
// is unresolved, and NDA never broadcasts a speculative load's data.
//
// Every case is a reproducible (seed, feature-mask) pair. Any failure
// message embeds the exact `shadowbinding -fuzz-seed N -fuzz-mask M`
// invocation that replays it.
package diffsim

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/isa"
)

// FeatureMask selects which behaviours a generated program mixes. Each
// feature targets a distinct stressor of the secure schemes: shadows,
// tainted transmitters, delayed broadcasts, memory-ordering speculation,
// and control-flow recovery.
type FeatureMask uint16

// Program features.
const (
	// FeatALU emits random integer ALU mixes over a register pool.
	FeatALU FeatureMask = 1 << iota
	// FeatMulDiv emits multiplies and divides (variable-latency units;
	// divides are transmitters under STT).
	FeatMulDiv
	// FeatPointerChase emits serialized loads through a shuffled ring —
	// every hop's address is speculatively loaded data.
	FeatPointerChase
	// FeatIndirectLoad emits A[B[i]] pairs: the classic tainted-address
	// transmitter the STT schemes must block.
	FeatIndirectLoad
	// FeatDataDepBranch emits forward branches conditioned on loaded
	// bits: slow-resolving C-shadows and frequent mispredicts.
	FeatDataDepBranch
	// FeatStoreAlias emits store/load pairs over a tiny buffer with
	// computed addresses: D-shadows, store-to-load forwarding, and
	// memory-ordering violations.
	FeatStoreAlias
	// FeatCallReturn emits nested direct calls (return-address-stack
	// depth and jalr returns).
	FeatCallReturn
	// FeatIndirectCall emits jalr calls through a function-pointer table
	// loaded from memory (BTB-predicted indirect control flow).
	FeatIndirectCall

	numFeatures = 8
)

// FeatAll enables every feature.
const FeatAll = FeatureMask(1<<numFeatures) - 1

var featureNames = [numFeatures]string{
	"alu", "muldiv", "chase", "indirect-load",
	"dep-branch", "store-alias", "call", "indirect-call",
}

func (m FeatureMask) String() string {
	if m == 0 {
		return "none"
	}
	var parts []string
	for i := 0; i < numFeatures; i++ {
		if m&(1<<i) != 0 {
			parts = append(parts, featureNames[i])
		}
	}
	return strings.Join(parts, "+")
}

// Disjoint data-segment bases. Every generated address computation masks
// its index to the segment's (power-of-two) word count, so no program can
// read or write outside these regions.
const (
	ringBase   = 0x0001_0000 // pointer-chase ring
	tableABase = 0x0002_0000 // indirect-load value table
	tableBBase = 0x0003_0000 // indirect-load index table (entries index A)
	aliasBase  = 0x0004_0000 // tiny store/load aliasing buffer
	fptabBase  = 0x0005_0000 // function-pointer table (helper entry PCs)
	resultBase = 0x0006_0000 // epilogue register dump
	aliasWords = 4
	fptabWords = 4
	maxHelpers = 3 // bounded by the x26..x28 link-save registers
)

// Register roles. The value pool is freely read and clobbered by snippets
// and helpers; everything from x15 up is structural and only written where
// noted.
var poolRegs = []isa.Reg{
	isa.X4, isa.X5, isa.X6, isa.X7, isa.X8, isa.X9, isa.X10,
	isa.X11, isa.X12, isa.X13, isa.X14,
}

const (
	regChase  = isa.X15 // current pointer-chase node address
	regTabA   = isa.X17 // tableABase
	regTabB   = isa.X18 // tableBBase
	regAlias  = isa.X19 // aliasBase
	regFptab  = isa.X21 // fptabBase
	regResult = isa.X22 // resultBase
	regSave0  = isa.X26 // link saves for nested helper calls (x26..x28)
	regTmp    = isa.X29 // address scratch, never live across snippets
	regIter   = isa.X30 // monotonically increasing iteration counter
	regCount  = isa.X31 // loop countdown (the only backward-branch operand)
)

// gen holds the generator's state for one program.
type gen struct {
	rng     *rand.Rand
	b       *isa.Builder
	mask    FeatureMask
	labelN  int
	helpers int // number of emitted helper functions

	// helperPCs records each helper's entry PC as it is emitted; the
	// function-pointer table for indirect calls is built from these
	// (labels stay internal to the builder until Build).
	helperPCs []uint64

	aWords int // tableA size (power of two)
	bWords int // tableB size (power of two)
	ringN  int // chase ring nodes (power of two)
}

// Generate builds the program for one case. Generation is fully
// deterministic in the case: the same (seed, mask) always yields an
// identical program. Termination is by construction — the only backward
// branches are counted loops over regCount, data-dependent branches jump
// strictly forward, and calls form an acyclic chain of helpers — so every
// generated program halts on the in-order reference.
func Generate(c Case) *isa.Program {
	mask := c.Mask & FeatAll
	if mask == 0 {
		mask = FeatAll
	}
	g := &gen{
		rng:  rand.New(rand.NewSource(int64(c.Seed))),
		b:    isa.NewBuilder(fmt.Sprintf("fuzz-%d-%#x", c.Seed, uint16(mask))),
		mask: mask,
	}
	g.aWords = 16 << g.rng.Intn(3) // 16..64
	g.bWords = 16 << g.rng.Intn(3) // 16..64
	g.ringN = 8 << g.rng.Intn(3)   // 8..32
	g.emitData()

	// Layout: a jump over the helper bodies, the helpers, then main.
	g.b.J("main")
	g.emitHelpers()
	g.b.Label("main")
	g.emitInit()
	for loops := 1 + g.rng.Intn(3); loops > 0; loops-- {
		g.emitLoop()
	}
	g.emitEpilogue()
	return g.b.MustBuild()
}

func (g *gen) has(f FeatureMask) bool { return g.mask&f != 0 }

func (g *gen) label(prefix string) string {
	g.labelN++
	return fmt.Sprintf("%s%d", prefix, g.labelN)
}

func (g *gen) pool() isa.Reg { return poolRegs[g.rng.Intn(len(poolRegs))] }

// emitData lays down every data segment the feature mix can touch.
func (g *gen) emitData() {
	// Chase ring: a single cycle over all nodes, so the chase pointer can
	// never leave the ring no matter how many hops execute.
	order := g.rng.Perm(g.ringN)
	ring := make([]uint64, g.ringN)
	for i := 0; i < g.ringN; i++ {
		ring[order[i]] = ringBase + 8*uint64(order[(i+1)%g.ringN])
	}
	g.b.Data(ringBase, ring)

	tabA := make([]uint64, g.aWords)
	for i := range tabA {
		tabA[i] = g.rng.Uint64()
	}
	g.b.Data(tableABase, tabA)

	// tableB entries index tableA, so a double-indirect load is always
	// in bounds.
	tabB := make([]uint64, g.bWords)
	for i := range tabB {
		tabB[i] = uint64(g.rng.Intn(g.aWords))
	}
	g.b.Data(tableBBase, tabB)

	alias := make([]uint64, aliasWords)
	for i := range alias {
		alias[i] = g.rng.Uint64()
	}
	g.b.Data(aliasBase, alias)
}

// emitHelpers emits the call-chain helper functions: helper k does a small
// op mix and (below the deepest) saves its link and calls helper k+1. The
// chain is acyclic, so calls always return.
func (g *gen) emitHelpers() {
	if !g.has(FeatCallReturn | FeatIndirectCall) {
		return
	}
	g.helpers = 1 + g.rng.Intn(maxHelpers)
	for k := 0; k < g.helpers; k++ {
		g.helperPCs = append(g.helperPCs, g.b.PC())
		g.b.Label(helperName(k))
		for n := 1 + g.rng.Intn(3); n > 0; n-- {
			g.emitHelperOp()
		}
		if k+1 < g.helpers {
			save := regSave0 + isa.Reg(k)
			g.b.Add(save, isa.RegLink, isa.X0)
			g.b.Call(helperName(k + 1))
			g.b.Add(isa.RegLink, save, isa.X0)
		}
		if g.rng.Intn(2) == 0 {
			g.emitHelperOp()
		}
		g.b.Ret()
	}

	// Function-pointer table for indirect calls: helper entry PCs. Helper
	// labels resolve at Build time, so the table is built from the PCs
	// recorded as the helpers were emitted — which is why helpers precede
	// main in the layout.
	if g.has(FeatIndirectCall) {
		fptab := make([]uint64, fptabWords)
		for i := range fptab {
			fptab[i] = g.helperPC(g.rng.Intn(g.helpers))
		}
		g.b.Data(fptabBase, fptab)
	}
}

func helperName(k int) string { return fmt.Sprintf("helper%d", k) }

// helperPC returns the recorded entry PC of helper k.
func (g *gen) helperPC(k int) uint64 { return g.helperPCs[k] }

// emitHelperOp emits one helper-body operation: a pool ALU op or a safe
// table load.
func (g *gen) emitHelperOp() {
	if g.rng.Intn(3) == 0 {
		g.emitTableALoad(g.pool())
		return
	}
	g.emitALUOp()
}

// emitInit seeds the register pool and structural registers.
func (g *gen) emitInit() {
	for _, r := range poolRegs {
		g.b.Li(r, int64(g.rng.Uint64()))
	}
	g.b.Li(regTabA, tableABase)
	g.b.Li(regTabB, tableBBase)
	g.b.Li(regAlias, aliasBase)
	g.b.Li(regFptab, fptabBase)
	g.b.Li(regResult, resultBase)
	g.b.Li(regChase, ringBase+8*int64(g.rng.Intn(g.ringN)))
	g.b.Li(regIter, 0)
}

// emitLoop emits one counted loop whose body is a random snippet mix.
func (g *gen) emitLoop() {
	iters := 2 + g.rng.Intn(8)
	top := g.label("loop")
	g.b.Li(regCount, int64(iters))
	g.b.Label(top)
	snippets := g.enabledSnippets()
	for n := 6 + g.rng.Intn(12); n > 0; n-- {
		snippets[g.rng.Intn(len(snippets))]()
	}
	g.b.Addi(regIter, regIter, 1)
	g.b.Addi(regCount, regCount, -1)
	g.b.Bne(regCount, isa.X0, top)
}

// enabledSnippets returns the body emitters the feature mask allows. At
// least one is always available: a zero mask was normalized to FeatAll in
// Generate.
func (g *gen) enabledSnippets() []func() {
	var s []func()
	if g.has(FeatALU) {
		s = append(s, g.emitALUOp)
	}
	if g.has(FeatMulDiv) {
		s = append(s, g.snippetMulDiv)
	}
	if g.has(FeatPointerChase) {
		s = append(s, g.snippetChase)
	}
	if g.has(FeatIndirectLoad) {
		s = append(s, g.snippetIndirectLoad)
	}
	if g.has(FeatDataDepBranch) {
		s = append(s, g.snippetDepBranch)
	}
	if g.has(FeatStoreAlias) {
		s = append(s, g.snippetStoreAlias)
	}
	if g.has(FeatCallReturn) && g.helpers > 0 {
		s = append(s, g.snippetCall)
	}
	if g.has(FeatIndirectCall) && g.helpers > 0 {
		s = append(s, g.snippetIndirectCall)
	}
	if len(s) == 0 {
		s = append(s, g.emitALUOp)
	}
	return s
}

var rrOps = []isa.Op{
	isa.Add, isa.Sub, isa.And, isa.Or, isa.Xor,
	isa.Sll, isa.Srl, isa.Sra, isa.Slt, isa.Sltu,
}

var riOps = []isa.Op{
	isa.Addi, isa.Andi, isa.Ori, isa.Xori,
	isa.Slli, isa.Srli, isa.Srai, isa.Slti,
}

// emitALUOp emits one random ALU operation over the pool.
func (g *gen) emitALUOp() {
	if g.rng.Intn(2) == 0 {
		op := rrOps[g.rng.Intn(len(rrOps))]
		g.b.Emit(isa.Inst{Op: op, Rd: g.pool(), Rs1: g.pool(), Rs2: g.pool()})
		return
	}
	op := riOps[g.rng.Intn(len(riOps))]
	imm := int64(g.rng.Intn(4096) - 2048)
	switch op {
	case isa.Slli, isa.Srli, isa.Srai:
		imm = int64(g.rng.Intn(64))
	}
	g.b.Emit(isa.Inst{Op: op, Rd: g.pool(), Rs1: g.pool(), Imm: imm})
}

func (g *gen) snippetMulDiv() {
	op := []isa.Op{isa.Mul, isa.Mul, isa.Div, isa.Rem}[g.rng.Intn(4)]
	g.b.Emit(isa.Inst{Op: op, Rd: g.pool(), Rs1: g.pool(), Rs2: g.pool()})
}

// snippetChase hops the chase pointer: each hop's address is the previous
// hop's loaded data.
func (g *gen) snippetChase() {
	for n := 1 + g.rng.Intn(3); n > 0; n-- {
		g.b.Ld(regChase, regChase, 0)
	}
}

// emitTableALoad loads tableA at a masked pool index into rd.
func (g *gen) emitTableALoad(rd isa.Reg) {
	g.b.Andi(regTmp, g.pool(), int64(g.aWords-1))
	g.b.Slli(regTmp, regTmp, 3)
	g.b.Add(regTmp, regTmp, regTabA)
	g.b.Ld(rd, regTmp, 0)
}

// snippetIndirectLoad emits A[B[i]]: the second load's address derives
// from the first's speculatively loaded data.
func (g *gen) snippetIndirectLoad() {
	d := g.pool()
	g.b.Andi(regTmp, g.pool(), int64(g.bWords-1))
	g.b.Slli(regTmp, regTmp, 3)
	g.b.Add(regTmp, regTmp, regTabB)
	g.b.Ld(d, regTmp, 0) // d = B[i], an index into A
	g.b.Slli(regTmp, d, 3)
	g.b.Add(regTmp, regTmp, regTabA)
	g.b.Ld(d, regTmp, 0) // d = A[B[i]]
}

// snippetDepBranch branches forward over a short block on a loaded bit.
func (g *gen) snippetDepBranch() {
	v := g.pool()
	g.emitTableALoad(v)
	g.b.Andi(regTmp, v, 1<<g.rng.Intn(8))
	skip := g.label("skip")
	if g.rng.Intn(2) == 0 {
		g.b.Beq(regTmp, isa.X0, skip)
	} else {
		g.b.Bne(regTmp, isa.X0, skip)
	}
	for n := 1 + g.rng.Intn(3); n > 0; n-- {
		g.emitALUOp()
	}
	g.b.Label(skip)
}

// snippetStoreAlias emits a store and a load over the tiny alias buffer;
// one of the two addresses is computed from pool data (late-resolving),
// so the pair exercises D-shadows, forwarding, and ordering speculation.
func (g *gen) snippetStoreAlias() {
	fixed := int64(8 * g.rng.Intn(aliasWords))
	g.b.Andi(regTmp, g.pool(), aliasWords-1)
	g.b.Slli(regTmp, regTmp, 3)
	g.b.Add(regTmp, regTmp, regAlias)
	if g.rng.Intn(2) == 0 {
		// Computed (possibly tainted) store address, fixed reload.
		g.b.Sd(g.pool(), regTmp, 0)
		g.b.Ld(g.pool(), regAlias, fixed)
	} else {
		// Fixed store, computed reload: the load may bypass the store.
		g.b.Sd(g.pool(), regAlias, fixed)
		g.b.Ld(g.pool(), regTmp, 0)
	}
}

func (g *gen) snippetCall() {
	g.b.Call(helperName(g.rng.Intn(g.helpers)))
}

// snippetIndirectCall calls through the function-pointer table, indexed by
// the iteration counter so successive iterations hit different targets.
func (g *gen) snippetIndirectCall() {
	g.b.Andi(regTmp, regIter, fptabWords-1)
	g.b.Slli(regTmp, regTmp, 3)
	g.b.Add(regTmp, regTmp, regFptab)
	g.b.Ld(regTmp, regTmp, 0)
	g.b.Jalr(isa.RegLink, regTmp, 0)
}

// emitEpilogue dumps the live register state to the result area so every
// pool register's final value is part of the compared memory image, then
// halts.
func (g *gen) emitEpilogue() {
	off := int64(0)
	for _, r := range append(append([]isa.Reg{}, poolRegs...), regChase, regIter) {
		g.b.Sd(r, regResult, off)
		off += 8
	}
	g.b.Halt()
}
