package isa

import "fmt"

// Commit records one architecturally executed instruction: what the
// out-of-order core must produce at its commit stage. The OoO core's tests
// compare its commit stream against an ArchSim-produced stream.
type Commit struct {
	PC     uint64
	Inst   Inst
	Rd     Reg    // destination, X0 if none
	Value  uint64 // value written to Rd (if any)
	Addr   uint64 // effective address for loads/stores
	Taken  bool   // branch outcome
	Target uint64 // next PC
}

// ArchSim is the in-order architectural reference simulator. It executes a
// Program functionally with no timing. The zero value is not usable; use
// NewArchSim.
type ArchSim struct {
	prog   *Program
	regs   [NumRegs]uint64
	mem    map[uint64]uint64
	pc     uint64
	halted bool
	count  uint64
}

// NewArchSim returns a reference simulator with the program's initial data
// image loaded.
func NewArchSim(p *Program) *ArchSim {
	return &ArchSim{prog: p, mem: p.InitialMemory(), pc: p.Entry}
}

// Halted reports whether the machine has executed Halt.
func (s *ArchSim) Halted() bool { return s.halted }

// PC returns the current program counter.
func (s *ArchSim) PC() uint64 { return s.pc }

// Reg returns the current value of an architectural register.
func (s *ArchSim) Reg(r Reg) uint64 { return s.regs[r] }

// Mem returns the current value of a data word.
func (s *ArchSim) Mem(addr uint64) uint64 { return s.mem[addr&^7] }

// InstCount returns the number of instructions executed so far.
func (s *ArchSim) InstCount() uint64 { return s.count }

// Registers returns a copy of the architectural register file.
func (s *ArchSim) Registers() [NumRegs]uint64 { return s.regs }

// MemorySnapshot returns a copy of the current data image: the program's
// initial memory plus every store executed so far. The differential oracle
// compares it word-for-word against the out-of-order core's committed
// memory.
func (s *ArchSim) MemorySnapshot() map[uint64]uint64 {
	m := make(map[uint64]uint64, len(s.mem))
	for a, v := range s.mem {
		m[a] = v
	}
	return m
}

// Step executes one instruction and returns its commit record. Stepping a
// halted machine returns a Halt record without advancing.
func (s *ArchSim) Step() Commit {
	in := s.prog.At(s.pc)
	c := Commit{PC: s.pc, Inst: in, Target: s.pc + 1}
	if s.halted || in.Op == Halt {
		s.halted = true
		c.Target = s.pc
		return c
	}
	s.count++
	a, b2 := s.regs[in.Rs1], s.regs[in.Rs2]
	switch ClassOf(in.Op) {
	case ClassALU, ClassMul, ClassDiv:
		c.Value = EvalALU(in.Op, a, b2, in.Imm)
		s.write(in.Rd, c.Value)
		c.Rd = in.Rd
	case ClassLoad:
		c.Addr = (a + uint64(in.Imm)) &^ 7
		c.Value = s.mem[c.Addr]
		s.write(in.Rd, c.Value)
		c.Rd = in.Rd
	case ClassStore:
		c.Addr = (a + uint64(in.Imm)) &^ 7
		s.mem[c.Addr] = b2
		c.Value = b2
	case ClassBranch:
		c.Taken = BranchTaken(in.Op, a, b2)
		if c.Taken {
			c.Target = uint64(int64(s.pc) + in.Imm)
		}
	case ClassJump:
		link := s.pc + 1
		if in.Op == Jal {
			c.Target = uint64(int64(s.pc) + in.Imm)
		} else {
			c.Target = a + uint64(in.Imm)
		}
		c.Taken = true
		if in.Rd != X0 {
			s.write(in.Rd, link)
			c.Rd = in.Rd
			c.Value = link
		}
	case ClassNop:
		// nothing
	}
	s.pc = c.Target
	return c
}

func (s *ArchSim) write(r Reg, v uint64) {
	if r != X0 {
		s.regs[r] = v
	}
}

// Run executes until Halt or until max instructions have executed,
// returning the number executed. It errors if the limit is hit, which in
// tests indicates a program that fails to terminate.
func (s *ArchSim) Run(max uint64) (uint64, error) {
	start := s.count
	for !s.halted && s.count-start < max {
		s.Step()
	}
	if !s.halted {
		return s.count - start, fmt.Errorf("isa: %s did not halt within %d instructions", s.prog.Name, max)
	}
	return s.count - start, nil
}
