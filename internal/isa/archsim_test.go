package isa

import "testing"

// sumProgram computes sum of 0..n-1 in x10 using a loop.
func sumProgram(n int64) *Program {
	b := NewBuilder("sum")
	b.Li(X5, 0)  // i
	b.Li(X6, n)  // limit
	b.Li(X10, 0) // acc
	b.Label("loop")
	b.Add(X10, X10, X5)
	b.Addi(X5, X5, 1)
	b.Blt(X5, X6, "loop")
	b.Halt()
	return b.MustBuild()
}

func TestArchSimSumLoop(t *testing.T) {
	p := sumProgram(10)
	s := NewArchSim(p)
	if _, err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	if got := s.Reg(X10); got != 45 {
		t.Errorf("sum = %d, want 45", got)
	}
	// 3 setup + 10 iterations of 3 + halt not counted (Halt does not count).
	if got := s.InstCount(); got != 33 {
		t.Errorf("inst count = %d, want 33", got)
	}
}

func TestArchSimLoadsStores(t *testing.T) {
	b := NewBuilder("memtest")
	const base = 0x1000
	b.Data(base, []uint64{11, 22, 33})
	b.Li(X5, base)
	b.Ld(X6, X5, 8)     // x6 = 22
	b.Addi(X6, X6, 100) // 122
	b.Sd(X6, X5, 16)    // M[base+16] = 122
	b.Ld(X7, X5, 16)    // x7 = 122
	b.Halt()
	p := b.MustBuild()
	s := NewArchSim(p)
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if s.Reg(X7) != 122 {
		t.Errorf("x7 = %d, want 122", s.Reg(X7))
	}
	if s.Mem(base+16) != 122 {
		t.Errorf("mem = %d, want 122", s.Mem(base+16))
	}
	if s.Mem(base) != 11 {
		t.Errorf("mem[base] = %d, want 11", s.Mem(base))
	}
}

func TestArchSimCallReturn(t *testing.T) {
	b := NewBuilder("call")
	b.Li(X10, 5)
	b.Call("double")
	b.Addi(X10, X10, 1) // 11
	b.Halt()
	b.Label("double")
	b.Add(X10, X10, X10)
	b.Ret()
	p := b.MustBuild()
	s := NewArchSim(p)
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if s.Reg(X10) != 11 {
		t.Errorf("x10 = %d, want 11", s.Reg(X10))
	}
}

func TestArchSimX0AlwaysZero(t *testing.T) {
	b := NewBuilder("x0")
	b.Addi(X0, X0, 42)
	b.Add(X5, X0, X0)
	b.Halt()
	s := NewArchSim(b.MustBuild())
	if _, err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if s.Reg(X0) != 0 || s.Reg(X5) != 0 {
		t.Errorf("x0 = %d, x5 = %d; want 0, 0", s.Reg(X0), s.Reg(X5))
	}
}

func TestArchSimHaltIdempotent(t *testing.T) {
	b := NewBuilder("halt")
	b.Halt()
	s := NewArchSim(b.MustBuild())
	c1 := s.Step()
	c2 := s.Step()
	if !s.Halted() {
		t.Fatal("not halted")
	}
	if c1.Inst.Op != Halt || c2.Inst.Op != Halt {
		t.Errorf("steps after halt: %v, %v", c1.Inst, c2.Inst)
	}
	if s.InstCount() != 0 {
		t.Errorf("halt must not count as executed, got %d", s.InstCount())
	}
}

func TestArchSimRunawayPCDecodesHalt(t *testing.T) {
	b := NewBuilder("runaway")
	b.Addi(X5, X0, 1) // falls off the end
	s := NewArchSim(b.MustBuild())
	if _, err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if !s.Halted() {
		t.Error("machine should halt when PC runs past the program")
	}
}

func TestArchSimRunLimit(t *testing.T) {
	b := NewBuilder("infinite")
	b.Label("spin")
	b.J("spin")
	s := NewArchSim(b.MustBuild())
	n, err := s.Run(50)
	if err == nil {
		t.Fatal("expected error for non-terminating program")
	}
	if n != 50 {
		t.Errorf("executed %d, want 50", n)
	}
}

func TestBuilderValidateRejectsBadTargets(t *testing.T) {
	p := &Program{Name: "bad", Insts: []Inst{{Op: Beq, Imm: 100}}}
	if err := p.Validate(); err == nil {
		t.Error("expected validation error for out-of-range branch target")
	}
	p2 := &Program{Name: "bad2", Insts: []Inst{{Op: Jal, Imm: -5}}}
	if err := p2.Validate(); err == nil {
		t.Error("expected validation error for out-of-range jal target")
	}
}

func TestBuilderDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate label")
		}
	}()
	b := NewBuilder("dup")
	b.Label("a")
	b.Label("a")
}

func TestBuilderUndefinedLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on undefined label")
		}
	}()
	b := NewBuilder("undef")
	b.J("nowhere")
	b.Build()
}

func TestProgramInitialMemory(t *testing.T) {
	b := NewBuilder("mem")
	b.Data(0x100, []uint64{1, 2})
	b.Data(0x108, []uint64{9}) // overlaps second word
	b.Halt()
	p := b.MustBuild()
	m := p.InitialMemory()
	if m[0x100] != 1 || m[0x108] != 9 {
		t.Errorf("initial memory = %v", m)
	}
}
