// Package isa defines the instruction set executed by the ShadowBinding
// simulator: a compact RV64-like register machine with integer ALU
// operations, multiply/divide, 64-bit loads and stores, conditional
// branches, and jumps.
//
// The package also provides a program Builder with label support
// (builder.go) and an in-order architectural reference simulator
// (archsim.go) that the out-of-order core uses as a commit-time oracle in
// tests.
//
// Program counters are instruction indices, not byte addresses: the
// instruction at PC p is Program.Insts[p]. Data addresses are 64-bit byte
// addresses; loads and stores move aligned 64-bit words.
package isa

import "fmt"

// Reg names an architectural register. The machine has 32 integer
// registers; register X0 is hardwired to zero, as in RISC-V.
type Reg uint8

// Architectural registers. A few have conventional roles mirrored from the
// RISC-V ABI: X1 is the link register used by the return-address stack.
const (
	X0 Reg = iota // hardwired zero
	X1            // link register (ra)
	X2            // stack pointer by convention
	X3
	X4
	X5
	X6
	X7
	X8
	X9
	X10
	X11
	X12
	X13
	X14
	X15
	X16
	X17
	X18
	X19
	X20
	X21
	X22
	X23
	X24
	X25
	X26
	X27
	X28
	X29
	X30
	X31
)

// NumRegs is the number of architectural integer registers.
const NumRegs = 32

// RegLink is the conventional link register used for calls and returns; the
// front end's return-address stack keys on it.
const RegLink = X1

func (r Reg) String() string { return fmt.Sprintf("x%d", uint8(r)) }

// Op identifies an operation. Operations are grouped into classes (see
// Class) that determine which functional unit executes them and whether
// they are observable "transmitters" under the secure speculation schemes.
type Op uint8

// Operations.
const (
	Nop Op = iota

	// Register-register ALU.
	Add
	Sub
	And
	Or
	Xor
	Sll
	Srl
	Sra
	Slt
	Sltu

	// Register-immediate ALU.
	Addi
	Andi
	Ori
	Xori
	Slli
	Srli
	Srai
	Slti

	// Upper-immediate load (rd = imm).
	Lui

	// Multiply/divide.
	Mul
	Div
	Rem

	// Memory. Ld: rd = M[rs1+imm]. Sd: M[rs1+imm] = rs2.
	Ld
	Sd

	// Conditional branches: branch to PC+imm when the condition holds.
	Beq
	Bne
	Blt
	Bge
	Bltu
	Bgeu

	// Jumps. Jal: rd = PC+1, jump to PC+imm. Jalr: rd = PC+1, jump to
	// rs1+imm (an absolute instruction index).
	Jal
	Jalr

	// Halt stops the machine. It is not a real RISC-V instruction but a
	// simulator convenience marking the end of a program.
	Halt

	numOps
)

var opNames = [numOps]string{
	Nop: "nop", Add: "add", Sub: "sub", And: "and", Or: "or", Xor: "xor",
	Sll: "sll", Srl: "srl", Sra: "sra", Slt: "slt", Sltu: "sltu",
	Addi: "addi", Andi: "andi", Ori: "ori", Xori: "xori", Slli: "slli",
	Srli: "srli", Srai: "srai", Slti: "slti", Lui: "lui",
	Mul: "mul", Div: "div", Rem: "rem",
	Ld: "ld", Sd: "sd",
	Beq: "beq", Bne: "bne", Blt: "blt", Bge: "bge", Bltu: "bltu", Bgeu: "bgeu",
	Jal: "jal", Jalr: "jalr", Halt: "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class groups operations by the pipeline resources they use.
type Class uint8

// Operation classes.
const (
	ClassNop Class = iota
	ClassALU
	ClassMul
	ClassDiv
	ClassLoad
	ClassStore
	ClassBranch // conditional branches
	ClassJump   // unconditional jumps (jal/jalr)
	ClassHalt
)

func (c Class) String() string {
	switch c {
	case ClassNop:
		return "nop"
	case ClassALU:
		return "alu"
	case ClassMul:
		return "mul"
	case ClassDiv:
		return "div"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassJump:
		return "jump"
	case ClassHalt:
		return "halt"
	}
	return "class?"
}

// ClassOf returns the class of an operation.
func ClassOf(o Op) Class {
	switch o {
	case Nop:
		return ClassNop
	case Add, Sub, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu,
		Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti, Lui:
		return ClassALU
	case Mul:
		return ClassMul
	case Div, Rem:
		return ClassDiv
	case Ld:
		return ClassLoad
	case Sd:
		return ClassStore
	case Beq, Bne, Blt, Bge, Bltu, Bgeu:
		return ClassBranch
	case Jal, Jalr:
		return ClassJump
	case Halt:
		return ClassHalt
	}
	return ClassNop
}

// Inst is a decoded instruction. Unused fields are zero. For stores, Rs1 is
// the address base and Rs2 the data source; there is no destination. For
// branches, Imm is a PC-relative instruction offset.
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int64
}

// HasDest reports whether the instruction writes a destination register.
// X0 destinations are treated as no writes.
func (i Inst) HasDest() bool {
	switch ClassOf(i.Op) {
	case ClassALU, ClassMul, ClassDiv, ClassLoad, ClassJump:
		return i.Rd != X0
	}
	return false
}

// ReadsRs1 reports whether the instruction reads Rs1.
func (i Inst) ReadsRs1() bool {
	switch i.Op {
	case Nop, Lui, Jal, Halt:
		return false
	}
	return true
}

// ReadsRs2 reports whether the instruction reads Rs2.
func (i Inst) ReadsRs2() bool {
	switch ClassOf(i.Op) {
	case ClassBranch, ClassStore:
		return true
	}
	switch i.Op {
	case Add, Sub, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu, Mul, Div, Rem:
		return true
	}
	return false
}

// IsControl reports whether the instruction redirects the PC.
func (i Inst) IsControl() bool {
	c := ClassOf(i.Op)
	return c == ClassBranch || c == ClassJump
}

func (i Inst) String() string {
	switch ClassOf(i.Op) {
	case ClassNop, ClassHalt:
		return i.Op.String()
	case ClassLoad:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rd, i.Imm, i.Rs1)
	case ClassStore:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rs2, i.Imm, i.Rs1)
	case ClassBranch:
		return fmt.Sprintf("%s %s, %s, %+d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case ClassJump:
		if i.Op == Jal {
			return fmt.Sprintf("jal %s, %+d", i.Rd, i.Imm)
		}
		return fmt.Sprintf("jalr %s, %s, %d", i.Rd, i.Rs1, i.Imm)
	}
	if i.Op == Lui {
		return fmt.Sprintf("lui %s, %d", i.Rd, i.Imm)
	}
	switch i.Op {
	case Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	}
	return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs1, i.Rs2)
}

// EvalALU computes the result of an ALU, MUL, or DIV class operation given
// its source values. Loads, stores, branches, and jumps are handled by the
// pipeline and the architectural simulator directly.
func EvalALU(op Op, a, b uint64, imm int64) uint64 {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case And:
		return a & b
	case Or:
		return a | b
	case Xor:
		return a ^ b
	case Sll:
		return a << (b & 63)
	case Srl:
		return a >> (b & 63)
	case Sra:
		return uint64(int64(a) >> (b & 63))
	case Slt:
		if int64(a) < int64(b) {
			return 1
		}
		return 0
	case Sltu:
		if a < b {
			return 1
		}
		return 0
	case Addi:
		return a + uint64(imm)
	case Andi:
		return a & uint64(imm)
	case Ori:
		return a | uint64(imm)
	case Xori:
		return a ^ uint64(imm)
	case Slli:
		return a << (uint64(imm) & 63)
	case Srli:
		return a >> (uint64(imm) & 63)
	case Srai:
		return uint64(int64(a) >> (uint64(imm) & 63))
	case Slti:
		if int64(a) < imm {
			return 1
		}
		return 0
	case Lui:
		return uint64(imm)
	case Mul:
		return a * b
	case Div:
		if b == 0 {
			return ^uint64(0)
		}
		if int64(a) == -1<<63 && int64(b) == -1 {
			// RISC-V overflow semantics: the quotient is the dividend.
			// (Go would panic on this division.)
			return a
		}
		return uint64(int64(a) / int64(b))
	case Rem:
		if b == 0 {
			return a
		}
		if int64(a) == -1<<63 && int64(b) == -1 {
			// RISC-V overflow semantics: the remainder is zero.
			return 0
		}
		return uint64(int64(a) % int64(b))
	}
	return 0
}

// BranchTaken evaluates a conditional branch given its source values.
func BranchTaken(op Op, a, b uint64) bool {
	switch op {
	case Beq:
		return a == b
	case Bne:
		return a != b
	case Blt:
		return int64(a) < int64(b)
	case Bge:
		return int64(a) >= int64(b)
	case Bltu:
		return a < b
	case Bgeu:
		return a >= b
	}
	return false
}
