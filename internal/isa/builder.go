package isa

import "fmt"

// Builder assembles a Program with symbolic labels. Emitters append one
// instruction each; Label marks the next instruction's position; branch and
// jump emitters taking a label name are fixed up at Build time.
//
// Builder methods panic on malformed input (unknown label at Build,
// duplicate label) because programs are constructed by code, not end users;
// a panic here is a programming error in the workload generator.
type Builder struct {
	name   string
	insts  []Inst
	data   []DataSeg
	labels map[string]uint64
	fixups []fixup
}

type fixup struct {
	pc    int
	label string
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]uint64)}
}

// PC returns the index the next emitted instruction will occupy.
func (b *Builder) PC() uint64 { return uint64(len(b.insts)) }

// Label binds name to the next instruction's PC.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("isa: duplicate label %q in %s", name, b.name))
	}
	b.labels[name] = b.PC()
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in Inst) { b.insts = append(b.insts, in) }

// Data adds an initialized data segment.
func (b *Builder) Data(addr uint64, words []uint64) {
	b.data = append(b.data, DataSeg{Addr: addr, Words: words})
}

// ALU and memory emitters.

func (b *Builder) Nop()                        { b.Emit(Inst{Op: Nop}) }
func (b *Builder) Add(rd, rs1, rs2 Reg)        { b.Emit(Inst{Op: Add, Rd: rd, Rs1: rs1, Rs2: rs2}) }
func (b *Builder) Sub(rd, rs1, rs2 Reg)        { b.Emit(Inst{Op: Sub, Rd: rd, Rs1: rs1, Rs2: rs2}) }
func (b *Builder) And(rd, rs1, rs2 Reg)        { b.Emit(Inst{Op: And, Rd: rd, Rs1: rs1, Rs2: rs2}) }
func (b *Builder) Or(rd, rs1, rs2 Reg)         { b.Emit(Inst{Op: Or, Rd: rd, Rs1: rs1, Rs2: rs2}) }
func (b *Builder) Xor(rd, rs1, rs2 Reg)        { b.Emit(Inst{Op: Xor, Rd: rd, Rs1: rs1, Rs2: rs2}) }
func (b *Builder) Sll(rd, rs1, rs2 Reg)        { b.Emit(Inst{Op: Sll, Rd: rd, Rs1: rs1, Rs2: rs2}) }
func (b *Builder) Srl(rd, rs1, rs2 Reg)        { b.Emit(Inst{Op: Srl, Rd: rd, Rs1: rs1, Rs2: rs2}) }
func (b *Builder) Slt(rd, rs1, rs2 Reg)        { b.Emit(Inst{Op: Slt, Rd: rd, Rs1: rs1, Rs2: rs2}) }
func (b *Builder) Sltu(rd, rs1, rs2 Reg)       { b.Emit(Inst{Op: Sltu, Rd: rd, Rs1: rs1, Rs2: rs2}) }
func (b *Builder) Mul(rd, rs1, rs2 Reg)        { b.Emit(Inst{Op: Mul, Rd: rd, Rs1: rs1, Rs2: rs2}) }
func (b *Builder) Div(rd, rs1, rs2 Reg)        { b.Emit(Inst{Op: Div, Rd: rd, Rs1: rs1, Rs2: rs2}) }
func (b *Builder) Rem(rd, rs1, rs2 Reg)        { b.Emit(Inst{Op: Rem, Rd: rd, Rs1: rs1, Rs2: rs2}) }
func (b *Builder) Addi(rd, rs1 Reg, imm int64) { b.Emit(Inst{Op: Addi, Rd: rd, Rs1: rs1, Imm: imm}) }
func (b *Builder) Andi(rd, rs1 Reg, imm int64) { b.Emit(Inst{Op: Andi, Rd: rd, Rs1: rs1, Imm: imm}) }
func (b *Builder) Ori(rd, rs1 Reg, imm int64)  { b.Emit(Inst{Op: Ori, Rd: rd, Rs1: rs1, Imm: imm}) }
func (b *Builder) Xori(rd, rs1 Reg, imm int64) { b.Emit(Inst{Op: Xori, Rd: rd, Rs1: rs1, Imm: imm}) }
func (b *Builder) Slli(rd, rs1 Reg, imm int64) { b.Emit(Inst{Op: Slli, Rd: rd, Rs1: rs1, Imm: imm}) }
func (b *Builder) Srli(rd, rs1 Reg, imm int64) { b.Emit(Inst{Op: Srli, Rd: rd, Rs1: rs1, Imm: imm}) }
func (b *Builder) Srai(rd, rs1 Reg, imm int64) { b.Emit(Inst{Op: Srai, Rd: rd, Rs1: rs1, Imm: imm}) }
func (b *Builder) Slti(rd, rs1 Reg, imm int64) { b.Emit(Inst{Op: Slti, Rd: rd, Rs1: rs1, Imm: imm}) }
func (b *Builder) Lui(rd Reg, imm int64)       { b.Emit(Inst{Op: Lui, Rd: rd, Imm: imm}) }

// Li loads an arbitrary 64-bit constant (emitted as lui, or lui+ori pairs
// as needed; small constants use a single instruction).
func (b *Builder) Li(rd Reg, v int64) {
	b.Lui(rd, v)
}

// Ld emits rd = M[rs1+imm].
func (b *Builder) Ld(rd, rs1 Reg, imm int64) { b.Emit(Inst{Op: Ld, Rd: rd, Rs1: rs1, Imm: imm}) }

// Sd emits M[rs1+imm] = rs2.
func (b *Builder) Sd(rs2, rs1 Reg, imm int64) { b.Emit(Inst{Op: Sd, Rs1: rs1, Rs2: rs2, Imm: imm}) }

// Branch emitters targeting labels.

func (b *Builder) Beq(rs1, rs2 Reg, label string)  { b.branch(Beq, rs1, rs2, label) }
func (b *Builder) Bne(rs1, rs2 Reg, label string)  { b.branch(Bne, rs1, rs2, label) }
func (b *Builder) Blt(rs1, rs2 Reg, label string)  { b.branch(Blt, rs1, rs2, label) }
func (b *Builder) Bge(rs1, rs2 Reg, label string)  { b.branch(Bge, rs1, rs2, label) }
func (b *Builder) Bltu(rs1, rs2 Reg, label string) { b.branch(Bltu, rs1, rs2, label) }
func (b *Builder) Bgeu(rs1, rs2 Reg, label string) { b.branch(Bgeu, rs1, rs2, label) }

func (b *Builder) branch(op Op, rs1, rs2 Reg, label string) {
	b.fixups = append(b.fixups, fixup{pc: len(b.insts), label: label})
	b.Emit(Inst{Op: op, Rs1: rs1, Rs2: rs2})
}

// Jal emits a jump-and-link to a label; rd receives the return PC.
func (b *Builder) Jal(rd Reg, label string) {
	b.fixups = append(b.fixups, fixup{pc: len(b.insts), label: label})
	b.Emit(Inst{Op: Jal, Rd: rd})
}

// J emits an unconditional jump (jal with x0 destination).
func (b *Builder) J(label string) { b.Jal(X0, label) }

// Call emits a call: jal with the link register as destination.
func (b *Builder) Call(label string) { b.Jal(RegLink, label) }

// Ret emits a return: jalr x0, ra, 0.
func (b *Builder) Ret() { b.Emit(Inst{Op: Jalr, Rd: X0, Rs1: RegLink}) }

// Jalr emits an indirect jump to rs1+imm, linking into rd.
func (b *Builder) Jalr(rd, rs1 Reg, imm int64) {
	b.Emit(Inst{Op: Jalr, Rd: rd, Rs1: rs1, Imm: imm})
}

// Halt emits the stop instruction.
func (b *Builder) Halt() { b.Emit(Inst{Op: Halt}) }

// Build resolves all label references and returns the finished program.
// It panics on undefined labels and returns Validate's verdict as error.
func (b *Builder) Build() (*Program, error) {
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			panic(fmt.Sprintf("isa: undefined label %q in %s", f.label, b.name))
		}
		b.insts[f.pc].Imm = int64(target) - int64(f.pc)
	}
	p := &Program{Name: b.name, Insts: b.insts, Data: b.data}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error, for statically known-good
// programs in tests and workload generators.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
