package isa

import "fmt"

// DataSeg is an initialized region of data memory: Words[i] is loaded at
// byte address Addr + 8*i before the program starts.
type DataSeg struct {
	Addr  uint64
	Words []uint64
}

// Program is a fully resolved instruction sequence plus its initial data
// image. PCs are indices into Insts.
type Program struct {
	Name  string
	Insts []Inst
	Data  []DataSeg
	Entry uint64
}

// Len returns the number of instructions in the program.
func (p *Program) Len() int { return len(p.Insts) }

// At returns the instruction at pc. PCs outside the program decode as Halt,
// so a runaway (wrong-path) fetch is always well defined.
func (p *Program) At(pc uint64) Inst {
	if pc >= uint64(len(p.Insts)) {
		return Inst{Op: Halt}
	}
	return p.Insts[pc]
}

// Validate checks structural invariants: the entry point and all branch
// and jump targets inside the program, and register indices in range. It
// returns the first problem found.
func (p *Program) Validate() error {
	n := int64(len(p.Insts))
	if len(p.Insts) > 0 && p.Entry >= uint64(len(p.Insts)) {
		return fmt.Errorf("%s: entry %d out of range [0,%d)", p.Name, p.Entry, n)
	}
	for pc, in := range p.Insts {
		if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
			return fmt.Errorf("%s: pc %d: register out of range in %v", p.Name, pc, in)
		}
		switch ClassOf(in.Op) {
		case ClassBranch:
			t := int64(pc) + in.Imm
			if t < 0 || t >= n {
				return fmt.Errorf("%s: pc %d: branch target %d out of range [0,%d)", p.Name, pc, t, n)
			}
		case ClassJump:
			if in.Op == Jal {
				t := int64(pc) + in.Imm
				if t < 0 || t >= n {
					return fmt.Errorf("%s: pc %d: jump target %d out of range [0,%d)", p.Name, pc, t, n)
				}
			}
		}
	}
	return nil
}

// ClassCounts returns the number of static instructions per operation
// class — an introspection helper the random-program generator's tests use
// to verify a feature mix actually emitted the instruction classes it
// promises.
func (p *Program) ClassCounts() map[Class]int {
	counts := make(map[Class]int)
	for _, in := range p.Insts {
		counts[ClassOf(in.Op)]++
	}
	return counts
}

// InitialMemory returns the program's initial data image as a flat
// address→word map. Later segments overwrite earlier ones on overlap.
func (p *Program) InitialMemory() map[uint64]uint64 {
	m := make(map[uint64]uint64)
	for _, seg := range p.Data {
		for i, w := range seg.Words {
			m[seg.Addr+8*uint64(i)] = w
		}
	}
	return m
}
