package isa

import (
	"testing"
	"testing/quick"
)

func TestClassOf(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{Nop, ClassNop}, {Add, ClassALU}, {Addi, ClassALU}, {Lui, ClassALU},
		{Mul, ClassMul}, {Div, ClassDiv}, {Rem, ClassDiv},
		{Ld, ClassLoad}, {Sd, ClassStore},
		{Beq, ClassBranch}, {Bgeu, ClassBranch},
		{Jal, ClassJump}, {Jalr, ClassJump}, {Halt, ClassHalt},
	}
	for _, c := range cases {
		if got := ClassOf(c.op); got != c.want {
			t.Errorf("ClassOf(%v) = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestEvalALUBasics(t *testing.T) {
	cases := []struct {
		op      Op
		a, b    uint64
		imm     int64
		want    uint64
		comment string
	}{
		{Add, 2, 3, 0, 5, "add"},
		{Sub, 2, 3, 0, ^uint64(0), "sub wraps"},
		{And, 0b1100, 0b1010, 0, 0b1000, "and"},
		{Or, 0b1100, 0b1010, 0, 0b1110, "or"},
		{Xor, 0b1100, 0b1010, 0, 0b0110, "xor"},
		{Sll, 1, 4, 0, 16, "sll"},
		{Sll, 1, 64, 0, 1, "sll masks shift to 6 bits"},
		{Srl, 0x8000000000000000, 63, 0, 1, "srl"},
		{Sra, 0x8000000000000000, 63, 0, ^uint64(0), "sra sign-extends"},
		{Slt, ^uint64(0), 0, 0, 1, "slt signed: -1 < 0"},
		{Sltu, ^uint64(0), 0, 0, 0, "sltu unsigned: max !< 0"},
		{Addi, 10, 0, -3, 7, "addi negative imm"},
		{Andi, 0xff, 0, 0x0f, 0x0f, "andi"},
		{Slli, 3, 0, 2, 12, "slli"},
		{Srai, ^uint64(0) - 1, 0, 1, ^uint64(0), "srai"},
		{Slti, 5, 0, 6, 1, "slti"},
		{Lui, 0, 0, 0x1234, 0x1234, "lui"},
		{Mul, 7, 6, 0, 42, "mul"},
		{Div, 42, 6, 0, 7, "div"},
		{Div, 42, 0, 0, ^uint64(0), "div by zero = -1"},
		{Rem, 43, 6, 0, 1, "rem"},
		{Rem, 43, 0, 0, 43, "rem by zero = dividend"},
	}
	for _, c := range cases {
		if got := EvalALU(c.op, c.a, c.b, c.imm); got != c.want {
			t.Errorf("%s: EvalALU(%v,%#x,%#x,%d) = %#x, want %#x", c.comment, c.op, c.a, c.b, c.imm, got, c.want)
		}
	}
}

func TestBranchTaken(t *testing.T) {
	neg := ^uint64(0) // -1
	cases := []struct {
		op   Op
		a, b uint64
		want bool
	}{
		{Beq, 4, 4, true}, {Beq, 4, 5, false},
		{Bne, 4, 5, true}, {Bne, 4, 4, false},
		{Blt, neg, 0, true}, {Blt, 0, neg, false},
		{Bge, 0, neg, true}, {Bge, neg, 0, false},
		{Bltu, 0, neg, true}, {Bltu, neg, 0, false},
		{Bgeu, neg, 0, true}, {Bgeu, 0, neg, false},
	}
	for _, c := range cases {
		if got := BranchTaken(c.op, c.a, c.b); got != c.want {
			t.Errorf("BranchTaken(%v, %#x, %#x) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

// Property: add/sub and shift pairs are inverses where mathematically true.
func TestEvalALUProperties(t *testing.T) {
	addSub := func(a, b uint64) bool {
		return EvalALU(Sub, EvalALU(Add, a, b, 0), b, 0) == a
	}
	if err := quick.Check(addSub, nil); err != nil {
		t.Errorf("add/sub inverse: %v", err)
	}
	xorSelf := func(a uint64) bool { return EvalALU(Xor, a, a, 0) == 0 }
	if err := quick.Check(xorSelf, nil); err != nil {
		t.Errorf("xor self: %v", err)
	}
	sltExclusive := func(a, b uint64) bool {
		lt := EvalALU(Slt, a, b, 0)
		ge := uint64(0)
		if BranchTaken(Bge, a, b) {
			ge = 1
		}
		return lt^ge == 1
	}
	if err := quick.Check(sltExclusive, nil); err != nil {
		t.Errorf("slt/bge exclusivity: %v", err)
	}
}

func TestInstSourceDestPredicates(t *testing.T) {
	ld := Inst{Op: Ld, Rd: X5, Rs1: X6}
	if !ld.HasDest() || !ld.ReadsRs1() || ld.ReadsRs2() {
		t.Errorf("load predicates wrong: %+v", ld)
	}
	st := Inst{Op: Sd, Rs1: X6, Rs2: X7}
	if st.HasDest() || !st.ReadsRs1() || !st.ReadsRs2() {
		t.Errorf("store predicates wrong: %+v", st)
	}
	br := Inst{Op: Beq, Rs1: X1, Rs2: X2}
	if br.HasDest() || !br.ReadsRs1() || !br.ReadsRs2() || !br.IsControl() {
		t.Errorf("branch predicates wrong: %+v", br)
	}
	lui := Inst{Op: Lui, Rd: X3, Imm: 7}
	if !lui.HasDest() || lui.ReadsRs1() || lui.ReadsRs2() {
		t.Errorf("lui predicates wrong: %+v", lui)
	}
	x0dest := Inst{Op: Add, Rd: X0, Rs1: X1, Rs2: X2}
	if x0dest.HasDest() {
		t.Errorf("write to x0 must not count as a destination")
	}
	jal := Inst{Op: Jal, Rd: X1, Imm: 4}
	if !jal.HasDest() || jal.ReadsRs1() || !jal.IsControl() {
		t.Errorf("jal predicates wrong: %+v", jal)
	}
	jalr := Inst{Op: Jalr, Rd: X0, Rs1: X1}
	if jalr.HasDest() || !jalr.ReadsRs1() || !jalr.IsControl() {
		t.Errorf("jalr predicates wrong: %+v", jalr)
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: Add, Rd: X1, Rs1: X2, Rs2: X3}, "add x1, x2, x3"},
		{Inst{Op: Addi, Rd: X1, Rs1: X2, Imm: -4}, "addi x1, x2, -4"},
		{Inst{Op: Ld, Rd: X5, Rs1: X6, Imm: 16}, "ld x5, 16(x6)"},
		{Inst{Op: Sd, Rs1: X6, Rs2: X7, Imm: 8}, "sd x7, 8(x6)"},
		{Inst{Op: Beq, Rs1: X1, Rs2: X0, Imm: -2}, "beq x1, x0, -2"},
		{Inst{Op: Halt}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
