// Package stats provides the small statistical toolkit the evaluation
// uses: the paper's arithmetic-mean IPC aggregation, least-squares trend
// lines for the scaling figures, and the halved-slope extrapolation used
// for the Redwood-Cove-class estimates (Section 1, Table 3).
package stats

import (
	"fmt"
	"math"
)

// MeanIPC aggregates per-benchmark (cycles, instructions) pairs the way
// the paper does (Section 8.1, citing Eeckhout): arithmetic mean of cycles
// and of instructions separately, then their ratio.
func MeanIPC(cycles, insts []uint64) float64 {
	if len(cycles) == 0 || len(cycles) != len(insts) {
		return 0
	}
	var sc, si float64
	for i := range cycles {
		sc += float64(cycles[i])
		si += float64(insts[i])
	}
	if sc == 0 {
		return 0
	}
	return si / sc
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// LinReg fits y = slope·x + intercept by least squares.
func LinReg(xs, ys []float64) (slope, intercept float64, err error) {
	n := len(xs)
	if n < 2 || n != len(ys) {
		return 0, 0, fmt.Errorf("stats: need ≥2 paired points, have %d/%d", len(xs), len(ys))
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return 0, 0, fmt.Errorf("stats: degenerate x values")
	}
	slope = sxy / sxx
	return slope, my - slope*mx, nil
}

// Extrapolate evaluates the fitted line at x.
func Extrapolate(slope, intercept, x float64) float64 {
	return intercept + slope*x
}

// HalvedSlopeExtrapolate is the paper's "less pessimistic" estimate
// (Section 1): beyond the last measured point fromX, the trend continues
// at half its fitted slope.
func HalvedSlopeExtrapolate(slope, intercept, fromX, toX float64) float64 {
	atFrom := Extrapolate(slope, intercept, fromX)
	return atFrom + 0.5*slope*(toX-fromX)
}

// GeoMean returns the geometric mean (used for cross-checking; the paper's
// headline means are arithmetic-ratio means).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
