package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanIPC(t *testing.T) {
	// Two benchmarks: 100 insts/200 cycles and 300 insts/100 cycles.
	// Paper method: (100+300)/(200+100) = 4/3, NOT mean(0.5, 3.0).
	got := MeanIPC([]uint64{200, 100}, []uint64{100, 300})
	if !approx(got, 4.0/3.0, 1e-12) {
		t.Errorf("MeanIPC = %v, want 4/3", got)
	}
	if MeanIPC(nil, nil) != 0 {
		t.Error("empty input must give 0")
	}
	if MeanIPC([]uint64{1}, []uint64{1, 2}) != 0 {
		t.Error("mismatched lengths must give 0")
	}
}

func TestLinRegExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept, err := LinReg(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(slope, 2, 1e-12) || !approx(intercept, 1, 1e-12) {
		t.Errorf("fit = (%v, %v), want (2, 1)", slope, intercept)
	}
	if !approx(Extrapolate(slope, intercept, 10), 21, 1e-12) {
		t.Error("extrapolation wrong")
	}
}

func TestLinRegErrors(t *testing.T) {
	if _, _, err := LinReg([]float64{1}, []float64{1}); err == nil {
		t.Error("single point must error")
	}
	if _, _, err := LinReg([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("degenerate x must error")
	}
	if _, _, err := LinReg([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestHalvedSlopeExtrapolate(t *testing.T) {
	// Line y = -0.2x + 1.2: at x=1.27 y=0.946; halved slope to x=2.03:
	// 0.946 + 0.5*(-0.2)*(0.76) = 0.870.
	got := HalvedSlopeExtrapolate(-0.2, 1.2, 1.27, 2.03)
	if !approx(got, 0.87, 1e-9) {
		t.Errorf("halved extrapolation = %v, want 0.870", got)
	}
	// With zero slope the estimate is flat.
	if !approx(HalvedSlopeExtrapolate(0, 0.8, 1, 2), 0.8, 1e-12) {
		t.Error("flat line must extrapolate flat")
	}
}

func TestGeoMean(t *testing.T) {
	if !approx(GeoMean([]float64{1, 4}), 2, 1e-12) {
		t.Error("geomean of {1,4} must be 2")
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("non-positive input must give 0")
	}
	if GeoMean(nil) != 0 {
		t.Error("empty input must give 0")
	}
}

// Property: the regression line always passes through the centroid, and
// residuals sum to ~zero.
func TestLinRegCentroidProperty(t *testing.T) {
	f := func(seed uint8) bool {
		xs := make([]float64, 6)
		ys := make([]float64, 6)
		v := float64(seed) + 1
		for i := range xs {
			xs[i] = float64(i) + v/300
			ys[i] = 3*xs[i] - 1 + math.Sin(v+float64(i))
		}
		slope, intercept, err := LinReg(xs, ys)
		if err != nil {
			return false
		}
		return approx(Extrapolate(slope, intercept, Mean(xs)), Mean(ys), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MeanIPC is bounded by the min and max per-benchmark IPC.
func TestMeanIPCBounds(t *testing.T) {
	f := func(a, b, c uint16) bool {
		cycles := []uint64{uint64(a)%1000 + 1, uint64(b)%1000 + 1}
		insts := []uint64{uint64(c)%1000 + 1, uint64(a)%700 + 1}
		m := MeanIPC(cycles, insts)
		lo := math.Min(float64(insts[0])/float64(cycles[0]), float64(insts[1])/float64(cycles[1]))
		hi := math.Max(float64(insts[0])/float64(cycles[0]), float64(insts[1])/float64(cycles[1]))
		return m >= lo-1e-12 && m <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
