package workloads

import "fmt"

// Suite returns the 22 SPEC CPU2017 proxies in the paper's Figure 6 order.
// Iteration counts are sized so every proxy outlasts the harness's cycle
// budgets; the harness measures a fixed cycle window, as the paper does on
// FireSim (Section 7).
func Suite() []Profile {
	return []Profile{
		{
			Name:      "500.perlbench",
			Character: "interpreter: branchy integer, hash-table indirection, calls, L2-size hot set",
			Iters:     200_000,
			GateEvery: 2, GateWords: 1 << 15, GateIndirect: true,
			StreamArrays: 1, StreamWords: 4096, ALUPerLoad: 2,
			IndirectLoads: 3, RandBranchBit: 3, BranchDepLoad: true,
			StoreEvery: 2, IndepALU: 3, CallEvery: 2,
		},
		{
			Name:      "502.gcc",
			Character: "compiler: pointer-chasing IR walks, unpredictable branches, calls",
			Iters:     200_000,
			GateEvery: 1, GateWords: 1 << 15, GateIndirect: true,
			StreamArrays: 1, StreamWords: 8192, ALUPerLoad: 1,
			IndirectLoads: 3, ChaseNodes: 512, ChaseStride: 64, ChasePerIter: 2, DepBranch: true,
			RandBranchBit: 5, BranchDepLoad: true, StoreEvery: 2, IndepALU: 3, CallEvery: 2,
		},
		{
			Name:         "503.bwaves",
			Character:    "FP blast-wave solver: streams well, wide independent work, few branches",
			Iters:        200_000,
			StreamArrays: 2, StreamWords: 65536, ALUPerLoad: 2,
			StoreEvery: 2, IndepALU: 8, MulEvery: 2,
		},
		{
			Name:      "505.mcf",
			Character: "network simplex: DRAM-bound pointer chasing, indirect loads, data-dependent branches",
			Iters:     200_000,
			GateEvery: 1, GateWords: 1 << 16, GateIndirect: true,
			IndirectLoads: 3, ChaseNodes: 512, ChaseStride: 64, ChasePerIter: 3,
			DepBranch: true, RandBranchBit: 4, BranchDepLoad: true, IndepALU: 4,
		},
		{
			Name:      "507.cactuBSSN",
			Character: "numerical relativity stencil: compute-dense chains off streamed loads",
			Iters:     200_000,
			LagBranch: true,
			GateEvery: 1, GateWords: 1 << 15,
			StreamArrays: 2, StreamWords: 16384, ALUPerLoad: 5,
			StoreEvery: 2, IndepALU: 4, MulEvery: 1,
		},
		{
			Name:         "508.namd",
			Character:    "molecular dynamics: high-ILP compute, small hot set, multiply-heavy",
			Iters:        200_000,
			StreamArrays: 1, StreamWords: 2048, ALUPerLoad: 3,
			IndepALU: 8, MulEvery: 1,
		},
		{
			Name:      "510.parest",
			Character: "FEM solver: streaming plus sparse indirection, moderate shadows",
			Iters:     200_000,
			GateEvery: 1, GateWords: 1 << 15,
			StreamArrays: 2, StreamWords: 16384, ALUPerLoad: 2,
			IndirectLoads: 2, StoreEvery: 2, IndepALU: 4, MulEvery: 2,
		},
		{
			Name:      "511.povray",
			Character: "ray tracer: compute with branchy traversal and calls, small footprint",
			Iters:     200_000,
			LagBranch: true,
			GateEvery: 1, GateWords: 1 << 14,
			StreamArrays: 1, StreamWords: 2048, ALUPerLoad: 4,
			RandBranchBit: 6, IndepALU: 4, MulEvery: 1, CallEvery: 2,
		},
		{
			Name:         "519.lbm",
			Character:    "lattice Boltzmann: store-heavy streaming stencil, prefetch-friendly",
			Iters:        200_000,
			LagBranch:    true,
			StreamArrays: 2, StreamWords: 32768, ALUPerLoad: 3,
			StoreEvery: 1, IndepALU: 5, MulEvery: 2,
		},
		{
			Name:      "520.omnetpp",
			Character: "discrete-event simulator: heap pointer chasing under missy branches, calls",
			Iters:     200_000,
			GateEvery: 1, GateWords: 1 << 16, GateIndirect: true,
			ChaseNodes: 512, ChaseStride: 64, ChasePerIter: 2, DepBranch: true,
			IndirectLoads: 2, RandBranchBit: 3, BranchDepLoad: true,
			StoreEvery: 2, IndepALU: 3, CallEvery: 2,
		},
		{
			Name:      "521.wrf",
			Character: "weather model: streaming FP with moderate compute chains",
			Iters:     200_000,
			LagBranch: true,
			GateEvery: 1, GateWords: 1 << 15,
			StreamArrays: 2, StreamWords: 16384, ALUPerLoad: 3,
			StoreEvery: 2, IndepALU: 5, MulEvery: 2,
		},
		{
			Name:      "523.xalancbmk",
			Character: "XML transform: tree walks with indirect loads and data-dependent branches",
			Iters:     200_000,
			GateEvery: 1, GateWords: 1 << 15, GateIndirect: true,
			StreamArrays: 1, StreamWords: 8192, ALUPerLoad: 1,
			IndirectLoads: 3, ChaseNodes: 512, ChaseStride: 64, ChasePerIter: 2,
			DepBranch: true, RandBranchBit: 4, BranchDepLoad: true, IndepALU: 2, CallEvery: 3,
		},
		{
			Name:         "525.x264",
			Character:    "video encoder: integer SIMD-like ILP over small blocks, few branches",
			Iters:        200_000,
			LagBranch:    true,
			StreamArrays: 2, StreamWords: 4096, ALUPerLoad: 2,
			StoreEvery: 1, IndepALU: 8, MulEvery: 2,
		},
		{
			Name:      "527.cam4",
			Character: "atmosphere model: streaming FP, moderate chains, some branches",
			Iters:     200_000,
			LagBranch: true,
			GateEvery: 1, GateWords: 1 << 15,
			StreamArrays: 2, StreamWords: 16384, ALUPerLoad: 3,
			RandBranchBit: 7, StoreEvery: 2, IndepALU: 4, MulEvery: 2,
		},
		{
			Name:      "531.deepsjeng",
			Character: "chess search: unpredictable data-dependent branches, table indirection",
			Iters:     200_000,
			GateEvery: 1, GateWords: 1 << 14, GateIndirect: true,
			StreamArrays: 1, StreamWords: 1024, ALUPerLoad: 1,
			IndirectLoads: 3, RandBranchBit: 2, BranchDepLoad: true, STLF: true,
			IndepALU: 3, CallEvery: 2,
		},
		{
			Name:      "538.imagick",
			Character: "image convolution: deep dependent ALU chains off L1-resident loads",
			Iters:     200_000,
			LagBranch: true,
			GateEvery: 1, GateWords: 1 << 15,
			StreamArrays: 2, StreamWords: 2048, ALUPerLoad: 7,
			StoreEvery: 2, IndepALU: 2, MulEvery: 1,
		},
		{
			Name:      "541.leela",
			Character: "go engine: branchy small-footprint search with store/reload traffic",
			Iters:     200_000,
			LagBranch: true,
			GateEvery: 2, GateWords: 1 << 14, GateIndirect: true,
			StreamArrays: 1, StreamWords: 2048, ALUPerLoad: 2,
			RandBranchBit: 3, BranchDepLoad: true, STLF: true, IndepALU: 3,
		},
		{
			Name:      "544.nab",
			Character: "molecular modeling: compute chains with multiplies, small streams",
			Iters:     200_000,
			LagBranch: true,
			GateEvery: 1, GateWords: 1 << 14,
			StreamArrays: 1, StreamWords: 4096, ALUPerLoad: 4,
			IndepALU: 6, MulEvery: 1,
		},
		{
			Name:      "548.exchange2",
			Character: "sudoku solver: tiny footprint, tainted store addresses vs untainted reloads (Section 9.2 anomaly)",
			Iters:     200_000,
			GateEvery: 2, GateWords: 1 << 13,
			StreamArrays: 1, StreamWords: 128, ALUPerLoad: 1,
			STLF: true, StoreEvery: 1, RandBranchBit: 9, IndepALU: 6, CallEvery: 3,
		},
		{
			Name:         "549.fotonik3d",
			Character:    "FDTD solver: streams well, prefetch-friendly, negligible shadows",
			Iters:        200_000,
			StreamArrays: 2, StreamWords: 32768, ALUPerLoad: 2,
			StoreEvery: 2, IndepALU: 7, MulEvery: 2,
		},
		{
			Name:         "554.roms",
			Character:    "ocean model: streaming FP, wide independent work, few branches",
			Iters:        200_000,
			StreamArrays: 2, StreamWords: 32768, ALUPerLoad: 2,
			StoreEvery: 2, IndepALU: 8, MulEvery: 2,
		},
		{
			Name:      "557.xz",
			Character: "compressor: data-dependent branches on loaded bytes, match-table indirection",
			Iters:     200_000,
			GateEvery: 1, GateWords: 1 << 15, GateIndirect: true,
			StreamArrays: 1, StreamWords: 8192, ALUPerLoad: 2,
			IndirectLoads: 3, RandBranchBit: 1, BranchDepLoad: true, STLF: true,
			StoreEvery: 2, IndepALU: 3,
		},
	}
}

// ByName returns the named proxy profile.
func ByName(name string) (Profile, error) {
	for _, p := range Suite() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// Gem5Comparable returns the suite minus namd, parest, and povray, which
// the paper could not run on gem5 (Section 7) and therefore excludes from
// BOOM-vs-gem5 comparisons.
func Gem5Comparable() []Profile {
	out := make([]Profile, 0, 19)
	for _, p := range Suite() {
		switch p.Name {
		case "508.namd", "510.parest", "511.povray":
			continue
		}
		out = append(out, p)
	}
	return out
}

// Names returns the suite's benchmark names in order.
func Names() []string {
	s := Suite()
	out := make([]string, len(s))
	for i, p := range s {
		out[i] = p.Name
	}
	return out
}
