package workloads

import (
	"testing"

	"repro/internal/isa"
)

func TestSuiteShape(t *testing.T) {
	s := Suite()
	if len(s) != 22 {
		t.Fatalf("suite has %d benchmarks, want 22", len(s))
	}
	seen := map[string]bool{}
	for _, p := range s {
		if seen[p.Name] {
			t.Errorf("duplicate benchmark %s", p.Name)
		}
		seen[p.Name] = true
		if p.Character == "" {
			t.Errorf("%s: missing character description", p.Name)
		}
		if p.Iters <= 0 {
			t.Errorf("%s: non-positive iteration count", p.Name)
		}
	}
}

func TestAllProxiesBuildAndValidate(t *testing.T) {
	for _, p := range Suite() {
		prog := p.Build(1)
		if err := prog.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if prog.Len() == 0 {
			t.Errorf("%s: empty program", p.Name)
		}
	}
}

// TestAllProxiesTerminate runs each proxy at a reduced scale on the
// architectural simulator, checking termination and measuring dynamic
// instruction counts.
func TestAllProxiesTerminate(t *testing.T) {
	for _, p := range Suite() {
		small := p
		small.Iters = 64
		prog := small.Build(1)
		sim := isa.NewArchSim(prog)
		n, err := sim.Run(5_000_000)
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		if n < 100 {
			t.Errorf("%s: only %d dynamic instructions", p.Name, n)
		}
	}
}

func TestProxiesAreDeterministic(t *testing.T) {
	p, err := ByName("505.mcf")
	if err != nil {
		t.Fatal(err)
	}
	a := p.Build(1)
	b := p.Build(1)
	if a.Len() != b.Len() {
		t.Fatalf("non-deterministic build: %d vs %d instructions", a.Len(), b.Len())
	}
	for i := range a.Insts {
		if a.Insts[i] != b.Insts[i] {
			t.Fatalf("instruction %d differs between builds", i)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("548.exchange2"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("999.nonesuch"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestGem5ComparableExclusions(t *testing.T) {
	g := Gem5Comparable()
	if len(g) != 19 {
		t.Fatalf("gem5-comparable suite has %d entries, want 19", len(g))
	}
	for _, p := range g {
		switch p.Name {
		case "508.namd", "510.parest", "511.povray":
			t.Errorf("%s must be excluded from the gem5 comparison", p.Name)
		}
	}
}

func TestScaleMultipliesIterations(t *testing.T) {
	p, _ := ByName("503.bwaves")
	p.Iters = 32
	s1 := isa.NewArchSim(p.Build(1))
	n1, err := s1.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	s2 := isa.NewArchSim(p.Build(2))
	n2, err := s2.Run(20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if n2 < n1*3/2 {
		t.Errorf("scale 2 ran %d instructions vs %d at scale 1", n2, n1)
	}
}

func TestPermutationIsSingleCycle(t *testing.T) {
	rng := newSplitMix(42)
	for _, n := range []int{2, 8, 64, 1024} {
		perm := permutation(n, rng)
		seen := make([]bool, n)
		cur := 0
		for i := 0; i < n; i++ {
			if seen[cur] {
				t.Fatalf("n=%d: revisited node %d after %d hops", n, cur, i)
			}
			seen[cur] = true
			cur = perm[cur]
		}
		if cur != 0 {
			t.Errorf("n=%d: walk did not return to start", n)
		}
	}
}

func TestSplitMixDeterminism(t *testing.T) {
	a, b := newSplitMix(7), newSplitMix(7)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("splitmix not deterministic")
		}
	}
	if newSplitMix(7).next() == newSplitMix(8).next() {
		t.Error("different seeds gave identical first values")
	}
}

func TestNamesMatchesSuite(t *testing.T) {
	names := Names()
	suite := Suite()
	if len(names) != len(suite) {
		t.Fatal("length mismatch")
	}
	for i := range names {
		if names[i] != suite[i].Name {
			t.Errorf("index %d: %s != %s", i, names[i], suite[i].Name)
		}
	}
}
