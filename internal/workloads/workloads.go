// Package workloads provides the SPEC CPU2017 proxy suite: 22 synthetic
// benchmarks, one per SPEC benchmark the paper runs (Figure 6), generated
// from a common parameterized kernel.
//
// SPEC CPU2017 is proprietary and its binaries cannot ship with this
// repository, so each proxy is parameterized to reproduce the *behavioural
// character* that drives the paper's per-benchmark results. The
// load-bearing behaviours, and the scheme costs they trigger:
//
//   - Gate loads: occasional cache-missing loads (hashed indices into a
//     large array, defeating the prefetcher) feeding a data-dependent
//     branch. While the miss is outstanding the branch cannot resolve, so
//     everything younger executes under a long C-shadow — the window in
//     which the baseline exploits speculation and the secure schemes pay.
//   - Indirect loads (A[B[i]]): the second load's address derives from
//     speculatively loaded data — a tainted transmitter. STT blocks it
//     until the B load is non-speculative; the baseline issues it at once.
//   - Data-dependent branches on loaded bits: slow to resolve (extending
//     shadows) and, when the bit is random, frequently mispredicted; under
//     STT their resolution is further delayed by tainting.
//   - Dependent ALU chains off loads: invisible instructions that STT
//     executes freely but NDA stalls behind the delayed load broadcast —
//     the cactuBSSN/imagick signature (Section 8.1).
//   - Store/reload with a *tainted* store address and an *untainted*
//     reload address over a tiny buffer: when a scheme delays the tainted
//     store address, the untainted reload executes against stale memory
//     and is squashed when the store address resolves — the exchange2
//     store-to-load forwarding-error anomaly (Section 9.2).
//   - Independent ALU work: issue-width food; its loss under a stalled
//     front of blocked transmitters is what makes wider cores lose more.
package workloads

import (
	"fmt"

	"repro/internal/isa"
)

// Profile parameterizes one proxy kernel. The zero value of each knob
// disables the corresponding behaviour.
type Profile struct {
	Name      string
	Character string // one-line behavioural summary

	Iters int // loop iterations at scale 1 (sized to outlast cycle budgets)

	// Gate: shadow generator. Every GateEvery-th unrolled copy loads from
	// a GateWords-sized array at a hashed (prefetch-hostile) index and
	// branches on the value.
	GateEvery int
	GateWords int // footprint: 1<<15 words ≈ L2-resident, 1<<17 ≈ DRAM
	// GateIndirect loads the gate address from an L1-resident pointer
	// table first, making the missing gate load a *tainted-address*
	// transmitter. Under the baseline, independent gate misses overlap
	// (memory-level parallelism); STT blocks each pointer-derived gate
	// load until the previous window clears and NDA withholds the pointer
	// value itself, so both serialize the misses — the MLP destruction
	// that dominates pointer-chasing benchmarks (mcf, omnetpp).
	GateIndirect bool

	// Streaming memory traffic (prefetch-friendly).
	StreamArrays int // number of concurrently walked arrays (max 2)
	StreamWords  int // words per array (power of two)
	ALUPerLoad   int // dependent ALU ops chained onto each loaded value

	// Indirect loads: A[B[i]] pairs per unrolled copy over small tables.
	IndirectLoads int

	// Pointer chasing (serialized, prefetch-hostile).
	ChaseNodes   int // shuffled list length (power of two), 0 = none
	ChaseStride  int // bytes between nodes
	ChasePerIter int // hops per unrolled copy
	DepBranch    bool

	// Hard-to-predict branch on loaded data.
	RandBranchBit int
	BranchDepLoad bool

	// LagBranch emits a perfectly-predictable branch whose operand is
	// loaded data from two unrolled copies ago. Its taint root is old
	// enough to be safe under STT by the time the branch issues, but under
	// NDA the operand's *arrival* is chained through delayed broadcasts,
	// serializing shadow resolution — the NDA-only cascade behind the
	// paper's imagick/cactuBSSN results (Section 8.1). Mutually exclusive
	// with IndirectLoads (register budget).
	LagBranch bool

	// Store traffic.
	StoreEvery int  // streaming store every N unrolled copies (0 = none)
	STLF       bool // tainted-store-address / untainted-reload buffer traffic

	IndepALU int // independent ALU ops per unrolled copy

	MulEvery  int // long-latency arithmetic in 1-of-N copies (0 = never)
	DivEvery  int
	CallEvery int

	Unroll int // static unroll factor (default 2)
}

// Data-segment bases; each proxy instance uses disjoint regions.
const (
	streamBase   = 0x0100_0000
	chaseBase    = 0x0800_0000
	stlfBase     = 0x0010_0000
	outBase      = 0x0400_0000
	gateBase     = 0x2000_0000
	gateIdxBase  = 0x3000_0000 // pointer table for GateIndirect
	indirectBase = 0x0020_0000 // B index table; A table right after
)

const gateIdxWords = 4096 // L1/L2-resident pointer table

const indirectWords = 512 // words in each of the A and B indirect tables

// Build generates the proxy program. scale multiplies the iteration count
// so callers can trade run time for measurement stability.
func (p Profile) Build(scale int) *isa.Program {
	if scale < 1 {
		scale = 1
	}
	if p.Unroll < 1 {
		p.Unroll = 2
	}
	if p.LagBranch && p.IndirectLoads > 0 {
		panic("workloads: LagBranch and IndirectLoads are mutually exclusive (x16/x17)")
	}
	if p.LagBranch && p.StreamArrays < 1 {
		panic("workloads: LagBranch requires at least one stream array")
	}
	b := isa.NewBuilder(p.Name)
	rng := newSplitMix(hashName(p.Name))

	p.emitData(b, rng)
	p.emitSetup(b, scale)

	b.Label("loop")
	for u := 0; u < p.Unroll; u++ {
		p.emitIteration(b, u)
	}
	b.Addi(isa.X28, isa.X28, int64(p.Unroll))
	b.Blt(isa.X28, isa.X29, "loop")
	b.Label("end")
	b.Halt()
	return b.MustBuild()
}

func (p Profile) emitData(b *isa.Builder, rng *splitMix) {
	for a := 0; a < p.StreamArrays && a < 2; a++ {
		words := make([]uint64, p.StreamWords)
		for i := range words {
			words[i] = rng.next() >> 4
		}
		b.Data(streamArrayBase(a, p.StreamWords), words)
	}
	if p.GateEvery > 0 {
		// Non-zero values so the gate branch (beq x, x0) is never taken.
		words := make([]uint64, p.GateWords)
		for i := range words {
			words[i] = rng.next()>>8 | 1
		}
		b.Data(gateBase, words)
		if p.GateIndirect {
			idx := make([]uint64, gateIdxWords)
			for i := range idx {
				idx[i] = gateBase + (rng.next()%uint64(p.GateWords))*8
			}
			b.Data(gateIdxBase, idx)
		}
	}
	if p.IndirectLoads > 0 {
		bTab := make([]uint64, indirectWords)
		aTab := make([]uint64, indirectWords)
		for i := range bTab {
			bTab[i] = rng.next() % indirectWords
			aTab[i] = rng.next() >> 4
		}
		b.Data(indirectBase, bTab)
		b.Data(indirectBase+8*indirectWords, aTab)
	}
	if p.ChaseNodes > 0 {
		stride := p.ChaseStride
		if stride < 8 {
			stride = 8
		}
		words := make([]uint64, p.ChaseNodes*stride/8)
		perm := permutation(p.ChaseNodes, rng)
		for i := 0; i < p.ChaseNodes; i++ {
			words[i*stride/8] = chaseBase + uint64(perm[i])*uint64(stride)
		}
		b.Data(chaseBase, words)
	}
	if p.STLF {
		b.Data(stlfBase, make([]uint64, 16))
	}
}

// Register plan:
//
//	x5,x6    stream values   x7..x13  scratch
//	x14,x15  leaf/arith      x16,x17  indirect values
//	x18,x19  stream ptrs     x20      chase ptr
//	x21      STLF buffer     x22      output base
//	x23      gate base       x24      indirect B base
//	x25      indirect A base x26,x27  accumulators
//	x28,x29  loop counter/limit       x30,x31 address scratch
func (p Profile) emitSetup(b *isa.Builder, scale int) {
	b.Li(isa.X21, stlfBase)
	b.Li(isa.X22, outBase)
	b.Li(isa.X23, gateBase)
	b.Li(isa.X24, indirectBase)
	b.Li(isa.X25, indirectBase+8*indirectWords)
	b.Li(isa.X20, chaseBase)
	b.Li(isa.X27, 1)
	b.Li(isa.X26, 0)
	b.Li(isa.X28, 0)
	b.Li(isa.X29, int64(p.Iters*scale))
	for i := 0; i < p.StreamArrays && i < 2; i++ {
		b.Li(streamPtrReg(i), int64(streamArrayBase(i, p.StreamWords)))
	}
	if p.CallEvery > 0 {
		b.J("entry")
		b.Label("leaf")
		b.Addi(isa.X15, isa.X15, 3)
		b.Xor(isa.X14, isa.X14, isa.X15)
		b.Ret()
		b.Label("entry")
	}
}

// emitIteration emits one unrolled copy of the kernel body.
func (p Profile) emitIteration(b *isa.Builder, u int) {
	acc := isa.X27

	// Lag branch: never taken (stream values are non-negative), perfectly
	// predictable, but it cannot resolve before data loaded two copies ago
	// arrives — and under NDA that arrival is itself broadcast-delayed.
	if p.LagBranch {
		b.Blt(isa.X17, isa.X0, "end")
	}

	// Gate: hashed-index load into the big array plus a branch on the
	// loaded value. The hash is counter-derived (untainted, ready early),
	// so the load issues immediately and misses often; the branch then
	// shadows everything below until the miss returns.
	if p.GateEvery > 0 && u%p.GateEvery == 0 {
		if p.GateIndirect {
			// Pointer-table hop: the gate address is loaded data, so the
			// missing gate load has a tainted address.
			b.Slli(isa.X7, isa.X28, 5)
			b.Xor(isa.X7, isa.X7, isa.X28)
			b.Addi(isa.X7, isa.X7, int64(u*977))
			b.Andi(isa.X7, isa.X7, gateIdxWords-1)
			b.Slli(isa.X7, isa.X7, 3)
			b.Lui(isa.X9, gateIdxBase)
			b.Add(isa.X7, isa.X7, isa.X9)
			b.Ld(isa.X7, isa.X7, 0) // pointer load (L1/L2 resident)
		} else {
			mask := int64(p.GateWords - 1)
			b.Slli(isa.X7, isa.X28, 7)
			b.Xor(isa.X7, isa.X7, isa.X28)
			b.Addi(isa.X7, isa.X7, int64(u*977))
			b.Andi(isa.X7, isa.X7, mask)
			b.Slli(isa.X7, isa.X7, 3)
			b.Add(isa.X7, isa.X7, isa.X23)
		}
		b.Ld(isa.X8, isa.X7, 0)
		// The gate value feeds only the branch: the miss creates a long
		// speculation shadow without serializing the dataflow below, so
		// the baseline hides it and the secure schemes pay their costs.
		b.Beq(isa.X8, isa.X0, "end") // never taken: gate words are non-zero
	}

	// Streaming loads with dependent ALU chains (NDA's loss: the chain
	// stalls on the withheld broadcast; STT runs it — invisible ops).
	for a := 0; a < p.StreamArrays && a < 2; a++ {
		ptr := streamPtrReg(a)
		val := isa.Reg(uint8(isa.X5) + uint8(a))
		b.Ld(val, ptr, int64(8*u))
		if p.LagBranch && a == 0 {
			// Shift the lag chain off the raw loaded value; the right
			// shift keeps it provably non-negative so the lag branch
			// stays never-taken.
			b.Add(isa.X17, isa.X16, isa.X0)
			b.Srli(isa.X16, val, 1)
		}
		for k := 0; k < p.ALUPerLoad; k++ {
			switch k % 3 {
			case 0:
				b.Addi(val, val, int64(13+k))
			case 1:
				b.Xori(val, val, 0x5A)
			case 2:
				b.Srli(val, val, 1)
			}
		}
		b.Add(acc, acc, val)
	}
	if p.StreamArrays > 0 && u == p.Unroll-1 {
		// Advance and wrap the stream pointers once per loop body.
		mask := int64(p.StreamWords*8 - 1)
		for aa := 0; aa < p.StreamArrays && aa < 2; aa++ {
			pr := streamPtrReg(aa)
			base := int64(streamArrayBase(aa, p.StreamWords))
			b.Addi(pr, pr, 8*int64(p.Unroll))
			b.Andi(isa.X7, pr, mask)
			b.Lui(isa.X8, base)
			b.Add(pr, isa.X8, isa.X7)
		}
	}

	// Indirect loads: the A load's address depends on speculatively
	// loaded B data — a tainted transmitter with quickly-ready operands.
	for k := 0; k < p.IndirectLoads; k++ {
		bv := isa.X16
		av := isa.X17
		b.Addi(isa.X30, isa.X28, int64(u*7+k*13))
		b.Andi(isa.X30, isa.X30, indirectWords-1)
		b.Slli(isa.X30, isa.X30, 3)
		b.Add(isa.X30, isa.X30, isa.X24)
		b.Ld(bv, isa.X30, 0) // B[i]: L1-resident, fast data, slow non-speculation
		b.Andi(isa.X31, bv, indirectWords-1)
		b.Slli(isa.X31, isa.X31, 3)
		b.Add(isa.X31, isa.X31, isa.X25)
		b.Ld(av, isa.X31, 0) // A[B[i]]: tainted address
		b.Add(acc, acc, av)
	}

	// Serialized pointer chase.
	for h := 0; h < p.ChasePerIter; h++ {
		b.Ld(isa.X20, isa.X20, 0)
		if p.DepBranch {
			b.Beq(isa.X20, isa.X0, "end") // never taken
		}
	}
	if p.ChasePerIter > 0 {
		b.Add(acc, acc, isa.X20)
	}

	// Hard-to-predict branch on loaded data.
	if p.RandBranchBit > 0 {
		src := isa.X5
		if p.IndirectLoads > 0 {
			src = isa.X17
		}
		if !p.BranchDepLoad {
			src = isa.X28
		}
		skip := fmt.Sprintf("rb_%d", u)
		b.Srli(isa.X9, src, int64(p.RandBranchBit%16))
		b.Andi(isa.X9, isa.X9, 1)
		b.Beq(isa.X9, isa.X0, skip)
		b.Addi(acc, acc, 5)
		b.Xor(isa.X26, isa.X26, acc)
		b.Label(skip)
	}

	// Store/reload traffic, exchange2-style (Section 9.2): the store's
	// address is counter-derived (untainted, ready early) but its DATA is
	// the reload accumulator, whose taint root is always the previous
	// reload. STT-Rename computes one YRoT over both operands, so the
	// tainted data blocks the address half too — the address never becomes
	// visible to the LSU, the reload to the same slot speculates past it,
	// reads stale data, and is squashed when the store address finally
	// resolves (a forwarding error). STT-Issue taints the halves
	// independently and issues the untainted address early, avoiding most
	// errors; NDA and the baseline forward normally. The reload feeds only
	// a sink accumulator, so the pair stays off the critical path: its
	// cost appears as violations and flushes, not data-dependence.
	if p.STLF {
		b.Addi(isa.X10, isa.X28, int64(u*5))
		b.Andi(isa.X10, isa.X10, 7)
		b.Slli(isa.X10, isa.X10, 3)
		b.Add(isa.X10, isa.X10, isa.X21)
		b.Sd(isa.X5, isa.X10, 0) // data: fresh stream value (tainted while its load is shadowed)
		b.Addi(isa.X11, isa.X28, int64(u*5))
		b.Andi(isa.X11, isa.X11, 7)
		b.Slli(isa.X11, isa.X11, 3)
		b.Add(isa.X11, isa.X11, isa.X21)
		b.Ld(isa.X12, isa.X11, 0) // reload of the same slot
		b.Add(isa.X26, isa.X26, isa.X12)
	}

	// Streaming output store.
	if p.StoreEvery > 0 && u%p.StoreEvery == 0 {
		b.Andi(isa.X13, isa.X28, 1023)
		b.Slli(isa.X13, isa.X13, 3)
		b.Add(isa.X13, isa.X13, isa.X22)
		b.Sd(acc, isa.X13, int64(8*u))
	}

	// Independent ALU work: wide cores issue these in parallel.
	for k := 0; k < p.IndepALU; k++ {
		r := isa.Reg(uint8(isa.X6) + uint8(k%6))
		switch k % 4 {
		case 0:
			b.Addi(r, r, int64(1+k))
		case 1:
			b.Xori(r, r, 0x55)
		case 2:
			b.Slli(r, r, 1)
		case 3:
			b.Add(r, r, isa.X28)
		}
	}

	if p.MulEvery > 0 && u%p.MulEvery == 0 {
		b.Mul(isa.X14, acc, isa.X26)
		b.Add(acc, acc, isa.X14)
	}
	if p.DivEvery > 0 && u%p.DivEvery == 0 {
		b.Ori(isa.X15, isa.X28, 1) // non-zero divisor
		b.Div(isa.X14, acc, isa.X15)
		b.Xor(acc, acc, isa.X14)
	}
	if p.CallEvery > 0 && u%p.CallEvery == 0 {
		b.Call("leaf")
	}
}

func streamPtrReg(a int) isa.Reg {
	if a == 0 {
		return isa.X18
	}
	return isa.X19
}

func streamArrayBase(a, words int) uint64 {
	return streamBase + uint64(a)*uint64(words)*16
}

// splitMix is a SplitMix64 PRNG: deterministic workload data without
// math/rand's global state.
type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed} }

func (r *splitMix) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func hashName(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// permutation returns a pseudo-random single-cycle permutation of [0,n),
// so a pointer chase visits every node (Sattolo's algorithm).
func permutation(n int, rng *splitMix) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(rng.next() % uint64(i))
		idx[i], idx[j] = idx[j], idx[i]
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[idx[i]] = idx[(i+1)%n]
	}
	return out
}
